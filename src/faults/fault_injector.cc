#include "faults/fault_injector.hh"

#include <algorithm>
#include <sstream>

namespace cchunter
{

namespace
{

// Distinct salts keep the per-fault decision streams independent:
// changing one rate (or even disabling a fault entirely) never shifts
// another fault's schedule for the same plan seed.
constexpr std::uint64_t dropSalt = 0x64726f70'7175616eull;
constexpr std::uint64_t dupSalt = 0x64757071'75616e74ull;
constexpr std::uint64_t batchSalt = 0x62617463'686d7574ull;
constexpr std::uint64_t contextSalt = 0x63747864'63727074ull;
constexpr std::uint64_t aliasSalt = 0x626c6f6f'6d616c73ull;
constexpr std::uint64_t corruptSalt = 0x62617463'68636f72ull;
constexpr std::uint64_t snapFlipSalt = 0x736e6170'666c6970ull;
constexpr std::uint64_t snapTruncSalt = 0x736e6170'74727563ull;
constexpr std::uint64_t snapMagicSalt = 0x736e6170'6d616763ull;

/** The paper's 3-bit hardware context-ID space. */
constexpr std::uint64_t contextIdSpace = 8;

} // namespace

std::uint64_t
FaultInjectionStats::total() const
{
    return droppedQuanta + duplicatedQuanta + truncatedBatches +
           reorderedBatches + corruptedContexts + bloomAliases +
           corruptedBatches + snapshotBitFlips + snapshotTruncations +
           snapshotMagicClobbers;
}

std::string
FaultInjectionStats::summary() const
{
    std::ostringstream os;
    os << "dropped " << droppedQuanta << " quanta, duplicated "
       << duplicatedQuanta << ", truncated " << truncatedBatches
       << " batches (" << truncatedEvents << " events), reordered "
       << reorderedBatches << ", corrupted " << corruptedContexts
       << " contexts, " << bloomAliases << " bloom aliases, "
       << corruptedBatches << " corrupted batches, "
       << snapshotBitFlips << " snapshot bit flips, "
       << snapshotTruncations << " snapshot truncations ("
       << snapshotBytesTorn << " bytes), " << snapshotMagicClobbers
       << " magic clobbers";
    return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan),
      dropRng_(plan.seed ^ dropSalt),
      dupRng_(plan.seed ^ dupSalt),
      batchRng_(plan.seed ^ batchSalt),
      contextRng_(plan.seed ^ contextSalt),
      aliasRng_(plan.seed ^ aliasSalt),
      corruptRng_(plan.seed ^ corruptSalt),
      snapFlipRng_(plan.seed ^ snapFlipSalt),
      snapTruncRng_(plan.seed ^ snapTruncSalt),
      snapMagicRng_(plan.seed ^ snapMagicSalt)
{
    plan_.validate();
}

bool
FaultInjector::dropQuantum()
{
    if (plan_.dropQuantumRate <= 0.0)
        return false;
    if (!dropRng_.nextBool(plan_.dropQuantumRate))
        return false;
    ++stats_.droppedQuanta;
    return true;
}

bool
FaultInjector::duplicateQuantum()
{
    if (plan_.duplicateQuantumRate <= 0.0)
        return false;
    if (!dupRng_.nextBool(plan_.duplicateQuantumRate))
        return false;
    ++stats_.duplicatedQuanta;
    return true;
}

bool
FaultInjector::conflictPathActive() const
{
    return plan_.truncateBatchRate > 0.0 ||
           plan_.reorderBatchRate > 0.0 ||
           plan_.corruptContextRate > 0.0;
}

ConflictBatchMutation
FaultInjector::mutateConflictBatch(
        std::vector<ConflictMissEvent>& events)
{
    ConflictBatchMutation m;
    if (events.empty())
        return m;
    if (plan_.truncateBatchRate > 0.0 &&
        batchRng_.nextBool(plan_.truncateBatchRate)) {
        // The vector registers overflowed: only a prefix survived.
        const std::size_t keep = static_cast<std::size_t>(
            batchRng_.nextBelow(events.size()));
        m.truncated = true;
        m.truncatedEvents = events.size() - keep;
        events.resize(keep);
        ++stats_.truncatedBatches;
        stats_.truncatedEvents += m.truncatedEvents;
    }
    if (!events.empty() && plan_.reorderBatchRate > 0.0 &&
        batchRng_.nextBool(plan_.reorderBatchRate)) {
        batchRng_.shuffle(events);
        m.reordered = true;
        ++stats_.reorderedBatches;
    }
    if (plan_.corruptContextRate > 0.0) {
        for (auto& ev : events) {
            if (!contextRng_.nextBool(plan_.corruptContextRate))
                continue;
            const auto bogus = static_cast<ContextId>(
                contextRng_.nextBelow(contextIdSpace));
            if (contextRng_.nextBool())
                ev.replacer = bogus;
            else
                ev.victim = bogus;
            ++m.corruptedContexts;
        }
        stats_.corruptedContexts += m.corruptedContexts;
    }
    return m;
}

bool
FaultInjector::aliasBloom()
{
    if (plan_.bloomAliasRate <= 0.0)
        return false;
    if (!aliasRng_.nextBool(plan_.bloomAliasRate))
        return false;
    ++stats_.bloomAliases;
    return true;
}

FaultInjector::BatchCorruption
FaultInjector::nextBatchCorruption()
{
    if (plan_.corruptBatchRate <= 0.0)
        return BatchCorruption::None;
    if (!corruptRng_.nextBool(plan_.corruptBatchRate))
        return BatchCorruption::None;
    return corruptRng_.nextBool() ? BatchCorruption::BadLabel
                                  : BatchCorruption::BinMismatch;
}

void
FaultInjector::recordBatchCorruption()
{
    ++stats_.corruptedBatches;
}

bool
FaultInjector::snapshotPathActive() const
{
    return plan_.snapshotBitFlipRate > 0.0 ||
           plan_.snapshotTruncateRate > 0.0 ||
           plan_.snapshotMagicClobberRate > 0.0;
}

SnapshotMutation
FaultInjector::mutateSnapshotBytes(std::vector<std::uint8_t>& bytes)
{
    SnapshotMutation m;
    if (bytes.empty())
        return m;
    if (plan_.snapshotBitFlipRate > 0.0 &&
        snapFlipRng_.nextBool(plan_.snapshotBitFlipRate)) {
        const std::size_t offset = static_cast<std::size_t>(
            snapFlipRng_.nextBelow(bytes.size()));
        const unsigned bit =
            static_cast<unsigned>(snapFlipRng_.nextBelow(8));
        bytes[offset] ^= static_cast<std::uint8_t>(1u << bit);
        ++m.bitsFlipped;
        ++stats_.snapshotBitFlips;
    }
    if (plan_.snapshotTruncateRate > 0.0 &&
        snapTruncRng_.nextBool(plan_.snapshotTruncateRate)) {
        // A torn write: only a prefix of the image made it to disk.
        const std::size_t keep = static_cast<std::size_t>(
            snapTruncRng_.nextBelow(bytes.size()));
        m.truncated = true;
        m.bytesTorn = bytes.size() - keep;
        bytes.resize(keep);
        ++stats_.snapshotTruncations;
        stats_.snapshotBytesTorn += m.bytesTorn;
    }
    if (!bytes.empty() && plan_.snapshotMagicClobberRate > 0.0 &&
        snapMagicRng_.nextBool(plan_.snapshotMagicClobberRate)) {
        // Scribble over the header so the file no longer even claims
        // to be a snapshot.
        const std::size_t span = std::min<std::size_t>(8, bytes.size());
        for (std::size_t i = 0; i < span; ++i)
            bytes[i] = static_cast<std::uint8_t>(
                snapMagicRng_.nextBelow(256));
        m.magicClobbered = true;
        ++stats_.snapshotMagicClobbers;
    }
    return m;
}

} // namespace cchunter
