#include "faults/fault_plan.hh"

#include <sstream>

#include "util/logging.hh"

namespace cchunter
{

bool
FaultPlan::enabled() const
{
    return dropQuantumRate > 0.0 || duplicateQuantumRate > 0.0 ||
           truncateBatchRate > 0.0 || reorderBatchRate > 0.0 ||
           corruptContextRate > 0.0 || bloomAliasRate > 0.0 ||
           corruptBatchRate > 0.0 || saturatePaperWidths ||
           snapshotBitFlipRate > 0.0 || snapshotTruncateRate > 0.0 ||
           snapshotMagicClobberRate > 0.0;
}

void
FaultPlan::validate() const
{
    auto check = [](const char* name, double rate) {
        if (rate < 0.0 || rate > 1.0)
            fatal("FaultPlan: ", name, " = ", rate,
                  " outside [0, 1]");
    };
    check("drop_quantum", dropQuantumRate);
    check("dup_quantum", duplicateQuantumRate);
    check("truncate_batch", truncateBatchRate);
    check("reorder_batch", reorderBatchRate);
    check("corrupt_context", corruptContextRate);
    check("bloom_alias", bloomAliasRate);
    check("corrupt_batch", corruptBatchRate);
    check("snap_bit_flip", snapshotBitFlipRate);
    check("snap_truncate", snapshotTruncateRate);
    check("snap_clobber_magic", snapshotMagicClobberRate);
}

FaultPlan
FaultPlan::fromConfig(const Config& cfg)
{
    FaultPlan plan;
    plan.seed = cfg.getUint("faults.seed", plan.seed);
    plan.dropQuantumRate =
        cfg.getDouble("faults.drop_quantum", plan.dropQuantumRate);
    plan.duplicateQuantumRate =
        cfg.getDouble("faults.dup_quantum", plan.duplicateQuantumRate);
    plan.truncateBatchRate =
        cfg.getDouble("faults.truncate_batch", plan.truncateBatchRate);
    plan.reorderBatchRate =
        cfg.getDouble("faults.reorder_batch", plan.reorderBatchRate);
    plan.corruptContextRate =
        cfg.getDouble("faults.corrupt_context",
                      plan.corruptContextRate);
    plan.bloomAliasRate =
        cfg.getDouble("faults.bloom_alias", plan.bloomAliasRate);
    plan.corruptBatchRate =
        cfg.getDouble("faults.corrupt_batch", plan.corruptBatchRate);
    plan.saturatePaperWidths =
        cfg.getBool("faults.saturate", plan.saturatePaperWidths);
    plan.snapshotBitFlipRate =
        cfg.getDouble("faults.snap_bit_flip", plan.snapshotBitFlipRate);
    plan.snapshotTruncateRate = cfg.getDouble(
        "faults.snap_truncate", plan.snapshotTruncateRate);
    plan.snapshotMagicClobberRate = cfg.getDouble(
        "faults.snap_clobber_magic", plan.snapshotMagicClobberRate);
    plan.validate();
    return plan;
}

void
FaultPlan::toConfig(Config& cfg) const
{
    cfg.set("faults.seed", static_cast<std::int64_t>(seed));
    cfg.set("faults.drop_quantum", dropQuantumRate);
    cfg.set("faults.dup_quantum", duplicateQuantumRate);
    cfg.set("faults.truncate_batch", truncateBatchRate);
    cfg.set("faults.reorder_batch", reorderBatchRate);
    cfg.set("faults.corrupt_context", corruptContextRate);
    cfg.set("faults.bloom_alias", bloomAliasRate);
    cfg.set("faults.corrupt_batch", corruptBatchRate);
    cfg.set("faults.saturate", saturatePaperWidths);
    cfg.set("faults.snap_bit_flip", snapshotBitFlipRate);
    cfg.set("faults.snap_truncate", snapshotTruncateRate);
    cfg.set("faults.snap_clobber_magic", snapshotMagicClobberRate);
}

std::string
FaultPlan::summary() const
{
    if (!enabled())
        return "no faults";
    std::ostringstream os;
    os << "seed=" << seed;
    auto rate = [&os](const char* name, double r) {
        if (r > 0.0)
            os << ' ' << name << '=' << r;
    };
    rate("drop_quantum", dropQuantumRate);
    rate("dup_quantum", duplicateQuantumRate);
    rate("truncate_batch", truncateBatchRate);
    rate("reorder_batch", reorderBatchRate);
    rate("corrupt_context", corruptContextRate);
    rate("bloom_alias", bloomAliasRate);
    rate("corrupt_batch", corruptBatchRate);
    rate("snap_bit_flip", snapshotBitFlipRate);
    rate("snap_truncate", snapshotTruncateRate);
    rate("snap_clobber_magic", snapshotMagicClobberRate);
    if (saturatePaperWidths)
        os << " saturate=16bit";
    return os.str();
}

} // namespace cchunter
