/**
 * @file
 * Deterministic fault injection at the auditor boundary.
 *
 * The injector turns a FaultPlan into concrete per-opportunity
 * decisions.  Each fault class draws from its own Rng stream (seeded
 * from the plan's seed with a distinct salt), so enabling or tuning
 * one fault never perturbs the schedule of another — a plan is a
 * reproducible experiment, not a soup of correlated randomness.
 *
 * The injector is passive: it only answers "does this fault fire
 * here?" and mutates data handed to it.  The AuditDaemon owns the
 * degradation policy (what to do when a fault fires); the injector
 * owns the accounting of what it injected, so tests can reconcile
 * injected faults against the daemon's degraded-operation counters.
 */

#ifndef CCHUNTER_FAULTS_FAULT_INJECTOR_HH
#define CCHUNTER_FAULTS_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "auditor/conflict_event.hh"
#include "faults/fault_plan.hh"
#include "util/rng.hh"

namespace cchunter
{

/** Running totals of every fault the injector has fired. */
struct FaultInjectionStats
{
    std::uint64_t droppedQuanta = 0;    //!< daemon wakeups skipped
    std::uint64_t duplicatedQuanta = 0; //!< snapshots recorded twice
    std::uint64_t truncatedBatches = 0; //!< conflict batches cut short
    std::uint64_t truncatedEvents = 0;  //!< conflict events lost to cuts
    std::uint64_t reorderedBatches = 0; //!< conflict batches shuffled
    std::uint64_t corruptedContexts = 0; //!< context IDs overwritten
    std::uint64_t bloomAliases = 0;     //!< forced Bloom false positives
    std::uint64_t corruptedBatches = 0; //!< analysis batches mangled
    std::uint64_t snapshotBitFlips = 0;  //!< persisted bits flipped
    std::uint64_t snapshotTruncations = 0; //!< persisted tails torn off
    std::uint64_t snapshotBytesTorn = 0; //!< bytes lost to truncations
    std::uint64_t snapshotMagicClobbers = 0; //!< headers scribbled over

    /** Sum of all fault firings. */
    std::uint64_t total() const;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

/** What one snapshot-image mutation did. */
struct SnapshotMutation
{
    std::uint64_t bitsFlipped = 0;
    bool truncated = false;
    std::uint64_t bytesTorn = 0;
    bool magicClobbered = false;

    bool any() const
    {
        return bitsFlipped != 0 || truncated || magicClobbered;
    }
};

/** What one conflict-batch mutation did. */
struct ConflictBatchMutation
{
    bool truncated = false;
    bool reordered = false;
    std::uint64_t truncatedEvents = 0;
    std::uint64_t corruptedContexts = 0;

    bool any() const
    {
        return truncated || reordered || corruptedContexts != 0;
    }
};

/**
 * The runtime half of a FaultPlan: seeded decision streams plus the
 * injection bookkeeping.
 */
class FaultInjector
{
  public:
    /** How an analysis batch in flight gets corrupted. */
    enum class BatchCorruption : std::uint8_t
    {
        None,
        BadLabel,   //!< an oscillation label becomes non-binary
        BinMismatch //!< a window histogram changes bin count
    };

    /** Validates the plan; each fault class gets its own stream. */
    explicit FaultInjector(FaultPlan plan);

    const FaultPlan& plan() const { return plan_; }

    /** True when the plan schedules any fault at all. */
    bool enabled() const { return plan_.enabled(); }

    /** Draw: does the daemon miss this quantum boundary?  Counts the
     *  drop when it fires. */
    bool dropQuantum();

    /** Draw: is this quantum's snapshot recorded twice?  Counts the
     *  duplication when it fires. */
    bool duplicateQuantum();

    /** True when any conflict-batch fault (truncate/reorder/corrupt)
     *  is scheduled, i.e. the drain path must copy before mutating. */
    bool conflictPathActive() const;

    /** Mutate one drained conflict-event batch in place (truncate,
     *  then reorder, then per-event context corruption) and account
     *  for everything that fired. */
    ConflictBatchMutation mutateConflictBatch(
        std::vector<ConflictMissEvent>& events);

    /** Draw: does this Bloom-filter miss report a hit?  Counts the
     *  alias when it fires. */
    bool aliasBloom();

    /**
     * Draw the corruption (if any) for the analysis batch about to be
     * dispatched.  Only draws; the caller reports back with
     * recordBatchCorruption() once the corruption was actually
     * applied, so the stats stay reconcilable against the daemon's
     * quarantine counters even when a batch had nothing to corrupt.
     */
    BatchCorruption nextBatchCorruption();

    /** Account one applied batch corruption. */
    void recordBatchCorruption();

    /** True when any persisted-bytes fault is scheduled. */
    bool snapshotPathActive() const;

    /**
     * Mutate one persisted file image in place: maybe flip a random
     * bit, maybe tear off a random-length tail, maybe clobber the
     * magic header — each from its own decision stream, each counted.
     * Empty images are left alone.  The persistence reader must
     * survive any result with a counted defect, never a crash.
     */
    SnapshotMutation mutateSnapshotBytes(
        std::vector<std::uint8_t>& bytes);

    const FaultInjectionStats& stats() const { return stats_; }

  private:
    FaultPlan plan_;
    Rng dropRng_;
    Rng dupRng_;
    Rng batchRng_;
    Rng contextRng_;
    Rng aliasRng_;
    Rng corruptRng_;
    Rng snapFlipRng_;
    Rng snapTruncRng_;
    Rng snapMagicRng_;
    FaultInjectionStats stats_;
};

} // namespace cchunter

#endif // CCHUNTER_FAULTS_FAULT_INJECTOR_HH
