/**
 * @file
 * Declarative description of the hardware/OS faults to inject into a
 * run of the observation pipeline.
 *
 * The CC-Auditor is real hardware with hard limits — 16-bit event
 * accumulators and histogram entries, a 3-hash Bloom filter per
 * generation — and its software daemon is an ordinary OS process that
 * can be preempted past a quantum boundary.  A FaultPlan names which
 * of those failure modes to exercise and at what rate; every rate is
 * a per-opportunity Bernoulli probability drawn from its own seeded
 * stream, so a plan plus a seed reproduces the exact same fault
 * schedule on every run.
 */

#ifndef CCHUNTER_FAULTS_FAULT_PLAN_HH
#define CCHUNTER_FAULTS_FAULT_PLAN_HH

#include <cstdint>
#include <string>

#include "util/config.hh"

namespace cchunter
{

/**
 * The fault schedule for one run.  All rates are probabilities in
 * [0, 1]; a default-constructed plan injects nothing.
 */
struct FaultPlan
{
    /** Seed of the per-fault decision streams. */
    std::uint64_t seed = 1;

    /** P(the daemon misses a quantum boundary entirely) — models the
     *  recording daemon being preempted past its wakeup. */
    double dropQuantumRate = 0.0;

    /** P(a quantum's histogram snapshot is recorded twice) — models a
     *  double wakeup / replayed drain. */
    double duplicateQuantumRate = 0.0;

    /** P(a drained conflict-event batch loses its tail) — models the
     *  128-byte vector registers overflowing before the drain. */
    double truncateBatchRate = 0.0;

    /** P(a drained conflict-event batch arrives out of order). */
    double reorderBatchRate = 0.0;

    /** P(one conflict event's (replacer, victim) 3-bit context ID is
     *  corrupted), applied per event. */
    double corruptContextRate = 0.0;

    /** P(a Bloom-filter probe that should miss reports a hit) — forces
     *  aliasing in the conflict-miss tracker beyond its natural
     *  false-positive rate. */
    double bloomAliasRate = 0.0;

    /** P(an analysis batch is corrupted in flight) — exercises the
     *  daemon's quarantine stage. */
    double corruptBatchRate = 0.0;

    /** Clamp histogram-buffer accumulators and bins at the paper's
     *  16-bit hardware widths (saturation, not wrap). */
    bool saturatePaperWidths = false;

    /** P(a persisted snapshot/journal image gets one bit flipped) —
     *  models at-rest or in-flight storage corruption, applied per
     *  file image. */
    double snapshotBitFlipRate = 0.0;

    /** P(a persisted file image loses a tail of random length) —
     *  models a torn write / truncated copy. */
    double snapshotTruncateRate = 0.0;

    /** P(a persisted file's magic header is clobbered) — models a
     *  foreign or scribbled-over file at the snapshot path. */
    double snapshotMagicClobberRate = 0.0;

    /** True when any fault is scheduled. */
    bool enabled() const;

    /** Fatal when any rate lies outside [0, 1]. */
    void validate() const;

    /** Parse the `faults.*` keys of a Config (missing keys keep their
     *  defaults); validates the result. */
    static FaultPlan fromConfig(const Config& cfg);

    /** Echo the plan into a Config under the `faults.*` keys. */
    void toConfig(Config& cfg) const;

    /** One-line human-readable rendering of the scheduled faults. */
    std::string summary() const;
};

} // namespace cchunter

#endif // CCHUNTER_FAULTS_FAULT_PLAN_HH
