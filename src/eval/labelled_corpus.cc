#include "eval/labelled_corpus.hh"

#include <cstdio>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

std::string
bandwidthTag(double bps)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "bw%.0f", bps);
    return buf;
}

std::string
percentTag(const char* prefix, double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s%.0f", prefix, rate * 100.0);
    return buf;
}

/** Shared builder state: derives one seed per appended entry. */
struct CorpusBuilder
{
    const CorpusOptions& options;
    std::vector<LabelledScenario> corpus;

    ScenarioOptions baseScenario() const
    {
        ScenarioOptions sc;
        sc.quanta = options.quanta;
        sc.quantum = options.quantum;
        sc.noiseProcesses = options.noiseProcesses;
        return sc;
    }

    void add(std::string name, CorpusCategory category,
             AuditedWorkload workload, ScenarioOptions scenario)
    {
        LabelledScenario entry;
        entry.name = std::move(name);
        entry.category = category;
        entry.covert = category == CorpusCategory::CleanChannel ||
                       category == CorpusCategory::DegradedChannel ||
                       category == CorpusCategory::EvasiveChannel;
        entry.audit.workload = workload;
        // Position-derived seed: entries stay decorrelated, and the
        // corpus is reproducible from the base seed alone.
        scenario.seed =
            options.seed + 1000 * (corpus.size() + 1);
        entry.audit.scenario = scenario;
        entry.audit.online.clusteringIntervalQuanta =
            options.clusteringIntervalQuanta;
        // End-of-run verdicts re-decide over the retained window, so
        // the corpus retains every quantum of its (short) runs: a
        // low-and-slow burst in the first quantum must still be in
        // view at the end, for either backend.  The online per-pass
        // cadence is unchanged (clusteringIntervalQuanta above).
        entry.audit.online.retentionQuanta = options.quanta;
        corpus.push_back(std::move(entry));
    }

    void addBenign(std::string name, CorpusCategory category,
                   const std::string& a, const std::string& b,
                   BenignAuditUnits units)
    {
        add(std::move(name), category, AuditedWorkload::BenignPair,
            baseScenario());
        LabelledScenario& entry = corpus.back();
        entry.audit.benignA = a;
        entry.audit.benignB = b;
        entry.audit.benignUnits = units;
    }
};

} // namespace

const char*
corpusCategoryName(CorpusCategory category)
{
    switch (category) {
    case CorpusCategory::CleanChannel:
        return "clean";
    case CorpusCategory::DegradedChannel:
        return "degraded";
    case CorpusCategory::Benign:
        return "benign";
    case CorpusCategory::AdversarialBenign:
        return "adversarial";
    case CorpusCategory::EvasiveChannel:
        return "evasive";
    }
    return "?";
}

Config
LabelledScenario::label() const
{
    Config cfg;
    cfg.set("corpus.name", name);
    cfg.set("corpus.category",
            std::string(corpusCategoryName(category)));
    cfg.set("corpus.covert", covert);
    cfg.set("corpus.workload",
            std::string(auditedWorkloadName(audit.workload)));
    cfg.set("corpus.seed",
            static_cast<std::int64_t>(audit.scenario.seed));
    // Strategy key only on evasive entries, so every older entry's
    // label dump stays byte-identical to the pre-arms-race corpus.
    if (strategy != EvasionStrategy::None)
        cfg.set("corpus.strategy",
                std::string(evasionStrategyName(strategy)));
    return cfg;
}

std::vector<LabelledScenario>
buildLabelledCorpus(const CorpusOptions& options)
{
    if (options.contentionBandwidths.empty() ||
        options.cacheBandwidths.empty())
        fatal("labelled corpus: bandwidth axes must not be empty");

    CorpusBuilder b{options, {}};

    // --- Clean positives: bandwidth axis. ---
    for (const double bps : options.contentionBandwidths) {
        ScenarioOptions sc = b.baseScenario();
        sc.bandwidthBps = bps;
        b.add("clean/bus/" + bandwidthTag(bps),
              CorpusCategory::CleanChannel, AuditedWorkload::Bus, sc);
        b.add("clean/divider/" + bandwidthTag(bps),
              CorpusCategory::CleanChannel, AuditedWorkload::Divider,
              sc);
    }

    // --- Clean positives: message-pattern axis (divider channel at
    // the fastest bandwidth; the pattern shapes burst spacing). ---
    {
        ScenarioOptions sc = b.baseScenario();
        sc.bandwidthBps = options.contentionBandwidths.front();
        sc.message =
            Message::fromUint64(0xAAAAAAAAAAAAAAAAull); // 1010...
        b.add("clean/divider/alternating",
              CorpusCategory::CleanChannel, AuditedWorkload::Divider,
              sc);
        sc.message = Message::fromUint64(~0ull); // always signalling
        b.add("clean/divider/all-ones", CorpusCategory::CleanChannel,
              AuditedWorkload::Divider, sc);
    }

    // --- Clean positives: the SMT multiplier channel. ---
    {
        ScenarioOptions sc = b.baseScenario();
        sc.bandwidthBps = options.contentionBandwidths.front();
        b.add("clean/multiplier/" + bandwidthTag(sc.bandwidthBps),
              CorpusCategory::CleanChannel,
              AuditedWorkload::Multiplier, sc);
    }

    // --- Clean positives: cache channel bandwidth axis. ---
    for (const double bps : options.cacheBandwidths) {
        ScenarioOptions sc = b.baseScenario();
        sc.bandwidthBps = bps;
        b.add("clean/cache/" + bandwidthTag(bps),
              CorpusCategory::CleanChannel, AuditedWorkload::Cache,
              sc);
    }

    // --- Degraded positives: channels under the fault plans the
    // robustness studies exercise. ---
    if (options.includeDegraded) {
        for (const double rate : options.degradedDropRates) {
            ScenarioOptions sc = b.baseScenario();
            sc.bandwidthBps = options.contentionBandwidths.front();
            sc.faults.seed = options.seed + 17;
            sc.faults.dropQuantumRate = rate;
            b.add("degraded/divider/" + percentTag("drop", rate),
                  CorpusCategory::DegradedChannel,
                  AuditedWorkload::Divider, sc);
        }
        {
            ScenarioOptions sc = b.baseScenario();
            sc.bandwidthBps = options.contentionBandwidths.front();
            sc.faults.seed = options.seed + 17;
            sc.faults.dropQuantumRate =
                options.degradedDropRates.front();
            b.add("degraded/bus/" +
                      percentTag("drop",
                                 options.degradedDropRates.front()),
                  CorpusCategory::DegradedChannel,
                  AuditedWorkload::Bus, sc);
        }
        {
            ScenarioOptions sc = b.baseScenario();
            sc.bandwidthBps = options.cacheBandwidths.front();
            sc.faults.seed = options.seed + 17;
            sc.faults.truncateBatchRate = 0.20;
            b.add("degraded/cache/truncate20",
                  CorpusCategory::DegradedChannel,
                  AuditedWorkload::Cache, sc);
        }
    }

    // --- Benign negatives: ordinary benchmark pairs, spread so every
    // monitored unit kind accumulates true negatives. ---
    b.addBenign("benign/mcf+gobmk", CorpusCategory::Benign, "mcf",
                "gobmk", BenignAuditUnits::BusDivider);
    b.addBenign("benign/bzip2+h264ref", CorpusCategory::Benign,
                "bzip2", "h264ref", BenignAuditUnits::BusDivider);
    b.addBenign("benign/sjeng+mailserver", CorpusCategory::Benign,
                "sjeng", "mailserver",
                BenignAuditUnits::MultiplierBus);
    b.addBenign("benign/gobmk+mcf/cache", CorpusCategory::Benign,
                "gobmk", "mcf", BenignAuditUnits::CacheBus);

    // --- Adversarial negatives: benign but channel-shaped.  A pair of
    // cache-thrashing streamers hammers the L2 conflict tracker, and
    // server pairs run periodic-but-innocent request loops; none of
    // them transmits anything, so none may be flagged. ---
    if (options.includeAdversarial) {
        b.addBenign("adversarial/stream+stream/cache",
                    CorpusCategory::AdversarialBenign, "stream",
                    "stream", BenignAuditUnits::CacheBus);
        b.addBenign("adversarial/webserver+webserver",
                    CorpusCategory::AdversarialBenign, "webserver",
                    "webserver", BenignAuditUnits::BusDivider);
        b.addBenign("adversarial/stream+mailserver/mult",
                    CorpusCategory::AdversarialBenign, "stream",
                    "mailserver", BenignAuditUnits::MultiplierBus);
    }

    // --- Fifth unit: the TLB prime/probe channel, raw and under the
    // link-layer protocol adversary, plus a TLB-audited negative.
    // Appended after every older entry so the position-derived seeds
    // (and thus the four-unit baseline) stay bit-identical. ---
    for (const double bps : options.cacheBandwidths) {
        ScenarioOptions sc = b.baseScenario();
        sc.bandwidthBps = bps;
        b.add("clean/tlb/" + bandwidthTag(bps),
              CorpusCategory::CleanChannel, AuditedWorkload::Tlb, sc);
    }
    {
        ScenarioOptions sc = b.baseScenario();
        sc.bandwidthBps = options.cacheBandwidths.front();
        sc.protocol.enabled = true;
        b.add("clean/tlb/protocol", CorpusCategory::CleanChannel,
              AuditedWorkload::Tlb, sc);
    }
    b.addBenign("benign/mcf+gobmk/tlb", CorpusCategory::Benign, "mcf",
                "gobmk", BenignAuditUnits::TlbBus);

    // --- Evasive positives: every unit under every evasive schedule
    // (channels/evasion.hh), the attacker side of the arms race.
    // Appended after every older entry so the position-derived seeds
    // of the whole pre-evasion corpus stay bit-identical. ---
    {
        struct UnitRow
        {
            AuditedWorkload workload;
            const char* name;
            bool contention;
        };
        const UnitRow rows[] = {
            {AuditedWorkload::Bus, "bus", true},
            {AuditedWorkload::Divider, "divider", true},
            {AuditedWorkload::Multiplier, "multiplier", true},
            {AuditedWorkload::Cache, "cache", false},
            {AuditedWorkload::Tlb, "tlb", false},
        };
        for (const EvasionStrategy strategy :
             {EvasionStrategy::RandomGaps, EvasionStrategy::DutyCycle,
              EvasionStrategy::LowAndSlow}) {
            for (const UnitRow& row : rows) {
                ScenarioOptions sc = b.baseScenario();
                sc.evasion.strategy = strategy;
                sc.evasion.seed = options.seed + 77;
                if (strategy == EvasionStrategy::LowAndSlow &&
                    row.contention) {
                    // Below one quantum per bit: the slowest
                    // contention bandwidth stretched until a single
                    // all-ones bit spans the whole run, its one short
                    // burst jittered inside the stretched slot.  This
                    // is the schedule the classic recurrence test
                    // (>= 2 bursty quanta) cannot see.
                    sc.bandwidthBps =
                        options.contentionBandwidths.back();
                    sc.evasion.stretch = 16;
                    sc.evasion.gapJitter = 0.5;
                    sc.maxSignalTicks = 500000;
                    sc.message = Message::fromUint64(~0ull);
                } else if (strategy == EvasionStrategy::LowAndSlow) {
                    sc.bandwidthBps = options.cacheBandwidths.front();
                    sc.evasion.stretch = 2;
                } else {
                    sc.bandwidthBps =
                        row.contention
                            ? options.contentionBandwidths.front()
                            : options.cacheBandwidths.front();
                    // RandomGaps needs idle slack to jitter the burst
                    // inside; cap the window below the bit slot.
                    if (strategy == EvasionStrategy::RandomGaps)
                        sc.maxSignalTicks =
                            row.contention ? 100000 : 1000000;
                }
                b.add(std::string("evasive/") +
                          evasionStrategyName(strategy) + "/" +
                          row.name,
                      CorpusCategory::EvasiveChannel, row.workload,
                      sc);
                b.corpus.back().strategy = strategy;
            }
        }
    }

    return b.corpus;
}

} // namespace cchunter
