#include "eval/quality_scorer.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

double
safeRatio(std::size_t num, std::size_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

/** Fixed-format float for the deterministic JSON rendering. */
std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

UnitQuality&
unitSlot(std::vector<UnitQuality>& units, MonitorTarget unit)
{
    const auto pos = std::lower_bound(
        units.begin(), units.end(), unit,
        [](const UnitQuality& q, MonitorTarget u) {
            return static_cast<int>(q.unit) < static_cast<int>(u);
        });
    if (pos != units.end() && pos->unit == unit)
        return *pos;
    UnitQuality fresh;
    fresh.unit = unit;
    return *units.insert(pos, fresh);
}

/** Trapezoid AUC over (fpr, tpr) points anchored at (0,0), (1,1). */
double
areaUnderCurve(const std::vector<RocPoint>& roc)
{
    std::vector<std::pair<double, double>> pts;
    pts.reserve(roc.size() + 2);
    pts.emplace_back(0.0, 0.0);
    for (const RocPoint& p : roc)
        pts.emplace_back(p.fpr(), p.tpr());
    pts.emplace_back(1.0, 1.0);
    std::sort(pts.begin(), pts.end());
    double area = 0.0;
    for (std::size_t i = 1; i < pts.size(); ++i)
        area += (pts[i].first - pts[i - 1].first) *
                (pts[i].second + pts[i - 1].second) * 0.5;
    return area;
}

} // namespace

double
RocPoint::tpr() const
{
    return safeRatio(tp, tp + fn);
}

double
RocPoint::fpr() const
{
    return safeRatio(fp, fp + tn);
}

double
UnitQuality::cleanTpr() const
{
    return safeRatio(cleanTp, cleanTp + cleanFn);
}

double
UnitQuality::degradedTpr() const
{
    return safeRatio(degradedTp, degradedTp + degradedFn);
}

double
UnitQuality::falsePositiveRate() const
{
    return safeRatio(fp, fp + tn);
}

double
CalibrationBucket::meanConfidence() const
{
    return alarms ? sumConfidence / static_cast<double>(alarms) : 0.0;
}

double
CalibrationBucket::precision() const
{
    return safeRatio(trueAlarms, alarms);
}

const UnitQuality&
QualityReport::unitQuality(MonitorTarget unit) const
{
    for (const UnitQuality& q : units)
        if (q.unit == unit)
            return q;
    fatal("QualityReport: no scores for unit ",
          monitorTargetName(unit));
}

const EvasionQuality&
QualityReport::evasionQuality(EvasionStrategy strategy,
                              DetectBackend backend) const
{
    for (const EvasionQuality& q : evasion)
        if (q.strategy == strategy && q.backend == backend)
            return q;
    fatal("QualityReport: no evasion scores for ",
          evasionStrategyName(strategy), "/",
          detectBackendName(backend));
}

std::vector<double>
defaultRocThresholds()
{
    std::vector<double> grid;
    grid.reserve(19);
    for (int i = 1; i <= 19; ++i)
        grid.push_back(static_cast<double>(i) * 0.05);
    return grid;
}

QualityReport
scoreCorpus(const std::vector<LabelledScenario>& corpus,
            const QualityScorerOptions& options)
{
    QualityReport report;
    report.thresholds = options.thresholds;
    report.rocThresholds = options.rocThresholds.empty()
                               ? defaultRocThresholds()
                               : options.rocThresholds;
    for (std::size_t i = 0; i < report.rocThresholds.size(); ++i) {
        const double t = report.rocThresholds[i];
        if (t < 0.0 || t > 1.0)
            fatal("quality scorer: ROC threshold ", t,
                  " outside [0, 1]");
        if (i > 0 && t <= report.rocThresholds[i - 1])
            fatal("quality scorer: ROC thresholds must ascend");
    }

    // The exact analysis parameters every run decides under; grid
    // re-decisions swap only the cut-offs, never the evidence.
    const CCHunterParams hunter =
        options.thresholds.apply(options.baseHunter);
    const double strongGap = hunter.oscillation.strongPeakThreshold -
                             hunter.oscillation.peakThreshold;

    const std::size_t buckets =
        std::max<std::size_t>(1, options.calibrationBuckets);
    report.calibration.resize(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
        report.calibration[i].lo =
            static_cast<double>(i) / static_cast<double>(buckets);
        report.calibration[i].hi = static_cast<double>(i + 1) /
                                   static_cast<double>(buckets);
    }

    for (const LabelledScenario& entry : corpus) {
        OnlineAuditOptions audit = entry.audit;
        audit.scenario.thresholds = options.thresholds;
        audit.online.analysisThreads = options.analysisThreads;
        audit.online.hunter = options.baseHunter;
        const OnlineAuditResult run = runOnlineAudit(audit);
        ++report.runs;

        for (const Alarm& alarm : run.alarms) {
            const std::size_t idx = std::min(
                buckets - 1,
                static_cast<std::size_t>(
                    alarm.confidence * static_cast<double>(buckets)));
            CalibrationBucket& bucket = report.calibration[idx];
            ++bucket.alarms;
            bucket.trueAlarms += entry.covert ? 1 : 0;
            bucket.sumConfidence += alarm.confidence;
        }

        for (const UnitOutcome& outcome : run.finalVerdicts) {
            ScenarioScore score;
            score.name = entry.name;
            score.category = entry.category;
            score.covert = entry.covert;
            score.strategy = entry.strategy;
            score.slot = outcome.slot;
            score.unit = outcome.unit;
            score.kind = outcome.kind;
            score.detected = outcome.detected;
            score.confidence = outcome.confidence;
            score.indicator2Score = outcome.indicator2.score;
            score.decisionAt.reserve(report.rocThresholds.size());
            score.decisionAt2.reserve(report.rocThresholds.size());
            for (const double t : report.rocThresholds) {
                bool decided = false;
                if (outcome.kind == AlarmKind::Oscillation) {
                    OscillationParams p = hunter.oscillation;
                    p.peakThreshold = t;
                    p.strongPeakThreshold =
                        std::min(1.0, t + strongGap);
                    decided = outcome.oscillation.detectedAt(p);
                } else {
                    decided = outcome.contention.detectedAt(
                        t, hunter.clustering);
                }
                score.decisionAt.push_back(decided);
                score.decisionAt2.push_back(
                    outcome.indicator2.detectedAt(t));
            }

            // Evasive entries stay out of the per-unit aggregates;
            // they are pooled in the evasion head-to-head below.
            const bool evasive =
                entry.category == CorpusCategory::EvasiveChannel;
            UnitQuality& unit = unitSlot(report.units, outcome.unit);
            if (evasive) {
                // still registers the unit row for sparse corpora
            } else if (entry.covert) {
                const bool clean =
                    entry.category == CorpusCategory::CleanChannel;
                (outcome.detected
                     ? (clean ? unit.cleanTp : unit.degradedTp)
                     : (clean ? unit.cleanFn : unit.degradedFn)) += 1;
            } else {
                (outcome.detected ? unit.fp : unit.tn) += 1;
            }
            report.scores.push_back(std::move(score));
        }
    }

    // ROC curves per unit from the stored grid decisions (both
    // backends; evasive entries pooled separately below).
    for (UnitQuality& unit : report.units) {
        unit.roc.resize(report.rocThresholds.size());
        unit.roc2.resize(report.rocThresholds.size());
        for (std::size_t i = 0; i < unit.roc.size(); ++i) {
            RocPoint& p = unit.roc[i];
            RocPoint& p2 = unit.roc2[i];
            p.threshold = p2.threshold = report.rocThresholds[i];
            for (const ScenarioScore& s : report.scores) {
                if (s.unit != unit.unit ||
                    s.category == CorpusCategory::EvasiveChannel)
                    continue;
                if (s.covert) {
                    (s.decisionAt[i] ? p.tp : p.fn) += 1;
                    (s.decisionAt2[i] ? p2.tp : p2.fn) += 1;
                } else {
                    (s.decisionAt[i] ? p.fp : p.tn) += 1;
                    (s.decisionAt2[i] ? p2.fp : p2.tn) += 1;
                }
            }
        }
        unit.auc = areaUnderCurve(unit.roc);
        unit.auc2 = areaUnderCurve(unit.roc2);
    }

    // Evasion head-to-head: pooled per (strategy, backend) — the
    // strategy's evasive positives across every unit against the
    // corpus's full negative set, under each backend's grid decision.
    for (const EvasionStrategy strategy :
         {EvasionStrategy::RandomGaps, EvasionStrategy::DutyCycle,
          EvasionStrategy::LowAndSlow}) {
        bool present = false;
        for (const ScenarioScore& s : report.scores)
            if (s.category == CorpusCategory::EvasiveChannel &&
                s.strategy == strategy)
                present = true;
        if (!present)
            continue;
        for (const DetectBackend backend :
             {DetectBackend::CCHunter, DetectBackend::Indicator2}) {
            EvasionQuality q;
            q.strategy = strategy;
            q.backend = backend;
            q.roc.resize(report.rocThresholds.size());
            for (std::size_t i = 0; i < q.roc.size(); ++i) {
                RocPoint& p = q.roc[i];
                p.threshold = report.rocThresholds[i];
                for (const ScenarioScore& s : report.scores) {
                    const bool positive =
                        s.category ==
                            CorpusCategory::EvasiveChannel &&
                        s.strategy == strategy;
                    if (!positive && s.covert)
                        continue; // other strategies / clean positives
                    const bool decided =
                        backend == DetectBackend::Indicator2
                            ? s.decisionAt2[i]
                            : s.decisionAt[i];
                    if (positive)
                        (decided ? p.tp : p.fn) += 1;
                    else
                        (decided ? p.fp : p.tn) += 1;
                }
            }
            q.positives = q.roc.front().tp + q.roc.front().fn;
            q.negatives = q.roc.front().fp + q.roc.front().tn;
            q.auc = areaUnderCurve(q.roc);
            report.evasion.push_back(std::move(q));
        }
    }
    return report;
}

std::string
QualityReport::toJson() const
{
    std::string os;
    os += "{\n";
    os += "  \"report\": \"detection_quality\",\n";
    os += "  \"runs\": " + std::to_string(runs) + ",\n";
    os += "  \"thresholds\": {\"contention_likelihood\": " +
          fmt(thresholds.contentionLikelihood) +
          ", \"oscillation_peak\": " + fmt(thresholds.oscillationPeak) +
          ", \"oscillation_strong_peak\": " +
          fmt(thresholds.oscillationStrongPeak) +
          ", \"backend\": \"" +
          detectBackendName(thresholds.backend) +
          "\", \"indicator2\": " + fmt(thresholds.indicator2Threshold) +
          "},\n";
    os += "  \"roc_thresholds\": [";
    for (std::size_t i = 0; i < rocThresholds.size(); ++i)
        os += (i ? ", " : "") + fmt(rocThresholds[i]);
    os += "],\n";

    os += "  \"units\": [\n";
    for (std::size_t u = 0; u < units.size(); ++u) {
        const UnitQuality& q = units[u];
        os += std::string("    {\"unit\": \"") +
              monitorTargetName(q.unit) + "\",";
        os += " \"clean_tp\": " + std::to_string(q.cleanTp) + ",";
        os += " \"clean_fn\": " + std::to_string(q.cleanFn) + ",";
        os += " \"degraded_tp\": " + std::to_string(q.degradedTp) + ",";
        os += " \"degraded_fn\": " + std::to_string(q.degradedFn) + ",";
        os += " \"tn\": " + std::to_string(q.tn) + ",";
        os += " \"fp\": " + std::to_string(q.fp) + ",\n";
        os += "     \"clean_tpr\": " + fmt(q.cleanTpr()) + ",";
        os += " \"degraded_tpr\": " + fmt(q.degradedTpr()) + ",";
        os += " \"fpr\": " + fmt(q.falsePositiveRate()) + ",";
        os += " \"auc\": " + fmt(q.auc) + ",";
        os += " \"auc2\": " + fmt(q.auc2) + ",\n";
        os += "     \"roc\": [\n";
        for (std::size_t i = 0; i < q.roc.size(); ++i) {
            const RocPoint& p = q.roc[i];
            os += "       {\"threshold\": " + fmt(p.threshold) +
                  ", \"tp\": " + std::to_string(p.tp) +
                  ", \"fp\": " + std::to_string(p.fp) +
                  ", \"tn\": " + std::to_string(p.tn) +
                  ", \"fn\": " + std::to_string(p.fn) +
                  ", \"tpr\": " + fmt(p.tpr()) +
                  ", \"fpr\": " + fmt(p.fpr()) + "}";
            os += i + 1 < q.roc.size() ? ",\n" : "\n";
        }
        os += "     ]}";
        os += u + 1 < units.size() ? ",\n" : "\n";
    }
    os += "  ],\n";

    os += "  \"evasion\": [\n";
    for (std::size_t i = 0; i < evasion.size(); ++i) {
        const EvasionQuality& q = evasion[i];
        os += std::string("    {\"strategy\": \"") +
              evasionStrategyName(q.strategy) + "\", \"backend\": \"" +
              detectBackendName(q.backend) +
              "\", \"positives\": " + std::to_string(q.positives) +
              ", \"negatives\": " + std::to_string(q.negatives) +
              ", \"auc\": " + fmt(q.auc) + ",\n";
        os += "     \"roc\": [\n";
        for (std::size_t j = 0; j < q.roc.size(); ++j) {
            const RocPoint& p = q.roc[j];
            os += "       {\"threshold\": " + fmt(p.threshold) +
                  ", \"tp\": " + std::to_string(p.tp) +
                  ", \"fp\": " + std::to_string(p.fp) +
                  ", \"tn\": " + std::to_string(p.tn) +
                  ", \"fn\": " + std::to_string(p.fn) +
                  ", \"tpr\": " + fmt(p.tpr()) +
                  ", \"fpr\": " + fmt(p.fpr()) + "}";
            os += j + 1 < q.roc.size() ? ",\n" : "\n";
        }
        os += "     ]}";
        os += i + 1 < evasion.size() ? ",\n" : "\n";
    }
    os += "  ],\n";

    os += "  \"calibration\": [\n";
    for (std::size_t i = 0; i < calibration.size(); ++i) {
        const CalibrationBucket& b = calibration[i];
        os += "    {\"lo\": " + fmt(b.lo) + ", \"hi\": " + fmt(b.hi) +
              ", \"alarms\": " + std::to_string(b.alarms) +
              ", \"true_alarms\": " + std::to_string(b.trueAlarms) +
              ", \"mean_confidence\": " + fmt(b.meanConfidence()) +
              ", \"precision\": " + fmt(b.precision()) + "}";
        os += i + 1 < calibration.size() ? ",\n" : "\n";
    }
    os += "  ],\n";

    os += "  \"scores\": [\n";
    for (std::size_t i = 0; i < scores.size(); ++i) {
        const ScenarioScore& s = scores[i];
        os += "    {\"name\": \"" + s.name + "\", \"category\": \"" +
              corpusCategoryName(s.category) + "\", \"covert\": " +
              (s.covert ? "true" : "false") + ", \"strategy\": \"" +
              evasionStrategyName(s.strategy) +
              "\", \"slot\": " + std::to_string(s.slot) +
              ", \"unit\": \"" + monitorTargetName(s.unit) +
              "\", \"kind\": \"" + alarmKindName(s.kind) +
              "\", \"detected\": " + (s.detected ? "true" : "false") +
              ", \"confidence\": " + fmt(s.confidence) +
              ", \"indicator2\": " + fmt(s.indicator2Score) + "}";
        os += i + 1 < scores.size() ? ",\n" : "\n";
    }
    os += "  ]\n}\n";
    return os;
}

} // namespace cchunter
