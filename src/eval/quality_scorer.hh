/**
 * @file
 * Detection-quality scoring over a ground-truth-labelled corpus.
 *
 * The scorer drives each corpus entry through the production
 * runOnlineAudit() path once, then re-decides every monitored unit's
 * stored analysis across a threshold grid (detectedAt(), no
 * re-simulation) to build per-unit confusion matrices at the paper's
 * 0.5 cut-off, full ROC curves, AUC, and a confidence-calibration
 * table checking that Alarm::confidence tracks empirical precision.
 * The report is deterministic: identical options produce a
 * byte-identical toJson() across runs and analysis thread counts.
 */

#ifndef CCHUNTER_EVAL_QUALITY_SCORER_HH
#define CCHUNTER_EVAL_QUALITY_SCORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "eval/labelled_corpus.hh"

namespace cchunter
{

/** One operating point of a unit's ROC curve. */
struct RocPoint
{
    double threshold = 0.0;
    std::size_t tp = 0;
    std::size_t fp = 0;
    std::size_t tn = 0;
    std::size_t fn = 0;

    double tpr() const;
    double fpr() const;
};

/**
 * Quality of one monitored hardware-unit kind over the NON-evasive
 * corpus (clean + degraded positives, all negatives).  Evasive entries
 * are scored in the report's `evasion` section instead, so the
 * long-standing per-unit baseline (all-1.000 AUC) is a clean-corpus
 * statement that evasive additions cannot silently erode.
 */
struct UnitQuality
{
    MonitorTarget unit = MonitorTarget::None;

    // Confusion counts at the headline decision thresholds, with the
    // positives split by corpus category (clean vs fault-degraded).
    std::size_t cleanTp = 0;
    std::size_t cleanFn = 0;
    std::size_t degradedTp = 0;
    std::size_t degradedFn = 0;
    std::size_t tn = 0; //!< over all negatives (benign + adversarial)
    std::size_t fp = 0;

    /** ROC curve over the threshold grid (ascending threshold). */
    std::vector<RocPoint> roc;

    /** Area under the ROC curve (trapezoid, anchored at (0,0) and
     *  (1,1)). */
    double auc = 0.0;

    /** Indicator2-backend ROC/AUC over the same non-evasive entries
     *  (the "matches classic on the clean corpus" half of the gate). */
    std::vector<RocPoint> roc2;
    double auc2 = 0.0;

    double cleanTpr() const;
    double degradedTpr() const;
    double falsePositiveRate() const;
};

/** One confidence-calibration bucket: do alarms with confidence in
 *  [lo, hi) come from real channels at a matching rate? */
struct CalibrationBucket
{
    double lo = 0.0;
    double hi = 1.0;
    std::size_t alarms = 0;        //!< alarms whose confidence lands here
    std::size_t trueAlarms = 0;    //!< of those, raised on a covert run
    double sumConfidence = 0.0;

    double meanConfidence() const;
    double precision() const;
};

/** Score of one (corpus entry, monitored slot) pair. */
struct ScenarioScore
{
    std::string name;
    CorpusCategory category = CorpusCategory::Benign;
    bool covert = false;
    unsigned slot = 0;
    MonitorTarget unit = MonitorTarget::None;
    AlarmKind kind = AlarmKind::Contention;

    /** Evasion strategy of the entry (None off the evasive axis). */
    EvasionStrategy strategy = EvasionStrategy::None;

    /** Decision and confidence at the headline thresholds. */
    bool detected = false;
    double confidence = 1.0;

    /** Indicator2 score of the same retained window. */
    double indicator2Score = 0.0;

    /** Classic-backend decision at each grid threshold (parallel to
     *  the report's rocThresholds). */
    std::vector<bool> decisionAt;

    /** Indicator2-backend decision at each grid threshold. */
    std::vector<bool> decisionAt2;
};

/**
 * Pooled ROC/AUC of one (evasion strategy, backend) pair: positives
 * are the strategy's evasive entries across every unit, negatives the
 * corpus's full negative set.  The per-backend rows side by side are
 * the arms-race head-to-head the evasion gate asserts over.
 */
struct EvasionQuality
{
    EvasionStrategy strategy = EvasionStrategy::None;
    DetectBackend backend = DetectBackend::CCHunter;
    std::size_t positives = 0;
    std::size_t negatives = 0;
    std::vector<RocPoint> roc;
    double auc = 0.0;
};

/** Everything the quality gate and the bench report consume. */
struct QualityReport
{
    /** Headline decision cut-offs the corpus ran under. */
    DetectionThresholds thresholds;

    /** The grid the ROC curves were swept over (ascending). */
    std::vector<double> rocThresholds;

    std::vector<ScenarioScore> scores;

    /** Per-unit aggregates, ascending MonitorTarget order, only for
     *  units the corpus actually monitored. */
    std::vector<UnitQuality> units;

    std::vector<CalibrationBucket> calibration;

    /** Per-(strategy, backend) evasion head-to-head, strategy-major in
     *  declaration order, cchunter before indicator2.  Empty when the
     *  corpus carries no evasive entries. */
    std::vector<EvasionQuality> evasion;

    std::size_t runs = 0;

    /** Aggregate quality of one unit (fatal when absent). */
    const UnitQuality& unitQuality(MonitorTarget unit) const;

    /** Evasion head-to-head row (fatal when absent). */
    const EvasionQuality& evasionQuality(EvasionStrategy strategy,
                                         DetectBackend backend) const;

    /**
     * Deterministic JSON rendering: fixed key order, fixed float
     * formatting, and no timing or host fields, so two identical
     * sweeps produce byte-identical files.
     */
    std::string toJson() const;
};

/** Options of a corpus scoring sweep. */
struct QualityScorerOptions
{
    /** Headline decision cut-offs (the paper's values). */
    DetectionThresholds thresholds;

    /**
     * ROC threshold grid; empty selects the default 19-point grid
     * 0.05, 0.10, ..., 0.95.  For contention units a grid value is
     * the likelihood-ratio cut-off; for cache units it is the
     * autocorrelogram peak cut-off (the strong-peak cut-off keeps its
     * configured offset above it, clamped to 1).
     */
    std::vector<double> rocThresholds;

    /** Online-analysis fan-out; the report must not depend on it. */
    std::size_t analysisThreads = 1;

    /** Number of equal-width confidence-calibration buckets. */
    std::size_t calibrationBuckets = 5;

    /**
     * Analysis parameters under the swept cut-offs.  The default is
     * the production configuration; tests weaken it (e.g. an absurd
     * minimum sample count) to prove the regression gate trips.
     */
    CCHunterParams baseHunter;
};

/** The default 19-point ROC threshold grid. */
std::vector<double> defaultRocThresholds();

/** Run every corpus entry and aggregate the quality report. */
QualityReport scoreCorpus(const std::vector<LabelledScenario>& corpus,
                          const QualityScorerOptions& options = {});

} // namespace cchunter

#endif // CCHUNTER_EVAL_QUALITY_SCORER_HH
