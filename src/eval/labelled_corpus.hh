/**
 * @file
 * Ground-truth-labelled scenario corpus for detection-quality scoring.
 *
 * The corpus is built programmatically: positives span the bus /
 * divider / multiplier / cache / TLB channels across bandwidth,
 * message pattern, protocol-coding, and `faults.*` degradation axes;
 * negatives come from the
 * benign benchmark pool plus adversarial near-miss pairs
 * (periodic-but-innocent request loops, cache-thrashing streamers)
 * that the detector must NOT flag.  Every entry carries a
 * deterministic derived seed and a machine-readable label, so the
 * whole corpus reproduces bit-identically from one base seed.
 */

#ifndef CCHUNTER_EVAL_LABELLED_CORPUS_HH
#define CCHUNTER_EVAL_LABELLED_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/experiment.hh"
#include "util/config.hh"

namespace cchunter
{

/** Ground-truth class of one corpus entry. */
enum class CorpusCategory : std::uint8_t
{
    CleanChannel,      //!< covert channel, no injected faults
    DegradedChannel,   //!< covert channel under a fault plan
    Benign,            //!< ordinary benchmark pair, no channel
    AdversarialBenign, //!< benign but channel-shaped (near miss)
    EvasiveChannel     //!< covert channel under an evasive schedule
};

/** Short lower-case name of a corpus category. */
const char* corpusCategoryName(CorpusCategory category);

/** One ground-truth-labelled run description. */
struct LabelledScenario
{
    /** Unique machine-readable name, e.g. "clean/bus/bw10000". */
    std::string name;

    CorpusCategory category = CorpusCategory::Benign;

    /** Ground truth: a covert channel is present in this run. */
    bool covert = false;

    /** Evasion strategy of an EvasiveChannel entry (None otherwise;
     *  mirrors audit.scenario.evasion.strategy for cheap grouping). */
    EvasionStrategy strategy = EvasionStrategy::None;

    /** The full run description (workload, scenario, cadence). */
    OnlineAuditOptions audit;

    /** The label as a Config (name, category, covert, seed) for
     *  echoing into reports and logs. */
    Config label() const;
};

/** Axes of the generated corpus. */
struct CorpusOptions
{
    std::uint64_t seed = 1;

    /** Scenario shape shared by every entry. */
    std::size_t quanta = 8;
    Tick quantum = 2500000;
    std::size_t clusteringIntervalQuanta = 4;
    unsigned noiseProcesses = 0;

    /** Bandwidth axis of the contention channels (bus / divider /
     *  multiplier), bits per second. */
    std::vector<double> contentionBandwidths = {10000.0, 2000.0};

    /** Bandwidth axis of the cache channel. */
    std::vector<double> cacheBandwidths = {1000.0, 500.0};

    /** Quantum-loss axis of the degraded positives. */
    std::vector<double> degradedDropRates = {0.10, 0.30};

    /** Include the degraded-channel positives. */
    bool includeDegraded = true;

    /** Include the adversarial near-miss negatives. */
    bool includeAdversarial = true;
};

/**
 * Build the labelled corpus.  Deterministic: identical options yield
 * an identical corpus (names, seeds, and run descriptions), and every
 * entry's seed is derived from `options.seed` plus its position, so
 * entries stay decorrelated without any global randomness.
 */
std::vector<LabelledScenario> buildLabelledCorpus(
    const CorpusOptions& options = {});

} // namespace cchunter

#endif // CCHUNTER_EVAL_LABELLED_CORPUS_HH
