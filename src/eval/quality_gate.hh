/**
 * @file
 * Accuracy regression gate over a QualityReport.
 *
 * CI runs the labelled corpus on every commit; this gate turns the
 * resulting report into a pass/fail verdict with named failures: a
 * missed clean positive, any benign false alarm, or an AUC regression
 * beyond epsilon against the checked-in baseline all fail the build.
 */

#ifndef CCHUNTER_EVAL_QUALITY_GATE_HH
#define CCHUNTER_EVAL_QUALITY_GATE_HH

#include <string>
#include <utility>
#include <vector>

#include "eval/quality_scorer.hh"

namespace cchunter
{

/** Thresholds of the accuracy regression gate. */
struct QualityGateParams
{
    /** Every clean (un-degraded) channel must be caught. */
    double minCleanTpr = 1.0;

    /** No benign run may raise a verdict. */
    double maxBenignFpr = 0.0;

    /** Allowed AUC slack below the checked-in baseline. */
    double aucEpsilon = 0.02;

    /**
     * Checked-in baseline AUC per unit, keyed by the unit's stable
     * registry name ("bus", "cache", ...) so the baseline survives
     * enum renumbering when units are added; units absent from the
     * list are not AUC-gated (but still TPR/FPR-gated).
     */
    std::vector<std::pair<std::string, double>> baselineAuc;

    /**
     * Arms-race head-to-head over the report's evasion section (all
     * three checks are skipped when the section is empty, so corpora
     * without evasive entries keep their old gate semantics):
     *
     *  - the indicator2 backend must hold at least
     *    `minIndicator2EvasionAuc` on EVERY evasive strategy;
     *  - at least one strategy must push the classic backend below
     *    `classicEvasionCeiling` (proof the evasive corpus really
     *    defeats first-order statistics — if classic survives
     *    everything, the attacker side of this arms race is broken);
     *  - on that strategy, indicator2 must beat classic by at least
     *    `minEvasionMargin`.
     *
     * The clean-corpus half of the claim rides on `baselineAuc`: each
     * baselined unit's indicator2 AUC (auc2, non-evasive entries) must
     * match the baseline within `aucEpsilon`, exactly like the classic
     * backend's.
     */
    double minIndicator2EvasionAuc = 0.99;
    double classicEvasionCeiling = 0.95;
    double minEvasionMargin = 0.10;
};

/** Gate verdict plus the named reason for every failed check. */
struct QualityGateResult
{
    bool pass = true;
    std::vector<std::string> failures;
};

/** Evaluate the gate; never throws on a failing report (the named
 *  failures are the product). */
QualityGateResult evaluateQualityGate(const QualityReport& report,
                                      const QualityGateParams& params);

} // namespace cchunter

#endif // CCHUNTER_EVAL_QUALITY_GATE_HH
