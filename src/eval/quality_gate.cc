#include "eval/quality_gate.hh"

#include <algorithm>
#include <cstdio>

namespace cchunter
{

namespace
{

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return buf;
}

} // namespace

QualityGateResult
evaluateQualityGate(const QualityReport& report,
                    const QualityGateParams& params)
{
    QualityGateResult result;
    auto fail = [&](std::string message) {
        result.pass = false;
        result.failures.push_back(std::move(message));
    };

    if (report.units.empty())
        fail("no units were scored (empty corpus?)");

    for (const UnitQuality& unit : report.units) {
        const std::string name = monitorTargetName(unit.unit);
        if (unit.cleanTp + unit.cleanFn > 0 &&
            unit.cleanTpr() < params.minCleanTpr) {
            fail(name + ": clean TPR " + fmt(unit.cleanTpr()) +
                 " below " + fmt(params.minCleanTpr) + " (" +
                 std::to_string(unit.cleanFn) +
                 " clean positives missed)");
        }
        if (unit.tn + unit.fp > 0 &&
            unit.falsePositiveRate() > params.maxBenignFpr) {
            fail(name + ": FPR " + fmt(unit.falsePositiveRate()) +
                 " above " + fmt(params.maxBenignFpr) + " (" +
                 std::to_string(unit.fp) + " benign false alarms)");
        }
    }

    for (const auto& [name, baseline] : params.baselineAuc) {
        const UnitQuality* unit = nullptr;
        for (const UnitQuality& q : report.units)
            if (name == monitorTargetName(q.unit))
                unit = &q;
        if (!unit) {
            fail(name + ": baselined unit missing from the report");
            continue;
        }
        if (unit->auc < baseline - params.aucEpsilon) {
            fail(name + ": AUC " + fmt(unit->auc) +
                 " regressed beyond " + fmt(params.aucEpsilon) +
                 " below baseline " + fmt(baseline));
        }
        // The clean-corpus half of the arms-race claim: indicator2
        // must match the classic baseline on non-evasive entries.
        if (unit->auc2 < baseline - params.aucEpsilon) {
            fail(name + ": indicator2 clean AUC " + fmt(unit->auc2) +
                 " regressed beyond " + fmt(params.aucEpsilon) +
                 " below baseline " + fmt(baseline));
        }
    }

    // The evasion head-to-head (reports without evasive entries skip
    // it; see QualityGateParams).
    if (!report.evasion.empty()) {
        double bestMargin = -1.0;
        double lowestClassic = 1.0;
        for (const EvasionStrategy strategy :
             {EvasionStrategy::RandomGaps, EvasionStrategy::DutyCycle,
              EvasionStrategy::LowAndSlow}) {
            const EvasionQuality* classic = nullptr;
            const EvasionQuality* second = nullptr;
            for (const EvasionQuality& q : report.evasion) {
                if (q.strategy != strategy)
                    continue;
                (q.backend == DetectBackend::Indicator2 ? second
                                                        : classic) = &q;
            }
            if (!classic || !second)
                continue;
            const std::string name = evasionStrategyName(strategy);
            if (second->auc < params.minIndicator2EvasionAuc) {
                fail("evasion/" + name + ": indicator2 AUC " +
                     fmt(second->auc) + " below " +
                     fmt(params.minIndicator2EvasionAuc));
            }
            lowestClassic = std::min(lowestClassic, classic->auc);
            bestMargin =
                std::max(bestMargin, second->auc - classic->auc);
        }
        if (lowestClassic >= params.classicEvasionCeiling) {
            fail("evasion: no strategy pushed the classic backend "
                 "below " +
                 fmt(params.classicEvasionCeiling) +
                 " (lowest classic AUC " + fmt(lowestClassic) +
                 "); the evasive corpus no longer evades");
        }
        if (bestMargin < params.minEvasionMargin) {
            fail("evasion: best indicator2-over-classic margin " +
                 fmt(bestMargin) + " below " +
                 fmt(params.minEvasionMargin));
        }
    }
    return result;
}

} // namespace cchunter
