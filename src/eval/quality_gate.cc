#include "eval/quality_gate.hh"

#include <cstdio>

namespace cchunter
{

namespace
{

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return buf;
}

} // namespace

QualityGateResult
evaluateQualityGate(const QualityReport& report,
                    const QualityGateParams& params)
{
    QualityGateResult result;
    auto fail = [&](std::string message) {
        result.pass = false;
        result.failures.push_back(std::move(message));
    };

    if (report.units.empty())
        fail("no units were scored (empty corpus?)");

    for (const UnitQuality& unit : report.units) {
        const std::string name = monitorTargetName(unit.unit);
        if (unit.cleanTp + unit.cleanFn > 0 &&
            unit.cleanTpr() < params.minCleanTpr) {
            fail(name + ": clean TPR " + fmt(unit.cleanTpr()) +
                 " below " + fmt(params.minCleanTpr) + " (" +
                 std::to_string(unit.cleanFn) +
                 " clean positives missed)");
        }
        if (unit.tn + unit.fp > 0 &&
            unit.falsePositiveRate() > params.maxBenignFpr) {
            fail(name + ": FPR " + fmt(unit.falsePositiveRate()) +
                 " above " + fmt(params.maxBenignFpr) + " (" +
                 std::to_string(unit.fp) + " benign false alarms)");
        }
    }

    for (const auto& [name, baseline] : params.baselineAuc) {
        const UnitQuality* unit = nullptr;
        for (const UnitQuality& q : report.units)
            if (name == monitorTargetName(q.unit))
                unit = &q;
        if (!unit) {
            fail(name + ": baselined unit missing from the report");
            continue;
        }
        if (unit->auc < baseline - params.aucEpsilon) {
            fail(name + ": AUC " + fmt(unit->auc) +
                 " regressed beyond " + fmt(params.aucEpsilon) +
                 " below baseline " + fmt(baseline));
        }
    }
    return result;
}

} // namespace cchunter
