/**
 * @file
 * Canned experiment scenarios reproducing the paper's evaluation setup:
 * a quad-core SMT machine at 2.5 GHz, a trojan/spy pair on one shared
 * resource, at least three other active processes for interference, the
 * CC-Auditor programmed on the attacked unit, and the software daemon
 * recording each OS time quantum.
 */

#ifndef CCHUNTER_SCENARIO_EXPERIMENT_HH
#define CCHUNTER_SCENARIO_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "auditor/daemon.hh"
#include "channels/evasion.hh"
#include "channels/message.hh"
#include "channels/protocol.hh"
#include "detect/detector.hh"
#include "detect/event_train.hh"
#include "detect/indicator2.hh"
#include "faults/fault_plan.hh"
#include "mitigate/response_plan.hh"
#include "units/unit_registry.hh"
#include "util/config.hh"
#include "util/histogram.hh"
#include "util/types.hh"

namespace cchunter
{

/** Options common to all channel scenarios. */
struct ScenarioOptions
{
    double bandwidthBps = 10.0;
    std::size_t quanta = 4;          //!< OS time quanta to simulate
    Tick quantum = defaultQuantumTicks;
    std::uint64_t seed = 1;
    unsigned noiseProcesses = 3;     //!< paper: at least three
    double noiseIntensity = 1.0;     //!< background activity scaling
    Message message;                 //!< empty selects random64(seed)
    /**
     * Per-bit signalling window cap; 0 selects the default of
     * min(bit slot, 25 M cycles = 10 ms), so low-bandwidth bits signal
     * briefly and lie dormant (paper section VI-A).
     */
    Tick maxSignalTicks = 0;

    // Cache-channel specific.
    std::size_t channelSets = 512;   //!< sets across G1 and G0
    std::size_t cacheNoiseEvery = 24; //!< spy "surrounding code" noise
    std::size_t linesPerSet = 1;
    Tick cacheDormantNoiseGap = 0;   //!< spy cover-program noise period
    /**
     * Prime/probe rounds per bit; 0 selects automatically from the
     * signal window (one round per ~800k cycles, at most 64) so that
     * even a single low-bandwidth bit yields many oscillation periods.
     */
    std::size_t cacheRoundsPerBit = 0;

    /** Rounds actually used for a given signal window. */
    std::size_t effectiveCacheRounds() const;

    // TLB-channel specific.
    std::size_t tlbChannelSets = 32; //!< TLB sets across G1 and G0

    /**
     * Link-layer protocol adversary (channels/protocol.hh): when
     * enabled, the transmitted wire message is the protocol-coded
     * payload — preamble synchronization, frame retransmission and
     * Hamming(7,4) ECC — for *any* channel workload.  Disabled by
     * default, leaving runs bit-identical to raw-payload output.
     */
    ProtocolParams protocol;

    /**
     * Evasive transmission schedule (channels/evasion.hh), shared by
     * both ends of the pair through ChannelTiming.  The default (None)
     * plan leaves every run bit-identical to the classic schedule;
     * enabling a strategy is how the detection-quality corpus builds
     * its labelled evasive positives.
     */
    EvasionPlan evasion;

    /** Audit the L2 with the ideal LRU-stack tracker instead of the
     *  practical generation/bloom scheme (ablation studies). */
    bool idealTracker = false;

    /** Parameters of the practical tracker (bloom sizing etc.). */
    ConflictTrackerParams trackerParams;

    /** Bus-trojan decoy-lock spacing for evasion experiments
     *  (0 = no evasion attempt). */
    Cycles busEvasionPeriod = 0;

    /**
     * Record the raw indicator-event train for the first this-many
     * ticks of the run (0 disables recording).  Used by the figure-4
     * event-train plots; kept bounded because full-rate divider
     * conflict trains are enormous.
     */
    Tick trainWindowTicks = 0;

    /**
     * Deterministic fault-injection plan (robustness studies).  All
     * rates default to zero, which leaves the run bit-identical to an
     * uninstrumented one — no injector is even constructed.
     */
    FaultPlan faults;

    /**
     * Decision cut-offs for both analysis paths, defaulted to the
     * paper's values (0.5 likelihood ratio; published oscillation
     * peaks).  Default thresholds leave runs bit-identical to the
     * pre-parameterisation harness; the detection-quality subsystem
     * sweeps them for ROC curves.
     */
    DetectionThresholds thresholds;

    /**
     * The response axis: a mitigation plan engaged from the start of
     * the run (mitigate/response_plan.hh).  Observe, the default,
     * leaves runs bit-identical to the pre-response harness; the other
     * rungs are how the respond subsystem measures residual channel
     * bandwidth and benign performance tax under each ladder level.
     */
    ResponsePlan response;

    /** Effective signal window for the configured bandwidth. */
    Tick effectiveSignalTicks() const;
};

/**
 * The effective configuration of a scenario as a Config, for echoing
 * into logs (Config::dump()) so any run is reproducible from its
 * output alone.
 */
Config scenarioConfig(const ScenarioOptions& options);

/** Expected bit values for the first n transmitted slots. */
Message expectedBits(const Message& sent, std::size_t n);

/** BER between sent (cyclic) and the spy's slot-indexed decodes. */
double slotBitErrorRate(
    const Message& sent,
    const std::vector<std::pair<std::size_t, bool>>& decoded);

/** Result of a memory-bus channel scenario. */
struct BusScenarioResult
{
    std::vector<Histogram> quantaHistograms; //!< per-quantum densities
    ContentionVerdict verdict;
    std::vector<double> spySamples; //!< figure-2 series
    Message sent;
    Message decoded;
    double bitErrorRate = 1.0;
    std::uint64_t lockEvents = 0;
    Tick deltaT = 0;
    /** Lock-event train within options.trainWindowTicks. */
    EventTrain eventTrain;
    /** (bit slot, spy's mean access latency) per decoded slot. */
    std::vector<std::pair<std::size_t, double>> slotMeans;
    /** Observation-pipeline health counters from the daemon. */
    PipelineStats pipeline;
    /** Degraded-operation ledger from the daemon (all zero when no
     *  faults were injected). */
    DegradedStats degraded;
    /** Weakest alarm confidence observed (1.0 on a clean run). */
    double confidence = 1.0;
};

/** Result of an integer-divider channel scenario. */
struct DividerScenarioResult
{
    std::vector<Histogram> quantaHistograms;
    ContentionVerdict verdict;
    std::vector<double> spySamples; //!< figure-3 series
    Message sent;
    Message decoded;
    double bitErrorRate = 1.0;
    std::uint64_t conflictEvents = 0;
    Tick deltaT = 0;
    /** Wait-conflict event train within options.trainWindowTicks. */
    EventTrain eventTrain;
    /** (bit slot, spy's mean loop latency) per decoded slot. */
    std::vector<std::pair<std::size_t, double>> slotMeans;
    /** Observation-pipeline health counters from the daemon. */
    PipelineStats pipeline;
    /** Degraded-operation ledger from the daemon (all zero when no
     *  faults were injected). */
    DegradedStats degraded;
    /** Weakest alarm confidence observed (1.0 on a clean run). */
    double confidence = 1.0;
};

/** Result of a shared-cache channel scenario. */
struct CacheScenarioResult
{
    std::vector<ConflictRecord> records;
    std::vector<double> labelSeries;
    OscillationVerdict verdict;
    std::vector<double> spyRatios; //!< figure-7 series
    Message sent;
    Message decoded;
    double bitErrorRate = 1.0;
    std::uint64_t trackedConflicts = 0;
    /** Observation-pipeline health counters from the daemon. */
    PipelineStats pipeline;
    /** Degraded-operation ledger from the daemon (all zero when no
     *  faults were injected). */
    DegradedStats degraded;
    /** Weakest alarm confidence observed (1.0 on a clean run). */
    double confidence = 1.0;
};

/** Result of a shared-TLB channel scenario. */
struct TlbScenarioResult
{
    std::vector<ConflictRecord> records;
    std::vector<double> labelSeries;
    OscillationVerdict verdict;
    std::vector<double> spyRatios;
    Message sent;    //!< the payload
    Message wire;    //!< transmitted bits (== sent without protocol)
    Message decoded; //!< spy's wire-level decode
    /** Raw wire-slot BER (before any protocol decoding). */
    double bitErrorRate = 1.0;
    /** Payload BER after protocol decoding (== bitErrorRate when the
     *  protocol is disabled). */
    double payloadBitErrorRate = 1.0;
    ProtocolDecodeStats protocolStats;
    std::uint64_t tlbConflicts = 0;
    /** Observation-pipeline health counters from the daemon. */
    PipelineStats pipeline;
    /** Degraded-operation ledger from the daemon. */
    DegradedStats degraded;
    /** Weakest alarm confidence observed (1.0 on a clean run). */
    double confidence = 1.0;
};

/** Result of a benign pair run (false-alarm study). */
struct BenignScenarioResult
{
    std::vector<Histogram> busQuanta;
    std::vector<Histogram> dividerQuanta;
    std::vector<double> cacheLabelSeries;
    ContentionVerdict busVerdict;
    ContentionVerdict dividerVerdict;
    OscillationVerdict cacheVerdict;
    /** Pipeline health accumulated across both audit passes. */
    PipelineStats pipeline;
    /** Degraded-operation ledger from the daemon (all zero when no
     *  faults were injected). */
    DegradedStats degraded;
    /** Weakest alarm confidence observed (1.0 on a clean run). */
    double confidence = 1.0;
};

// AuditedWorkload, BenignAuditUnits and the workload name maps now
// live with the unit registry (units/unit_registry.hh): the scenario
// layer looks descriptors up instead of switching on the enum.

/** Options of one live-audited (online-analysis) run. */
struct OnlineAuditOptions
{
    AuditedWorkload workload = AuditedWorkload::Divider;
    ScenarioOptions scenario;

    /**
     * Online-analysis cadence.  A clustering interval longer than the
     * run is clamped to scenario.quanta so a short run still gets one
     * end-of-run clustering pass.
     */
    OnlineAnalysisParams online;

    /** Benchmark pair for AuditedWorkload::BenignPair. */
    std::string benignA = "mcf";
    std::string benignB = "gobmk";

    /**
     * For AuditedWorkload::BenignPair: which pair of units to watch.
     * CacheBus puts the shared L2 on slot 0 so benign workloads also
     * exercise the oscillation path (cache-unit negatives for the
     * detection-quality corpus — e.g. cache-thrashing streamer pairs
     * that must NOT read as channels).
     */
    BenignAuditUnits benignUnits = BenignAuditUnits::BusDivider;

    /**
     * Close the loop inside the run: once the daemon has raised
     * `alarmThreshold` alarms, engage `plan` at the next quantum
     * boundary (detection-triggered mitigation, as opposed to the
     * whole-run scenario.response axis).  Forces synchronous online
     * analysis so the engagement quantum is deterministic.
     */
    struct AutoResponse
    {
        bool enabled = false;
        ResponsePlan plan;
        std::size_t alarmThreshold = 1;
    };
    AutoResponse autoRespond;

    /**
     * Defer the end-of-run oscillation verdicts: instead of running
     * the final full-window transform per cache slot inside the run,
     * carry the retained label series (and the oscillation params the
     * run would have used) in the UnitOutcome for a later
     * finalizeDeferredOscillations() pass.  This is what lets the
     * fleet auditor batch the final transforms of a whole shard
     * through one shared FFT plan; outcomes are identical to the
     * undeferred path.  Alarms are unaffected either way.
     */
    bool deferOscillationVerdicts = false;
};

/** Final verdict of one monitored slot after a live-audited run. */
struct UnitOutcome
{
    unsigned slot = 0;

    /** Hardware unit kind the slot was programmed on. */
    MonitorTarget unit = MonitorTarget::None;

    /** Analysis path the unit is judged by (caches oscillate,
     *  combinational units show contention bursts). */
    AlarmKind kind = AlarmKind::Contention;

    /** End-of-run verdict over the retained window (the matching one
     *  of the two is filled in, per `kind`). */
    ContentionVerdict contention;
    OscillationVerdict oscillation;

    /**
     * Second-moment backend score for the same retained window
     * (detect/indicator2.hh), always computed alongside the classic
     * verdict so detection-quality scoring can sweep both backends
     * from one simulation.
     */
    Indicator2Result indicator2;

    /** Backend that renders `detected` (copied from the run's
     *  thresholds so deferred finalization re-decides consistently). */
    DetectBackend backend = DetectBackend::CCHunter;

    /** Indicator2 cut-off used when `backend` selects it. */
    double indicator2Threshold = 0.5;

    /** The selected backend's detected flag (thresholds.backend). */
    bool detected = false;

    /** Daemon confidence for this verdict (coverage x integrity). */
    double confidence = 1.0;

    /** Oscillation verdict not yet computed: `pendingSeries` holds
     *  the retained label window awaiting a (batched)
     *  finalizeDeferredOscillations() pass under `pendingParams`. */
    bool deferredOscillation = false;
    std::vector<double> pendingSeries;
    OscillationParams pendingParams;
};

/**
 * Resolve deferred oscillation outcomes in one batched pass: series
 * above the FFT dispatch thresholds are grouped by their oscillation
 * max-lag and transformed through one shared plan and scratch arena
 * (autocorrelogramsBatched); the rest take the naive path, exactly as
 * the undeferred dispatch would.  Each outcome's verdict fields are
 * filled and its pending series released.  Returns the number of
 * series that went through the batched FFT pass.
 */
std::size_t finalizeDeferredOscillations(
    std::vector<UnitOutcome*>& pending);

/**
 * Result of one live-audited run: the online alarm stream (each alarm
 * carrying its channel signature and confidence) plus the pipeline and
 * degradation ledgers.  For a fixed option set this is deterministic —
 * including across analysisThreads values and the async hand-off under
 * Block — which is what lets the fleet auditor shard tenants freely.
 */
/**
 * Ground-truth decode oracle of a channel run: what the spy actually
 * recovered, and the channel's effective bandwidth after accounting
 * for protocol overhead and the BSC capacity at the observed payload
 * error rate.  This is the number the respond subsystem compares
 * before/after mitigation — "residual bandwidth", the metric the
 * countermeasure literature says must be measured, not assumed zero.
 */
struct ChannelDecodeOutcome
{
    bool present = false; //!< false for benign-pair runs
    /** Wire-level bit slots the spy decoded. */
    std::uint64_t wireBitsDecoded = 0;
    /** Wire-slot BER against the transmitted bits. */
    double wireBitErrorRate = 1.0;
    /** Payload BER after protocol decoding (== wire BER when the
     *  protocol adversary is disabled). */
    double payloadBitErrorRate = 1.0;
    ProtocolDecodeStats protocolStats;
    /** Simulated wall-clock of the run, in seconds. */
    double seconds = 0.0;
    /** Payload bits/s recovered: decode rate scaled by the protocol's
     *  payload fraction and the BSC capacity at the payload BER. */
    double effectiveBandwidthBps = 0.0;
};

/** Whether/when the in-run auto-response engaged. */
struct ResponseEngagement
{
    bool engaged = false;
    std::uint64_t quantum = 0; //!< boundary index that triggered it
    ResponseLevel level = ResponseLevel::Observe;
};

struct OnlineAuditResult
{
    std::vector<Alarm> alarms;
    PipelineStats pipeline;
    DegradedStats degraded;
    std::uint64_t quantaRecorded = 0;
    unsigned monitoredSlots = 0;

    /** Decode oracle (channel workloads only). */
    ChannelDecodeOutcome channel;

    /** In-run auto-response outcome. */
    ResponseEngagement response;

    /** Combined action count of the first two processes — the
     *  trojan/spy or benign pair — for performance-tax accounting. */
    std::uint64_t pairActions = 0;
    /** Quanta the pair actually got scheduled. */
    std::uint64_t pairScheduledQuanta = 0;

    /**
     * End-of-run offline verdict per monitored slot (ascending slot
     * order), computed over the daemon's retained window with the same
     * hunter params the online cadence used.  Carries the full
     * analysis structures, so detection-quality scoring can re-decide
     * each unit across a threshold grid without re-running the
     * simulation.
     */
    std::vector<UnitOutcome> finalVerdicts;
};

/** Run one machine under live audit (the online-analysis cadence). */
OnlineAuditResult runOnlineAudit(const OnlineAuditOptions& options);

/** Run the memory-bus covert channel under audit. */
BusScenarioResult runBusScenario(const ScenarioOptions& options);

/** Run the integer-divider covert channel under audit. */
DividerScenarioResult runDividerScenario(const ScenarioOptions& options);

/**
 * Run the Wang & Lee SMT/multiplier covert channel under audit.  Not
 * part of the paper's evaluation, but squarely inside its claim that
 * recurrent-conflict detection covers all shared processor hardware.
 * Result has the divider-scenario shape (the channels share the SMT
 * execution-unit mechanics).
 */
DividerScenarioResult runMultiplierScenario(
    const ScenarioOptions& options);

/** Run the shared-L2 covert channel under audit. */
CacheScenarioResult runCacheScenario(const ScenarioOptions& options);

/**
 * Run the shared-TLB covert channel under audit (SMT siblings priming
 * and probing the per-core TLB's sets).  With options.protocol.enabled
 * the trojan transmits the protocol-coded payload and the result
 * carries both wire-level and decoded-payload error rates.
 */
TlbScenarioResult runTlbScenario(const ScenarioOptions& options);

/**
 * Run a benign benchmark pair as hyperthreads on core 0 and audit all
 * three resources (two passes honouring the two-slot auditor limit).
 */
BenignScenarioResult runBenignPair(const std::string& a,
                                   const std::string& b,
                                   const ScenarioOptions& options);

} // namespace cchunter

#endif // CCHUNTER_SCENARIO_EXPERIMENT_HH
