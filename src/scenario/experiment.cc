#include "scenario/experiment.hh"

#include <algorithm>
#include <memory>
#include <optional>

#include <map>

#include "channels/bus_channel.hh"
#include "channels/cache_channel.hh"
#include "channels/capacity.hh"
#include "channels/channel_spy.hh"
#include "channels/divider_channel.hh"
#include "channels/tlb_channel.hh"
#include "detect/autocorrelation.hh"
#include "faults/fault_injector.hh"
#include "sim/machine.hh"
#include "units/unit_registry.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workloads/suites.hh"

namespace cchunter
{

namespace
{

/** Default cap on per-bit signalling: 25 M cycles = 10 ms @ 2.5 GHz. */
constexpr Tick defaultSignalCap = 25000000;

Message
resolveMessage(const ScenarioOptions& opts)
{
    if (!opts.message.empty())
        return opts.message;
    Rng rng(opts.seed ^ 0xabcdef);
    return Message::random64(rng);
}

/** The bits actually transmitted: the payload, protocol-coded when the
 *  protocol adversary is enabled. */
Message
resolveWire(const ScenarioOptions& opts, const Message& payload)
{
    return encodeProtocol(payload, opts.protocol);
}

/** Translate scenario options into the unit-agnostic hook context. */
UnitRunContext
makeUnitContext(const ScenarioOptions& opts, Message wire,
                ChannelTiming timing)
{
    UnitRunContext ctx;
    ctx.message = std::move(wire);
    ctx.timing = timing;
    ctx.seed = opts.seed;
    ctx.channelSets = opts.channelSets;
    ctx.linesPerSet = opts.linesPerSet;
    ctx.cacheNoiseEvery = opts.cacheNoiseEvery;
    ctx.cacheDormantNoiseGap = opts.cacheDormantNoiseGap;
    ctx.roundsPerBit = opts.effectiveCacheRounds();
    ctx.tlbChannelSets = opts.tlbChannelSets;
    ctx.busEvasionPeriod = opts.busEvasionPeriod;
    ctx.idealTracker = opts.idealTracker;
    ctx.trackerParams = opts.trackerParams;
    return ctx;
}

ChannelTiming
makeTiming(const ScenarioOptions& opts)
{
    ChannelTiming t;
    t.start = 1000;
    t.bandwidthBps = opts.bandwidthBps;
    t.maxSignalTicks = opts.effectiveSignalTicks();
    if (opts.evasion.enabled())
        opts.evasion.validate();
    t.evasion = opts.evasion;
    return t;
}

MachineParams
makeMachine(const ScenarioOptions& opts)
{
    MachineParams mp;
    mp.scheduler.quantum = opts.quantum;
    mp.scheduler.seed = opts.seed;
    return mp;
}

void
addNoise(Machine& machine, const ScenarioOptions& opts)
{
    // A rotating selection of benchmark proxies provides the "at least
    // three other active processes" of the paper's setup.  They float
    // across the non-pinned contexts.
    const std::vector<std::string> pool{"mcf", "gobmk", "stream",
                                        "bzip2", "webserver"};
    for (unsigned i = 0; i < opts.noiseProcesses; ++i) {
        machine.addProcess(makeBenchmark(pool[i % pool.size()],
                                         opts.seed + 100 + i,
                                         opts.noiseIntensity));
    }
}

/**
 * Optional fault-injection harness for a scenario run.  When the plan
 * is all-zero nothing is constructed or attached, so a clean run
 * executes exactly the pre-fault-injection code paths.
 */
struct FaultHarness
{
    std::optional<FaultInjector> injector;

    FaultHarness(const ScenarioOptions& opts, CCAuditor& auditor)
    {
        if (!opts.faults.enabled())
            return;
        opts.faults.validate();
        if (opts.faults.saturatePaperWidths) {
            HistogramBufferParams hp = auditor.histogramParams();
            hp.saturate16 = true;
            auditor.setHistogramParams(hp);
        }
        injector.emplace(opts.faults);
    }

    void attach(AuditDaemon& daemon)
    {
        if (injector)
            daemon.attachFaultInjector(&*injector);
    }
};

} // namespace

Tick
ScenarioOptions::effectiveSignalTicks() const
{
    if (maxSignalTicks != 0)
        return maxSignalTicks;
    return defaultSignalCap;
}

std::size_t
ScenarioOptions::effectiveCacheRounds() const
{
    if (cacheRoundsPerBit != 0)
        return cacheRoundsPerBit;
    ChannelTiming t;
    t.bandwidthBps = bandwidthBps;
    t.maxSignalTicks = effectiveSignalTicks();
    const Tick signal = t.signalTicks();
    return std::clamp<std::size_t>(
        static_cast<std::size_t>(signal / 800000), 1, 64);
}

Config
scenarioConfig(const ScenarioOptions& opts)
{
    Config cfg;
    cfg.set("bandwidth", opts.bandwidthBps);
    cfg.set("quanta", static_cast<std::int64_t>(opts.quanta));
    cfg.set("quantum", static_cast<std::int64_t>(opts.quantum));
    cfg.set("seed", static_cast<std::int64_t>(opts.seed));
    cfg.set("noise", static_cast<std::int64_t>(opts.noiseProcesses));
    cfg.set("noise_intensity", opts.noiseIntensity);
    cfg.set("signal_ticks",
            static_cast<std::int64_t>(opts.effectiveSignalTicks()));
    cfg.set("sets", static_cast<std::int64_t>(opts.channelSets));
    cfg.set("lines_per_set",
            static_cast<std::int64_t>(opts.linesPerSet));
    cfg.set("cache_rounds",
            static_cast<std::int64_t>(opts.effectiveCacheRounds()));
    cfg.set("tlb_sets", static_cast<std::int64_t>(opts.tlbChannelSets));
    cfg.set("ideal_tracker", opts.idealTracker);
    // The decision cut-offs are part of the reproducibility record:
    // a ROC sweep's runs differ in nothing else.
    cfg.set("detect.likelihood", opts.thresholds.contentionLikelihood);
    cfg.set("detect.osc_peak", opts.thresholds.oscillationPeak);
    cfg.set("detect.osc_strong_peak",
            opts.thresholds.oscillationStrongPeak);
    // The backend keys appear only off the default, keeping classic
    // runs' config dumps byte-identical to pre-arms-race output.
    if (opts.thresholds.backend != DetectBackend::CCHunter) {
        cfg.set("detect.backend",
                std::string(detectBackendName(opts.thresholds.backend)));
        cfg.set("detect.indicator2",
                opts.thresholds.indicator2Threshold);
    }
    // Evasion keys likewise: only an enabled plan is echoed.
    if (opts.evasion.enabled())
        opts.evasion.toConfig(cfg);
    // Fault keys are echoed only when a plan is active, keeping clean
    // runs' config dumps byte-identical to pre-fault-injection output.
    if (opts.faults.enabled())
        opts.faults.toConfig(cfg);
    // Same contract for the protocol adversary's keys.
    if (opts.protocol.enabled) {
        cfg.set("protocol.enabled", true);
        cfg.set("protocol.frame_nibbles",
                static_cast<std::int64_t>(opts.protocol.frameNibbles));
        cfg.set("protocol.repeats",
                static_cast<std::int64_t>(opts.protocol.repeats));
        cfg.set("protocol.ack_gap_bits",
                static_cast<std::int64_t>(opts.protocol.ackGapBits));
    }
    // And for the response axis: only an engaged plan is echoed.
    if (opts.response.active()) {
        cfg.set("respond.level",
                std::string(responseLevelName(opts.response.level)));
        cfg.set("respond.bus_lock_interval",
                static_cast<std::int64_t>(opts.response.busLockInterval));
        cfg.set("respond.throttle_period",
                static_cast<std::int64_t>(opts.response.throttlePeriod));
        cfg.set("respond.throttle_active",
                static_cast<std::int64_t>(opts.response.throttleActive));
    }
    return cfg;
}

Message
expectedBits(const Message& sent, std::size_t n)
{
    std::vector<bool> bits;
    bits.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        bits.push_back(sent.bitCyclic(i));
    return Message::fromBits(std::move(bits));
}

double
slotBitErrorRate(
        const Message& sent,
        const std::vector<std::pair<std::size_t, bool>>& decoded)
{
    if (decoded.empty() || sent.empty())
        return 1.0;
    std::size_t errors = 0;
    for (const auto& [slot, value] : decoded)
        errors += value != sent.bitCyclic(slot);
    return static_cast<double>(errors) /
           static_cast<double>(decoded.size());
}

OnlineAuditResult
runOnlineAudit(const OnlineAuditOptions& options)
{
    const ScenarioOptions& opts = options.scenario;
    const UnitRegistry& registry = UnitRegistry::instance();
    const Message payload = resolveMessage(opts);
    const ChannelTiming timing = makeTiming(opts);
    const UnitRunContext ctx =
        makeUnitContext(opts, resolveWire(opts, payload), timing);

    // A channel workload maps to exactly one registered unit; the
    // benign pair maps to none and instead audits the pairing's two
    // unit slots.
    const UnitDescriptor* unit = registry.byWorkload(options.workload);
    if (!unit && options.workload != AuditedWorkload::BenignPair)
        fatal("runOnlineAudit: workload ",
              static_cast<int>(options.workload),
              " has no registered unit");
    const BenignPairing* pairing =
        unit ? nullptr : &benignPairing(options.benignUnits);

    MachineParams mp = makeMachine(opts);
    if (unit) {
        if (unit->configureMachine)
            unit->configureMachine(mp, ctx);
    } else {
        // Benign audits of hardware that is off by default (the TLB)
        // still need that hardware present.
        for (const MonitorTarget target : pairing->slots) {
            const UnitDescriptor& d = registry.require(target);
            if (d.configureBenignMachine)
                d.configureBenignMachine(mp, ctx);
        }
    }
    Machine machine(mp);

    if (unit) {
        unit->buildWorkload(machine, ctx);
    } else {
        machine.addProcess(
            makeBenchmark(options.benignA, opts.seed + 1), 0);
        machine.addProcess(
            makeBenchmark(options.benignB, opts.seed + 2), 1);
    }
    addNoise(machine, opts);

    CCAuditor auditor(machine);
    FaultHarness faults(opts, auditor);
    const AuditKey key = requestAuditKey(true);
    if (unit) {
        unit->program(auditor, key, 0, ctx);
    } else {
        // No channel to pin down: watch two of the units the pair
        // actually shares (the two-slot auditor limit).  The default
        // covers both contention units; the other pairings let benign
        // runs feed the oscillation path and the SMT multiplier, so
        // every unit kind accumulates negatives.  Benign runs always
        // use the deployable tracker, never the oracle.
        UnitRunContext benign_ctx = ctx;
        benign_ctx.idealTracker = false;
        for (unsigned slot = 0; slot < pairing->slots.size(); ++slot)
            registry.require(pairing->slots[slot])
                .program(auditor, key, slot, benign_ctx);
    }
    AuditDaemon daemon(machine, auditor);
    faults.attach(daemon);

    // Whole-run response axis: the plan is engaged before the first
    // quantum (measuring a channel *under* an already-applied
    // response, e.g. a residual-bandwidth probe).
    const std::array<ContextId, 2> pair_ctx =
        unit ? unit->channelContexts
             : std::array<ContextId, 2>{ContextId{0}, ContextId{1}};
    if (opts.response.active()) {
        if (unit)
            applyResponsePlan(machine, unit->id, opts.response);
        else
            applyResponsePlan(machine, pair_ctx, opts.response);
    }

    OnlineAnalysisParams online = options.online;
    if (opts.quanta != 0 &&
        online.clusteringIntervalQuanta > opts.quanta)
        online.clusteringIntervalQuanta = opts.quanta;
    online.hunter = opts.thresholds.apply(online.hunter);
    // Detection-triggered response needs the alarm stream current at
    // each boundary: force the synchronous analysis path so the
    // engagement quantum is deterministic.
    if (options.autoRespond.enabled)
        online.asyncAnalysis = false;
    daemon.enableOnlineAnalysis(online);

    OnlineAuditResult result;

    // Closed loop: engage the configured plan at the first quantum
    // boundary whose cumulative alarm count crosses the threshold.
    // Registered after the daemon's observer, so it sees the alarms
    // the boundary's own analysis just raised.
    if (options.autoRespond.enabled) {
        machine.scheduler().addQuantumObserver(
            [&result, &machine, &daemon, &options, unit,
             pair_ctx](std::uint64_t q, Tick) {
                if (result.response.engaged)
                    return;
                if (daemon.alarms().size() <
                    options.autoRespond.alarmThreshold)
                    return;
                if (unit)
                    applyResponsePlan(machine, unit->id,
                                      options.autoRespond.plan);
                else
                    applyResponsePlan(machine, pair_ctx,
                                      options.autoRespond.plan);
                result.response.engaged = true;
                result.response.quantum = q;
                result.response.level =
                    options.autoRespond.plan.level;
            });
    }

    machine.runQuanta(opts.quanta);

    result.alarms = daemon.alarms();
    result.pipeline = daemon.pipelineStats();
    result.degraded = daemon.degradedStats();
    result.quantaRecorded = daemon.quantaRecorded();

    // Performance-tax accounting: the first two processes are always
    // the trojan/spy or benign pair (noise is added after them).
    {
        const auto& procs = machine.scheduler().processes();
        const std::size_t n = std::min<std::size_t>(2, procs.size());
        for (std::size_t i = 0; i < n; ++i) {
            result.pairActions += procs[i]->stats().actions;
            result.pairScheduledQuanta +=
                procs[i]->stats().scheduledQuanta;
        }
    }

    // Decode oracle: recover the spy through the common ChannelSpy
    // interface (no per-unit dispatch) and score what survived.
    if (unit) {
        const ChannelSpy* spy = nullptr;
        for (const auto& p : machine.scheduler().processes())
            if ((spy = dynamic_cast<const ChannelSpy*>(&p->workload())))
                break;
        if (spy) {
            ChannelDecodeOutcome& ch = result.channel;
            ch.present = true;
            const Message& wire = ctx.message;
            ch.wireBitsDecoded = spy->decodedSlots().size();
            ch.wireBitErrorRate =
                slotBitErrorRate(wire, spy->decodedSlots());
            ch.payloadBitErrorRate = ch.wireBitErrorRate;
            double payload_fraction = 1.0;
            if (opts.protocol.enabled && !wire.empty()) {
                // The receiver's link layer sees one wire pass; frame
                // repeats inside the wire already vote retransmissions.
                const Message decoded_wire = spy->decoded();
                std::vector<bool> received;
                const std::size_t limit =
                    std::min(decoded_wire.size(), wire.size());
                received.reserve(limit);
                for (std::size_t i = 0; i < limit; ++i)
                    received.push_back(decoded_wire.bit(i));
                const Message recovered = decodeProtocol(
                    Message::fromBits(std::move(received)),
                    opts.protocol, payload.size(), &ch.protocolStats);
                ch.payloadBitErrorRate =
                    payload.bitErrorRate(recovered);
                payload_fraction = static_cast<double>(payload.size()) /
                                   static_cast<double>(wire.size());
            }
            ch.seconds = ticksToSeconds(
                static_cast<Tick>(opts.quanta) * opts.quantum);
            const double good_bits =
                static_cast<double>(ch.wireBitsDecoded) *
                payload_fraction;
            ch.effectiveBandwidthBps =
                ch.seconds > 0.0
                    ? good_bits / ch.seconds *
                          bscCapacity(ch.payloadBitErrorRate)
                    : 0.0;
        }
    }

    for (unsigned s = 0; s < auditor.numSlots(); ++s) {
        if (!auditor.slotActive(s))
            continue;
        ++result.monitoredSlots;
        UnitOutcome outcome;
        outcome.slot = s;
        outcome.unit = auditor.slotTarget(s);
        outcome.backend = opts.thresholds.backend;
        outcome.indicator2Threshold =
            opts.thresholds.indicator2Threshold;
        // Both backends score the same retained window; the selected
        // one renders `detected`, the other rides along for the
        // detection-quality head-to-head.  The squash scale is the
        // unit's own calibration constant from the registry.
        const UnitDescriptor& descriptor =
            registry.require(outcome.unit);
        Indicator2Params i2params;
        if (descriptor.indicator2Scale > 0.0) {
            if (descriptor.policy == AlarmKind::Oscillation)
                i2params.runScale = descriptor.indicator2Scale;
            else
                i2params.contentionScale = descriptor.indicator2Scale;
        }
        const Indicator2 indicator2(i2params);
        const bool byIndicator2 =
            outcome.backend == DetectBackend::Indicator2;
        if (descriptor.policy == AlarmKind::Oscillation) {
            outcome.kind = AlarmKind::Oscillation;
            outcome.confidence = daemon.oscillationConfidence(s);
            outcome.indicator2 =
                indicator2.scoreOscillation(daemon.labelSeries(s));
            if (options.deferOscillationVerdicts) {
                outcome.deferredOscillation = true;
                outcome.pendingSeries = daemon.labelSeries(s);
                outcome.pendingParams = online.hunter.oscillation;
                if (byIndicator2)
                    outcome.detected = outcome.indicator2.detectedAt(
                        outcome.indicator2Threshold);
            } else {
                outcome.oscillation =
                    daemon.analyzeOscillation(s, online.hunter);
                outcome.detected =
                    byIndicator2
                        ? outcome.indicator2.detectedAt(
                              outcome.indicator2Threshold)
                        : outcome.oscillation.detected;
            }
        } else {
            outcome.kind = AlarmKind::Contention;
            outcome.contention =
                daemon.analyzeContention(s, online.hunter);
            outcome.indicator2 =
                indicator2.scoreContention(daemon.contentionQuanta(s));
            outcome.detected =
                byIndicator2 ? outcome.indicator2.detectedAt(
                                   outcome.indicator2Threshold)
                             : outcome.contention.detected;
            outcome.confidence =
                daemon.contentionConfidence(s, outcome.contention);
        }
        result.finalVerdicts.push_back(std::move(outcome));
    }
    return result;
}

std::size_t
finalizeDeferredOscillations(std::vector<UnitOutcome*>& pending)
{
    // Split by the dispatch rule the undeferred path applies, so a
    // deferred outcome is bit-identical to its inline counterpart.
    std::map<std::size_t, std::vector<UnitOutcome*>> fftGroups;
    auto resolve = [](UnitOutcome& outcome,
                      std::vector<double>&& correlogram) {
        outcome.oscillation.analysis.seriesLength =
            outcome.pendingSeries.size();
        outcome.oscillation.analysis.correlogram =
            std::move(correlogram);
        decideOscillation(outcome.oscillation.analysis,
                          outcome.pendingParams);
        outcome.oscillation.detected =
            outcome.oscillation.analysis.oscillating;
        outcome.detected =
            outcome.backend == DetectBackend::Indicator2
                ? outcome.indicator2.detectedAt(
                      outcome.indicator2Threshold)
                : outcome.oscillation.detected;
        outcome.deferredOscillation = false;
        outcome.pendingSeries.clear();
        outcome.pendingSeries.shrink_to_fit();
    };
    for (UnitOutcome* outcome : pending) {
        if (!outcome || !outcome->deferredOscillation)
            continue;
        const std::size_t n = outcome->pendingSeries.size();
        const std::size_t lag = outcome->pendingParams.maxLag;
        if (n >= kFftAutocorrMinSeries &&
            n * (lag + 1) >= kFftAutocorrOpsThreshold)
            fftGroups[lag].push_back(outcome);
        else
            resolve(*outcome,
                    autocorrelogramNaive(outcome->pendingSeries,
                                         lag));
    }
    std::size_t batched = 0;
    for (auto& [lag, group] : fftGroups) {
        std::vector<const std::vector<double>*> series;
        series.reserve(group.size());
        for (const UnitOutcome* outcome : group)
            series.push_back(&outcome->pendingSeries);
        auto correlograms = autocorrelogramsBatched(series, lag);
        for (std::size_t i = 0; i < group.size(); ++i)
            resolve(*group[i], std::move(correlograms[i]));
        batched += group.size();
    }
    return batched;
}

BusScenarioResult
runBusScenario(const ScenarioOptions& opts)
{
    BusScenarioResult result;
    result.sent = resolveMessage(opts);
    const ChannelTiming timing = makeTiming(opts);

    Machine machine(makeMachine(opts));

    BusTrojanParams tp;
    tp.timing = timing;
    tp.message = result.sent;
    tp.evasionLockPeriod = opts.busEvasionPeriod;
    machine.addProcess(std::make_unique<BusTrojan>(tp), 0); // core 0

    BusSpyParams sp;
    sp.timing = timing;
    auto spy_owned = std::make_unique<BusSpy>(sp);
    BusSpy* spy = spy_owned.get();
    machine.addProcess(std::move(spy_owned), 2); // core 1

    addNoise(machine, opts);
    if (opts.response.active())
        applyResponsePlan(machine, MonitorTarget::MemoryBus, opts.response);

    // Optional raw event-train recording (figure 4).
    std::vector<Tick> raw_events;
    if (opts.trainWindowTicks != 0) {
        const Tick limit = opts.trainWindowTicks;
        machine.mem().bus().addLockListener(
            [&raw_events, limit](Tick when, ContextId) {
                if (when < limit)
                    raw_events.push_back(when);
            });
    }

    CCAuditor auditor(machine);
    FaultHarness faults(opts, auditor);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0);
    result.deltaT = busDeltaT;
    AuditDaemon daemon(machine, auditor);
    faults.attach(daemon);

    machine.runQuanta(opts.quanta);

    std::sort(raw_events.begin(), raw_events.end());
    for (Tick t : raw_events)
        result.eventTrain.addEvent(t);
    result.quantaHistograms = daemon.contentionQuanta(0);
    result.verdict =
        daemon.analyzeContention(0, opts.thresholds.apply());
    result.spySamples = spy->samples();
    result.decoded = spy->decoded();
    result.bitErrorRate =
        slotBitErrorRate(result.sent, spy->decodedSlots());
    result.lockEvents = machine.mem().bus().locks();
    result.slotMeans = spy->slotMeans();
    result.pipeline = daemon.pipelineStats();
    result.degraded = daemon.degradedStats();
    result.confidence = daemon.contentionConfidence(0, result.verdict);
    return result;
}

DividerScenarioResult
runDividerScenario(const ScenarioOptions& opts)
{
    DividerScenarioResult result;
    result.sent = resolveMessage(opts);
    const ChannelTiming timing = makeTiming(opts);

    Machine machine(makeMachine(opts));

    DividerTrojanParams tp;
    tp.timing = timing;
    tp.message = result.sent;
    machine.addProcess(std::make_unique<DividerTrojan>(tp), 0);

    DividerSpyParams sp;
    sp.timing = timing;
    auto spy_owned = std::make_unique<DividerSpy>(sp);
    DividerSpy* spy = spy_owned.get();
    machine.addProcess(std::move(spy_owned), 1); // same core, HT 1

    addNoise(machine, opts);
    if (opts.response.active())
        applyResponsePlan(machine, MonitorTarget::IntegerDivider, opts.response);

    // Optional raw event-train recording (figure 4): expand conflict
    // bursts into individual wait events inside the window.
    std::vector<Tick> raw_events;
    if (opts.trainWindowTicks != 0) {
        const Tick limit = opts.trainWindowTicks;
        machine.divider(0).addWaitListener(
            [&raw_events, limit](const WaitConflictBurst& b) {
                for (std::uint64_t i = 0; i < b.count; ++i) {
                    const Tick t = b.start + i * b.spacing;
                    if (t >= limit)
                        break;
                    raw_events.push_back(t);
                }
            });
    }

    CCAuditor auditor(machine);
    FaultHarness faults(opts, auditor);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, /*core=*/0);
    result.deltaT = dividerDeltaT;
    AuditDaemon daemon(machine, auditor);
    faults.attach(daemon);

    machine.runQuanta(opts.quanta);

    std::sort(raw_events.begin(), raw_events.end());
    for (Tick t : raw_events)
        result.eventTrain.addEvent(t);
    result.quantaHistograms = daemon.contentionQuanta(0);
    result.verdict =
        daemon.analyzeContention(0, opts.thresholds.apply());
    result.spySamples = spy->samples();
    result.decoded = spy->decoded();
    result.bitErrorRate =
        slotBitErrorRate(result.sent, spy->decodedSlots());
    result.conflictEvents = machine.divider(0).totalConflicts();
    result.slotMeans = spy->slotMeans();
    result.pipeline = daemon.pipelineStats();
    result.degraded = daemon.degradedStats();
    result.confidence = daemon.contentionConfidence(0, result.verdict);
    return result;
}

DividerScenarioResult
runMultiplierScenario(const ScenarioOptions& opts)
{
    DividerScenarioResult result;
    result.sent = resolveMessage(opts);
    const ChannelTiming timing = makeTiming(opts);

    Machine machine(makeMachine(opts));

    DividerTrojanParams tp;
    tp.timing = timing;
    tp.message = result.sent;
    tp.useMultiplier = true;
    machine.addProcess(std::make_unique<DividerTrojan>(tp), 0);

    DividerSpyParams sp;
    sp.timing = timing;
    sp.useMultiplier = true;
    // Multiplier ops are 3 cycles: 20 ops -> 60 uncontended, 120
    // contended; split the decode threshold between the plateaus.
    sp.decodeThreshold = 90;
    auto spy_owned = std::make_unique<DividerSpy>(sp);
    DividerSpy* spy = spy_owned.get();
    machine.addProcess(std::move(spy_owned), 1); // same core, HT 1

    addNoise(machine, opts);
    if (opts.response.active())
        applyResponsePlan(machine, MonitorTarget::IntegerMultiplier, opts.response);

    CCAuditor auditor(machine);
    FaultHarness faults(opts, auditor);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorMultiplier(key, 0, /*core=*/0);
    result.deltaT = multiplierDeltaT;
    AuditDaemon daemon(machine, auditor);
    faults.attach(daemon);

    machine.runQuanta(opts.quanta);

    result.quantaHistograms = daemon.contentionQuanta(0);
    result.verdict =
        daemon.analyzeContention(0, opts.thresholds.apply());
    result.spySamples = spy->samples();
    result.decoded = spy->decoded();
    result.bitErrorRate =
        slotBitErrorRate(result.sent, spy->decodedSlots());
    result.conflictEvents = machine.multiplier(0).totalConflicts();
    result.slotMeans = spy->slotMeans();
    result.pipeline = daemon.pipelineStats();
    result.degraded = daemon.degradedStats();
    result.confidence = daemon.contentionConfidence(0, result.verdict);
    return result;
}

CacheScenarioResult
runCacheScenario(const ScenarioOptions& opts)
{
    CacheScenarioResult result;
    result.sent = resolveMessage(opts);
    const ChannelTiming timing = makeTiming(opts);

    MachineParams mp = makeMachine(opts);
    // The cache channel experiments configure the 256 KB L2 with
    // associativity 1 (4096 sets) so that each side implements the
    // prime/probe conflict with a single line per set; see DESIGN.md
    // for the substitution note.
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    Machine machine(mp);

    CacheChannelLayout layout;
    layout.l2NumSets = mp.mem.l2.numSets();
    layout.lineSize = mp.mem.l2.lineSize;
    layout.channelSets = opts.channelSets;
    layout.linesPerSet = opts.linesPerSet;

    const std::size_t rounds = opts.effectiveCacheRounds();

    CacheTrojanParams tp;
    tp.timing = timing;
    tp.message = result.sent;
    tp.layout = layout;
    tp.roundsPerBit = rounds;
    machine.addProcess(std::make_unique<CacheTrojan>(tp), 0);

    CacheSpyParams sp;
    sp.timing = timing;
    sp.layout = layout;
    sp.noiseEvery = opts.cacheNoiseEvery;
    sp.dormantNoiseGap = opts.cacheDormantNoiseGap;
    sp.roundsPerBit = rounds;
    sp.seed = opts.seed + 7;
    auto spy_owned = std::make_unique<CacheSpy>(sp);
    CacheSpy* spy = spy_owned.get();
    machine.addProcess(std::move(spy_owned), 1); // same core, HT 1

    addNoise(machine, opts);
    if (opts.response.active())
        applyResponsePlan(machine, MonitorTarget::L2Cache, opts.response);

    CCAuditor auditor(machine);
    FaultHarness faults(opts, auditor);
    const AuditKey key = requestAuditKey(true);
    if (opts.idealTracker)
        auditor.monitorCacheIdeal(key, 0, /*core=*/0);
    else
        auditor.monitorCache(key, 0, /*core=*/0, opts.trackerParams);
    AuditDaemon daemon(machine, auditor);
    faults.attach(daemon);

    machine.runQuanta(opts.quanta);

    result.records = daemon.conflictRecords(0);
    result.labelSeries = daemon.labelSeries(0);
    result.verdict =
        daemon.analyzeOscillation(0, opts.thresholds.apply());
    result.spyRatios = spy->ratios();
    result.decoded = spy->decoded();
    result.bitErrorRate =
        slotBitErrorRate(result.sent, spy->decodedSlots());
    if (auto* tracker = auditor.tracker(0))
        result.trackedConflicts = tracker->conflictMisses();
    if (auto* oracle = auditor.idealTracker(0))
        result.trackedConflicts = oracle->conflictMisses();
    result.pipeline = daemon.pipelineStats();
    result.degraded = daemon.degradedStats();
    result.confidence = daemon.oscillationConfidence(0);
    return result;
}

TlbScenarioResult
runTlbScenario(const ScenarioOptions& opts)
{
    TlbScenarioResult result;
    result.sent = resolveMessage(opts);
    result.wire = resolveWire(opts, result.sent);
    const ChannelTiming timing = makeTiming(opts);

    MachineParams mp = makeMachine(opts);
    // The TLB is off by default (keeping non-TLB runs bit-identical to
    // the pre-TLB simulator); this scenario is what it exists for.
    mp.mem.tlb.enabled = true;
    Machine machine(mp);

    const Tlb& tlb = machine.mem().tlb(0);
    TlbChannelLayout layout;
    layout.tlbNumSets = tlb.numSets();
    layout.tlbWays = tlb.params().associativity;
    layout.pageBytes = tlb.params().pageBytes;
    layout.channelSets = opts.tlbChannelSets;

    const std::size_t rounds = opts.effectiveCacheRounds();

    TlbTrojanParams tp;
    tp.timing = timing;
    tp.message = result.wire;
    tp.layout = layout;
    tp.roundsPerBit = rounds;
    machine.addProcess(std::make_unique<TlbTrojan>(tp), 0);

    TlbSpyParams sp;
    sp.timing = timing;
    sp.layout = layout;
    sp.roundsPerBit = rounds;
    sp.seed = opts.seed + 7;
    auto spy_owned = std::make_unique<TlbSpy>(sp);
    TlbSpy* spy = spy_owned.get();
    machine.addProcess(std::move(spy_owned), 1); // same core, HT 1

    addNoise(machine, opts);
    if (opts.response.active())
        applyResponsePlan(machine, MonitorTarget::Tlb, opts.response);

    CCAuditor auditor(machine);
    FaultHarness faults(opts, auditor);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorTlb(key, 0, /*core=*/0);
    AuditDaemon daemon(machine, auditor);
    faults.attach(daemon);

    machine.runQuanta(opts.quanta);

    result.records = daemon.conflictRecords(0);
    result.labelSeries = daemon.labelSeries(0);
    result.verdict =
        daemon.analyzeOscillation(0, opts.thresholds.apply());
    result.spyRatios = spy->ratios();
    result.decoded = spy->decoded();
    result.bitErrorRate =
        slotBitErrorRate(result.wire, spy->decodedSlots());
    result.payloadBitErrorRate = result.bitErrorRate;
    if (opts.protocol.enabled) {
        // Receiver's link layer: the decoded slots, in order, are its
        // view of one wire pass (the trojan repeats cyclically, so
        // slots past the wire length are retransmissions and the frame
        // repeats inside the wire already vote them down).
        std::vector<bool> received;
        const std::size_t limit = std::min(result.decoded.size(),
                                           result.wire.size());
        received.reserve(limit);
        for (std::size_t i = 0; i < limit; ++i)
            received.push_back(result.decoded.bit(i));
        const Message recovered = decodeProtocol(
            Message::fromBits(std::move(received)), opts.protocol,
            result.sent.size(), &result.protocolStats);
        result.payloadBitErrorRate =
            result.sent.bitErrorRate(recovered);
    }
    result.tlbConflicts = machine.mem().tlb(0).conflicts();
    result.pipeline = daemon.pipelineStats();
    result.degraded = daemon.degradedStats();
    result.confidence = daemon.oscillationConfidence(0);
    return result;
}

BenignScenarioResult
runBenignPair(const std::string& a, const std::string& b,
              const ScenarioOptions& opts)
{
    BenignScenarioResult result;

    // Pass 1: audit the memory bus and core 0's divider.
    {
        Machine machine(makeMachine(opts));
        machine.addProcess(makeBenchmark(a, opts.seed + 1), 0);
        machine.addProcess(makeBenchmark(b, opts.seed + 2), 1);
        addNoise(machine, opts);
        if (opts.response.active())
            applyResponsePlan(machine,
                              {ContextId{0}, ContextId{1}},
                              opts.response);

        CCAuditor auditor(machine);
        FaultHarness faults(opts, auditor);
        const AuditKey key = requestAuditKey(true);
        auditor.monitorBus(key, 0);
        auditor.monitorDivider(key, 1, 0);
        AuditDaemon daemon(machine, auditor);
        faults.attach(daemon);
        machine.runQuanta(opts.quanta);

        result.busQuanta = daemon.contentionQuanta(0);
        result.dividerQuanta = daemon.contentionQuanta(1);
        result.busVerdict =
            daemon.analyzeContention(0, opts.thresholds.apply());
        result.dividerVerdict =
            daemon.analyzeContention(1, opts.thresholds.apply());
        result.pipeline.accumulate(daemon.pipelineStats());
        result.degraded.accumulate(daemon.degradedStats());
        result.confidence = std::min(
            {result.confidence,
             daemon.contentionConfidence(0, result.busVerdict),
             daemon.contentionConfidence(1, result.dividerVerdict)});
    }

    // Pass 2: identical run auditing core 0's L2 cache instead (the
    // auditor monitors at most two units at a time).
    {
        Machine machine(makeMachine(opts));
        machine.addProcess(makeBenchmark(a, opts.seed + 1), 0);
        machine.addProcess(makeBenchmark(b, opts.seed + 2), 1);
        addNoise(machine, opts);
        if (opts.response.active())
            applyResponsePlan(machine,
                              {ContextId{0}, ContextId{1}},
                              opts.response);

        CCAuditor auditor(machine);
        FaultHarness faults(opts, auditor);
        const AuditKey key = requestAuditKey(true);
        auditor.monitorCache(key, 0, 0);
        AuditDaemon daemon(machine, auditor);
        faults.attach(daemon);
        machine.runQuanta(opts.quanta);

        result.cacheLabelSeries = daemon.labelSeries(0);
        result.cacheVerdict =
            daemon.analyzeOscillation(0, opts.thresholds.apply());
        result.pipeline.accumulate(daemon.pipelineStats());
        result.degraded.accumulate(daemon.degradedStats());
        result.confidence = std::min(result.confidence,
                                     daemon.oscillationConfidence(0));
    }
    return result;
}

} // namespace cchunter
