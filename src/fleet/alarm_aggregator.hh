/**
 * @file
 * Fleet alarm aggregation.
 *
 * Shard workers hand the aggregator one TenantAlarmBatch per audited
 * tenant.  Ingest is thread-safe and order-insensitive (batches are
 * keyed by tenant id), so the incident stream does not depend on which
 * shard or thread finished first; finalize() then walks tenants in
 * ascending-id order, deduplicates repeated alarms per (slot, channel
 * signature), correlates recurring signatures across tenants (the same
 * channel on several hosts is a stronger fleet-level signal than any
 * single alarm) and emits scored incidents into an IncidentStore.
 */

#ifndef CCHUNTER_FLEET_ALARM_AGGREGATOR_HH
#define CCHUNTER_FLEET_ALARM_AGGREGATOR_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "auditor/daemon.hh"
#include "fleet/incident_store.hh"
#include "fleet/tenant_registry.hh"

namespace cchunter
{

/** One tenant's audit output, as handed off by a shard worker. */
struct TenantAlarmBatch
{
    TenantId tenant = 0;
    std::size_t shard = 0;
    std::vector<Alarm> alarms;
    PipelineStats pipeline;
    DegradedStats degraded;
    std::uint64_t quantaRecorded = 0;

    /** Monitored units whose end-of-run (offline) verdict detected a
     *  channel — observability for the batched-FFT finalization; not
     *  part of the incident stream. */
    std::uint64_t offlineDetectedUnits = 0;
};

/** Aggregation policy. */
struct AggregatorParams
{
    /** Alarms below this confidence are dropped (and counted). */
    double minConfidence = 0.0;

    /**
     * Alarms on the same (slot, signature) merge into one incident
     * while their quantum gap stays within this; a longer silence
     * starts a fresh incident.
     */
    std::uint64_t dedupGapQuanta = 8;

    /** Distinct tenants a signature needs for fleet-wide correlation. */
    std::size_t crossTenantMinTenants = 2;

    /** Severity thresholds on the incident score. */
    double warningScore = 0.35;
    double criticalScore = 0.7;

    /** Score boost applied to cross-tenant correlated incidents. */
    double crossTenantBoost = 0.25;
};

/**
 * Order-insensitive alarm collector with deterministic finalization.
 */
class AlarmAggregator
{
  public:
    explicit AlarmAggregator(AggregatorParams params = {});

    /**
     * Record one tenant's batch.  Thread-safe; repeated batches for
     * the same tenant append in arrival order (a tenant audited in
     * stages).  The eventual incident stream depends only on the *set*
     * of batches per tenant, not on ingest interleaving across
     * tenants.
     */
    void ingest(TenantAlarmBatch batch);

    /**
     * Deduplicate, correlate and emit incidents into `store`.
     * Deterministic: tenants in ascending-id order (per-tenant
     * incidents in first-alarm order), then fleet-wide correlation
     * records in ascending-signature order.  Call once, after every
     * worker has finished ingesting.
     */
    void finalize(IncidentStore& store);

    std::size_t batchesIngested() const { return batches_; }
    std::uint64_t alarmsSeen() const { return alarmsSeen_; }

    /** Alarms dropped by the confidence floor (set by finalize()). */
    std::uint64_t alarmsFiltered() const { return alarmsFiltered_; }

    /** Pipeline health accumulated across every ingested batch. */
    const PipelineStats& pipeline() const { return pipeline_; }

    /** Degradation ledger accumulated across every ingested batch. */
    const DegradedStats& degraded() const { return degraded_; }

    /** Aggregator counters as stat entries under `prefix`. */
    std::vector<StatEntry> statEntries(
        const std::string& prefix = "fleet.aggregator.") const;

  private:
    double scoreOf(double mean_confidence,
                   std::uint64_t occurrences) const;
    IncidentSeverity severityOf(double score) const;

    AggregatorParams params_;

    std::mutex mutex_;
    std::map<TenantId, std::vector<Alarm>> alarmsByTenant_;
    std::size_t batches_ = 0;
    std::uint64_t alarmsSeen_ = 0;
    std::uint64_t alarmsFiltered_ = 0;
    PipelineStats pipeline_;
    DegradedStats degraded_;
};

} // namespace cchunter

#endif // CCHUNTER_FLEET_ALARM_AGGREGATOR_HH
