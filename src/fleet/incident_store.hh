/**
 * @file
 * Fleet-level incident records.
 *
 * The aggregator turns raw per-unit alarms into incidents: one record
 * per sustained detection on one tenant's unit, plus fleet-wide
 * records when the same channel signature shows up on several tenants
 * at once.  The store scores severity, rate-limits emission (a noisy
 * tenant cannot drown the triage queue) and renders the stream in a
 * canonical byte-stable text form — the form the fleet equivalence
 * tests compare across shard and thread layouts.
 */

#ifndef CCHUNTER_FLEET_INCIDENT_STORE_HH
#define CCHUNTER_FLEET_INCIDENT_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "auditor/daemon.hh"
#include "fleet/tenant_registry.hh"
#include "sim/stats_report.hh"

namespace cchunter
{

/** Triage bands for incidents. */
enum class IncidentSeverity : std::uint8_t
{
    Info,
    Warning,
    Critical,
};

/** Short lower-case name of a severity band. */
const char* incidentSeverityName(IncidentSeverity severity);

/** One fleet incident. */
struct Incident
{
    /** Emission-order id, assigned by the store (canonical order:
     *  tenants ascending, then fleet-wide records). */
    std::uint64_t id = 0;

    /** True for a cross-tenant correlation record; `tenant` and
     *  `slot` are meaningless then. */
    bool fleetWide = false;

    TenantId tenant = 0;
    unsigned slot = 0;

    MonitorTarget unit = MonitorTarget::None;
    AlarmKind kind = AlarmKind::Contention;

    /** Alarm::channelSignature() shared by every merged alarm. */
    std::uint64_t signature = 0;

    /** Quantum range the detection spanned. */
    std::uint64_t firstQuantum = 0;
    std::uint64_t lastQuantum = 0;

    /** Alarms merged into this record. */
    std::uint64_t occurrences = 0;

    double meanConfidence = 1.0;
    double minConfidence = 1.0;

    /** Severity score in [0, 1] (see AlarmAggregator scoring). */
    double score = 0.0;
    IncidentSeverity severity = IncidentSeverity::Info;

    /** Member of a cross-tenant correlation (severity elevated). */
    bool correlated = false;

    /** Quanta between the first offending quantum and the last alarm
     *  merged before emission — the alarm→incident latency, i.e. how
     *  long the channel ran before the record that triggers a
     *  response was complete.  Time-to-mitigate = this + the response
     *  ladder's escalation delay. */
    std::uint64_t detectionLatencyQuanta() const
    {
        return lastQuantum - firstQuantum;
    }

    /** Tenants sharing the signature (fleet-wide records only,
     *  ascending). */
    std::vector<TenantId> correlatedTenants;

    /** Canonical one-line rendering (byte-stable). */
    std::string streamLine() const;
};

/** Emission caps; 0 disables the respective cap. */
struct IncidentRateLimit
{
    /** Per-tenant incident cap (fleet-wide records are exempt). */
    std::size_t maxPerTenant = 16;

    /** Whole-store cap, fleet-wide records included. */
    std::size_t maxTotal = 256;
};

/**
 * Ordered incident log with rate-limited admission.
 */
class IncidentStore
{
  public:
    explicit IncidentStore(IncidentRateLimit limit = {});

    /**
     * Rebuild a store from persisted state (persist/fleet_snapshot):
     * the incident log, the suppression count and the rate limits.
     * Per-tenant admission counters and the id sequence are derived
     * from the incidents themselves, so a restored store continues
     * emitting (and rate-limiting) exactly where the snapshot left
     * off.
     */
    static IncidentStore restored(IncidentRateLimit limit,
                                  std::vector<Incident> incidents,
                                  std::uint64_t suppressed);

    /**
     * Admit an incident: assigns the next id and appends it, unless a
     * rate limit suppresses it (the suppression is counted, and the
     * id sequence does not advance).  Returns whether it was admitted.
     */
    bool emit(Incident incident);

    const std::vector<Incident>& incidents() const
    {
        return incidents_;
    }

    /** Incidents suppressed by either cap. */
    std::uint64_t suppressed() const { return suppressed_; }

    /** The emission caps this store admits under. */
    const IncidentRateLimit& limit() const { return limit_; }

    std::size_t countBySeverity(IncidentSeverity severity) const;

    /** Cross-tenant (fleet-wide) records admitted. */
    std::size_t fleetWideCount() const;

    /** Store counters as stat entries (two-level names under
     *  `prefix`, e.g. fleet.incidents.critical). */
    std::vector<StatEntry> statEntries(
        const std::string& prefix = "fleet.incidents.") const;

    /**
     * Canonical text rendering of the whole stream, one line per
     * incident.  Byte-identical for identical incident sequences —
     * the fleet determinism contract is stated over this string.
     */
    std::string streamText() const;

    /** FNV-1a 64-bit hash of streamText(). */
    std::uint64_t streamHash() const;

  private:
    IncidentRateLimit limit_;
    std::vector<Incident> incidents_;
    std::vector<std::pair<TenantId, std::size_t>> perTenant_;
    std::uint64_t suppressed_ = 0;
    std::uint64_t nextId_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_FLEET_INCIDENT_STORE_HH
