#include "fleet/tenant_registry.hh"

#include <algorithm>

#include "units/unit_registry.hh"
#include "util/logging.hh"

namespace cchunter
{

void
TenantRegistry::add(TenantConfig config)
{
    if (config.name.empty())
        config.name = "tenant" + std::to_string(config.id);
    const auto pos = std::lower_bound(
        tenants_.begin(), tenants_.end(), config.id,
        [](const TenantConfig& t, TenantId id) { return t.id < id; });
    if (pos != tenants_.end() && pos->id == config.id)
        fatal("TenantRegistry: duplicate tenant id ", config.id);
    tenants_.insert(pos, std::move(config));
}

bool
TenantRegistry::contains(TenantId id) const
{
    const auto pos = std::lower_bound(
        tenants_.begin(), tenants_.end(), id,
        [](const TenantConfig& t, TenantId i) { return t.id < i; });
    return pos != tenants_.end() && pos->id == id;
}

const TenantConfig&
TenantRegistry::at(TenantId id) const
{
    const auto pos = std::lower_bound(
        tenants_.begin(), tenants_.end(), id,
        [](const TenantConfig& t, TenantId i) { return t.id < i; });
    if (pos == tenants_.end() || pos->id != id)
        fatal("TenantRegistry: unknown tenant id ", id);
    return *pos;
}

std::size_t
TenantRegistry::shardOf(TenantId id, std::size_t shards)
{
    if (shards == 0)
        shards = 1;
    return static_cast<std::size_t>(id) % shards;
}

std::vector<std::vector<TenantId>>
TenantRegistry::shardPlan(std::size_t shards) const
{
    if (shards == 0)
        shards = 1;
    std::vector<std::vector<TenantId>> plan(shards);
    // tenants_ is ascending, so each shard's list comes out ascending
    // too — the order the shard worker runs them in.
    for (const TenantConfig& t : tenants_)
        plan[shardOf(t.id, shards)].push_back(t.id);
    return plan;
}

TenantRegistry
TenantRegistry::synthetic(const SyntheticFleetOptions& options)
{
    TenantRegistry registry;
    if (options.mix.empty())
        fatal("synthetic fleet: workload mix must not be empty");
    for (std::size_t i = 0; i < options.tenants; ++i) {
        TenantConfig t;
        t.id = static_cast<TenantId>(i);
        t.audit.workload = options.mix[i % options.mix.size()];
        ScenarioOptions& sc = t.audit.scenario;
        sc.quanta = options.quanta;
        sc.quantum = options.quantum;
        sc.noiseProcesses = options.noiseProcesses;
        sc.seed = options.distinctSeeds ? options.seed + i
                                        : options.seed;
        // Oscillation-policy units (prime/probe channels) need the
        // higher signalling rate; contention units and benign pairs
        // take the burst-channel rate.
        const UnitDescriptor* unit =
            UnitRegistry::instance().byWorkload(t.audit.workload);
        sc.bandwidthBps =
            unit && unit->policy == AlarmKind::Oscillation
                ? options.cacheBandwidthBps
                : options.contentionBandwidthBps;
        t.audit.online.clusteringIntervalQuanta =
            options.clusteringIntervalQuanta;
        registry.add(std::move(t));
    }
    return registry;
}

} // namespace cchunter
