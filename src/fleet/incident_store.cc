#include "fleet/incident_store.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "persist/codec.hh"

namespace cchunter
{

const char*
incidentSeverityName(IncidentSeverity severity)
{
    switch (severity) {
    case IncidentSeverity::Info:
        return "info";
    case IncidentSeverity::Warning:
        return "warning";
    case IncidentSeverity::Critical:
        return "critical";
    }
    return "?";
}

std::string
Incident::streamLine() const
{
    // Byte-stable: fixed field order, fixed float precision, no
    // locale-dependent formatting.  The fleet determinism contract is
    // stated over the concatenation of these lines.
    std::ostringstream os;
    os << "incident " << id;
    if (fleetWide) {
        os << " fleet-wide";
    } else {
        os << " tenant=" << tenant << " slot=" << slot;
    }
    os << " unit=" << monitorTargetName(unit)
       << " kind=" << alarmKindName(kind)
       << " sig=0x" << std::hex << std::setw(16) << std::setfill('0')
       << signature << std::dec << std::setfill(' ')
       << " quanta=[" << firstQuantum << ',' << lastQuantum << ']'
       << " occ=" << occurrences
       << std::fixed << std::setprecision(4)
       << " conf=" << meanConfidence << '/' << minConfidence
       << " score=" << score
       << " sev=" << incidentSeverityName(severity);
    if (fleetWide) {
        os << " tenants=[";
        for (std::size_t i = 0; i < correlatedTenants.size(); ++i) {
            if (i)
                os << ',';
            os << correlatedTenants[i];
        }
        os << ']';
    } else {
        os << " corr=" << (correlated ? 1 : 0);
    }
    return os.str();
}

IncidentStore::IncidentStore(IncidentRateLimit limit) : limit_(limit)
{
}

IncidentStore
IncidentStore::restored(IncidentRateLimit limit,
                        std::vector<Incident> incidents,
                        std::uint64_t suppressed)
{
    IncidentStore store(limit);
    store.suppressed_ = suppressed;
    for (Incident& incident : incidents) {
        if (!incident.fleetWide) {
            auto pos = std::find_if(store.perTenant_.begin(),
                                    store.perTenant_.end(),
                                    [&](const auto& p) {
                                        return p.first ==
                                               incident.tenant;
                                    });
            if (pos == store.perTenant_.end())
                pos = store.perTenant_.insert(store.perTenant_.end(),
                                              {incident.tenant, 0});
            ++pos->second;
        }
        store.nextId_ = std::max(store.nextId_, incident.id + 1);
        store.incidents_.push_back(std::move(incident));
    }
    return store;
}

bool
IncidentStore::emit(Incident incident)
{
    if (limit_.maxTotal != 0 && incidents_.size() >= limit_.maxTotal) {
        ++suppressed_;
        return false;
    }
    if (!incident.fleetWide && limit_.maxPerTenant != 0) {
        auto pos = std::find_if(
            perTenant_.begin(), perTenant_.end(),
            [&](const auto& p) { return p.first == incident.tenant; });
        if (pos == perTenant_.end())
            pos = perTenant_.insert(perTenant_.end(),
                                    {incident.tenant, 0});
        if (pos->second >= limit_.maxPerTenant) {
            ++suppressed_;
            return false;
        }
        ++pos->second;
    }
    incident.id = nextId_++;
    incidents_.push_back(std::move(incident));
    return true;
}

std::size_t
IncidentStore::countBySeverity(IncidentSeverity severity) const
{
    return static_cast<std::size_t>(std::count_if(
        incidents_.begin(), incidents_.end(),
        [&](const Incident& i) { return i.severity == severity; }));
}

std::size_t
IncidentStore::fleetWideCount() const
{
    return static_cast<std::size_t>(
        std::count_if(incidents_.begin(), incidents_.end(),
                      [](const Incident& i) { return i.fleetWide; }));
}

std::vector<StatEntry>
IncidentStore::statEntries(const std::string& prefix) const
{
    std::vector<StatEntry> entries;
    entries.push_back({prefix + "total",
                       static_cast<double>(incidents_.size()),
                       "incidents admitted to the store"});
    entries.push_back(
        {prefix + "info",
         static_cast<double>(countBySeverity(IncidentSeverity::Info)),
         "incidents at info severity"});
    entries.push_back(
        {prefix + "warning",
         static_cast<double>(
             countBySeverity(IncidentSeverity::Warning)),
         "incidents at warning severity"});
    entries.push_back(
        {prefix + "critical",
         static_cast<double>(
             countBySeverity(IncidentSeverity::Critical)),
         "incidents at critical severity"});
    entries.push_back({prefix + "fleetWide",
                       static_cast<double>(fleetWideCount()),
                       "cross-tenant correlation incidents"});
    entries.push_back({prefix + "suppressed",
                       static_cast<double>(suppressed_),
                       "incidents dropped by rate limits"});
    // Alarm→incident latency: how many quanta of channel activity
    // each incident spanned before it was complete enough to emit.
    std::uint64_t latency_sum = 0;
    std::uint64_t latency_max = 0;
    std::size_t latency_count = 0;
    for (const Incident& incident : incidents_) {
        if (incident.fleetWide)
            continue;
        const std::uint64_t latency =
            incident.detectionLatencyQuanta();
        latency_sum += latency;
        latency_max = std::max(latency_max, latency);
        ++latency_count;
    }
    entries.push_back(
        {prefix + "latencyMeanQuanta",
         latency_count ? static_cast<double>(latency_sum) /
                             static_cast<double>(latency_count)
                       : 0.0,
         "mean quanta from first offending quantum to emission"});
    entries.push_back(
        {prefix + "latencyMaxQuanta", static_cast<double>(latency_max),
         "max quanta from first offending quantum to emission"});
    return entries;
}

std::string
IncidentStore::streamText() const
{
    std::string text;
    for (const Incident& incident : incidents_) {
        text += incident.streamLine();
        text += '\n';
    }
    return text;
}

std::uint64_t
IncidentStore::streamHash() const
{
    // The same FNV-1a 64 that checksums every persisted snapshot
    // record (persist/codec) — one hash guards the live stream and
    // the at-rest bytes.
    return persist::fnv1a64(streamText());
}

} // namespace cchunter
