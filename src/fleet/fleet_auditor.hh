/**
 * @file
 * The fleet auditor: sharded multi-tenant audit orchestration.
 *
 * Every tenant in the registry is one independent simulated machine
 * under live audit (scenario/runOnlineAudit).  The auditor partitions
 * the fleet into shards with the registry's deterministic assignment
 * rule, runs the shards concurrently on a ThreadPool (the calling
 * thread participates), and hands each tenant's alarm batch to a
 * per-shard BoundedQueue drained by a collector thread into the
 * AlarmAggregator.  Because each tenant run is deterministic, ingest
 * is order-insensitive and finalization is canonical, the resulting
 * incident stream is bit-identical for any shard count, worker count
 * or per-tenant analysis thread count — parallelism buys wall-clock
 * time, never different answers.
 */

#ifndef CCHUNTER_FLEET_FLEET_AUDITOR_HH
#define CCHUNTER_FLEET_FLEET_AUDITOR_HH

#include <cstdint>
#include <vector>

#include "fleet/alarm_aggregator.hh"
#include "fleet/incident_store.hh"
#include "fleet/tenant_registry.hh"
#include "persist/recovery.hh"
#include "respond/orchestrator.hh"
#include "respond/residual.hh"
#include "util/bounded_queue.hh"

namespace cchunter
{

/**
 * Shard-worker supervision.  The watchdog thread polls per-shard
 * heartbeats; a shard whose worker died (or stopped beating) with
 * unclaimed tenants is re-dispatched after an exponential backoff, at
 * most maxRestartsPerShard times.  Exactly-once auditing is guaranteed
 * by per-tenant claim flags, so a redispatch (or even a spurious one)
 * can never double-audit: it only picks up what the dead worker left.
 */
struct WatchdogParams
{
    bool enabled = false;

    /** A beating worker is declared stalled after this much silence. */
    double stallTimeoutMs = 500.0;

    /** Watchdog wake-up cadence (BoundedQueue::popFor, so shutdown
     *  interrupts the wait immediately). */
    double pollIntervalMs = 20.0;

    /** Re-dispatch budget per shard; exhausted means the shard's
     *  remaining tenants are abandoned (and counted). */
    std::size_t maxRestartsPerShard = 2;

    /** First backoff; doubles per restart of the same shard. */
    double backoffBaseMs = 2.0;

    /** simulateStallShard value meaning "no stall simulation". */
    static constexpr std::size_t kNoStall =
        static_cast<std::size_t>(-1);

    /**
     * Test hook: the first worker on this shard dies (returns without
     * claiming further tenants) after auditing
     * simulateStallAfterTenants of its plan.  Redispatched workers are
     * immune, so the watchdog path is exercised deterministically.
     * Stall simulation disables batchedFft for the run — a dead
     * worker's staged batches would be lost — which does not change
     * the incident stream.
     */
    std::size_t simulateStallShard = kNoStall;
    std::size_t simulateStallAfterTenants = 0;
};

/** What the watchdog saw and did during one run. */
struct WatchdogStats
{
    std::uint64_t polls = 0;            //!< watchdog wake-ups
    std::uint64_t stallsDetected = 0;   //!< dead/silent shard workers
    std::uint64_t restartsDispatched = 0; //!< redispatches (all shards)
    std::uint64_t tenantsRedispatched = 0; //!< tenants picked back up
    std::uint64_t abandonedTenants = 0; //!< left after budget ran out
};

/**
 * Incident-driven response orchestration for the fleet run.  When
 * enabled, the finalized incident stream is fed through a
 * ResponseOrchestrator (respond/orchestrator.hh) after aggregation:
 * each (tenant, unit) pair climbs the policy's escalation ladder, the
 * resulting action log inherits the incident stream's byte-identity
 * contract, and — with persistence on — the orchestrator's state rides
 * the snapshot so active quarantines survive a crash/restart.
 */
struct FleetResponseParams
{
    bool enabled = false;

    /** Ladder thresholds, hysteresis, rate caps and plan knobs. */
    ResponsePolicy policy;

    /**
     * After orchestration, re-run each engaged pair's trojan/spy
     * scenario under its response level and price the mitigation:
     * residual channel bandwidth (protocol decoder as ground truth)
     * and benign-workload performance tax.  Deterministic but not
     * free — each measurement is three extra scenario runs.
     */
    bool measureResidual = false;

    /** Cap on residual measurements per run (engaged pairs beyond it
     *  are skipped in canonical (tenant, unit) order). */
    std::size_t maxResidualProbes = 4;
};

/** One engaged pair's measured mitigation outcome. */
struct ResidualMeasurement
{
    TenantId tenant = 0;
    MonitorTarget unit = MonitorTarget::None;
    ResponseLevel level = ResponseLevel::Observe;

    /** The channel re-run with no response engaged (the baseline). */
    ResidualProbe unmitigated;

    /** The channel re-run under `level`. */
    ResidualProbe mitigated;

    /** Bandwidth reduction fraction in [0, 1]. */
    double reduction = 0.0;

    /** Benign-pair slowdown under `level`. */
    TaxProbe tax;
};

/** What the response loop did during one fleet run. */
struct FleetResponseReport
{
    bool enabled = false;

    /** The orchestrator after observing the finalized incidents;
     *  exposes the action log, stream hash and pair levels. */
    ResponseOrchestrator orchestrator;

    /** Actions carried in from a restored snapshot (restart case). */
    std::uint64_t restoredActions = 0;

    /** Residual-bandwidth + tax measurements for engaged pairs. */
    std::vector<ResidualMeasurement> residuals;

    /** The report as flat stat entries under `prefix`. */
    std::vector<StatEntry> statEntries(
        const std::string& prefix = "fleet.respond.") const;
};

/** Fleet-run knobs. */
struct FleetAuditParams
{
    /** Shard count; 0 sizes to the hardware concurrency.  Always
     *  clamped to the fleet size (an empty shard does no work). */
    std::size_t shards = 0;

    /** ThreadPool workers running the shards; 0 sizes to the hardware
     *  concurrency.  The calling thread participates either way. */
    std::size_t workerThreads = 0;

    /**
     * Override of every tenant's online.analysisThreads (the
     * per-tenant analysis fan-out); 0 keeps each tenant's own
     * setting.  Any value yields the same incident stream.
     */
    std::size_t analysisThreads = 0;

    /** Capacity of each shard's batch hand-off queue. */
    std::size_t batchQueueCapacity = 4;

    /**
     * Full-queue behaviour for the batch hand-off.  Block (the
     * default) preserves every batch and hence the determinism
     * contract; DropOldest sheds under pressure and is counted per
     * shard, at the cost of a timing-dependent incident stream.
     */
    OverflowPolicy batchQueueOverflow = OverflowPolicy::Block;

    /**
     * Batch each shard's end-of-run oscillation transforms: tenants
     * run with deferred cache verdicts, and the shard worker resolves
     * every deferred series in one planned FFT pass (shared twiddle
     * tables, one scratch arena) after its last tenant finishes.
     * Outcomes are identical to independent transforms — incidents
     * derive from the (unaffected) alarm stream either way, so the
     * cross-shard bit-identity contract is preserved.  Config key:
     * `fleet.batchedFft`.
     */
    bool batchedFft = true;

    AggregatorParams aggregator;
    IncidentRateLimit rateLimit;

    /**
     * Crash-safe persistence (persist/recovery.hh): with a directory
     * configured, every collected batch is journaled before it can
     * matter, the journal is compacted into an atomic snapshot every
     * checkpointIntervalBatches, and `resume` replays whatever
     * survived a previous kill — the resumed run's incident stream is
     * byte-identical to an uninterrupted one.  Config keys:
     * `persist.dir`, `persist.checkpoint_interval`, `persist.resume`,
     * `persist.final_snapshot`.
     */
    persist::PersistPolicy persist;

    /** Shard-worker supervision (off by default). */
    WatchdogParams watchdog;

    /** Incident-driven mitigation orchestration (off by default). */
    FleetResponseParams respond;

    /**
     * Test hook simulating a kill: the run "dies" immediately after
     * the Nth batch of this run has been durably persisted — no
     * finalize, no final snapshot, report.crashed set.  0 disables;
     * meaningful only with persistence enabled (ignored otherwise).
     */
    std::uint64_t simulateCrashAfterBatches = 0;
};

/** One shard's hand-off accounting. */
struct ShardStats
{
    std::size_t shard = 0;
    std::size_t tenants = 0;         //!< tenants assigned by the plan
    std::uint64_t alarms = 0;        //!< raw alarms collected
    std::uint64_t batchesPushed = 0; //!< batches through the queue
    std::uint64_t batchesDropped = 0; //!< batches shed (DropOldest)
    std::size_t queueHighWater = 0;  //!< deepest hand-off backlog
    std::uint64_t offlineDetected = 0; //!< end-of-run unit detections
    std::uint64_t batchedSeries = 0; //!< series through the batched FFT
    std::uint64_t restarts = 0;      //!< watchdog redispatches
    std::uint64_t recoveredTenants = 0; //!< tenants restored, not run
};

/** Everything one fleet run produced. */
struct FleetAuditReport
{
    /** The scored, rate-limited, canonically ordered incident log. */
    IncidentStore incidents;

    std::size_t shardsUsed = 0;
    std::vector<ShardStats> shards;

    /** Tenant batches that reached the aggregator. */
    std::size_t tenantsAudited = 0;

    std::uint64_t alarmsTotal = 0;
    std::uint64_t alarmsFiltered = 0;

    /** Quanta simulated across the whole fleet. */
    std::uint64_t quantaTotal = 0;

    /** Pipeline health accumulated across every tenant daemon. */
    PipelineStats pipeline;

    /** Degradation ledger accumulated across every tenant daemon. */
    DegradedStats degraded;

    /** True when simulateCrashAfterBatches killed the run: incidents
     *  were NOT finalized; resume from the persistence directory. */
    bool crashed = false;

    /** Persistence-layer accounting (checkpoints, journal, recovery
     *  defects). */
    persist::PersistStats persist;

    /** Watchdog accounting (zero when supervision was off). */
    WatchdogStats watchdog;

    /** Response-loop outcome (enabled=false when the loop was off;
     *  a crashed run never orchestrates — resume first). */
    FleetResponseReport respond;

    /**
     * The whole report as flat stat entries with two-level prefixes
     * (fleet.alarms.*, fleet.shardN.*, fleet.incidents.*, ...), ready
     * for dumpStatEntries.
     */
    std::vector<StatEntry> statEntries() const;
};

/**
 * Runs a tenant registry as one sharded fleet audit.
 */
class FleetAuditor
{
  public:
    explicit FleetAuditor(const TenantRegistry& registry,
                          FleetAuditParams params = {});

    /** Effective shard count for the configured registry. */
    std::size_t effectiveShards() const;

    /**
     * Audit the whole fleet and aggregate the result.  Deterministic
     * for a fixed registry: the incident stream (and its hash) is
     * independent of shards, workerThreads and analysisThreads as long
     * as the hand-off policy preserves every batch (Block).
     */
    FleetAuditReport run();

  private:
    const TenantRegistry& registry_;
    FleetAuditParams params_;
};

} // namespace cchunter

#endif // CCHUNTER_FLEET_FLEET_AUDITOR_HH
