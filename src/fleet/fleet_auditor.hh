/**
 * @file
 * The fleet auditor: sharded multi-tenant audit orchestration.
 *
 * Every tenant in the registry is one independent simulated machine
 * under live audit (scenario/runOnlineAudit).  The auditor partitions
 * the fleet into shards with the registry's deterministic assignment
 * rule, runs the shards concurrently on a ThreadPool (the calling
 * thread participates), and hands each tenant's alarm batch to a
 * per-shard BoundedQueue drained by a collector thread into the
 * AlarmAggregator.  Because each tenant run is deterministic, ingest
 * is order-insensitive and finalization is canonical, the resulting
 * incident stream is bit-identical for any shard count, worker count
 * or per-tenant analysis thread count — parallelism buys wall-clock
 * time, never different answers.
 */

#ifndef CCHUNTER_FLEET_FLEET_AUDITOR_HH
#define CCHUNTER_FLEET_FLEET_AUDITOR_HH

#include <cstdint>
#include <vector>

#include "fleet/alarm_aggregator.hh"
#include "fleet/incident_store.hh"
#include "fleet/tenant_registry.hh"
#include "util/bounded_queue.hh"

namespace cchunter
{

/** Fleet-run knobs. */
struct FleetAuditParams
{
    /** Shard count; 0 sizes to the hardware concurrency.  Always
     *  clamped to the fleet size (an empty shard does no work). */
    std::size_t shards = 0;

    /** ThreadPool workers running the shards; 0 sizes to the hardware
     *  concurrency.  The calling thread participates either way. */
    std::size_t workerThreads = 0;

    /**
     * Override of every tenant's online.analysisThreads (the
     * per-tenant analysis fan-out); 0 keeps each tenant's own
     * setting.  Any value yields the same incident stream.
     */
    std::size_t analysisThreads = 0;

    /** Capacity of each shard's batch hand-off queue. */
    std::size_t batchQueueCapacity = 4;

    /**
     * Full-queue behaviour for the batch hand-off.  Block (the
     * default) preserves every batch and hence the determinism
     * contract; DropOldest sheds under pressure and is counted per
     * shard, at the cost of a timing-dependent incident stream.
     */
    OverflowPolicy batchQueueOverflow = OverflowPolicy::Block;

    /**
     * Batch each shard's end-of-run oscillation transforms: tenants
     * run with deferred cache verdicts, and the shard worker resolves
     * every deferred series in one planned FFT pass (shared twiddle
     * tables, one scratch arena) after its last tenant finishes.
     * Outcomes are identical to independent transforms — incidents
     * derive from the (unaffected) alarm stream either way, so the
     * cross-shard bit-identity contract is preserved.  Config key:
     * `fleet.batchedFft`.
     */
    bool batchedFft = true;

    AggregatorParams aggregator;
    IncidentRateLimit rateLimit;
};

/** One shard's hand-off accounting. */
struct ShardStats
{
    std::size_t shard = 0;
    std::size_t tenants = 0;         //!< tenants assigned by the plan
    std::uint64_t alarms = 0;        //!< raw alarms collected
    std::uint64_t batchesPushed = 0; //!< batches through the queue
    std::uint64_t batchesDropped = 0; //!< batches shed (DropOldest)
    std::size_t queueHighWater = 0;  //!< deepest hand-off backlog
    std::uint64_t offlineDetected = 0; //!< end-of-run unit detections
    std::uint64_t batchedSeries = 0; //!< series through the batched FFT
};

/** Everything one fleet run produced. */
struct FleetAuditReport
{
    /** The scored, rate-limited, canonically ordered incident log. */
    IncidentStore incidents;

    std::size_t shardsUsed = 0;
    std::vector<ShardStats> shards;

    /** Tenant batches that reached the aggregator. */
    std::size_t tenantsAudited = 0;

    std::uint64_t alarmsTotal = 0;
    std::uint64_t alarmsFiltered = 0;

    /** Quanta simulated across the whole fleet. */
    std::uint64_t quantaTotal = 0;

    /** Pipeline health accumulated across every tenant daemon. */
    PipelineStats pipeline;

    /** Degradation ledger accumulated across every tenant daemon. */
    DegradedStats degraded;

    /**
     * The whole report as flat stat entries with two-level prefixes
     * (fleet.alarms.*, fleet.shardN.*, fleet.incidents.*, ...), ready
     * for dumpStatEntries.
     */
    std::vector<StatEntry> statEntries() const;
};

/**
 * Runs a tenant registry as one sharded fleet audit.
 */
class FleetAuditor
{
  public:
    explicit FleetAuditor(const TenantRegistry& registry,
                          FleetAuditParams params = {});

    /** Effective shard count for the configured registry. */
    std::size_t effectiveShards() const;

    /**
     * Audit the whole fleet and aggregate the result.  Deterministic
     * for a fixed registry: the incident stream (and its hash) is
     * independent of shards, workerThreads and analysisThreads as long
     * as the hand-off policy preserves every batch (Block).
     */
    FleetAuditReport run();

  private:
    const TenantRegistry& registry_;
    FleetAuditParams params_;
};

} // namespace cchunter

#endif // CCHUNTER_FLEET_FLEET_AUDITOR_HH
