#include "fleet/alarm_aggregator.hh"

#include <algorithm>

namespace cchunter
{

AlarmAggregator::AlarmAggregator(AggregatorParams params)
    : params_(params)
{
}

void
AlarmAggregator::ingest(TenantAlarmBatch batch)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    alarmsSeen_ += batch.alarms.size();
    pipeline_.accumulate(batch.pipeline);
    degraded_.accumulate(batch.degraded);
    auto& alarms = alarmsByTenant_[batch.tenant];
    alarms.insert(alarms.end(),
                  std::make_move_iterator(batch.alarms.begin()),
                  std::make_move_iterator(batch.alarms.end()));
}

double
AlarmAggregator::scoreOf(double mean_confidence,
                         std::uint64_t occurrences) const
{
    // A sustained detection (many merged alarms) is worth more than a
    // one-off at the same confidence; saturate at eight occurrences.
    const double sustain =
        std::min(1.0, static_cast<double>(occurrences) / 8.0);
    return mean_confidence * (0.5 + 0.5 * sustain);
}

IncidentSeverity
AlarmAggregator::severityOf(double score) const
{
    if (score >= params_.criticalScore)
        return IncidentSeverity::Critical;
    if (score >= params_.warningScore)
        return IncidentSeverity::Warning;
    return IncidentSeverity::Info;
}

void
AlarmAggregator::finalize(IncidentStore& store)
{
    std::lock_guard<std::mutex> lock(mutex_);

    struct Group
    {
        Incident incident;
        double confidenceSum = 0.0;
    };

    // Per-tenant incidents, in (ascending tenant, first-alarm) order.
    // std::map iteration gives the tenant order; within one tenant the
    // alarm vector is already in the daemon's emission order.
    std::vector<Group> groups;
    for (const auto& [tenant, alarms] : alarmsByTenant_) {
        const std::size_t tenantBegin = groups.size();
        for (const Alarm& alarm : alarms) {
            if (alarm.confidence < params_.minConfidence) {
                ++alarmsFiltered_;
                continue;
            }
            const std::uint64_t sig = alarm.channelSignature();
            Group* open = nullptr;
            for (std::size_t g = tenantBegin; g < groups.size(); ++g) {
                Incident& inc = groups[g].incident;
                if (inc.slot == alarm.slot && inc.signature == sig &&
                    alarm.quantum >=
                        inc.lastQuantum && // daemon emits in order
                    alarm.quantum - inc.lastQuantum <=
                        params_.dedupGapQuanta) {
                    open = &groups[g];
                    break;
                }
            }
            if (open) {
                Incident& inc = open->incident;
                inc.lastQuantum = alarm.quantum;
                ++inc.occurrences;
                open->confidenceSum += alarm.confidence;
                inc.minConfidence =
                    std::min(inc.minConfidence, alarm.confidence);
                continue;
            }
            Group fresh;
            fresh.incident.tenant = tenant;
            fresh.incident.slot = alarm.slot;
            fresh.incident.unit = alarm.unit;
            fresh.incident.kind = alarm.kind;
            fresh.incident.signature = sig;
            fresh.incident.firstQuantum = alarm.quantum;
            fresh.incident.lastQuantum = alarm.quantum;
            fresh.incident.occurrences = 1;
            fresh.incident.minConfidence = alarm.confidence;
            fresh.confidenceSum = alarm.confidence;
            groups.push_back(std::move(fresh));
        }
    }

    for (Group& group : groups) {
        Incident& inc = group.incident;
        inc.meanConfidence =
            group.confidenceSum / static_cast<double>(inc.occurrences);
        inc.score = scoreOf(inc.meanConfidence, inc.occurrences);
    }

    // Cross-tenant correlation: the same channel signature live on
    // several distinct tenants elevates every member and earns a
    // fleet-wide record.
    std::map<std::uint64_t, std::vector<std::size_t>> bySignature;
    for (std::size_t g = 0; g < groups.size(); ++g)
        bySignature[groups[g].incident.signature].push_back(g);

    std::map<std::uint64_t, std::vector<TenantId>> correlated;
    for (const auto& [sig, members] : bySignature) {
        std::vector<TenantId> tenants;
        for (const std::size_t g : members) {
            const TenantId t = groups[g].incident.tenant;
            if (tenants.empty() || tenants.back() != t)
                tenants.push_back(t);
        }
        if (tenants.size() < params_.crossTenantMinTenants)
            continue;
        for (const std::size_t g : members) {
            Incident& inc = groups[g].incident;
            inc.correlated = true;
            inc.score =
                std::min(1.0, inc.score + params_.crossTenantBoost);
        }
        correlated.emplace(sig, std::move(tenants));
    }

    for (Group& group : groups) {
        Incident& inc = group.incident;
        inc.severity = severityOf(inc.score);
        store.emit(std::move(inc));
    }

    // Fleet-wide records, ascending signature (std::map order).
    for (const auto& [sig, tenants] : correlated) {
        const std::vector<std::size_t>& members = bySignature[sig];
        Incident fleet;
        fleet.fleetWide = true;
        fleet.signature = sig;
        fleet.correlated = true;
        fleet.correlatedTenants = tenants;
        fleet.unit = groups[members.front()].incident.unit;
        fleet.kind = groups[members.front()].incident.kind;
        fleet.firstQuantum =
            groups[members.front()].incident.firstQuantum;
        fleet.minConfidence = 1.0;
        double confidenceSum = 0.0;
        for (const std::size_t g : members) {
            const Incident& inc = groups[g].incident;
            fleet.firstQuantum =
                std::min(fleet.firstQuantum, inc.firstQuantum);
            fleet.lastQuantum =
                std::max(fleet.lastQuantum, inc.lastQuantum);
            fleet.occurrences += inc.occurrences;
            fleet.minConfidence =
                std::min(fleet.minConfidence, inc.minConfidence);
            confidenceSum +=
                inc.meanConfidence * static_cast<double>(inc.occurrences);
            fleet.score = std::max(fleet.score, inc.score);
        }
        fleet.meanConfidence =
            confidenceSum / static_cast<double>(fleet.occurrences);
        fleet.severity = severityOf(fleet.score);
        store.emit(std::move(fleet));
    }

    alarmsByTenant_.clear();
}

std::vector<StatEntry>
AlarmAggregator::statEntries(const std::string& prefix) const
{
    std::vector<StatEntry> entries;
    entries.push_back({prefix + "batches",
                       static_cast<double>(batches_),
                       "tenant alarm batches ingested"});
    entries.push_back({prefix + "alarms",
                       static_cast<double>(alarmsSeen_),
                       "raw alarms across all batches"});
    entries.push_back({prefix + "filtered",
                       static_cast<double>(alarmsFiltered_),
                       "alarms below the confidence floor"});
    return entries;
}

} // namespace cchunter
