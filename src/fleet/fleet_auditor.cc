#include "fleet/fleet_auditor.hh"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>

#include "scenario/experiment.hh"
#include "util/thread_pool.hh"

namespace cchunter
{

FleetAuditor::FleetAuditor(const TenantRegistry& registry,
                           FleetAuditParams params)
    : registry_(registry), params_(params)
{
}

std::size_t
FleetAuditor::effectiveShards() const
{
    std::size_t shards = params_.shards != 0
                             ? params_.shards
                             : ThreadPool::hardwareConcurrency();
    shards = std::max<std::size_t>(1, shards);
    if (!registry_.empty())
        shards = std::min(shards, registry_.size());
    return shards;
}

FleetAuditReport
FleetAuditor::run()
{
    FleetAuditReport report;
    report.incidents = IncidentStore(params_.rateLimit);

    const std::size_t shards = effectiveShards();
    report.shardsUsed = shards;
    const auto plan = registry_.shardPlan(shards);

    AlarmAggregator aggregator(params_.aggregator);

    using Queue = BoundedQueue<TenantAlarmBatch>;
    std::vector<std::unique_ptr<Queue>> queues;
    queues.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        queues.push_back(std::make_unique<Queue>(
            params_.batchQueueCapacity, params_.batchQueueOverflow));

    // One collector per shard drains that shard's hand-off queue into
    // the (order-insensitive) aggregator and keeps shard-local tallies
    // — no cross-thread sharing beyond the queue and the aggregator's
    // own lock.
    report.shards.resize(shards);
    std::vector<std::uint64_t> shardQuanta(shards, 0);
    std::vector<std::thread> collectors;
    collectors.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        report.shards[s].shard = s;
        report.shards[s].tenants = plan[s].size();
        collectors.emplace_back([&, s]() {
            while (auto batch = queues[s]->pop()) {
                report.shards[s].alarms += batch->alarms.size();
                report.shards[s].offlineDetected +=
                    batch->offlineDetectedUnits;
                shardQuanta[s] += batch->quantaRecorded;
                aggregator.ingest(std::move(*batch));
            }
        });
    }

    const auto closeAndJoin = [&]() {
        for (auto& queue : queues)
            queue->close();
        for (std::thread& collector : collectors)
            if (collector.joinable())
                collector.join();
    };

    std::vector<std::uint64_t> shardBatchedSeries(shards, 0);
    ThreadPool pool(params_.workerThreads);
    try {
        pool.parallelFor(shards, [&](std::size_t s) {
            const auto detectedOf =
                [](const std::vector<UnitOutcome>& verdicts) {
                    std::uint64_t detected = 0;
                    for (const UnitOutcome& unit : verdicts)
                        detected += unit.detected ? 1 : 0;
                    return detected;
                };

            // With batching on, tenants defer their end-of-run cache
            // transforms; the shard resolves all of them in one
            // planned FFT pass after its last tenant, then hands the
            // staged batches off.  Alarms — and hence incidents — are
            // identical either way.
            std::vector<TenantAlarmBatch> staged;
            std::vector<std::vector<UnitOutcome>> stagedVerdicts;
            if (params_.batchedFft) {
                staged.reserve(plan[s].size());
                stagedVerdicts.reserve(plan[s].size());
            }

            for (const TenantId id : plan[s]) {
                OnlineAuditOptions options = registry_.at(id).audit;
                if (params_.analysisThreads != 0)
                    options.online.analysisThreads =
                        params_.analysisThreads;
                options.deferOscillationVerdicts = params_.batchedFft;
                OnlineAuditResult result = runOnlineAudit(options);
                TenantAlarmBatch batch;
                batch.tenant = id;
                batch.shard = s;
                batch.alarms = std::move(result.alarms);
                batch.pipeline = result.pipeline;
                batch.degraded = result.degraded;
                batch.quantaRecorded = result.quantaRecorded;
                if (params_.batchedFft) {
                    staged.push_back(std::move(batch));
                    stagedVerdicts.push_back(
                        std::move(result.finalVerdicts));
                } else {
                    batch.offlineDetectedUnits =
                        detectedOf(result.finalVerdicts);
                    queues[s]->push(std::move(batch));
                }
            }

            if (params_.batchedFft) {
                std::vector<UnitOutcome*> pending;
                for (std::vector<UnitOutcome>& verdicts :
                     stagedVerdicts)
                    for (UnitOutcome& unit : verdicts)
                        if (unit.deferredOscillation)
                            pending.push_back(&unit);
                shardBatchedSeries[s] =
                    finalizeDeferredOscillations(pending);
                for (std::size_t i = 0; i < staged.size(); ++i) {
                    staged[i].offlineDetectedUnits =
                        detectedOf(stagedVerdicts[i]);
                    queues[s]->push(std::move(staged[i]));
                }
            }
        });
    } catch (...) {
        closeAndJoin();
        throw;
    }
    closeAndJoin();

    aggregator.finalize(report.incidents);

    report.tenantsAudited = aggregator.batchesIngested();
    report.alarmsTotal = aggregator.alarmsSeen();
    report.alarmsFiltered = aggregator.alarmsFiltered();
    report.pipeline = aggregator.pipeline();
    report.degraded = aggregator.degraded();
    for (std::size_t s = 0; s < shards; ++s) {
        report.shards[s].batchesPushed = queues[s]->pushed();
        report.shards[s].batchesDropped = queues[s]->dropped();
        report.shards[s].queueHighWater = queues[s]->highWaterMark();
        report.shards[s].batchedSeries = shardBatchedSeries[s];
        report.quantaTotal += shardQuanta[s];
    }
    return report;
}

std::vector<StatEntry>
FleetAuditReport::statEntries() const
{
    std::vector<StatEntry> entries;
    std::size_t tenantsPlanned = 0;
    for (const ShardStats& shard : shards)
        tenantsPlanned += shard.tenants;
    entries.push_back({"fleet.tenants",
                       static_cast<double>(tenantsPlanned),
                       "tenant machines in the shard plan"});
    entries.push_back({"fleet.audited",
                       static_cast<double>(tenantsAudited),
                       "tenant batches aggregated"});
    entries.push_back({"fleet.shards", static_cast<double>(shardsUsed),
                       "shards the fleet ran on"});
    entries.push_back({"fleet.alarms.total",
                       static_cast<double>(alarmsTotal),
                       "raw alarms across the fleet"});
    entries.push_back({"fleet.alarms.filtered",
                       static_cast<double>(alarmsFiltered),
                       "alarms below the confidence floor"});
    entries.push_back({"fleet.quanta",
                       static_cast<double>(quantaTotal),
                       "OS time quanta simulated fleet-wide"});
    for (const ShardStats& shard : shards) {
        const std::string prefix =
            "fleet.shard" + std::to_string(shard.shard) + '.';
        entries.push_back({prefix + "tenants",
                           static_cast<double>(shard.tenants),
                           "tenants assigned to this shard"});
        entries.push_back({prefix + "alarms",
                           static_cast<double>(shard.alarms),
                           "raw alarms collected on this shard"});
        entries.push_back({prefix + "batches",
                           static_cast<double>(shard.batchesPushed),
                           "batches through the hand-off queue"});
        entries.push_back({prefix + "dropped",
                           static_cast<double>(shard.batchesDropped),
                           "batches shed by DropOldest overflow"});
        entries.push_back({prefix + "queueHighWater",
                           static_cast<double>(shard.queueHighWater),
                           "deepest hand-off backlog"});
        entries.push_back({prefix + "offlineDetected",
                           static_cast<double>(shard.offlineDetected),
                           "end-of-run unit detections"});
        entries.push_back({prefix + "batchedSeries",
                           static_cast<double>(shard.batchedSeries),
                           "series through the batched FFT pass"});
    }
    const auto append = [&entries](std::vector<StatEntry> more) {
        entries.insert(entries.end(),
                       std::make_move_iterator(more.begin()),
                       std::make_move_iterator(more.end()));
    };
    append(incidents.statEntries("fleet.incidents."));
    append(pipelineStatEntries(pipeline, "fleet.pipeline."));
    append(degradedStatEntries(degraded, "fleet.degraded."));
    return entries;
}

} // namespace cchunter
