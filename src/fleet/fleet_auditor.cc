#include "fleet/fleet_auditor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "scenario/experiment.hh"
#include "units/unit_registry.hh"
#include "util/thread_pool.hh"

namespace cchunter
{

namespace
{

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Live supervision state of one shard (heartbeats + claim summary). */
struct ShardProgress
{
    std::atomic<bool> started{false}; //!< a worker reached this shard
    std::atomic<bool> active{false};  //!< a worker is running it now
    std::atomic<bool> died{false};    //!< simulated worker death fired
    std::atomic<std::int64_t> lastBeatNs{0};
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<bool> abandoned{false}; //!< restart budget exhausted
};

} // namespace

FleetAuditor::FleetAuditor(const TenantRegistry& registry,
                           FleetAuditParams params)
    : registry_(registry), params_(params)
{
}

std::size_t
FleetAuditor::effectiveShards() const
{
    std::size_t shards = params_.shards != 0
                             ? params_.shards
                             : ThreadPool::hardwareConcurrency();
    shards = std::max<std::size_t>(1, shards);
    if (!registry_.empty())
        shards = std::min(shards, registry_.size());
    return shards;
}

FleetAuditReport
FleetAuditor::run()
{
    FleetAuditReport report;
    report.incidents = IncidentStore(params_.rateLimit);

    const std::size_t shards = effectiveShards();
    report.shardsUsed = shards;
    const auto plan = registry_.shardPlan(shards);
    report.shards.resize(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        report.shards[s].shard = s;
        report.shards[s].tenants = plan[s].size();
    }

    const bool persistOn = params_.persist.enabled();
    const std::uint64_t fingerprint =
        persistOn ? persist::registryFingerprint(registry_) : 0;
    const std::uint64_t crashAfter =
        persistOn ? params_.simulateCrashAfterBatches : 0;

    const bool stallSim = params_.watchdog.simulateStallShard !=
                          WatchdogParams::kNoStall;
    // A simulated worker death would strand its staged batches, so
    // stall runs take the unstaged path (stream-identical either way).
    const bool batchedFft = params_.batchedFft && !stallSim;

    AlarmAggregator aggregator(params_.aggregator);

    // Per-tenant claim flags: exchange(true) is the single admission
    // point to auditing a tenant, so recovery pre-claims and watchdog
    // redispatch can never double-audit.  (C++20 value-initializes
    // the atomics to false.)
    std::vector<std::deque<std::atomic<bool>>> claimed(shards);
    for (std::size_t s = 0; s < shards; ++s)
        claimed[s].resize(plan[s].size());

    const auto planIndexOf = [&](TenantId id, std::size_t& s,
                                 std::size_t& i) {
        s = TenantRegistry::shardOf(id, shards);
        for (i = 0; i < plan[s].size(); ++i)
            if (plan[s][i] == id)
                return true;
        return false;
    };

    // --- persistence state (all mutation under persistMutex) ---
    persist::JournalWriter journal;
    std::vector<TenantAlarmBatch> completed; //!< persisted batches
    std::mutex persistMutex;
    std::uint64_t sinceCheckpoint = 0;
    std::uint64_t persistedThisRun = 0;
    std::atomic<bool> crashed{false};

    // Response state carried in from a restored snapshot.  Mid-run
    // checkpoints re-emit it verbatim (the orchestrator only runs
    // after finalize), so an active quarantine survives any number of
    // crash/restart cycles in between.
    std::optional<ResponseOrchestratorState> restoredResponse;

    const auto writeSnapshot = [&](bool finalized,
                                   const IncidentStore* incidents,
                                   const ResponseOrchestratorState*
                                       respond) {
        persist::FleetCheckpoint checkpoint;
        checkpoint.registryFingerprint = fingerprint;
        checkpoint.finalized = finalized;
        checkpoint.batches = completed;
        if (incidents)
            checkpoint.incidents = *incidents;
        if (respond)
            checkpoint.respond = *respond;
        const std::vector<std::uint8_t> bytes =
            persist::encodeFleetCheckpoint(checkpoint,
                                           params_.rateLimit);
        if (persist::writeFileAtomic(
                persist::snapshotPath(params_.persist), bytes)) {
            ++report.persist.checkpointsWritten;
            report.persist.lastSnapshotBytes = bytes.size();
        }
    };

    // --- recovery (before any worker starts) ---
    std::vector<TenantAlarmBatch> recovered;
    if (persistOn && params_.persist.resume) {
        const auto start = std::chrono::steady_clock::now();
        persist::RecoveredFleetState rec = persist::recoverFleetState(
            params_.persist, fingerprint, report.persist);
        recovered = std::move(rec.batches);
        restoredResponse = std::move(rec.respond);
        if (restoredResponse)
            report.respond.restoredActions =
                restoredResponse->actions.size();
        report.persist.restoreMicros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
    }
    std::vector<std::uint64_t> shardQuanta(shards, 0);
    for (TenantAlarmBatch& batch : recovered) {
        std::size_t s = 0;
        std::size_t i = 0;
        if (!planIndexOf(batch.tenant, s, i)) {
            ++report.persist.unknownTenantBatches;
            --report.persist.restoredTenants;
            continue;
        }
        claimed[s][i].store(true);
        batch.shard = s; // re-home under the current shard layout
        report.shards[s].alarms += batch.alarms.size();
        report.shards[s].offlineDetected += batch.offlineDetectedUnits;
        ++report.shards[s].recoveredTenants;
        shardQuanta[s] += batch.quantaRecorded;
        completed.push_back(batch);
        aggregator.ingest(std::move(batch));
    }

    if (persistOn) {
        // Fresh journal stamped with this fleet's fingerprint; a
        // resume first compacts whatever it salvaged into a clean
        // snapshot, so the on-disk pair is consistent from here on.
        if (params_.persist.resume)
            writeSnapshot(false, nullptr,
                          restoredResponse ? &*restoredResponse
                                           : nullptr);
        journal.open(persist::journalPath(params_.persist),
                     persist::encodeMeta(fingerprint, false, 0));
    }

    using Queue = BoundedQueue<TenantAlarmBatch>;
    std::vector<std::unique_ptr<Queue>> queues;
    queues.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        queues.push_back(std::make_unique<Queue>(
            params_.batchQueueCapacity, params_.batchQueueOverflow));

    // One collector per shard drains that shard's hand-off queue into
    // the (order-insensitive) aggregator and keeps shard-local tallies
    // — no cross-thread sharing beyond the queue, the aggregator's own
    // lock and the persistence lock.  Journal-before-ingest: a batch
    // only ever reaches the aggregator after it is durable, so a kill
    // can lose in-memory state but never disk/memory agreement.
    std::vector<std::thread> collectors;
    collectors.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        collectors.emplace_back([&, s]() {
            while (auto batch = queues[s]->pop()) {
                if (crashed.load(std::memory_order_acquire))
                    continue; // a killed process does nothing more
                if (persistOn) {
                    std::lock_guard<std::mutex> lock(persistMutex);
                    if (crashed.load(std::memory_order_acquire))
                        continue;
                    const std::uint64_t before =
                        journal.bytesWritten();
                    if (journal.append(
                            persist::encodeTenantBatch(*batch))) {
                        ++report.persist.journalAppends;
                        report.persist.journalBytes +=
                            journal.bytesWritten() - before;
                    }
                    completed.push_back(*batch);
                    ++sinceCheckpoint;
                    ++persistedThisRun;
                    const std::size_t interval =
                        params_.persist.checkpointIntervalBatches;
                    if (interval != 0 && sinceCheckpoint >= interval) {
                        writeSnapshot(false, nullptr,
                                      restoredResponse
                                          ? &*restoredResponse
                                          : nullptr);
                        journal.reset();
                        sinceCheckpoint = 0;
                    }
                    if (crashAfter != 0 &&
                        persistedThisRun >= crashAfter) {
                        // The Nth batch is durable; the "process"
                        // dies here.  Later batches are dropped, the
                        // run never finalizes.
                        crashed.store(true,
                                      std::memory_order_release);
                        journal.close();
                    }
                }
                report.shards[s].alarms += batch->alarms.size();
                report.shards[s].offlineDetected +=
                    batch->offlineDetectedUnits;
                shardQuanta[s] += batch->quantaRecorded;
                aggregator.ingest(std::move(*batch));
            }
        });
    }

    const auto closeAndJoin = [&]() {
        for (auto& queue : queues)
            queue->close();
        for (std::thread& collector : collectors)
            if (collector.joinable())
                collector.join();
    };

    std::vector<std::uint64_t> shardBatchedSeries(shards, 0);
    std::deque<ShardProgress> progress(shards);

    // The shard worker body; `redispatch` marks watchdog re-entry
    // (immune to the simulated death, claims only leftover tenants).
    const auto runShard = [&](std::size_t s, bool redispatch) {
        ShardProgress& prog = progress[s];
        prog.started.store(true);
        prog.active.store(true);
        prog.lastBeatNs.store(steadyNowNs());

        const auto detectedOf =
            [](const std::vector<UnitOutcome>& verdicts) {
                std::uint64_t detected = 0;
                for (const UnitOutcome& unit : verdicts)
                    detected += unit.detected ? 1 : 0;
                return detected;
            };

        const bool simulateDeath =
            !redispatch && params_.watchdog.simulateStallShard == s;

        // With batching on, tenants defer their end-of-run cache
        // transforms; the shard resolves all of them in one planned
        // FFT pass after its last tenant, then hands the staged
        // batches off.  Alarms — and hence incidents — are identical
        // either way.
        std::vector<TenantAlarmBatch> staged;
        std::vector<std::vector<UnitOutcome>> stagedVerdicts;
        if (batchedFft) {
            staged.reserve(plan[s].size());
            stagedVerdicts.reserve(plan[s].size());
        }

        std::size_t processed = 0;
        for (std::size_t i = 0; i < plan[s].size(); ++i) {
            if (crashed.load(std::memory_order_acquire))
                break;
            if (simulateDeath &&
                processed >=
                    params_.watchdog.simulateStallAfterTenants) {
                // The worker "dies": unclaimed tenants stay
                // unclaimed for the watchdog to pick up.
                prog.died.store(true);
                prog.active.store(false);
                return;
            }
            if (claimed[s][i].exchange(true))
                continue; // recovered or another worker's claim
            const TenantId id = plan[s][i];
            OnlineAuditOptions options = registry_.at(id).audit;
            if (params_.analysisThreads != 0)
                options.online.analysisThreads =
                    params_.analysisThreads;
            options.deferOscillationVerdicts = batchedFft;
            OnlineAuditResult result = runOnlineAudit(options);
            TenantAlarmBatch batch;
            batch.tenant = id;
            batch.shard = s;
            batch.alarms = std::move(result.alarms);
            batch.pipeline = result.pipeline;
            batch.degraded = result.degraded;
            batch.quantaRecorded = result.quantaRecorded;
            if (batchedFft) {
                staged.push_back(std::move(batch));
                stagedVerdicts.push_back(
                    std::move(result.finalVerdicts));
            } else {
                batch.offlineDetectedUnits =
                    detectedOf(result.finalVerdicts);
                queues[s]->push(std::move(batch));
            }
            prog.lastBeatNs.store(steadyNowNs());
            ++processed;
        }

        if (batchedFft) {
            std::vector<UnitOutcome*> pending;
            for (std::vector<UnitOutcome>& verdicts : stagedVerdicts)
                for (UnitOutcome& unit : verdicts)
                    if (unit.deferredOscillation)
                        pending.push_back(&unit);
            shardBatchedSeries[s] +=
                finalizeDeferredOscillations(pending);
            for (std::size_t i = 0; i < staged.size(); ++i) {
                if (crashed.load(std::memory_order_acquire))
                    break;
                staged[i].offlineDetectedUnits =
                    detectedOf(stagedVerdicts[i]);
                queues[s]->push(std::move(staged[i]));
            }
        }
        prog.active.store(false);
    };

    const auto unclaimedCount = [&](std::size_t s) {
        std::size_t unclaimed = 0;
        for (std::size_t i = 0; i < plan[s].size(); ++i)
            if (!claimed[s][i].load())
                ++unclaimed;
        return unclaimed;
    };

    // Redispatch a shard whose worker died or went silent, honouring
    // the per-shard restart budget and exponential backoff.  Runs on
    // the watchdog thread (or the caller, for the final sweep); the
    // claim flags make it safe even against a worker that is merely
    // slow rather than dead.
    const auto superviseShard = [&](std::size_t s) {
        ShardProgress& prog = progress[s];
        if (crashed.load(std::memory_order_acquire))
            return;
        if (unclaimedCount(s) == 0)
            return;
        const bool dead = prog.died.load();
        const bool silent =
            prog.started.load() && prog.active.load() &&
            static_cast<double>(steadyNowNs() -
                                prog.lastBeatNs.load()) >
                params_.watchdog.stallTimeoutMs * 1e6;
        const bool vanished = prog.started.load() && !prog.active.load();
        if (prog.abandoned.load())
            return;
        if (!dead && !silent && !vanished)
            return;
        prog.died.store(false);
        // The stall is counted whether or not a restart is still in
        // budget — an abandoned shard must not read as a healthy one.
        ++report.watchdog.stallsDetected;
        if (prog.restarts.load() >=
            params_.watchdog.maxRestartsPerShard) {
            prog.abandoned.store(true);
            return;
        }
        const std::uint64_t attempt = prog.restarts.fetch_add(1) + 1;
        ++report.watchdog.restartsDispatched;
        report.watchdog.tenantsRedispatched += unclaimedCount(s);
        const double backoffMs = params_.watchdog.backoffBaseMs *
                                 static_cast<double>(1ull
                                                     << (attempt - 1));
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoffMs));
        runShard(s, true);
    };

    // The watchdog waits on its own (always-empty) control queue so
    // shutdown — close() — interrupts a poll interval immediately.
    std::unique_ptr<BoundedQueue<int>> watchdogControl;
    std::thread watchdogThread;
    if (params_.watchdog.enabled) {
        watchdogControl = std::make_unique<BoundedQueue<int>>(1);
        watchdogThread = std::thread([&]() {
            const auto interval = std::chrono::duration<
                double, std::milli>(params_.watchdog.pollIntervalMs);
            while (true) {
                watchdogControl->popFor(interval);
                if (watchdogControl->closed())
                    return;
                ++report.watchdog.polls;
                for (std::size_t s = 0; s < shards; ++s)
                    superviseShard(s);
            }
        });
    }

    const auto stopWatchdog = [&]() {
        if (watchdogControl)
            watchdogControl->close();
        if (watchdogThread.joinable())
            watchdogThread.join();
    };

    ThreadPool pool(params_.workerThreads);
    try {
        pool.parallelFor(shards,
                         [&](std::size_t s) { runShard(s, false); });
    } catch (...) {
        stopWatchdog();
        closeAndJoin();
        throw;
    }

    // Workers are done (or dead); stop the watchdog, then sweep any
    // leftovers synchronously — a stall the watchdog had not noticed
    // yet is picked up here, inside the same restart budget.
    stopWatchdog();
    if (params_.watchdog.enabled) {
        for (std::size_t s = 0; s < shards; ++s)
            superviseShard(s);
        for (std::size_t s = 0; s < shards; ++s)
            report.watchdog.abandonedTenants += unclaimedCount(s);
    }
    closeAndJoin();

    if (!crashed.load()) {
        aggregator.finalize(report.incidents);

        // --- close the loop: incidents -> response actions ---
        // Runs strictly after finalize, on the canonical incident
        // stream, so the action log inherits the fleet's byte-identity
        // contract for free.  A restored orchestrator picks up the
        // ladder exactly where the previous run left it.
        if (params_.respond.enabled) {
            ResponseOrchestrator orchestrator =
                restoredResponse
                    ? ResponseOrchestrator::restored(
                          params_.respond.policy,
                          std::move(*restoredResponse))
                    : ResponseOrchestrator(params_.respond.policy);
            orchestrator.observeIncidents(
                report.incidents.incidents());

            if (params_.respond.measureResidual) {
                const UnitRegistry& units = UnitRegistry::instance();
                std::size_t probes = 0;
                for (const ResponsePairState& pair :
                     orchestrator.engagedPairs()) {
                    if (probes >= params_.respond.maxResidualProbes)
                        break;
                    const TenantConfig* tenant = nullptr;
                    for (const TenantConfig& t : registry_.tenants())
                        if (t.id == pair.tenant) {
                            tenant = &t;
                            break;
                        }
                    if (tenant == nullptr)
                        continue;
                    // Only the unit the tenant's workload actually
                    // exercises can be re-run as a probe.
                    const UnitDescriptor* unit =
                        units.byWorkload(tenant->audit.workload);
                    if (unit == nullptr || unit->id != pair.unit)
                        continue;
                    ResidualMeasurement m;
                    m.tenant = pair.tenant;
                    m.unit = pair.unit;
                    m.level = pair.level;
                    m.unmitigated = probeResidualBandwidth(
                        tenant->audit.workload, tenant->audit,
                        params_.respond.policy.planFor(
                            ResponseLevel::Observe));
                    m.mitigated = probeResidualBandwidth(
                        tenant->audit.workload, tenant->audit,
                        params_.respond.policy.planFor(pair.level));
                    m.reduction = bandwidthReduction(
                        m.unmitigated.effectiveBandwidthBps,
                        m.mitigated.effectiveBandwidthBps);
                    m.tax = measureBenignTax(
                        tenant->audit,
                        params_.respond.policy.planFor(pair.level));
                    report.respond.residuals.push_back(std::move(m));
                    ++probes;
                }
            }

            report.respond.enabled = true;
            report.respond.orchestrator = std::move(orchestrator);
            restoredResponse =
                report.respond.orchestrator.snapshotState();
        }

        if (persistOn) {
            std::lock_guard<std::mutex> lock(persistMutex);
            if (params_.persist.finalSnapshot)
                writeSnapshot(true, &report.incidents,
                              restoredResponse ? &*restoredResponse
                                               : nullptr);
            journal.reset(); // the snapshot absorbed every batch
            journal.close();
        }
    } else {
        report.crashed = true;
    }

    report.tenantsAudited = aggregator.batchesIngested();
    report.alarmsTotal = aggregator.alarmsSeen();
    report.alarmsFiltered = aggregator.alarmsFiltered();
    report.pipeline = aggregator.pipeline();
    report.degraded = aggregator.degraded();
    for (std::size_t s = 0; s < shards; ++s) {
        report.shards[s].batchesPushed = queues[s]->pushed();
        report.shards[s].batchesDropped = queues[s]->dropped();
        report.shards[s].queueHighWater = queues[s]->highWaterMark();
        report.shards[s].batchedSeries = shardBatchedSeries[s];
        report.shards[s].restarts = progress[s].restarts.load();
        report.quantaTotal += shardQuanta[s];
    }
    return report;
}

std::vector<StatEntry>
FleetAuditReport::statEntries() const
{
    std::vector<StatEntry> entries;
    std::size_t tenantsPlanned = 0;
    for (const ShardStats& shard : shards)
        tenantsPlanned += shard.tenants;
    entries.push_back({"fleet.tenants",
                       static_cast<double>(tenantsPlanned),
                       "tenant machines in the shard plan"});
    entries.push_back({"fleet.audited",
                       static_cast<double>(tenantsAudited),
                       "tenant batches aggregated"});
    entries.push_back({"fleet.shards", static_cast<double>(shardsUsed),
                       "shards the fleet ran on"});
    entries.push_back({"fleet.alarms.total",
                       static_cast<double>(alarmsTotal),
                       "raw alarms across the fleet"});
    entries.push_back({"fleet.alarms.filtered",
                       static_cast<double>(alarmsFiltered),
                       "alarms below the confidence floor"});
    entries.push_back({"fleet.quanta",
                       static_cast<double>(quantaTotal),
                       "OS time quanta simulated fleet-wide"});
    for (const ShardStats& shard : shards) {
        const std::string prefix =
            "fleet.shard" + std::to_string(shard.shard) + '.';
        entries.push_back({prefix + "tenants",
                           static_cast<double>(shard.tenants),
                           "tenants assigned to this shard"});
        entries.push_back({prefix + "alarms",
                           static_cast<double>(shard.alarms),
                           "raw alarms collected on this shard"});
        entries.push_back({prefix + "batches",
                           static_cast<double>(shard.batchesPushed),
                           "batches through the hand-off queue"});
        entries.push_back({prefix + "dropped",
                           static_cast<double>(shard.batchesDropped),
                           "batches shed by DropOldest overflow"});
        entries.push_back({prefix + "queueHighWater",
                           static_cast<double>(shard.queueHighWater),
                           "deepest hand-off backlog"});
        entries.push_back({prefix + "offlineDetected",
                           static_cast<double>(shard.offlineDetected),
                           "end-of-run unit detections"});
        entries.push_back({prefix + "batchedSeries",
                           static_cast<double>(shard.batchedSeries),
                           "series through the batched FFT pass"});
        entries.push_back({prefix + "restarts",
                           static_cast<double>(shard.restarts),
                           "watchdog redispatches of this shard"});
        entries.push_back({prefix + "recovered",
                           static_cast<double>(shard.recoveredTenants),
                           "tenants restored instead of re-audited"});
    }
    entries.push_back({"fleet.crashed", crashed ? 1.0 : 0.0,
                       "run killed by the crash switch"});
    entries.push_back({"fleet.watchdog.polls",
                       static_cast<double>(watchdog.polls),
                       "watchdog wake-ups"});
    entries.push_back({"fleet.watchdog.stalls",
                       static_cast<double>(watchdog.stallsDetected),
                       "dead or silent shard workers detected"});
    entries.push_back({"fleet.watchdog.restarts",
                       static_cast<double>(watchdog.restartsDispatched),
                       "shard redispatches across the fleet"});
    entries.push_back(
        {"fleet.watchdog.redispatchedTenants",
         static_cast<double>(watchdog.tenantsRedispatched),
         "tenants picked back up by a redispatch"});
    entries.push_back({"fleet.watchdog.abandoned",
                       static_cast<double>(watchdog.abandonedTenants),
                       "tenants left after the restart budget"});
    const auto append = [&entries](std::vector<StatEntry> more) {
        entries.insert(entries.end(),
                       std::make_move_iterator(more.begin()),
                       std::make_move_iterator(more.end()));
    };
    append(incidents.statEntries("fleet.incidents."));
    append(pipelineStatEntries(pipeline, "fleet.pipeline."));
    append(degradedStatEntries(degraded, "fleet.degraded."));
    append(persistStatEntries(persist, "persist."));
    if (respond.enabled)
        append(respond.statEntries("fleet.respond."));
    return entries;
}

std::vector<StatEntry>
FleetResponseReport::statEntries(const std::string& prefix) const
{
    std::vector<StatEntry> entries =
        orchestrator.statEntries(prefix);
    entries.push_back({prefix + "restoredActions",
                       static_cast<double>(restoredActions),
                       "actions carried in from a restored snapshot"});
    entries.push_back({prefix + "residual.measurements",
                       static_cast<double>(residuals.size()),
                       "engaged pairs re-run under their response"});
    double worstResidualBps = 0.0;
    double meanReduction = 0.0;
    double worstTax = 0.0;
    for (const ResidualMeasurement& m : residuals) {
        worstResidualBps =
            std::max(worstResidualBps,
                     m.mitigated.effectiveBandwidthBps);
        meanReduction += m.reduction;
        worstTax = std::max(worstTax, m.tax.tax);
    }
    if (!residuals.empty())
        meanReduction /= static_cast<double>(residuals.size());
    entries.push_back({prefix + "residual.worstBps", worstResidualBps,
                       "highest surviving channel bandwidth (bits/s)"});
    entries.push_back({prefix + "residual.meanReduction",
                       meanReduction,
                       "mean bandwidth reduction across measurements"});
    entries.push_back({prefix + "residual.worstTax", worstTax,
                       "worst benign-pair slowdown fraction"});
    return entries;
}

} // namespace cchunter
