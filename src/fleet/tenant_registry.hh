/**
 * @file
 * The fleet's tenant catalogue.
 *
 * A tenant is one simulated machine under audit: an id, a display
 * name, and the full OnlineAuditOptions describing its workload
 * (channel or benign pair), scenario parameters and analysis cadence
 * — including an optional FaultPlan, so a fleet can mix healthy and
 * degraded hosts.  The registry keeps tenants in ascending-id order
 * (the canonical order every downstream fleet stage processes them
 * in) and owns the deterministic shard-assignment rule.
 */

#ifndef CCHUNTER_FLEET_TENANT_REGISTRY_HH
#define CCHUNTER_FLEET_TENANT_REGISTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/experiment.hh"
#include "util/types.hh"

namespace cchunter
{

/** Identifies one tenant machine across the fleet subsystem. */
using TenantId = std::uint32_t;

/** One tenant machine's audit configuration. */
struct TenantConfig
{
    TenantId id = 0;

    /** Display name; add() defaults it to "tenant<id>". */
    std::string name;

    /** Workload, scenario parameters and online-analysis cadence. */
    OnlineAuditOptions audit;
};

/** Parameters of a seeded synthetic fleet (benches, examples). */
struct SyntheticFleetOptions
{
    std::size_t tenants = 8;
    std::uint64_t seed = 1;

    /** Workloads assigned round-robin over the tenant ids. */
    std::vector<AuditedWorkload> mix = {AuditedWorkload::Divider,
                                        AuditedWorkload::Cache};

    std::size_t quanta = 8;
    Tick quantum = 2500000;
    std::size_t clusteringIntervalQuanta = 4;
    unsigned noiseProcesses = 0;

    /** Contention-channel bandwidth (bus/divider/multiplier). */
    double contentionBandwidthBps = 10000.0;

    /** Cache-channel bandwidth (one bit per quantum by default). */
    double cacheBandwidthBps = 1000.0;

    /**
     * Give every tenant its own derived seed (seed + id).  Disabling
     * this makes same-workload tenants carry *identical* channels —
     * the cross-tenant correlation case.
     */
    bool distinctSeeds = true;
};

/**
 * Ascending-id tenant catalogue with deterministic shard assignment.
 */
class TenantRegistry
{
  public:
    /** Register a tenant (fatal on a duplicate id). */
    void add(TenantConfig config);

    std::size_t size() const { return tenants_.size(); }
    bool empty() const { return tenants_.empty(); }

    bool contains(TenantId id) const;

    /** Config of one tenant (fatal when absent). */
    const TenantConfig& at(TenantId id) const;

    /** All tenants in ascending-id order. */
    const std::vector<TenantConfig>& tenants() const
    {
        return tenants_;
    }

    /**
     * Deterministic shard assignment: id % shards.  Stable for a given
     * tenant id regardless of what else is registered, so adding a
     * tenant never migrates existing ones, and balanced by count for
     * dense id ranges.
     */
    static std::size_t shardOf(TenantId id, std::size_t shards);

    /**
     * The full shard plan: plan[s] lists shard s's tenant ids in
     * ascending order.  `shards` is clamped to at least 1.
     */
    std::vector<std::vector<TenantId>> shardPlan(
        std::size_t shards) const;

    /**
     * Seeded synthetic fleet for benches and examples: `tenants`
     * machines with workloads drawn round-robin from the mix and
     * per-tenant seeds derived from the base seed.  Identical options
     * produce an identical registry.
     */
    static TenantRegistry synthetic(const SyntheticFleetOptions& options);

  private:
    std::vector<TenantConfig> tenants_; //!< ascending id order
};

} // namespace cchunter

#endif // CCHUNTER_FLEET_TENANT_REGISTRY_HH
