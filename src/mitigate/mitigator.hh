/**
 * @file
 * Post-detection damage control (paper sections I and VII): once
 * CC-Hunter flags a covert timing channel, the OS can limit resource
 * sharing or reduce the channel's bandwidth.  The paper leaves the
 * response to complementary work (BusMonitor, cache partitioning,
 * fuzzy time); this module implements the two generic responses its
 * introduction names:
 *
 *  - **Unshare** — migrate one suspected party off the shared unit
 *    (SMT execution units and per-core caches stop being shared, which
 *    severs the channel entirely);
 *  - **Rate-limit** — throttle the scarce conflict operation (bus
 *    locks), collapsing the channel's usable bandwidth while leaving
 *    ordinary traffic untouched.
 */

#ifndef CCHUNTER_MITIGATE_MITIGATOR_HH
#define CCHUNTER_MITIGATE_MITIGATOR_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "auditor/daemon.hh"
#include "sim/machine.hh"
#include "units/unit_registry.hh"

namespace cchunter
{

/** Human-readable name of a response. */
std::string mitigationName(MitigationKind kind);

/** Policy: the flagged unit's registry-recommended response. */
MitigationKind recommendMitigation(MonitorTarget target);

/**
 * Counted engage/release transitions of the mitigator's actions, so
 * de-escalation is observable and testable.  (The scheduler-level
 * partition/throttle/quarantine transitions are counted separately in
 * Scheduler::isolation().)
 */
struct MitigationLedger
{
    std::uint64_t unshares = 0;
    std::uint64_t unshareReleases = 0;
    std::uint64_t rateLimits = 0;
    std::uint64_t rateLimitReleases = 0;
    std::uint64_t engaged() const { return unshares + rateLimits; }
    std::uint64_t released() const
    {
        return unshareReleases + rateLimitReleases;
    }
};

/** The outcome of applying one mitigation. */
struct MitigationReport
{
    MitigationKind kind = MitigationKind::None;
    bool applied = false;
    /** Unshare: the migrated process and its new context. */
    ProcessId migratedPid = invalidProcess;
    ContextId newContext = invalidContext;
    /** Rate limit: enforced minimum lock interval. */
    Cycles lockInterval = 0;
    std::string summary() const;
};

/**
 * Applies responses to a machine under audit.
 */
class Mitigator
{
  public:
    Mitigator(Machine& machine, AuditDaemon& daemon);

    /**
     * Identify the most likely trojan/spy pair behind a cache slot's
     * conflict records: the most frequent unordered pid pair.
     * Returns (invalidProcess, invalidProcess) when no records exist.
     */
    std::pair<ProcessId, ProcessId> suspectPair(unsigned slot) const;

    /** Pids of the processes currently running on a core's contexts
     *  (the suspects for an execution-unit channel). */
    std::vector<ProcessId> coreResidents(unsigned core) const;

    /**
     * Unshare: re-pin the process `pid` onto a hardware context of a
     * different core (the first context of the farthest core).  Takes
     * effect at the next quantum boundary.
     */
    MitigationReport unshare(ProcessId pid);

    /** Undo unshare: re-pin `pid` to the context it occupied before
     *  its first unshare.  Not applied if the pid was never
     *  unshared. */
    MitigationReport releaseUnshare(ProcessId pid);

    /** Throttle bus locks to at most one per `min_interval` cycles. */
    MitigationReport rateLimitBusLocks(Cycles min_interval);

    /** Undo rateLimitBusLocks.  Not applied when no limit is set. */
    MitigationReport releaseBusLockRateLimit();

    /** Apply the recommended response for a flagged target. */
    MitigationReport respond(MonitorTarget target, unsigned slot);

    /** Engage/release transition counts. */
    const MitigationLedger& ledger() const { return ledger_; }

  private:
    Process* findProcess(ProcessId pid) const;

    Machine& machine_;
    AuditDaemon& daemon_;
    MitigationLedger ledger_;
    /** Pre-unshare pinned context per migrated pid (invalidContext for
     *  a process that was floating). */
    std::vector<std::pair<ProcessId, ContextId>> originalContext_;
};

} // namespace cchunter

#endif // CCHUNTER_MITIGATE_MITIGATOR_HH
