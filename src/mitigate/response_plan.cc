#include "mitigate/response_plan.hh"

#include <sstream>

#include "sim/machine.hh"
#include "units/unit_registry.hh"
#include "util/logging.hh"

namespace cchunter
{

const char*
responseLevelName(ResponseLevel level)
{
    switch (level) {
      case ResponseLevel::Observe:
        return "observe";
      case ResponseLevel::RateLimit:
        return "rate-limit";
      case ResponseLevel::TemporalPartition:
        return "temporal-partition";
      case ResponseLevel::Quarantine:
        return "quarantine";
    }
    return "unknown";
}

ResponseLevel
responseLevelFromName(const std::string& name)
{
    for (auto level :
         {ResponseLevel::Observe, ResponseLevel::RateLimit,
          ResponseLevel::TemporalPartition, ResponseLevel::Quarantine})
        if (name == responseLevelName(level))
            return level;
    fatal("unknown response level '", name,
          "' (observe, rate-limit, temporal-partition, quarantine)");
    return ResponseLevel::Observe;
}

ResponseLevel
escalated(ResponseLevel level)
{
    return level == ResponseLevel::Quarantine
               ? ResponseLevel::Quarantine
               : static_cast<ResponseLevel>(
                     static_cast<std::uint8_t>(level) + 1);
}

ResponseLevel
deescalated(ResponseLevel level)
{
    return level == ResponseLevel::Observe
               ? ResponseLevel::Observe
               : static_cast<ResponseLevel>(
                     static_cast<std::uint8_t>(level) - 1);
}

std::map<std::string, std::string>
ResponsePlan::toConfig() const
{
    std::map<std::string, std::string> config;
    config["respond.level"] = responseLevelName(level);
    config["respond.bus_lock_interval"] =
        std::to_string(busLockInterval);
    config["respond.throttle_period"] = std::to_string(throttlePeriod);
    config["respond.throttle_active"] = std::to_string(throttleActive);
    return config;
}

ResponsePlan
ResponsePlan::fromConfig(const std::map<std::string, std::string>& config)
{
    ResponsePlan plan;
    if (auto it = config.find("respond.level"); it != config.end())
        plan.level = responseLevelFromName(it->second);
    if (auto it = config.find("respond.bus_lock_interval");
        it != config.end())
        plan.busLockInterval = std::stoull(it->second);
    if (auto it = config.find("respond.throttle_period");
        it != config.end())
        plan.throttlePeriod =
            static_cast<std::uint32_t>(std::stoul(it->second));
    if (auto it = config.find("respond.throttle_active");
        it != config.end())
        plan.throttleActive =
            static_cast<std::uint32_t>(std::stoul(it->second));
    return plan;
}

namespace
{

/** The bus channel is rate-limited at the bus, everything else at the
 *  scheduler; the registry's descriptor decides. */
bool
rateLimitAtBus(MonitorTarget unit)
{
    const UnitDescriptor* d = UnitRegistry::instance().byId(unit);
    return d && d->mitigation == MitigationKind::RateLimitBusLocks;
}

bool
apply(Machine& machine, std::array<ContextId, 2> contexts,
      const ResponsePlan& plan, bool bus_rate_limit)
{
    Scheduler& sched = machine.scheduler();
    switch (plan.level) {
      case ResponseLevel::Observe:
        return false;
      case ResponseLevel::RateLimit:
        if (bus_rate_limit) {
            machine.mem().bus().setLockRateLimit(plan.busLockInterval);
            return true;
        }
        // Throttle the second context (the spy's seat): the receiver
        // losing quanta degrades decode without idling the trojan's
        // context, which benign co-runners may share.
        return sched.throttleContext(contexts[1], plan.throttlePeriod,
                                     plan.throttleActive);
      case ResponseLevel::TemporalPartition:
        return sched.partitionContexts(contexts[0], contexts[1]);
      case ResponseLevel::Quarantine: {
        const bool a = sched.quarantineContext(contexts[0]);
        const bool b = sched.quarantineContext(contexts[1]);
        return a || b;
      }
    }
    return false;
}

bool
release(Machine& machine, std::array<ContextId, 2> contexts,
        const ResponsePlan& plan, bool bus_rate_limit)
{
    Scheduler& sched = machine.scheduler();
    switch (plan.level) {
      case ResponseLevel::Observe:
        return false;
      case ResponseLevel::RateLimit:
        if (bus_rate_limit) {
            if (machine.mem().bus().lockRateLimit() == 0)
                return false;
            machine.mem().bus().setLockRateLimit(0);
            return true;
        }
        return sched.releaseThrottle(contexts[1]);
      case ResponseLevel::TemporalPartition:
        return sched.releasePartition(contexts[0], contexts[1]);
      case ResponseLevel::Quarantine: {
        const bool a = sched.releaseQuarantine(contexts[0]);
        const bool b = sched.releaseQuarantine(contexts[1]);
        return a || b;
      }
    }
    return false;
}

} // namespace

bool
applyResponsePlan(Machine& machine, MonitorTarget unit,
                  const ResponsePlan& plan)
{
    const UnitDescriptor& d = UnitRegistry::instance().require(unit);
    return apply(machine, d.channelContexts, plan, rateLimitAtBus(unit));
}

bool
applyResponsePlan(Machine& machine, std::array<ContextId, 2> contexts,
                  const ResponsePlan& plan)
{
    return apply(machine, contexts, plan, false);
}

bool
releaseResponsePlan(Machine& machine, MonitorTarget unit,
                    const ResponsePlan& plan)
{
    const UnitDescriptor& d = UnitRegistry::instance().require(unit);
    return release(machine, d.channelContexts, plan,
                   rateLimitAtBus(unit));
}

bool
releaseResponsePlan(Machine& machine, std::array<ContextId, 2> contexts,
                    const ResponsePlan& plan)
{
    return release(machine, contexts, plan, false);
}

} // namespace cchunter
