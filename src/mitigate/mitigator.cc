#include "mitigate/mitigator.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/logging.hh"

namespace cchunter
{

std::string
mitigationName(MitigationKind kind)
{
    switch (kind) {
      case MitigationKind::None:
        return "none";
      case MitigationKind::UnshareCore:
        return "unshare-core";
      case MitigationKind::RateLimitBusLocks:
        return "rate-limit-bus-locks";
    }
    return "unknown";
}

MitigationKind
recommendMitigation(MonitorTarget target)
{
    const UnitDescriptor* unit =
        UnitRegistry::instance().byId(target);
    return unit ? unit->mitigation : MitigationKind::None;
}

std::string
MitigationReport::summary() const
{
    std::ostringstream os;
    os << mitigationName(kind)
       << (applied ? " applied" : " not applied");
    if (migratedPid != invalidProcess)
        os << " pid=" << migratedPid << " -> context "
           << int{newContext};
    if (lockInterval != 0)
        os << " min-lock-interval=" << lockInterval;
    return os.str();
}

Mitigator::Mitigator(Machine& machine, AuditDaemon& daemon)
    : machine_(machine), daemon_(daemon)
{
}

std::pair<ProcessId, ProcessId>
Mitigator::suspectPair(unsigned slot) const
{
    std::map<std::pair<ProcessId, ProcessId>, std::uint64_t> counts;
    for (const auto& rec : daemon_.conflictRecords(slot)) {
        if (rec.replacerPid == invalidProcess ||
            rec.victimPid == invalidProcess)
            continue;
        auto key = std::minmax(rec.replacerPid, rec.victimPid);
        ++counts[{key.first, key.second}];
    }
    std::pair<ProcessId, ProcessId> best{invalidProcess,
                                         invalidProcess};
    std::uint64_t best_count = 0;
    for (const auto& [pair, count] : counts) {
        if (count > best_count) {
            best_count = count;
            best = pair;
        }
    }
    return best;
}

std::vector<ProcessId>
Mitigator::coreResidents(unsigned core) const
{
    std::vector<ProcessId> out;
    const unsigned threads =
        machine_.numContexts() / machine_.numCores();
    for (unsigned t = 0; t < threads; ++t) {
        const auto ctx = static_cast<ContextId>(core * threads + t);
        if (Process* p = machine_.runningOn(ctx))
            out.push_back(p->pid());
    }
    return out;
}

Process*
Mitigator::findProcess(ProcessId pid) const
{
    for (const auto& p : machine_.scheduler().processes())
        if (p->pid() == pid)
            return p.get();
    return nullptr;
}

MitigationReport
Mitigator::unshare(ProcessId pid)
{
    MitigationReport report;
    report.kind = MitigationKind::UnshareCore;
    Process* p = findProcess(pid);
    if (!p) {
        warn("Mitigator: pid ", pid, " not found");
        return report;
    }
    const unsigned threads =
        machine_.numContexts() / machine_.numCores();
    const unsigned current_core =
        p->pinned() ? p->pinnedContext() / threads : 0;
    // Farthest core: maximise the distance so the pair cannot follow.
    const unsigned target_core =
        (current_core + machine_.numCores() / 2) % machine_.numCores();
    const auto target_ctx =
        static_cast<ContextId>(target_core * threads);
    // Remember where it came from so the response can be released;
    // only the first unshare of a pid records the true origin.
    bool known = false;
    for (const auto& [opid, octx] : originalContext_)
        known = known || opid == pid;
    if (!known)
        originalContext_.emplace_back(pid, p->pinnedContext());
    p->setPinnedContext(target_ctx);
    ++ledger_.unshares;
    report.applied = true;
    report.migratedPid = pid;
    report.newContext = target_ctx;
    return report;
}

MitigationReport
Mitigator::releaseUnshare(ProcessId pid)
{
    MitigationReport report;
    report.kind = MitigationKind::UnshareCore;
    Process* p = findProcess(pid);
    if (!p) {
        warn("Mitigator: pid ", pid, " not found");
        return report;
    }
    for (auto it = originalContext_.begin();
         it != originalContext_.end(); ++it) {
        if (it->first != pid)
            continue;
        p->setPinnedContext(it->second);
        report.applied = true;
        report.migratedPid = pid;
        report.newContext = it->second;
        originalContext_.erase(it);
        ++ledger_.unshareReleases;
        return report;
    }
    warn("Mitigator: pid ", pid, " was never unshared");
    return report;
}

MitigationReport
Mitigator::rateLimitBusLocks(Cycles min_interval)
{
    MitigationReport report;
    report.kind = MitigationKind::RateLimitBusLocks;
    if (min_interval == 0) {
        warn("Mitigator: zero lock interval is a no-op");
        return report;
    }
    machine_.mem().bus().setLockRateLimit(min_interval);
    ++ledger_.rateLimits;
    report.applied = true;
    report.lockInterval = min_interval;
    return report;
}

MitigationReport
Mitigator::releaseBusLockRateLimit()
{
    MitigationReport report;
    report.kind = MitigationKind::RateLimitBusLocks;
    if (machine_.mem().bus().lockRateLimit() == 0) {
        warn("Mitigator: no bus lock rate limit engaged");
        return report;
    }
    machine_.mem().bus().setLockRateLimit(0);
    ++ledger_.rateLimitReleases;
    report.applied = true;
    return report;
}

MitigationReport
Mitigator::respond(MonitorTarget target, unsigned slot)
{
    switch (recommendMitigation(target)) {
      case MitigationKind::RateLimitBusLocks:
        // Throttle to one lock per default bus-channel delta-t: at
        // most one conflict event per observation window.
        return rateLimitBusLocks(100000);

      case MitigationKind::UnshareCore: {
        // Prefer the cache slot's evidence; fall back to whoever is
        // resident on the audited core.
        auto pair = suspectPair(slot);
        if (pair.first == invalidProcess) {
            const auto residents = coreResidents(0);
            if (!residents.empty())
                pair.first = residents.back();
        }
        if (pair.first == invalidProcess) {
            MitigationReport report;
            report.kind = MitigationKind::UnshareCore;
            return report;
        }
        // Migrate the higher pid (the later-arrived, typically the
        // spy); either party leaving severs the channel.
        const ProcessId victim =
            pair.second != invalidProcess ? pair.second : pair.first;
        return unshare(victim);
      }

      case MitigationKind::None:
        break;
    }
    return MitigationReport{};
}

} // namespace cchunter
