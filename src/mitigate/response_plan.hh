/**
 * @file
 * The response ladder: a ResponsePlan names one rung of the
 * observe → rate-limit → temporal-partition → quarantine escalation
 * ladder plus its tuning knobs, and apply/release helpers translate a
 * plan into scheduler/bus actions on a machine.
 *
 * The ladder trades residual channel bandwidth against the performance
 * tax on benign co-runners:
 *
 *  - **Observe** — no action; full bandwidth, zero tax.
 *  - **RateLimit** — throttle the scarce operation: bus-lock rate
 *    limiting for the memory bus, a duty-cycle throttle of the spy's
 *    context for everything else.  Cuts bandwidth, modest tax.
 *  - **TemporalPartition** — the implicated context pair alternates
 *    quanta and is never co-scheduled (the RISC-V temporal-
 *    partitioning approach).  Severs concurrent sharing; each party
 *    keeps half its cycles.
 *  - **Quarantine** — both contexts of the pair are forced idle; the
 *    channel is dead and so is the pair's work.
 *
 * These types live in mitigate/ (not respond/) so the scenario layer
 * can expose a response axis without depending on the orchestrator.
 */

#ifndef CCHUNTER_MITIGATE_RESPONSE_PLAN_HH
#define CCHUNTER_MITIGATE_RESPONSE_PLAN_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "util/types.hh"

namespace cchunter
{

class Machine;
enum class MonitorTarget : std::uint8_t;

/** One rung of the escalation ladder, weakest response first. */
enum class ResponseLevel : std::uint8_t
{
    Observe = 0,
    RateLimit = 1,
    TemporalPartition = 2,
    Quarantine = 3,
};

/** Stable lower-case name (config keys, action log, bench tables). */
const char* responseLevelName(ResponseLevel level);

/** Parse a level name; fatal on an unknown one. */
ResponseLevel responseLevelFromName(const std::string& name);

/** The rung one step up/down, saturating at the ladder ends. */
ResponseLevel escalated(ResponseLevel level);
ResponseLevel deescalated(ResponseLevel level);

/** A response level plus its tuning knobs. */
struct ResponsePlan
{
    ResponseLevel level = ResponseLevel::Observe;

    /** RateLimit on the memory bus: minimum cycles between bus locks
     *  (one conflict event per default observation window). */
    Cycles busLockInterval = 100000;

    /** RateLimit elsewhere: duty-cycle throttle of the spy context —
     *  `throttleActive` quanta running out of every `throttlePeriod`. */
    std::uint32_t throttlePeriod = 4;
    std::uint32_t throttleActive = 1;

    bool active() const { return level != ResponseLevel::Observe; }

    /** Config round-trip (the scenario axis / corpus encoding). */
    std::map<std::string, std::string> toConfig() const;
    static ResponsePlan
    fromConfig(const std::map<std::string, std::string>& config);
};

/**
 * Engage `plan` on `machine` for a channel on `unit`, isolating the
 * unit's registry-declared context pair.  Returns true if any action
 * was taken (Observe plans take none).
 */
bool applyResponsePlan(Machine& machine, MonitorTarget unit,
                       const ResponsePlan& plan);

/** As above with an explicit context pair (benign runs, tests). */
bool applyResponsePlan(Machine& machine,
                       std::array<ContextId, 2> contexts,
                       const ResponsePlan& plan);

/** Undo applyResponsePlan (counted by the scheduler's IsolationStats
 *  and the bus).  Returns true if any engaged action was released. */
bool releaseResponsePlan(Machine& machine, MonitorTarget unit,
                         const ResponsePlan& plan);
bool releaseResponsePlan(Machine& machine,
                         std::array<ContextId, 2> contexts,
                         const ResponsePlan& plan);

} // namespace cchunter

#endif // CCHUNTER_MITIGATE_RESPONSE_PLAN_HH
