#include "auditor/vector_register.hh"

#include "util/logging.hh"

namespace cchunter
{

ConflictVectorRegisters::ConflictVectorRegisters(
        VectorRegisterParams params)
    : params_(params)
{
    if (params_.bitsPerContext == 0 || params_.bitsPerContext > 8)
        fatal("ConflictVectorRegisters: bitsPerContext out of range");
    if (params_.entriesPerRegister() == 0)
        fatal("ConflictVectorRegisters: registers too small");
    buffers_[0].reserve(params_.entriesPerRegister());
    buffers_[1].reserve(params_.entriesPerRegister());
}

void
ConflictVectorRegisters::record(const ConflictMissEvent& event)
{
    buffers_[active_].push_back(event);
    ++totalRecorded_;
    if (buffers_[active_].size() >= params_.entriesPerRegister()) {
        const unsigned full = active_;
        active_ = 1 - active_;
        drain(full);
    }
}

void
ConflictVectorRegisters::flush()
{
    // Drain the inactive register first (it holds older events if a
    // swap happened without a callback), then the active one.
    if (!buffers_[1 - active_].empty())
        drain(1 - active_);
    if (!buffers_[active_].empty())
        drain(active_);
}

void
ConflictVectorRegisters::drain(unsigned idx)
{
    if (buffers_[idx].empty())
        return;
    ++drains_;
    if (callback_)
        callback_(buffers_[idx]);
    buffers_[idx].clear();
}

void
ConflictVectorRegisters::setDrainCallback(VectorDrainCallback callback)
{
    callback_ = std::move(callback);
}

} // namespace cchunter
