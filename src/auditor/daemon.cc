#include "auditor/daemon.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/logging.hh"

namespace cchunter
{

double
PipelineStats::latencyMeanUs() const
{
    return analysesRun == 0
               ? 0.0
               : latencyTotalUs / static_cast<double>(analysesRun);
}

void
PipelineStats::accumulate(const PipelineStats& other)
{
    drainedHistograms += other.drainedHistograms;
    drainedConflicts += other.drainedConflicts;
    evictedQuanta += other.evictedQuanta;
    evictedConflicts += other.evictedConflicts;
    batchesEnqueued += other.batchesEnqueued;
    batchesDropped += other.batchesDropped;
    queueDepthHighWater =
        std::max(queueDepthHighWater, other.queueDepthHighWater);
    if (other.analysesRun != 0) {
        latencyMinUs = analysesRun == 0
                           ? other.latencyMinUs
                           : std::min(latencyMinUs, other.latencyMinUs);
        latencyMaxUs = std::max(latencyMaxUs, other.latencyMaxUs);
    }
    analysesRun += other.analysesRun;
    latencyTotalUs += other.latencyTotalUs;
}

std::string
PipelineStats::summary() const
{
    std::ostringstream os;
    os << "drained " << drainedHistograms << " hist / "
       << drainedConflicts << " conflicts, evicted " << evictedQuanta
       << " quanta / " << evictedConflicts << " conflicts, batches "
       << batchesEnqueued << " (" << batchesDropped
       << " dropped, queue hwm " << queueDepthHighWater
       << "), analyses " << analysesRun;
    if (analysesRun != 0) {
        os.precision(1);
        os << std::fixed << ", latency us min/mean/max "
           << latencyMinUs << '/' << latencyMeanUs() << '/'
           << latencyMaxUs;
    }
    return os.str();
}

std::vector<StatEntry>
pipelineStatEntries(const PipelineStats& s, const std::string& prefix)
{
    std::vector<StatEntry> out;
    auto add = [&](const char* name, double value, const char* desc) {
        out.push_back(StatEntry{prefix + name, value, desc});
    };
    add("drained_histograms",
        static_cast<double>(s.drainedHistograms),
        "quantum histogram snapshots drained");
    add("drained_conflicts", static_cast<double>(s.drainedConflicts),
        "conflict records drained from vector registers");
    add("evicted_quanta", static_cast<double>(s.evictedQuanta),
        "histograms aged out of retention windows");
    add("evicted_conflicts", static_cast<double>(s.evictedConflicts),
        "conflict records aged out of retention windows");
    add("batches_enqueued", static_cast<double>(s.batchesEnqueued),
        "analysis batches handed to the consumer");
    add("batches_dropped", static_cast<double>(s.batchesDropped),
        "analysis batches shed under DropOldest overflow");
    add("queue_depth_hwm", static_cast<double>(s.queueDepthHighWater),
        "hand-off queue depth high-water mark");
    add("analyses_run", static_cast<double>(s.analysesRun),
        "online analysis passes completed");
    add("latency_min_us", s.latencyMinUs,
        "fastest analysis pass");
    add("latency_mean_us", s.latencyMeanUs(),
        "mean analysis pass");
    add("latency_max_us", s.latencyMaxUs,
        "slowest analysis pass");
    return out;
}

AuditDaemon::AuditDaemon(Machine& machine, CCAuditor& auditor,
                         DaemonRetention retention)
    : machine_(machine), auditor_(auditor), retention_(retention)
{
    if (retention_.contentionQuanta == 0)
        fatal("AuditDaemon: contention retention must be > 0");
    if (retention_.conflictRecords == 0)
        fatal("AuditDaemon: conflict-record retention must be > 0");
    slots_.resize(auditor_.numSlots());
    for (auto& st : slots_) {
        st.window.setCapacity(retention_.contentionQuanta);
        st.records.setCapacity(retention_.conflictRecords);
    }
    machine_.scheduler().addQuantumObserver(
        [this](std::uint64_t q, Tick now) { onQuantum(q, now); });
    for (unsigned s = 0; s < auditor_.numSlots(); ++s)
        wireCacheSlot(s);
}

AuditDaemon::~AuditDaemon()
{
    if (queue_)
        queue_->close();
    if (analysisThread_.joinable())
        analysisThread_.join();
}

namespace
{

double
labelOf(const ConflictRecord& r)
{
    return r.replacerPid != invalidProcess &&
                   r.victimPid != invalidProcess &&
                   r.replacerPid < r.victimPid
               ? 1.0
               : 0.0;
}

} // namespace

void
AuditDaemon::wireCacheSlot(unsigned slot)
{
    auto* vr = auditor_.vectorRegisters(slot);
    if (!vr)
        return;
    vr->setDrainCallback(
        [this, slot](const std::vector<ConflictMissEvent>& evs) {
            SlotState& st = slots_[slot];
            for (const auto& ev : evs) {
                ConflictRecord rec;
                rec.time = ev.time;
                rec.replacerContext = ev.replacer;
                rec.victimContext = ev.victim;
                rec.quantum = currentQuantum_;
                if (ev.replacer != invalidContext &&
                    ev.replacer < machine_.numContexts()) {
                    if (Process* p = machine_.runningOn(ev.replacer))
                        rec.replacerPid = p->pid();
                }
                if (ev.victim != invalidContext &&
                    ev.victim < machine_.numContexts()) {
                    if (Process* p = machine_.runningOn(ev.victim))
                        rec.victimPid = p->pid();
                }
                // Maintain the label series as records arrive so the
                // per-quantum analysis never rescans the full log.
                st.quantumLabels.push_back(labelOf(rec));
                st.records.push(rec);
            }
            std::lock_guard<std::mutex> lock(statsMutex_);
            stats_.drainedConflicts += evs.size();
        });
}

void
AuditDaemon::onQuantum(std::uint64_t quantum_index, Tick now)
{
    for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
        if (!auditor_.slotActive(s))
            continue;
        // Slots may have been (re)programmed since construction; keep
        // the drain callback wired (idempotent).
        wireCacheSlot(s);
        if (auto* hb = auditor_.histogramBuffer(s)) {
            Histogram h = hb->snapshotAndReset(now);
            SlotState& st = slots_[s];
            if (!st.mergedInit) {
                st.merged = Histogram(h.numBins());
                st.mergedInit = true;
            }
            st.merged.merge(h);
            if (auto evicted = st.window.push(std::move(h)))
                st.merged.unmerge(*evicted);
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.drainedHistograms;
        }
        if (auto* vr = auditor_.vectorRegisters(s))
            vr->flush();
    }
    if (online_)
        dispatchAnalyses(quantum_index, now);
    // The per-quantum label buffers only live for the quantum they
    // were drained in (async batches take them by move).
    for (auto& st : slots_)
        st.quantumLabels.clear();
    currentQuantum_ = quantum_index + 1;
    ++quanta_;
}

void
AuditDaemon::enableOnlineAnalysis(OnlineAnalysisParams params,
                                  AlarmCallback callback)
{
    if (params.clusteringIntervalQuanta == 0)
        fatal("enableOnlineAnalysis: clustering interval must be > 0");
    if (analysisThread_.joinable())
        fatal("enableOnlineAnalysis: async analysis already running");
    online_ = true;
    onlineParams_ = params;
    alarmCallback_ = std::move(callback);
    debugRecompute_ = params.debugRecomputeMerged;
    if (onlineParams_.analysisThreads != 1)
        pool_ = std::make_unique<ThreadPool>(
            onlineParams_.analysisThreads);
    else
        pool_.reset();
    setContentionRetention(params.retentionQuanta != 0
                               ? params.retentionQuanta
                               : params.clusteringIntervalQuanta);
    if (params.asyncAnalysis) {
        queue_ = std::make_unique<BoundedQueue<AnalysisBatch>>(
            params.queueCapacity, params.queueOverflow);
        analysisThread_ = std::thread([this] { analysisLoop(); });
    }
}

void
AuditDaemon::setContentionRetention(std::size_t quanta)
{
    retention_.contentionQuanta = quanta;
    for (auto& st : slots_) {
        // Shrinking evicts the oldest histograms; keep the merged sum
        // consistent by subtracting them out before they go.
        while (st.window.size() > quanta) {
            auto evicted = st.window.popFront();
            if (st.mergedInit)
                st.merged.unmerge(*evicted);
        }
        st.window.setCapacity(quanta);
    }
}

void
AuditDaemon::setDebugRecomputeMerged(bool recompute)
{
    debugRecompute_ = recompute;
}

void
AuditDaemon::dispatchAnalyses(std::uint64_t quantum_index, Tick now)
{
    const bool clusteringDue =
        (quantum_index + 1) % onlineParams_.clusteringIntervalQuanta ==
        0;
    const bool async = queue_ != nullptr;

    AnalysisBatch batch;
    batch.quantum = quantum_index;
    batch.now = now;
    for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
        if (!auditor_.slotActive(s))
            continue;
        SlotWork sv;
        sv.slot = s;
        sv.hasContention =
            auditor_.histogramBuffer(s) != nullptr && clusteringDue;
        sv.hasOscillation = auditor_.vectorRegisters(s) != nullptr &&
                            onlineParams_.autocorrEveryQuantum;
        if (!sv.hasContention && !sv.hasOscillation)
            continue;
        if (async) {
            // The simulation keeps mutating the live windows, so the
            // hand-off carries snapshots: the histogram window only
            // when clustering is due, the labels always (by move —
            // they are per-quantum anyway).
            SlotState& st = slots_[s];
            if (sv.hasContention) {
                sv.windowCopy = st.window.toVector();
                if (st.mergedInit)
                    sv.mergedCopy = st.merged;
            }
            if (sv.hasOscillation)
                sv.labels = std::move(st.quantumLabels);
        }
        batch.work.push_back(std::move(sv));
    }
    if (batch.work.empty())
        return;

    if (async) {
        {
            std::lock_guard<std::mutex> lock(idleMutex_);
            ++submitted_;
        }
        auto displaced = queue_->push(std::move(batch));
        if (displaced) {
            std::lock_guard<std::mutex> lock(idleMutex_);
            ++completed_;
            idleCv_.notify_all();
        }
        return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    analyzeBatch(batch, /*from_snapshots=*/false);
    applyVerdicts(batch);
    const auto t1 = std::chrono::steady_clock::now();
    recordAnalysisLatency(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
}

void
AuditDaemon::analyzeBatch(AnalysisBatch& batch, bool from_snapshots)
{
    auto analyzeOne = [&](std::size_t i) {
        SlotWork& sv = batch.work[i];
        // Each task gets its own hunter; the shared pool only fans out
        // across slots, not within one (the per-slot kernels are the
        // unit of parallelism here).
        CCHunter hunter(onlineParams_.hunter);
        if (sv.hasContention) {
            std::vector<const Histogram*> view;
            const Histogram* premerged = nullptr;
            if (from_snapshots) {
                view.reserve(sv.windowCopy.size());
                for (const Histogram& h : sv.windowCopy)
                    view.push_back(&h);
                if (!debugRecompute_ && !sv.windowCopy.empty())
                    premerged = &sv.mergedCopy;
            } else {
                const SlotState& st = slots_[sv.slot];
                view.reserve(st.window.size());
                for (const Histogram& h : st.window)
                    view.push_back(&h);
                if (!debugRecompute_ && st.mergedInit)
                    premerged = &st.merged;
            }
            sv.contention = hunter.analyzeContention(view, premerged);
        }
        if (sv.hasOscillation) {
            const std::vector<double>& labels =
                from_snapshots ? sv.labels
                               : slots_[sv.slot].quantumLabels;
            sv.oscillation = hunter.analyzeOscillation(labels);
        }
    };
    if (pool_ && batch.work.size() > 1) {
        pool_->parallelFor(batch.work.size(), analyzeOne);
    } else {
        for (std::size_t i = 0; i < batch.work.size(); ++i)
            analyzeOne(i);
    }
}

void
AuditDaemon::applyVerdicts(AnalysisBatch& batch)
{
    // Apply verdicts in slot order, contention before oscillation —
    // the exact alarm stream the serial inline path produces.
    std::lock_guard<std::mutex> lock(alarmsMutex_);
    auto raise = [&](unsigned slot, std::string summary) {
        Alarm alarm{slot, batch.now, batch.quantum, std::move(summary)};
        alarms_.push_back(alarm);
        if (alarmCallback_)
            alarmCallback_(alarms_.back());
    };
    for (const auto& sv : batch.work) {
        if (sv.hasContention && sv.contention.detected)
            raise(sv.slot, sv.contention.summary());
        if (sv.hasOscillation && sv.oscillation.detected)
            raise(sv.slot, sv.oscillation.summary());
    }
}

void
AuditDaemon::recordAnalysisLatency(double micros)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.latencyMinUs = stats_.analysesRun == 0
                              ? micros
                              : std::min(stats_.latencyMinUs, micros);
    stats_.latencyMaxUs = std::max(stats_.latencyMaxUs, micros);
    stats_.latencyTotalUs += micros;
    ++stats_.analysesRun;
}

void
AuditDaemon::analysisLoop()
{
    while (auto batch = queue_->pop()) {
        const auto t0 = std::chrono::steady_clock::now();
        try {
            analyzeBatch(*batch, /*from_snapshots=*/true);
            applyVerdicts(*batch);
        } catch (const std::exception& e) {
            warn("online analysis batch failed: ", e.what());
        }
        const auto t1 = std::chrono::steady_clock::now();
        recordAnalysisLatency(
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count());
        {
            std::lock_guard<std::mutex> lock(idleMutex_);
            ++completed_;
        }
        idleCv_.notify_all();
    }
}

void
AuditDaemon::flushAnalyses() const
{
    if (!queue_)
        return;
    std::unique_lock<std::mutex> lock(idleMutex_);
    idleCv_.wait(lock, [this] { return completed_ == submitted_; });
}

PipelineStats
AuditDaemon::pipelineStats() const
{
    flushAnalyses();
    PipelineStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out = stats_;
    }
    for (const auto& st : slots_) {
        out.evictedQuanta += st.window.evictions();
        out.evictedConflicts += st.records.evictions();
    }
    if (queue_) {
        out.batchesEnqueued = queue_->pushed();
        out.batchesDropped = queue_->dropped();
        out.queueDepthHighWater = queue_->highWaterMark();
    }
    return out;
}

const std::vector<Alarm>&
AuditDaemon::alarms() const
{
    flushAnalyses();
    return alarms_;
}

std::uint64_t
AuditDaemon::firstAlarmQuantum(unsigned slot) const
{
    flushAnalyses();
    for (const auto& a : alarms_)
        if (a.slot == slot)
            return a.quantum;
    return SIZE_MAX;
}

const AuditDaemon::SlotState&
AuditDaemon::slotState(unsigned slot) const
{
    if (slot >= slots_.size())
        fatal("AuditDaemon: bad slot");
    return slots_[slot];
}

std::vector<Histogram>
AuditDaemon::contentionQuanta(unsigned slot) const
{
    return slotState(slot).window.toVector();
}

const RingBuffer<Histogram>&
AuditDaemon::contentionWindow(unsigned slot) const
{
    return slotState(slot).window;
}

std::vector<ConflictRecord>
AuditDaemon::conflictRecords(unsigned slot) const
{
    return slotState(slot).records.toVector();
}

const RingBuffer<ConflictRecord>&
AuditDaemon::conflictWindow(unsigned slot) const
{
    return slotState(slot).records;
}

std::uint64_t
AuditDaemon::evictedQuanta(unsigned slot) const
{
    return slotState(slot).window.evictions();
}

std::uint64_t
AuditDaemon::evictedConflicts(unsigned slot) const
{
    return slotState(slot).records.evictions();
}

std::vector<double>
AuditDaemon::labelSeries(unsigned slot) const
{
    const auto& recs = slotState(slot).records;
    std::vector<double> out;
    out.reserve(recs.size());
    for (const auto& r : recs)
        out.push_back(labelOf(r));
    return out;
}

std::vector<double>
AuditDaemon::labelSeriesForQuantum(unsigned slot,
                                   std::uint64_t quantum) const
{
    const auto& recs = slotState(slot).records;
    std::vector<double> out;
    for (const auto& r : recs) {
        if (r.quantum == quantum)
            out.push_back(labelOf(r));
    }
    return out;
}

ContentionVerdict
AuditDaemon::analyzeContention(unsigned slot, CCHunterParams params)
    const
{
    const SlotState& st = slotState(slot);
    std::vector<const Histogram*> view;
    view.reserve(st.window.size());
    for (const Histogram& h : st.window)
        view.push_back(&h);
    CCHunter hunter(params);
    const Histogram* premerged =
        !debugRecompute_ && st.mergedInit ? &st.merged : nullptr;
    return hunter.analyzeContention(view, premerged);
}

OscillationVerdict
AuditDaemon::analyzeOscillation(unsigned slot, CCHunterParams params)
    const
{
    CCHunter hunter(params);
    return hunter.analyzeOscillation(labelSeries(slot));
}

} // namespace cchunter
