#include "auditor/daemon.hh"

#include "util/logging.hh"

namespace cchunter
{

AuditDaemon::AuditDaemon(Machine& machine, CCAuditor& auditor)
    : machine_(machine), auditor_(auditor)
{
    contention_.resize(auditor_.numSlots());
    conflicts_.resize(auditor_.numSlots());
    machine_.scheduler().addQuantumObserver(
        [this](std::uint64_t q, Tick now) { onQuantum(q, now); });
    for (unsigned s = 0; s < auditor_.numSlots(); ++s)
        wireCacheSlot(s);
}

void
AuditDaemon::wireCacheSlot(unsigned slot)
{
    auto* vr = auditor_.vectorRegisters(slot);
    if (!vr)
        return;
    vr->setDrainCallback(
        [this, slot](const std::vector<ConflictMissEvent>& evs) {
            for (const auto& ev : evs) {
                ConflictRecord rec;
                rec.time = ev.time;
                rec.replacerContext = ev.replacer;
                rec.victimContext = ev.victim;
                rec.quantum = currentQuantum_;
                if (ev.replacer != invalidContext &&
                    ev.replacer < machine_.numContexts()) {
                    if (Process* p = machine_.runningOn(ev.replacer))
                        rec.replacerPid = p->pid();
                }
                if (ev.victim != invalidContext &&
                    ev.victim < machine_.numContexts()) {
                    if (Process* p = machine_.runningOn(ev.victim))
                        rec.victimPid = p->pid();
                }
                conflicts_[slot].push_back(rec);
            }
        });
}

void
AuditDaemon::onQuantum(std::uint64_t quantum_index, Tick now)
{
    for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
        if (!auditor_.slotActive(s))
            continue;
        // Slots may have been (re)programmed since construction; keep
        // the drain callback wired (idempotent).
        wireCacheSlot(s);
        if (auto* hb = auditor_.histogramBuffer(s))
            contention_[s].push_back(hb->snapshotAndReset(now));
        if (auto* vr = auditor_.vectorRegisters(s))
            vr->flush();
    }
    if (online_)
        runOnlineAnalyses(quantum_index, now);
    currentQuantum_ = quantum_index + 1;
    ++quanta_;
}

void
AuditDaemon::enableOnlineAnalysis(OnlineAnalysisParams params,
                                  AlarmCallback callback)
{
    if (params.clusteringIntervalQuanta == 0)
        fatal("enableOnlineAnalysis: clustering interval must be > 0");
    online_ = true;
    onlineParams_ = params;
    alarmCallback_ = std::move(callback);
    if (onlineParams_.analysisThreads != 1)
        pool_ = std::make_unique<ThreadPool>(
            onlineParams_.analysisThreads);
    else
        pool_.reset();
}

void
AuditDaemon::runOnlineAnalyses(std::uint64_t quantum_index, Tick now)
{
    const bool clusteringDue =
        (quantum_index + 1) % onlineParams_.clusteringIntervalQuanta ==
        0;

    // Gather the active slots, then fan their analyses out: the
    // recorded series are immutable during this pass (draining happened
    // earlier in onQuantum), so the workers only read shared state and
    // write their own verdict cell.
    struct SlotVerdicts
    {
        unsigned slot = 0;
        bool hasContention = false;
        ContentionVerdict contention;
        bool hasOscillation = false;
        OscillationVerdict oscillation;
    };
    std::vector<SlotVerdicts> work;
    for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
        if (!auditor_.slotActive(s))
            continue;
        SlotVerdicts sv;
        sv.slot = s;
        sv.hasContention =
            auditor_.histogramBuffer(s) != nullptr && clusteringDue;
        sv.hasOscillation = auditor_.vectorRegisters(s) != nullptr &&
                            onlineParams_.autocorrEveryQuantum;
        if (sv.hasContention || sv.hasOscillation)
            work.push_back(sv);
    }

    auto analyzeSlot = [&](std::size_t i) {
        SlotVerdicts& sv = work[i];
        // Each task gets its own hunter; the shared pool only fans out
        // across slots, not within one (the per-slot kernels are the
        // unit of parallelism here).
        CCHunter hunter(onlineParams_.hunter);
        if (sv.hasContention)
            sv.contention =
                hunter.analyzeContention(contention_[sv.slot]);
        if (sv.hasOscillation)
            sv.oscillation = hunter.analyzeOscillation(
                labelSeriesForQuantum(sv.slot, quantum_index));
    };
    if (pool_ && work.size() > 1) {
        pool_->parallelFor(work.size(), analyzeSlot);
    } else {
        for (std::size_t i = 0; i < work.size(); ++i)
            analyzeSlot(i);
    }

    // Apply verdicts in slot order, contention before oscillation —
    // the exact alarm stream the serial path produces.
    auto raise = [&](unsigned slot, std::string summary) {
        Alarm alarm{slot, now, quantum_index, std::move(summary)};
        alarms_.push_back(alarm);
        if (alarmCallback_)
            alarmCallback_(alarms_.back());
    };
    for (const auto& sv : work) {
        if (sv.hasContention && sv.contention.detected)
            raise(sv.slot, sv.contention.summary());
        if (sv.hasOscillation && sv.oscillation.detected)
            raise(sv.slot, sv.oscillation.summary());
    }
}

std::uint64_t
AuditDaemon::firstAlarmQuantum(unsigned slot) const
{
    for (const auto& a : alarms_)
        if (a.slot == slot)
            return a.quantum;
    return SIZE_MAX;
}

const std::vector<Histogram>&
AuditDaemon::contentionQuanta(unsigned slot) const
{
    if (slot >= contention_.size())
        fatal("AuditDaemon: bad slot");
    return contention_[slot];
}

const std::vector<ConflictRecord>&
AuditDaemon::conflictRecords(unsigned slot) const
{
    if (slot >= conflicts_.size())
        fatal("AuditDaemon: bad slot");
    return conflicts_[slot];
}

namespace
{

double
labelOf(const ConflictRecord& r)
{
    return r.replacerPid != invalidProcess &&
                   r.victimPid != invalidProcess &&
                   r.replacerPid < r.victimPid
               ? 1.0
               : 0.0;
}

} // namespace

std::vector<double>
AuditDaemon::labelSeries(unsigned slot) const
{
    const auto& recs = conflictRecords(slot);
    std::vector<double> out;
    out.reserve(recs.size());
    for (const auto& r : recs)
        out.push_back(labelOf(r));
    return out;
}

std::vector<double>
AuditDaemon::labelSeriesForQuantum(unsigned slot,
                                   std::uint64_t quantum) const
{
    const auto& recs = conflictRecords(slot);
    std::vector<double> out;
    for (const auto& r : recs) {
        if (r.quantum == quantum)
            out.push_back(labelOf(r));
    }
    return out;
}

ContentionVerdict
AuditDaemon::analyzeContention(unsigned slot, CCHunterParams params)
    const
{
    CCHunter hunter(params);
    return hunter.analyzeContention(contentionQuanta(slot));
}

OscillationVerdict
AuditDaemon::analyzeOscillation(unsigned slot, CCHunterParams params)
    const
{
    CCHunter hunter(params);
    return hunter.analyzeOscillation(labelSeries(slot));
}

} // namespace cchunter
