#include "auditor/daemon.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace cchunter
{

double
PipelineStats::latencyMeanUs() const
{
    return analysesRun == 0
               ? 0.0
               : latencyTotalUs / static_cast<double>(analysesRun);
}

void
PipelineStats::accumulate(const PipelineStats& other)
{
    drainedHistograms += other.drainedHistograms;
    drainedConflicts += other.drainedConflicts;
    evictedQuanta += other.evictedQuanta;
    evictedConflicts += other.evictedConflicts;
    batchesEnqueued += other.batchesEnqueued;
    batchesDropped += other.batchesDropped;
    queueDepthHighWater =
        std::max(queueDepthHighWater, other.queueDepthHighWater);
    if (other.analysesRun != 0) {
        latencyMinUs = analysesRun == 0
                           ? other.latencyMinUs
                           : std::min(latencyMinUs, other.latencyMinUs);
        latencyMaxUs = std::max(latencyMaxUs, other.latencyMaxUs);
    }
    analysesRun += other.analysesRun;
    latencyTotalUs += other.latencyTotalUs;
}

std::string
PipelineStats::summary() const
{
    std::ostringstream os;
    os << "drained " << drainedHistograms << " hist / "
       << drainedConflicts << " conflicts, evicted " << evictedQuanta
       << " quanta / " << evictedConflicts << " conflicts, batches "
       << batchesEnqueued << " (" << batchesDropped
       << " dropped, queue hwm " << queueDepthHighWater
       << "), analyses " << analysesRun;
    if (analysesRun != 0) {
        os.precision(1);
        os << std::fixed << ", latency us min/mean/max "
           << latencyMinUs << '/' << latencyMeanUs() << '/'
           << latencyMaxUs;
    }
    return os.str();
}

std::vector<StatEntry>
pipelineStatEntries(const PipelineStats& s, const std::string& prefix)
{
    std::vector<StatEntry> out;
    auto add = [&](const char* name, double value, const char* desc) {
        out.push_back(StatEntry{prefix + name, value, desc});
    };
    add("drained_histograms",
        static_cast<double>(s.drainedHistograms),
        "quantum histogram snapshots drained");
    add("drained_conflicts", static_cast<double>(s.drainedConflicts),
        "conflict records drained from vector registers");
    add("evicted_quanta", static_cast<double>(s.evictedQuanta),
        "histograms aged out of retention windows");
    add("evicted_conflicts", static_cast<double>(s.evictedConflicts),
        "conflict records aged out of retention windows");
    add("batches_enqueued", static_cast<double>(s.batchesEnqueued),
        "analysis batches handed to the consumer");
    add("batches_dropped", static_cast<double>(s.batchesDropped),
        "analysis batches shed under DropOldest overflow");
    add("queue_depth_hwm", static_cast<double>(s.queueDepthHighWater),
        "hand-off queue depth high-water mark");
    add("analyses_run", static_cast<double>(s.analysesRun),
        "online analysis passes completed");
    add("latency_min_us", s.latencyMinUs,
        "fastest analysis pass");
    add("latency_mean_us", s.latencyMeanUs(),
        "mean analysis pass");
    add("latency_max_us", s.latencyMaxUs,
        "slowest analysis pass");
    return out;
}

void
DegradedStats::accumulate(const DegradedStats& other)
{
    missedQuanta += other.missedQuanta;
    duplicatedQuanta += other.duplicatedQuanta;
    truncatedBatches += other.truncatedBatches;
    truncatedEvents += other.truncatedEvents;
    reorderedBatches += other.reorderedBatches;
    corruptedContexts += other.corruptedContexts;
    bloomAliases += other.bloomAliases;
    saturatedBinEvents += other.saturatedBinEvents;
    accumulatorSaturations += other.accumulatorSaturations;
    unmergeUnderflows += other.unmergeUnderflows;
    quarantinedBatches += other.quarantinedBatches;
    quarantineBadLabel += other.quarantineBadLabel;
    quarantineBinMismatch += other.quarantineBinMismatch;
    quarantineSlotRange += other.quarantineSlotRange;
    degradedAlarms += other.degradedAlarms;
    minAlarmConfidence =
        std::min(minAlarmConfidence, other.minAlarmConfidence);
    windowCoverage = std::min(windowCoverage, other.windowCoverage);
}

std::uint64_t
DegradedStats::totalFaults() const
{
    return missedQuanta + duplicatedQuanta + truncatedBatches +
           reorderedBatches + corruptedContexts + bloomAliases +
           saturatedBinEvents + accumulatorSaturations +
           unmergeUnderflows;
}

std::string
DegradedStats::summary() const
{
    std::ostringstream os;
    os << "missed " << missedQuanta << " quanta (coverage ";
    os.precision(3);
    os << std::fixed << windowCoverage << "), duplicated "
       << duplicatedQuanta << ", truncated " << truncatedBatches
       << " batches (" << truncatedEvents << " events), reordered "
       << reorderedBatches << ", corrupt contexts "
       << corruptedContexts << ", bloom aliases " << bloomAliases
       << ", saturated bins " << saturatedBinEvents
       << ", quarantined " << quarantinedBatches << ", degraded alarms "
       << degradedAlarms << " (min confidence " << minAlarmConfidence
       << ')';
    return os.str();
}

std::vector<StatEntry>
degradedStatEntries(const DegradedStats& s, const std::string& prefix)
{
    std::vector<StatEntry> out;
    auto add = [&](const char* name, double value, const char* desc) {
        out.push_back(StatEntry{prefix + name, value, desc});
    };
    add("missed_quanta", static_cast<double>(s.missedQuanta),
        "quantum boundaries the daemon never attended");
    add("duplicated_quanta", static_cast<double>(s.duplicatedQuanta),
        "quantum snapshots recorded twice");
    add("truncated_batches", static_cast<double>(s.truncatedBatches),
        "conflict-event batches that lost their tail");
    add("truncated_events", static_cast<double>(s.truncatedEvents),
        "conflict events lost to batch truncation");
    add("reordered_batches", static_cast<double>(s.reorderedBatches),
        "conflict-event batches delivered out of order");
    add("corrupted_contexts", static_cast<double>(s.corruptedContexts),
        "conflict events with corrupted context IDs");
    add("bloom_aliases", static_cast<double>(s.bloomAliases),
        "forced Bloom-filter false positives");
    add("saturated_bin_events",
        static_cast<double>(s.saturatedBinEvents),
        "histogram bins clamped at the 16-bit entry width");
    add("accumulator_saturations",
        static_cast<double>(s.accumulatorSaturations),
        "event increments lost to 16-bit accumulator ceilings");
    add("unmerge_underflows",
        static_cast<double>(s.unmergeUnderflows),
        "merged-window bins clamped at zero on eviction");
    add("quarantined_batches",
        static_cast<double>(s.quarantinedBatches),
        "malformed analysis batches refused");
    add("quarantine_bad_label",
        static_cast<double>(s.quarantineBadLabel),
        "quarantines: non-binary oscillation label");
    add("quarantine_bin_mismatch",
        static_cast<double>(s.quarantineBinMismatch),
        "quarantines: histogram bin-count mismatch");
    add("quarantine_slot_range",
        static_cast<double>(s.quarantineSlotRange),
        "quarantines: slot index out of range");
    add("degraded_alarms", static_cast<double>(s.degradedAlarms),
        "alarms raised with confidence below 1");
    add("min_alarm_confidence", s.minAlarmConfidence,
        "weakest confidence among raised alarms");
    add("window_coverage", s.windowCoverage,
        "attended fraction of the retained quanta");
    return out;
}

const char*
alarmKindName(AlarmKind kind)
{
    switch (kind) {
    case AlarmKind::Contention:
        return "contention";
    case AlarmKind::Oscillation:
        return "oscillation";
    }
    return "?";
}

std::uint64_t
Alarm::channelSignature() const
{
    // Layout (high to low): unit kind byte, analysis-path byte, then
    // the dominant feature in the low 48 bits.  Burst-peak bins are
    // bounded by the 128-entry histogram and autocorrelation lags by
    // OscillationParams::maxLag, so 48 bits never truncate in
    // practice; masking keeps the packing well-defined regardless.
    return (static_cast<std::uint64_t>(unit) << 56) |
           (static_cast<std::uint64_t>(kind) << 48) |
           (dominantFeature & ((std::uint64_t{1} << 48) - 1));
}

AuditDaemon::AuditDaemon(Machine& machine, CCAuditor& auditor,
                         DaemonRetention retention)
    : machine_(machine), auditor_(auditor), retention_(retention)
{
    if (retention_.contentionQuanta == 0)
        fatal("AuditDaemon: contention retention must be > 0");
    if (retention_.conflictRecords == 0)
        fatal("AuditDaemon: conflict-record retention must be > 0");
    slots_.resize(auditor_.numSlots());
    for (auto& st : slots_) {
        st.window.setCapacity(retention_.contentionQuanta);
        st.records.setCapacity(retention_.conflictRecords);
    }
    presence_.setCapacity(retention_.contentionQuanta);
    machine_.scheduler().addQuantumObserver(
        [this](std::uint64_t q, Tick now) { onQuantum(q, now); });
    for (unsigned s = 0; s < auditor_.numSlots(); ++s)
        wireCacheSlot(s);
}

AuditDaemon::~AuditDaemon()
{
    if (queue_)
        queue_->close();
    if (analysisThread_.joinable())
        analysisThread_.join();
}

namespace
{

double
labelOf(const ConflictRecord& r)
{
    return r.replacerPid != invalidProcess &&
                   r.victimPid != invalidProcess &&
                   r.replacerPid < r.victimPid
               ? 1.0
               : 0.0;
}

} // namespace

void
AuditDaemon::wireCacheSlot(unsigned slot)
{
    auto* vr = auditor_.vectorRegisters(slot);
    if (!vr)
        return;
    vr->setDrainCallback(
        [this, slot](const std::vector<ConflictMissEvent>& evs) {
            if (injector_ && injector_->conflictPathActive()) {
                // Mutate a copy at the hardware/daemon boundary — the
                // vector registers themselves are not ours to edit.
                std::vector<ConflictMissEvent> mutated(evs);
                const ConflictBatchMutation m =
                    injector_->mutateConflictBatch(mutated);
                SlotState& st = slots_[slot];
                st.conflictsTruncated += m.truncatedEvents;
                st.conflictsCorrupted += m.corruptedContexts;
                if (m.any()) {
                    std::lock_guard<std::mutex> lock(statsMutex_);
                    if (m.truncated)
                        ++degraded_.truncatedBatches;
                    degraded_.truncatedEvents += m.truncatedEvents;
                    if (m.reordered)
                        ++degraded_.reorderedBatches;
                    degraded_.corruptedContexts += m.corruptedContexts;
                }
                ingestConflicts(slot, mutated);
            } else {
                ingestConflicts(slot, evs);
            }
        });
    if (injector_ && injector_->plan().bloomAliasRate > 0.0) {
        if (auto* tracker = auditor_.tracker(slot))
            tracker->setAliasHook(
                [this] { return injector_->aliasBloom(); });
    }
}

void
AuditDaemon::ingestConflicts(unsigned slot,
                             const std::vector<ConflictMissEvent>& evs)
{
    SlotState& st = slots_[slot];
    st.conflictsIngested += evs.size();
    for (const auto& ev : evs) {
        ConflictRecord rec;
        rec.time = ev.time;
        rec.replacerContext = ev.replacer;
        rec.victimContext = ev.victim;
        rec.quantum = currentQuantum_;
        if (ev.replacer != invalidContext &&
            ev.replacer < machine_.numContexts()) {
            if (Process* p = machine_.runningOn(ev.replacer))
                rec.replacerPid = p->pid();
        }
        if (ev.victim != invalidContext &&
            ev.victim < machine_.numContexts()) {
            if (Process* p = machine_.runningOn(ev.victim))
                rec.victimPid = p->pid();
        }
        // Maintain the label series as records arrive so the
        // per-quantum analysis never rescans the full log, and the
        // sliding-window autocorrelation sums so the end-of-run
        // analysis never re-transforms it.
        const double label = labelOf(rec);
        st.quantumLabels.push_back(label);
        if (st.autocorr)
            st.autocorr->push(label);
        st.records.push(rec);
    }
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.drainedConflicts += evs.size();
}

void
AuditDaemon::attachFaultInjector(FaultInjector* injector)
{
    injector_ = injector;
    // Re-wire every cache slot so the drain callbacks and alias hooks
    // see the injector (idempotent; onQuantum re-wires too).
    for (unsigned s = 0; s < auditor_.numSlots(); ++s)
        wireCacheSlot(s);
}

void
AuditDaemon::onQuantum(std::uint64_t quantum_index, Tick now)
{
    if (injector_ && injector_->dropQuantum()) {
        // The daemon was preempted past this quantum boundary:
        // nothing is drained or analysed.  The hardware keeps
        // accumulating, so the next attended snapshot covers the gap;
        // drained-but-unconsumed labels likewise carry over.  The
        // presence ring records the hole so analyses can report
        // effective (not nominal) coverage.
        presence_.push(0);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++degraded_.missedQuanta;
        }
        currentQuantum_ = quantum_index + 1;
        ++quanta_;
        return;
    }
    presence_.push(1);
    const bool duplicate =
        injector_ && injector_->duplicateQuantum();
    for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
        if (!auditor_.slotActive(s))
            continue;
        // Slots may have been (re)programmed since construction; keep
        // the drain callback wired (idempotent).
        wireCacheSlot(s);
        if (auto* hb = auditor_.histogramBuffer(s)) {
            Histogram h = hb->snapshotAndReset(now);
            SlotState& st = slots_[s];
            const std::size_t saturated = h.saturatedBins();
            if (!st.mergedInit) {
                st.merged = Histogram(h.numBins());
                st.mergedInit = true;
            }
            st.merged.merge(h);
            if (duplicate) {
                // A double wakeup replays the drain: the same
                // snapshot enters the window (and the merged sum)
                // twice.
                st.merged.merge(h);
                if (auto evicted = st.window.push(Histogram(h)))
                    st.merged.unmerge(*evicted);
            }
            if (auto evicted = st.window.push(std::move(h)))
                st.merged.unmerge(*evicted);
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++stats_.drainedHistograms;
            degraded_.saturatedBinEvents += saturated;
        }
        if (auto* vr = auditor_.vectorRegisters(s))
            vr->flush();
    }
    if (duplicate) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++degraded_.duplicatedQuanta;
    }
    if (online_)
        dispatchAnalyses(quantum_index, now);
    // The per-quantum label buffers only live for the quantum they
    // were drained in (async batches take them by move).
    for (auto& st : slots_)
        st.quantumLabels.clear();
    currentQuantum_ = quantum_index + 1;
    ++quanta_;
}

void
AuditDaemon::enableOnlineAnalysis(OnlineAnalysisParams params,
                                  AlarmCallback callback)
{
    if (params.clusteringIntervalQuanta == 0)
        fatal("enableOnlineAnalysis: clustering interval must be > 0");
    if (analysisThread_.joinable())
        fatal("enableOnlineAnalysis: async analysis already running");
    online_ = true;
    onlineParams_ = params;
    alarmCallback_ = std::move(callback);
    debugRecompute_ = params.debugRecomputeMerged;
    debugRecomputeAutocorr_ = params.debugRecomputeAutocorr;
    if (params.incrementalAutocorr) {
        // One maintainer per cache slot, spanning the same window as
        // the conflict-record ring; records already retained are
        // replayed so both views agree from the first analysis.
        const std::size_t lag =
            std::max<std::size_t>(2,
                                  params.hunter.oscillation.maxLag);
        for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
            if (!auditor_.vectorRegisters(s))
                continue;
            SlotState& st = slots_[s];
            st.autocorr =
                std::make_unique<IncrementalAutocorrelation>(
                    lag, retention_.conflictRecords);
            for (const ConflictRecord& r : st.records)
                st.autocorr->push(labelOf(r));
        }
    }
    if (onlineParams_.analysisThreads != 1)
        pool_ = std::make_unique<ThreadPool>(
            onlineParams_.analysisThreads);
    else
        pool_.reset();
    setContentionRetention(params.retentionQuanta != 0
                               ? params.retentionQuanta
                               : params.clusteringIntervalQuanta);
    if (params.asyncAnalysis) {
        queue_ = std::make_unique<BoundedQueue<AnalysisBatch>>(
            params.queueCapacity, params.queueOverflow);
        analysisThread_ = std::thread([this] { analysisLoop(); });
    }
}

void
AuditDaemon::setContentionRetention(std::size_t quanta)
{
    retention_.contentionQuanta = quanta;
    for (auto& st : slots_) {
        // Shrinking evicts the oldest histograms; keep the merged sum
        // consistent by subtracting them out before they go.
        while (st.window.size() > quanta) {
            auto evicted = st.window.popFront();
            if (st.mergedInit)
                st.merged.unmerge(*evicted);
        }
        st.window.setCapacity(quanta);
    }
    // The presence ring measures scheduler attendance over the run's
    // recent history for coverage reporting; it only ever grows so a
    // tight clustering interval cannot blind windowCoverage() to drops
    // that happened a few quanta ago.
    if (quanta > presence_.capacity())
        presence_.setCapacity(quanta);
}

void
AuditDaemon::setDebugRecomputeMerged(bool recompute)
{
    debugRecompute_ = recompute;
}

void
AuditDaemon::setDebugRecomputeAutocorr(bool recompute)
{
    debugRecomputeAutocorr_ = recompute;
}

void
AuditDaemon::dispatchAnalyses(std::uint64_t quantum_index, Tick now)
{
    const bool clusteringDue =
        (quantum_index + 1) % onlineParams_.clusteringIntervalQuanta ==
        0;
    const bool async = queue_ != nullptr;
    const double coverage = windowCoverage();

    AnalysisBatch batch;
    batch.quantum = quantum_index;
    batch.now = now;
    for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
        if (!auditor_.slotActive(s))
            continue;
        SlotWork sv;
        sv.slot = s;
        sv.target = auditor_.slotTarget(s);
        sv.hasContention =
            auditor_.histogramBuffer(s) != nullptr && clusteringDue;
        sv.hasOscillation = auditor_.vectorRegisters(s) != nullptr &&
                            onlineParams_.autocorrEveryQuantum;
        if (!sv.hasContention && !sv.hasOscillation)
            continue;
        // Degradation context travels with the work so the consumer
        // thread never reads live (sim-thread-owned) state.
        sv.coverage = coverage;
        sv.integrity = conflictIntegrity(s);
        if (async) {
            // The simulation keeps mutating the live windows, so the
            // hand-off carries snapshots: the histogram window only
            // when clustering is due, the labels always (by move —
            // they are per-quantum anyway).
            SlotState& st = slots_[s];
            if (sv.hasContention) {
                sv.windowCopy = st.window.toVector();
                if (st.mergedInit) {
                    sv.mergedCopy = st.merged;
                    sv.mergedValid = true;
                }
            }
            if (sv.hasOscillation)
                sv.labels = std::move(st.quantumLabels);
        }
        batch.work.push_back(std::move(sv));
    }
    if (batch.work.empty())
        return;

    // Batch corruption happens *after* assembly — it models the
    // hand-off itself going wrong, which is exactly what the
    // validation stage on the consuming side must catch.
    bool corrupted = false;
    if (injector_) {
        const FaultInjector::BatchCorruption kind =
            injector_->nextBatchCorruption();
        if (kind != FaultInjector::BatchCorruption::None) {
            if (!async)
                materializeSnapshots(batch);
            corrupted = applyBatchCorruption(batch, kind);
            if (corrupted)
                injector_->recordBatchCorruption();
        }
    }
    // An inline batch that was corrupted analyses its (mangled)
    // snapshots rather than the pristine live windows.
    const bool from_snapshots = async || corrupted;

    if (async) {
        {
            std::lock_guard<std::mutex> lock(idleMutex_);
            ++submitted_;
        }
        const auto outcome = queue_->push(std::move(batch));
        if (!outcome.accepted || outcome.displaced) {
            // Rejected by a closing queue, or an older batch was shed:
            // either way one submission will never be analysed, and
            // the idle accounting must reflect that or flushAnalyses()
            // blocks forever.
            std::lock_guard<std::mutex> lock(idleMutex_);
            ++completed_;
            idleCv_.notify_all();
        }
        return;
    }

    const auto t0 = std::chrono::steady_clock::now();
    const QuarantineReason reason =
        validateBatch(batch, from_snapshots);
    if (reason != QuarantineReason::None) {
        quarantineBatch(reason);
    } else {
        analyzeBatch(batch, from_snapshots);
        applyVerdicts(batch);
    }
    const auto t1 = std::chrono::steady_clock::now();
    recordAnalysisLatency(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
}

void
AuditDaemon::materializeSnapshots(AnalysisBatch& batch)
{
    for (auto& sv : batch.work) {
        SlotState& st = slots_[sv.slot];
        if (sv.hasContention && sv.windowCopy.empty()) {
            sv.windowCopy = st.window.toVector();
            if (st.mergedInit) {
                sv.mergedCopy = st.merged;
                sv.mergedValid = true;
            }
        }
        if (sv.hasOscillation && sv.labels.empty())
            sv.labels = st.quantumLabels;
    }
}

bool
AuditDaemon::applyBatchCorruption(AnalysisBatch& batch,
                                  FaultInjector::BatchCorruption kind)
{
    auto corruptLabel = [&batch]() {
        for (auto& sv : batch.work) {
            if (sv.hasOscillation && !sv.labels.empty()) {
                sv.labels[0] =
                    std::numeric_limits<double>::quiet_NaN();
                return true;
            }
        }
        return false;
    };
    auto corruptBins = [&batch]() {
        for (auto& sv : batch.work) {
            if (sv.hasContention && !sv.windowCopy.empty()) {
                sv.windowCopy[0] =
                    Histogram(sv.windowCopy[0].numBins() + 1);
                return true;
            }
        }
        return false;
    };
    // Fall through to the other corruption when the drawn one has no
    // substrate in this batch, so a scheduled corruption lands
    // whenever anything is corruptible at all.
    if (kind == FaultInjector::BatchCorruption::BadLabel)
        return corruptLabel() || corruptBins();
    return corruptBins() || corruptLabel();
}

QuarantineReason
AuditDaemon::validateBatch(const AnalysisBatch& batch,
                           bool from_snapshots) const
{
    for (const auto& sv : batch.work) {
        if (sv.slot >= slots_.size())
            return QuarantineReason::SlotOutOfRange;
        if (sv.hasContention) {
            if (from_snapshots) {
                if (!sv.windowCopy.empty()) {
                    const std::size_t bins =
                        sv.windowCopy.front().numBins();
                    for (const Histogram& h : sv.windowCopy)
                        if (h.numBins() != bins)
                            return QuarantineReason::BinMismatch;
                    if (sv.mergedValid &&
                        sv.mergedCopy.numBins() != bins)
                        return QuarantineReason::BinMismatch;
                }
            } else {
                const SlotState& st = slots_[sv.slot];
                if (st.window.size() != 0) {
                    const std::size_t bins =
                        st.window[0].numBins();
                    for (const Histogram& h : st.window)
                        if (h.numBins() != bins)
                            return QuarantineReason::BinMismatch;
                    if (st.mergedInit &&
                        st.merged.numBins() != bins)
                        return QuarantineReason::BinMismatch;
                }
            }
        }
        if (sv.hasOscillation) {
            const std::vector<double>& labels =
                from_snapshots ? sv.labels
                               : slots_[sv.slot].quantumLabels;
            for (const double l : labels) {
                // A NaN fails both comparisons, so this rejects NaN,
                // infinities and every non-binary value in one shot.
                if (!(l == 0.0 || l == 1.0))
                    return QuarantineReason::BadLabel;
            }
        }
    }
    return QuarantineReason::None;
}

void
AuditDaemon::quarantineBatch(QuarantineReason reason)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++degraded_.quarantinedBatches;
    switch (reason) {
    case QuarantineReason::BadLabel:
        ++degraded_.quarantineBadLabel;
        break;
    case QuarantineReason::BinMismatch:
        ++degraded_.quarantineBinMismatch;
        break;
    case QuarantineReason::SlotOutOfRange:
        ++degraded_.quarantineSlotRange;
        break;
    case QuarantineReason::None:
        break;
    }
}

void
AuditDaemon::analyzeBatch(AnalysisBatch& batch, bool from_snapshots)
{
    auto analyzeOne = [&](std::size_t i) {
        SlotWork& sv = batch.work[i];
        // Each task gets its own hunter; the shared pool only fans out
        // across slots, not within one (the per-slot kernels are the
        // unit of parallelism here).
        CCHunter hunter(onlineParams_.hunter);
        if (sv.hasContention) {
            std::vector<const Histogram*> view;
            const Histogram* premerged = nullptr;
            if (from_snapshots) {
                view.reserve(sv.windowCopy.size());
                for (const Histogram& h : sv.windowCopy)
                    view.push_back(&h);
                if (!debugRecompute_ && !sv.windowCopy.empty())
                    premerged = &sv.mergedCopy;
            } else {
                const SlotState& st = slots_[sv.slot];
                view.reserve(st.window.size());
                for (const Histogram& h : st.window)
                    view.push_back(&h);
                if (!debugRecompute_ && st.mergedInit)
                    premerged = &st.merged;
            }
            sv.contention = hunter.analyzeContention(view, premerged);
            if (!view.empty() && view.front()->numBins() != 0)
                sv.satFraction =
                    static_cast<double>(
                        sv.contention.combined.saturatedBins) /
                    static_cast<double>(view.front()->numBins());
        }
        if (sv.hasOscillation) {
            const std::vector<double>& labels =
                from_snapshots ? sv.labels
                               : slots_[sv.slot].quantumLabels;
            sv.oscillation = hunter.analyzeOscillation(labels);
        }
    };
    if (pool_ && batch.work.size() > 1) {
        pool_->parallelFor(batch.work.size(), analyzeOne);
    } else {
        for (std::size_t i = 0; i < batch.work.size(); ++i)
            analyzeOne(i);
    }
}

void
AuditDaemon::applyVerdicts(AnalysisBatch& batch)
{
    // Apply verdicts in slot order, contention before oscillation —
    // the exact alarm stream the serial inline path produces.
    auto clamp01 = [](double v) {
        return std::max(0.0, std::min(1.0, v));
    };
    std::lock_guard<std::mutex> lock(alarmsMutex_);
    auto raise = [&](const SlotWork& sv, AlarmKind kind,
                     std::string summary, double confidence,
                     std::uint64_t dominant) {
        Alarm alarm{sv.slot,     batch.now, batch.quantum,
                    std::move(summary),     confidence,
                    sv.target,   kind,      dominant};
        alarms_.push_back(alarm);
        if (confidence < 1.0) {
            // Lock order alarmsMutex_ -> statsMutex_ appears only
            // here; no path takes them in the opposite order.
            std::lock_guard<std::mutex> slock(statsMutex_);
            ++degraded_.degradedAlarms;
            degraded_.minAlarmConfidence =
                std::min(degraded_.minAlarmConfidence, confidence);
        }
        if (alarmCallback_)
            alarmCallback_(alarms_.back());
    };
    for (const auto& sv : batch.work) {
        if (sv.hasContention && sv.contention.detected)
            raise(sv, AlarmKind::Contention, sv.contention.summary(),
                  clamp01(sv.coverage * (1.0 - sv.satFraction)),
                  sv.contention.combined.burstPeakBin);
        if (sv.hasOscillation && sv.oscillation.detected)
            raise(sv, AlarmKind::Oscillation,
                  sv.oscillation.summary(),
                  clamp01(sv.coverage * sv.integrity),
                  sv.oscillation.analysis.dominantLag);
    }
}

void
AuditDaemon::recordAnalysisLatency(double micros)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_.latencyMinUs = stats_.analysesRun == 0
                              ? micros
                              : std::min(stats_.latencyMinUs, micros);
    stats_.latencyMaxUs = std::max(stats_.latencyMaxUs, micros);
    stats_.latencyTotalUs += micros;
    ++stats_.analysesRun;
}

void
AuditDaemon::analysisLoop()
{
    while (auto batch = queue_->pop()) {
        const auto t0 = std::chrono::steady_clock::now();
        try {
            const QuarantineReason reason =
                validateBatch(*batch, /*from_snapshots=*/true);
            if (reason != QuarantineReason::None) {
                quarantineBatch(reason);
            } else {
                analyzeBatch(*batch, /*from_snapshots=*/true);
                applyVerdicts(*batch);
            }
        } catch (const std::exception& e) {
            warn("online analysis batch failed: ", e.what());
        }
        const auto t1 = std::chrono::steady_clock::now();
        recordAnalysisLatency(
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count());
        {
            std::lock_guard<std::mutex> lock(idleMutex_);
            ++completed_;
        }
        idleCv_.notify_all();
    }
}

void
AuditDaemon::flushAnalyses() const
{
    if (!queue_)
        return;
    std::unique_lock<std::mutex> lock(idleMutex_);
    idleCv_.wait(lock, [this] { return completed_ == submitted_; });
}

PipelineStats
AuditDaemon::pipelineStats() const
{
    flushAnalyses();
    PipelineStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out = stats_;
    }
    for (const auto& st : slots_) {
        out.evictedQuanta += st.window.evictions();
        out.evictedConflicts += st.records.evictions();
    }
    if (queue_) {
        out.batchesEnqueued = queue_->pushed();
        out.batchesDropped = queue_->dropped();
        out.queueDepthHighWater = queue_->highWaterMark();
    }
    return out;
}

double
AuditDaemon::windowCoverage() const
{
    if (presence_.size() == 0)
        return 1.0;
    std::uint64_t attended = 0;
    for (const std::uint8_t p : presence_)
        attended += p;
    return static_cast<double>(attended) /
           static_cast<double>(presence_.size());
}

double
AuditDaemon::conflictIntegrity(unsigned slot) const
{
    if (slot >= slots_.size())
        fatal("AuditDaemon: bad slot");
    const SlotState& st = slots_[slot];
    std::uint64_t aliases = 0;
    if (const ConflictMissTracker* t = auditor_.tracker(slot))
        aliases = t->forcedAliases();
    const std::uint64_t lost =
        st.conflictsTruncated + st.conflictsCorrupted + aliases;
    const std::uint64_t basis =
        st.conflictsIngested + st.conflictsTruncated;
    if (basis == 0 || lost == 0)
        return 1.0;
    const double integrity =
        1.0 - static_cast<double>(lost) / static_cast<double>(basis);
    return std::max(0.0, std::min(1.0, integrity));
}

double
AuditDaemon::contentionConfidence(unsigned slot,
                                  const ContentionVerdict& verdict)
    const
{
    const SlotState& st = slotState(slot);
    double satFraction = 0.0;
    if (st.window.size() != 0) {
        const std::size_t bins = st.window[0].numBins();
        if (bins != 0)
            satFraction =
                static_cast<double>(verdict.combined.saturatedBins) /
                static_cast<double>(bins);
    }
    const double c = windowCoverage() * (1.0 - satFraction);
    return std::max(0.0, std::min(1.0, c));
}

double
AuditDaemon::oscillationConfidence(unsigned slot) const
{
    const double c = windowCoverage() * conflictIntegrity(slot);
    return std::max(0.0, std::min(1.0, c));
}

DegradedStats
AuditDaemon::degradedStats() const
{
    flushAnalyses();
    DegradedStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out = degraded_;
    }
    // Component-held counters are read live rather than mirrored on
    // every event; the daemon's own ledger only carries what the
    // components cannot see (quanta, batches, quarantines).
    for (unsigned s = 0; s < auditor_.numSlots(); ++s) {
        if (s < slots_.size())
            out.unmergeUnderflows +=
                slots_[s].merged.unmergeUnderflows();
        if (const ConflictMissTracker* t = auditor_.tracker(s))
            out.bloomAliases += t->forcedAliases();
        if (const HistogramBuffer* hb = auditor_.histogramBuffer(s))
            out.accumulatorSaturations +=
                hb->accumulatorSaturations();
    }
    out.windowCoverage = windowCoverage();
    return out;
}

const std::vector<Alarm>&
AuditDaemon::alarms() const
{
    flushAnalyses();
    return alarms_;
}

std::uint64_t
AuditDaemon::firstAlarmQuantum(unsigned slot) const
{
    flushAnalyses();
    for (const auto& a : alarms_)
        if (a.slot == slot)
            return a.quantum;
    return SIZE_MAX;
}

const AuditDaemon::SlotState&
AuditDaemon::slotState(unsigned slot) const
{
    if (slot >= slots_.size())
        fatal("AuditDaemon: bad slot");
    return slots_[slot];
}

std::vector<Histogram>
AuditDaemon::contentionQuanta(unsigned slot) const
{
    return slotState(slot).window.toVector();
}

const RingBuffer<Histogram>&
AuditDaemon::contentionWindow(unsigned slot) const
{
    return slotState(slot).window;
}

std::vector<ConflictRecord>
AuditDaemon::conflictRecords(unsigned slot) const
{
    return slotState(slot).records.toVector();
}

const RingBuffer<ConflictRecord>&
AuditDaemon::conflictWindow(unsigned slot) const
{
    return slotState(slot).records;
}

std::uint64_t
AuditDaemon::evictedQuanta(unsigned slot) const
{
    return slotState(slot).window.evictions();
}

std::uint64_t
AuditDaemon::evictedConflicts(unsigned slot) const
{
    return slotState(slot).records.evictions();
}

std::vector<double>
AuditDaemon::labelSeries(unsigned slot) const
{
    const auto& recs = slotState(slot).records;
    std::vector<double> out;
    out.reserve(recs.size());
    for (const auto& r : recs)
        out.push_back(labelOf(r));
    return out;
}

std::vector<double>
AuditDaemon::labelSeriesForQuantum(unsigned slot,
                                   std::uint64_t quantum) const
{
    const auto& recs = slotState(slot).records;
    std::vector<double> out;
    for (const auto& r : recs) {
        if (r.quantum == quantum)
            out.push_back(labelOf(r));
    }
    return out;
}

ContentionVerdict
AuditDaemon::analyzeContention(unsigned slot, CCHunterParams params)
    const
{
    const SlotState& st = slotState(slot);
    std::vector<const Histogram*> view;
    view.reserve(st.window.size());
    for (const Histogram& h : st.window)
        view.push_back(&h);
    CCHunter hunter(params);
    const Histogram* premerged =
        !debugRecompute_ && st.mergedInit ? &st.merged : nullptr;
    return hunter.analyzeContention(view, premerged);
}

OscillationVerdict
AuditDaemon::analyzeOscillation(unsigned slot, CCHunterParams params)
    const
{
    const SlotState& st = slotState(slot);
    const std::size_t lag = params.oscillation.maxLag;
    // Serve from the incrementally maintained sums when they cover
    // the request; the maintainer and the record ring ingest the same
    // stream with the same capacity, so the size check only guards a
    // maintainer created after records had already been dropped.
    if (st.autocorr && !debugRecomputeAutocorr_ && lag >= 2 &&
        lag <= st.autocorr->maxLag() &&
        st.autocorr->size() == st.records.size()) {
        OscillationVerdict verdict;
        verdict.analysis.seriesLength = st.autocorr->size();
        st.autocorr->correlogram(lag, verdict.analysis.correlogram);
        decideOscillation(verdict.analysis, params.oscillation);
        verdict.detected = verdict.analysis.oscillating;
        return verdict;
    }
    CCHunter hunter(params);
    return hunter.analyzeOscillation(labelSeries(slot));
}

} // namespace cchunter
