/**
 * @file
 * The ideal LRU-stack conflict-miss tracker (the paper's "ideal"
 * scheme): an exact fully-associative LRU model of equal capacity.
 *
 * A miss is a conflict miss iff the fully-associative cache would still
 * hold the line.  This oracle is too expensive for hardware (it updates
 * a recency stack on every access) but serves as the reference the
 * practical generation-based tracker is validated against.
 */

#ifndef CCHUNTER_AUDITOR_LRU_STACK_TRACKER_HH
#define CCHUNTER_AUDITOR_LRU_STACK_TRACKER_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "auditor/conflict_event.hh"
#include "mem/cache.hh"
#include "util/types.hh"

namespace cchunter
{

/**
 * CacheMonitor implementing the exact premature-eviction check.
 */
class LruStackTracker : public CacheMonitor
{
  public:
    /** @param num_blocks Capacity (N) of the monitored cache. */
    explicit LruStackTracker(std::size_t num_blocks);

    void onAccess(std::size_t block_idx, Addr line_addr, ContextId ctx,
                  Tick now) override;
    void onEvict(std::size_t block_idx, Addr line_addr, ContextId owner,
                 Tick now) override;
    void onMiss(Addr line_addr, ContextId requester,
                ContextId victim_owner, bool had_victim,
                Tick now) override;

    /** Register a conflict-miss listener. */
    void addListener(ConflictMissListener listener);

    /** @return true if the fully-associative model holds the line. */
    bool residentInIdealCache(Addr line_addr) const;

    std::uint64_t conflictMisses() const { return conflictMisses_; }
    std::uint64_t totalMisses() const { return totalMisses_; }

  private:
    void touch(Addr line_addr);

    std::size_t capacity_;
    std::list<Addr> stack_; //!< front = most recently used
    std::unordered_map<Addr, std::list<Addr>::iterator> where_;
    std::vector<ConflictMissListener> listeners_;
    std::uint64_t conflictMisses_ = 0;
    std::uint64_t totalMisses_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_LRU_STACK_TRACKER_HH
