/**
 * @file
 * The CC-Auditor's two alternating 128-byte vector registers that
 * record the (replacer, victim) context-ID pairs of identified conflict
 * misses (paper section V-A).
 *
 * When one register fills, recording switches to the other and the full
 * register is handed to the software module in the background, so the
 * processor never stalls on auditing.
 */

#ifndef CCHUNTER_AUDITOR_VECTOR_REGISTER_HH
#define CCHUNTER_AUDITOR_VECTOR_REGISTER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "auditor/conflict_event.hh"
#include "util/types.hh"

namespace cchunter
{

/** Sizing of the vector-register pair. */
struct VectorRegisterParams
{
    /** Bytes per register (paper: 128). */
    std::size_t bytesPerRegister = 128;

    /** Bits per recorded context ID (paper: 3). */
    unsigned bitsPerContext = 3;

    /** Entries per register: bytes*8 / (2 * bitsPerContext). */
    std::size_t
    entriesPerRegister() const
    {
        return bytesPerRegister * 8 / (2 * bitsPerContext);
    }
};

/** Callback receiving a drained register's events. */
using VectorDrainCallback =
    std::function<void(const std::vector<ConflictMissEvent>&)>;

/**
 * The alternating vector-register pair.
 */
class ConflictVectorRegisters
{
  public:
    explicit ConflictVectorRegisters(VectorRegisterParams params = {});

    /** Record one conflict miss; may trigger a background drain. */
    void record(const ConflictMissEvent& event);

    /** Software-side: drain the partially filled register (end of
     *  quantum). */
    void flush();

    /** Register the software module's drain callback. */
    void setDrainCallback(VectorDrainCallback callback);

    /** Index (0/1) of the register currently recording. */
    unsigned activeRegister() const { return active_; }

    /** Entries in the currently recording register. */
    std::size_t activeCount() const { return buffers_[active_].size(); }

    /** Total events recorded. */
    std::uint64_t totalRecorded() const { return totalRecorded_; }

    /** Number of full-register drains. */
    std::uint64_t drains() const { return drains_; }

    const VectorRegisterParams& params() const { return params_; }

  private:
    void drain(unsigned idx);

    VectorRegisterParams params_;
    std::vector<ConflictMissEvent> buffers_[2];
    unsigned active_ = 0;
    VectorDrainCallback callback_;
    std::uint64_t totalRecorded_ = 0;
    std::uint64_t drains_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_VECTOR_REGISTER_HH
