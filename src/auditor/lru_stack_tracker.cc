#include "auditor/lru_stack_tracker.hh"

#include "util/logging.hh"

namespace cchunter
{

LruStackTracker::LruStackTracker(std::size_t num_blocks)
    : capacity_(num_blocks)
{
    if (num_blocks == 0)
        fatal("LruStackTracker: cache has no blocks");
}

void
LruStackTracker::touch(Addr line_addr)
{
    auto it = where_.find(line_addr);
    if (it != where_.end()) {
        stack_.erase(it->second);
    } else if (stack_.size() >= capacity_) {
        // The fully-associative cache would evict its LRU line.
        where_.erase(stack_.back());
        stack_.pop_back();
    }
    stack_.push_front(line_addr);
    where_[line_addr] = stack_.begin();
}

void
LruStackTracker::onAccess(std::size_t, Addr line_addr, ContextId, Tick)
{
    touch(line_addr);
}

void
LruStackTracker::onEvict(std::size_t, Addr, ContextId, Tick)
{
    // The ideal model is driven purely by the access stream.
}

void
LruStackTracker::onMiss(Addr line_addr, ContextId requester,
                        ContextId victim_owner, bool had_victim,
                        Tick now)
{
    ++totalMisses_;
    if (!residentInIdealCache(line_addr))
        return;
    ++conflictMisses_;
    const ConflictMissEvent ev{
        now, requester, had_victim ? victim_owner : invalidContext};
    for (const auto& listener : listeners_)
        listener(ev);
}

bool
LruStackTracker::residentInIdealCache(Addr line_addr) const
{
    return where_.count(line_addr) != 0;
}

void
LruStackTracker::addListener(ConflictMissListener listener)
{
    listeners_.push_back(std::move(listener));
}

} // namespace cchunter
