/**
 * @file
 * The practical generation-based conflict-miss tracker (paper Fig. 9).
 *
 * A conflict miss is a miss on a block that a fully-associative LRU
 * cache of equal capacity would still hold — i.e. the block was evicted
 * *prematurely*.  The exact check needs an LRU stack; this hardware-
 * friendly approximation keeps four age-ordered *generations*:
 *
 *  - Each cache block has one access bit per generation; the bit of the
 *    current (youngest) generation is set on access.
 *  - A counter tracks how many blocks were newly marked in the current
 *    generation; when it reaches T = N/4 a new generation starts and
 *    the oldest is discarded (its bloom filter and bit column are
 *    flash-cleared) — modelling removal from the LRU stack's bottom.
 *  - On replacement, the victim's tag is inserted into the bloom filter
 *    of the youngest generation in which it was accessed.
 *  - On a miss, if the incoming tag hits in any live filter the block
 *    was evicted within the last ~N distinct accesses: a conflict miss.
 */

#ifndef CCHUNTER_AUDITOR_CONFLICT_MISS_TRACKER_HH
#define CCHUNTER_AUDITOR_CONFLICT_MISS_TRACKER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "auditor/conflict_event.hh"
#include "mem/cache.hh"
#include "util/bloom_filter.hh"
#include "util/types.hh"

namespace cchunter
{

/** Configuration of the practical tracker. */
struct ConflictTrackerParams
{
    /** Number of generations (paper: 4). */
    unsigned numGenerations = 4;

    /**
     * New-generation threshold T in distinct block accesses.
     * 0 selects the paper's default of numBlocks / numGenerations.
     */
    std::size_t generationThreshold = 0;

    /**
     * Bits per generation bloom filter; 0 selects the paper's sizing of
     * numBlocks bits per filter (4 x N bits total).
     */
    std::size_t bloomBitsPerGeneration = 0;

    /** Hash probes per filter (paper: 3). */
    unsigned bloomHashes = 3;
};

/**
 * Asked on a miss whose tag missed every live Bloom filter; returning
 * true forces the aliased (false-positive) outcome.  Fault-injection
 * hook: exercises the pipeline's tolerance to the filters' inherent
 * aliasing beyond their natural false-positive rate.
 */
using BloomAliasHook = std::function<bool()>;

/**
 * CacheMonitor implementation approximating LRU-stack recency with
 * generation bits and bloom filters.
 */
class ConflictMissTracker : public CacheMonitor
{
  public:
    /**
     * @param num_blocks Total blocks (N) of the monitored cache.
     */
    explicit ConflictMissTracker(std::size_t num_blocks,
                                 ConflictTrackerParams params = {});

    void onAccess(std::size_t block_idx, Addr line_addr, ContextId ctx,
                  Tick now) override;
    void onEvict(std::size_t block_idx, Addr line_addr, ContextId owner,
                 Tick now) override;
    void onMiss(Addr line_addr, ContextId requester,
                ContextId victim_owner, bool had_victim,
                Tick now) override;

    /** Register a conflict-miss listener. */
    void addListener(ConflictMissListener listener);

    /** Install (or clear, with an empty hook) the forced-alias
     *  fault-injection hook. */
    void setAliasHook(BloomAliasHook hook);

    /** Conflict misses manufactured by the alias hook so far. */
    std::uint64_t forcedAliases() const { return forcedAliases_; }

    /** Identified conflict misses so far. */
    std::uint64_t conflictMisses() const { return conflictMisses_; }

    /** Total misses observed. */
    std::uint64_t totalMisses() const { return totalMisses_; }

    /** Generation rotations performed. */
    std::uint64_t rotations() const { return rotations_; }

    /** Current generation threshold T. */
    std::size_t threshold() const { return threshold_; }

  private:
    void rotateGeneration();

    std::size_t numBlocks_;
    ConflictTrackerParams params_;
    std::size_t threshold_;
    /** Per-block bitmask of generations in which it was accessed. */
    std::vector<std::uint8_t> genBits_;
    /** One bloom filter per generation. */
    std::vector<BloomFilter> filters_;
    /** Index of the current (youngest) generation. */
    unsigned currentGen_ = 0;
    /** Blocks newly marked in the current generation. */
    std::size_t currentGenCount_ = 0;
    std::vector<ConflictMissListener> listeners_;
    BloomAliasHook aliasHook_;
    std::uint64_t conflictMisses_ = 0;
    std::uint64_t totalMisses_ = 0;
    std::uint64_t rotations_ = 0;
    std::uint64_t forcedAliases_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_CONFLICT_MISS_TRACKER_HH
