/**
 * @file
 * The CC-Auditor hardware device (paper section V-A).
 *
 * The instruction set is augmented with a privileged instruction that
 * programs the auditor to watch selected shared hardware units; here
 * that instruction is modelled by the monitor* methods, which demand an
 * AuditKey that the OS only grants to administrators (section V-B).
 *
 * To bound cost, the auditor monitors at most two units at a time
 * (`maxSlots`).  A slot programmed on a combinational unit (memory bus,
 * integer divider) owns a Δt count-down register, a 16-bit accumulator
 * and a 128-entry histogram buffer; a slot programmed on a cache owns
 * the generation-based conflict-miss tracker and the pair of 128-byte
 * vector registers.
 */

#ifndef CCHUNTER_AUDITOR_CC_AUDITOR_HH
#define CCHUNTER_AUDITOR_CC_AUDITOR_HH

#include <memory>
#include <vector>

#include "auditor/conflict_miss_tracker.hh"
#include "auditor/histogram_buffer.hh"
#include "auditor/lru_stack_tracker.hh"
#include "auditor/vector_register.hh"
#include "sim/machine.hh"
#include "util/types.hh"

namespace cchunter
{

/** What a slot is monitoring.  New units append at the end: the value
 *  feeds Alarm::channelSignature and the quality-report ordering, both
 *  pinned by goldens. */
enum class MonitorTarget : std::uint8_t
{
    None,
    MemoryBus,
    IntegerDivider,
    IntegerMultiplier,
    L2Cache,
    Tlb,
};

/** Short lower-case name of a monitor target (the registry's stable
 *  unit name; a table lookup, not a per-unit switch). */
const char* monitorTargetName(MonitorTarget target);

/**
 * Capability proving the caller passed the OS authorization check for
 * the privileged audit instruction.
 */
class AuditKey
{
  public:
    bool valid() const { return valid_; }

  private:
    friend AuditKey requestAuditKey(bool is_admin);
    bool valid_ = false;
};

/**
 * OS-side authorization: only administrators receive a valid key
 * (prevents sensitive system-activity data from leaking to attackers).
 * Fatal when the requester is not privileged.
 */
AuditKey requestAuditKey(bool is_admin);

/** Paper default Δt for the memory-bus channel: 100,000 cycles. */
constexpr Tick busDeltaT = 100000;

/** Paper default Δt for the integer-divider channel: 500 cycles. */
constexpr Tick dividerDeltaT = 500;

/** Δt for the multiplier (shorter op latency -> denser conflicts). */
constexpr Tick multiplierDeltaT = 300;

/**
 * The auditor device attached to one machine.
 */
class CCAuditor
{
  public:
    static constexpr unsigned maxSlots = 2;

    /**
     * @param machine Machine whose units can be audited.
     * @param num_slots Units monitorable at once.  Defaults to the
     *        paper's low-overhead configuration of two; super-secure
     *        environments that can ignore performance constraints may
     *        enable more (up to maxSuperSecureSlots).
     */
    explicit CCAuditor(Machine& machine, unsigned num_slots = maxSlots);
    ~CCAuditor();

    /** Upper bound for the super-secure configuration. */
    static constexpr unsigned maxSuperSecureSlots = 16;

    /** Slots available on this auditor instance. */
    unsigned numSlots() const { return numSlots_; }

    CCAuditor(const CCAuditor&) = delete;
    CCAuditor& operator=(const CCAuditor&) = delete;

    /**
     * Hardware sizing applied to histogram buffers programmed by
     * subsequent monitor* calls.  The default models ideal (unbounded)
     * counters; `{128, true}` selects the paper's 16-bit saturating
     * entries and accumulators.
     */
    void setHistogramParams(HistogramBufferParams params);

    /** Sizing applied to newly programmed histogram buffers. */
    const HistogramBufferParams& histogramParams() const
    {
        return histogramParams_;
    }

    /** Program `slot` to count memory-bus lock events. */
    void monitorBus(const AuditKey& key, unsigned slot,
                    Tick delta_t = busDeltaT);

    /** Program `slot` to count divider wait conflicts on `core`. */
    void monitorDivider(const AuditKey& key, unsigned slot,
                        unsigned core, Tick delta_t = dividerDeltaT);

    /** Program `slot` to count multiplier wait conflicts on `core`. */
    void monitorMultiplier(const AuditKey& key, unsigned slot,
                           unsigned core,
                           Tick delta_t = multiplierDeltaT);

    /** Program `slot` to track conflict misses on `core`'s L2 with the
     *  practical generation/bloom tracker. */
    void monitorCache(const AuditKey& key, unsigned slot, unsigned core,
                      ConflictTrackerParams params = {});

    /**
     * Program `slot` with the *ideal* fully-associative LRU-stack
     * tracker instead (too expensive for real hardware; the reference
     * the practical scheme approximates — paper section V-A).
     */
    void monitorCacheIdeal(const AuditKey& key, unsigned slot,
                           unsigned core);

    /**
     * Program `slot` to record cross-context displacements in `core`'s
     * TLB.  The TLB identifies its own conflicts (owner metadata on
     * every entry), so the slot owns only the vector-register pair —
     * no tracker is needed.  Requires a machine built with TLBs
     * enabled.
     */
    void monitorTlb(const AuditKey& key, unsigned slot, unsigned core);

    /** Stop monitoring on `slot` and release its hardware. */
    void stopMonitor(const AuditKey& key, unsigned slot);

    /** @return true when the slot is programmed. */
    bool slotActive(unsigned slot) const;

    /** Target the slot is programmed on. */
    MonitorTarget slotTarget(unsigned slot) const;

    /** Histogram buffer of a contention slot (nullptr otherwise). */
    HistogramBuffer* histogramBuffer(unsigned slot);

    /** Vector registers of a cache slot (nullptr otherwise). */
    ConflictVectorRegisters* vectorRegisters(unsigned slot);

    /** Practical conflict-miss tracker of a cache slot (nullptr when
     *  the slot is not a practical-tracker cache monitor). */
    ConflictMissTracker* tracker(unsigned slot);

    /** Ideal LRU-stack tracker of a cache slot (nullptr when the slot
     *  is not an ideal-tracker cache monitor). */
    LruStackTracker* idealTracker(unsigned slot);

    Machine& machine() { return machine_; }

  private:
    struct SlotState
    {
        bool active = false;
        MonitorTarget target = MonitorTarget::None;
        unsigned core = 0;
        std::unique_ptr<HistogramBuffer> histogram;
        std::unique_ptr<ConflictMissTracker> cacheTracker;
        std::unique_ptr<LruStackTracker> idealTracker;
        std::unique_ptr<ConflictVectorRegisters> vectors;
    };

    void checkKey(const AuditKey& key) const;
    void checkSlot(unsigned slot) const;
    void release(unsigned slot);

    Machine& machine_;
    unsigned numSlots_;
    HistogramBufferParams histogramParams_;
    std::vector<std::shared_ptr<SlotState>> slots_;
};

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_CC_AUDITOR_HH
