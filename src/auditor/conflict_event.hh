/**
 * @file
 * The conflict-miss event record shared by the trackers, the vector
 * registers and the daemon.
 */

#ifndef CCHUNTER_AUDITOR_CONFLICT_EVENT_HH
#define CCHUNTER_AUDITOR_CONFLICT_EVENT_HH

#include <functional>

#include "util/types.hh"

namespace cchunter
{

/**
 * One identified conflict miss: the replacer (context requesting the
 * incoming block) and the victim (owner context recorded in the
 * metadata of the block being displaced).
 */
struct ConflictMissEvent
{
    Tick time = 0;
    ContextId replacer = invalidContext;
    ContextId victim = invalidContext;
};

/** Listener invoked for each identified conflict miss. */
using ConflictMissListener =
    std::function<void(const ConflictMissEvent&)>;

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_CONFLICT_EVENT_HH
