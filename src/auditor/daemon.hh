/**
 * @file
 * The CC-Hunter software daemon (paper section V-B).
 *
 * A background process records the auditor's histogram buffers at each
 * OS time quantum (contention channels) and drains the conflict vector
 * registers (cache channels), translating hardware context IDs into
 * process IDs using the OS's knowledge of the schedule — this is how
 * trojan/spy pairs are identified correctly despite migration across
 * contexts.
 *
 * Recording is *streaming*: each slot keeps a retention-bounded
 * sliding window (a RingBuffer) of quantum histograms and conflict
 * records instead of an ever-growing log, with explicit eviction
 * counters.  The merged contention histogram and the per-quantum
 * label series are maintained incrementally (add-on-drain /
 * subtract-on-evict), so both daemon memory and per-quantum analysis
 * cost are flat in the total run length.  Online analyses can run
 * inline with the simulation loop or be handed to a dedicated
 * consumer thread through a bounded queue with backpressure (Block)
 * or lossy (DropOldest) overflow handling.
 */

#ifndef CCHUNTER_AUDITOR_DAEMON_HH
#define CCHUNTER_AUDITOR_DAEMON_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "auditor/cc_auditor.hh"
#include "detect/detector.hh"
#include "detect/incremental_autocorr.hh"
#include "faults/fault_injector.hh"
#include "sim/stats_report.hh"
#include "util/bounded_queue.hh"
#include "util/histogram.hh"
#include "util/ring_buffer.hh"
#include "util/thread_pool.hh"
#include "util/types.hh"

namespace cchunter
{

/** A conflict miss translated to schedulable-entity identities. */
struct ConflictRecord
{
    Tick time = 0;
    ContextId replacerContext = invalidContext;
    ContextId victimContext = invalidContext;
    ProcessId replacerPid = invalidProcess;
    ProcessId victimPid = invalidProcess;
    std::uint64_t quantum = 0;
};

/** Retention policy for the daemon's per-slot sliding windows. */
struct DaemonRetention
{
    /** Quantum histograms retained per contention slot (default: the
     *  paper's 512-quantum clustering window). */
    std::size_t contentionQuanta = 512;

    /** Conflict records retained per cache slot. */
    std::size_t conflictRecords = std::size_t{1} << 20;
};

/** Online analysis cadence (paper section V-B). */
struct OnlineAnalysisParams
{
    /** Pattern clustering runs once per this many quanta (the paper's
     *  51.2 s at a 0.1 s quantum). */
    std::size_t clusteringIntervalQuanta = 512;

    /** Autocorrelation runs at the end of every OS time quantum. */
    bool autocorrEveryQuantum = true;

    /**
     * Worker threads for the per-quantum analysis fan-out.  1 keeps
     * the serial path; larger values analyse the monitored units
     * concurrently on a fixed pool, applying verdicts in slot order so
     * the alarm stream is identical to the serial path.  0 sizes the
     * pool to the hardware concurrency.
     */
    std::size_t analysisThreads = 1;

    /**
     * Contention-histogram retention while online; 0 selects the
     * clustering interval (the window each clustering pass consumes).
     */
    std::size_t retentionQuanta = 0;

    /**
     * Run analyses on a dedicated consumer thread fed through a
     * bounded hand-off queue instead of inline with the simulation
     * loop.  The alarm stream is identical to the inline path as long
     * as no batches are dropped.
     */
    bool asyncAnalysis = false;

    /** Capacity of the hand-off queue (asyncAnalysis only). */
    std::size_t queueCapacity = 8;

    /** Full-queue behaviour: Block applies backpressure to the
     *  simulation loop; DropOldest sheds the stalest batch and counts
     *  the loss. */
    OverflowPolicy queueOverflow = OverflowPolicy::Block;

    /**
     * Debug: recompute the merged contention histogram from the
     * retained window on every analysis instead of using the
     * incrementally maintained copy.  Pinned equal to the incremental
     * path by tests.
     */
    bool debugRecomputeMerged = false;

    /**
     * Maintain per-slot sliding-window autocorrelation sums
     * incrementally (update-on-append / downdate-on-evict) so the
     * end-of-run analyzeOscillation() serves its correlogram in
     * O(maxLag) instead of recomputing O(N log N) over the retained
     * window.  Equal to the full recompute within 1e-9 and pinned to
     * produce identical alarms/verdicts by tests.  Config key:
     * `analysis.incrementalAutocorr`.
     */
    bool incrementalAutocorr = true;

    /**
     * Debug: ignore the incremental maintainer and recompute the
     * full-window correlogram on every analyzeOscillation() (the
     * legacy path; equivalence-test hook).
     */
    bool debugRecomputeAutocorr = false;

    /** Analysis parameters. */
    CCHunterParams hunter;
};

/** Per-stage observability counters for the observation pipeline. */
struct PipelineStats
{
    std::uint64_t drainedHistograms = 0; //!< quantum snapshots drained
    std::uint64_t drainedConflicts = 0;  //!< conflict records drained
    std::uint64_t evictedQuanta = 0;     //!< histograms aged out
    std::uint64_t evictedConflicts = 0;  //!< conflict records aged out
    std::uint64_t batchesEnqueued = 0;   //!< async batches handed off
    std::uint64_t batchesDropped = 0;    //!< batches shed (DropOldest)
    std::size_t queueDepthHighWater = 0; //!< deepest hand-off backlog
    std::uint64_t analysesRun = 0;       //!< analysis passes completed
    double latencyMinUs = 0.0;           //!< fastest analysis pass
    double latencyMaxUs = 0.0;           //!< slowest analysis pass
    double latencyTotalUs = 0.0;         //!< summed analysis time

    /** Mean per-pass analysis latency in microseconds. */
    double latencyMeanUs() const;

    /** Fold another stats block in (counter sums, min/max combines). */
    void accumulate(const PipelineStats& other);

    /** Human-readable one-line pipeline health summary. */
    std::string summary() const;
};

/** PipelineStats as flat stat entries for sim/stats_report dumps. */
std::vector<StatEntry> pipelineStatEntries(
    const PipelineStats& stats, const std::string& prefix = "daemon.");

/** Why a malformed analysis batch was quarantined. */
enum class QuarantineReason : std::uint8_t
{
    None,
    BadLabel,      //!< an oscillation label was not a binary 0/1
    BinMismatch,   //!< window histograms disagree on bin count
    SlotOutOfRange //!< batch names a slot the daemon does not have
};

/**
 * Degraded-operation counters: everything the pipeline observed going
 * wrong with its own sensors, kept alongside (not inside) the
 * throughput-oriented PipelineStats so a clean run reads all-zeros.
 */
struct DegradedStats
{
    std::uint64_t missedQuanta = 0;     //!< daemon wakeups that never ran
    std::uint64_t duplicatedQuanta = 0; //!< snapshots recorded twice
    std::uint64_t truncatedBatches = 0; //!< conflict batches cut short
    std::uint64_t truncatedEvents = 0;  //!< conflict events lost to cuts
    std::uint64_t reorderedBatches = 0; //!< conflict batches shuffled
    std::uint64_t corruptedContexts = 0; //!< bogus context IDs ingested
    std::uint64_t bloomAliases = 0;     //!< forced Bloom false positives
    std::uint64_t saturatedBinEvents = 0; //!< histogram bins clamped at 16 bit
    std::uint64_t accumulatorSaturations = 0; //!< event increments lost at 16 bit
    std::uint64_t unmergeUnderflows = 0; //!< merged-window bins clamped at 0

    std::uint64_t quarantinedBatches = 0; //!< malformed batches refused
    std::uint64_t quarantineBadLabel = 0;
    std::uint64_t quarantineBinMismatch = 0;
    std::uint64_t quarantineSlotRange = 0;

    std::uint64_t degradedAlarms = 0;  //!< alarms with confidence < 1
    double minAlarmConfidence = 1.0;   //!< weakest alarm raised
    double windowCoverage = 1.0;       //!< attended / scheduled quanta

    /** Fold another block in (sums; min-combines the qualities). */
    void accumulate(const DegradedStats& other);

    /** Total faults observed (quarantines excluded — they are the
     *  response, not the injury). */
    std::uint64_t totalFaults() const;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

/** DegradedStats as flat stat entries for sim/stats_report dumps. */
std::vector<StatEntry> degradedStatEntries(
    const DegradedStats& stats,
    const std::string& prefix = "daemon.degraded.");

/** Which analysis path raised an alarm. */
enum class AlarmKind : std::uint8_t
{
    Contention,  //!< recurrent-burst verdict on a combinational unit
    Oscillation, //!< autocorrelation verdict on a cache conflict train
};

/** Short lower-case name of an alarm kind. */
const char* alarmKindName(AlarmKind kind);

/** One raised alarm. */
struct Alarm
{
    unsigned slot = 0;
    Tick when = 0;
    std::uint64_t quantum = 0;
    std::string summary;

    /**
     * How much of the nominal observation actually backed this
     * verdict, in [0, 1]: window coverage times the fraction of the
     * evidence untouched by saturation (contention) or conflict-path
     * corruption (oscillation).  1.0 on a clean sensor; "detected
     * despite 30% sensor loss" reads as ~0.7.
     */
    double confidence = 1.0;

    /** Hardware unit kind the alarmed slot was programmed on. */
    MonitorTarget unit = MonitorTarget::None;

    /** Analysis path that produced the verdict. */
    AlarmKind kind = AlarmKind::Contention;

    /**
     * Dominant spectral feature of the detected pattern: the burst
     * distribution's peak histogram bin (contention) or the dominant
     * autocorrelation lag (oscillation).  Deterministic for a given
     * observation window, so two hosts carrying the same channel
     * report the same value.
     */
    std::uint64_t dominantFeature = 0;

    /**
     * Stable identity of the detected channel for cross-host
     * correlation: unit kind, analysis path and dominant feature
     * packed into one comparable word (no string parsing).  Equal
     * signatures mean "the same kind of channel on the same kind of
     * hardware with the same dominant period/bin"; the packing is
     * byte-stable across runs, shard layouts and thread counts.
     */
    std::uint64_t channelSignature() const;
};

/** Invoked whenever an online analysis pass flags a channel. */
using AlarmCallback = std::function<void(const Alarm&)>;

/**
 * The daemon: quantum-driven recording plus analysis entry points.
 */
class AuditDaemon
{
  public:
    /**
     * Constructing the daemon registers it as a quantum observer on the
     * machine's scheduler; it then records every active auditor slot at
     * every quantum boundary into retention-bounded sliding windows.
     */
    AuditDaemon(Machine& machine, CCAuditor& auditor,
                DaemonRetention retention = {});

    /** Stops the async analysis consumer, draining queued batches. */
    ~AuditDaemon();

    AuditDaemon(const AuditDaemon&) = delete;
    AuditDaemon& operator=(const AuditDaemon&) = delete;

    /** Retained per-quantum density histograms for a contention slot,
     *  oldest first (a copy of the sliding window). */
    std::vector<Histogram> contentionQuanta(unsigned slot) const;

    /** The retained histogram window itself (no copy). */
    const RingBuffer<Histogram>& contentionWindow(unsigned slot) const;

    /** Retained conflict records for a cache slot, oldest first (a
     *  copy of the sliding window). */
    std::vector<ConflictRecord> conflictRecords(unsigned slot) const;

    /** The retained conflict-record window itself (no copy). */
    const RingBuffer<ConflictRecord>& conflictWindow(
        unsigned slot) const;

    /**
     * Label series for oscillation analysis over the retained window:
     * one value per conflict record, 1.0 when the replacer pid is the
     * smaller of the pair and 0.0 otherwise (every ordered pair maps
     * to a stable label).
     */
    std::vector<double> labelSeries(unsigned slot) const;

    /** Label series restricted to retained records from one quantum. */
    std::vector<double> labelSeriesForQuantum(
        unsigned slot, std::uint64_t quantum) const;

    /** Run the recurrent-burst pipeline on a contention slot's
     *  retained window. */
    ContentionVerdict analyzeContention(unsigned slot,
                                        CCHunterParams params = {}) const;

    /** Run the oscillation pipeline on a cache slot's retained
     *  window. */
    OscillationVerdict analyzeOscillation(
        unsigned slot, CCHunterParams params = {}) const;

    /** Quanta recorded so far (including quanta since evicted). */
    std::uint64_t quantaRecorded() const { return quanta_; }

    /** Effective retention policy. */
    const DaemonRetention& retention() const { return retention_; }

    /** Histograms aged out of a slot's window so far. */
    std::uint64_t evictedQuanta(unsigned slot) const;

    /** Conflict records aged out of a slot's window so far. */
    std::uint64_t evictedConflicts(unsigned slot) const;

    /** Pipeline observability snapshot (flushes pending analyses). */
    PipelineStats pipelineStats() const;

    /**
     * Degraded-operation snapshot (flushes pending analyses): the
     * daemon's own fault ledger plus the sensor-side counters read off
     * the auditor hardware (bin saturations, forced Bloom aliases,
     * merged-window underflow clamps).
     */
    DegradedStats degradedStats() const;

    /**
     * Attach a fault injector: quantum drops/duplications, conflict-
     * batch mutations, Bloom aliasing and analysis-batch corruption
     * all start flowing through it.  The injector must outlive the
     * daemon (or a detach with nullptr).  The daemon stays on its
     * graceful-degradation path either way; a null injector simply
     * means no faults fire.
     */
    void attachFaultInjector(FaultInjector* injector);

    /** Fraction of scheduled quanta the daemon actually attended over
     *  the retained window (1.0 before any quantum elapses). */
    double windowCoverage() const;

    /**
     * Fraction of a cache slot's conflict evidence that arrived
     * unmangled: 1 - (corrupted + truncated + aliased) / observed.
     */
    double conflictIntegrity(unsigned slot) const;

    /** Confidence of a contention verdict computed offline on `slot`:
     *  window coverage degraded by the saturated-bin fraction. */
    double contentionConfidence(unsigned slot,
                                const ContentionVerdict& verdict) const;

    /** Confidence of an oscillation verdict computed offline on
     *  `slot`: window coverage times conflict-path integrity. */
    double oscillationConfidence(unsigned slot) const;

    /** Wait until every queued analysis batch has been processed.
     *  No-op in the inline (synchronous) mode. */
    void flushAnalyses() const;

    /**
     * Debug: force merged-histogram recomputation (the legacy path)
     * in subsequent analyses instead of the incremental copy.
     */
    void setDebugRecomputeMerged(bool recompute);

    /**
     * Debug: force full-window correlogram recomputation (the legacy
     * path) in subsequent analyzeOscillation() calls instead of the
     * incremental sliding-window sums.
     */
    void setDebugRecomputeAutocorr(bool recompute);

    /**
     * Switch on live analysis at the paper's cadence: recurrent-burst
     * clustering every clusteringIntervalQuanta, oscillation analysis
     * on each quantum's conflict labels.  The callback fires for every
     * positive verdict (on the consumer thread when asyncAnalysis is
     * set); raised alarms are also retained.  Adjusts the contention
     * retention to params.retentionQuanta (or the clustering interval
     * when 0).
     */
    void enableOnlineAnalysis(OnlineAnalysisParams params,
                              AlarmCallback callback = {});

    /** Alarms raised by online analysis so far (flushes pending
     *  analyses first). */
    const std::vector<Alarm>& alarms() const;

    /** Quantum index of the first alarm on a slot (detection latency);
     *  returns SIZE_MAX when the slot never alarmed. */
    std::uint64_t firstAlarmQuantum(unsigned slot) const;

  private:
    /** Per-slot streaming state. */
    struct SlotState
    {
        /** Sliding window of per-quantum density histograms. */
        RingBuffer<Histogram> window{512};

        /** Sliding window of translated conflict records. */
        RingBuffer<ConflictRecord> records{std::size_t{1} << 20};

        /** Bin-wise sum of `window`, maintained incrementally. */
        Histogram merged{1};
        bool mergedInit = false;

        /** Labels drained during the current quantum (reused each
         *  quantum; feeds the oscillation analysis without a fresh
         *  series materialisation). */
        std::vector<double> quantumLabels;

        /** Sliding-window autocorrelation sums over the same span as
         *  `records`, maintained per ingested label (online analysis
         *  with incrementalAutocorr only). */
        std::unique_ptr<IncrementalAutocorrelation> autocorr;

        // Conflict-path integrity accounting (sim thread only).
        std::uint64_t conflictsIngested = 0;
        std::uint64_t conflictsTruncated = 0;
        std::uint64_t conflictsCorrupted = 0;
    };

    /** One slot's share of an analysis pass. */
    struct SlotWork
    {
        unsigned slot = 0;
        /** Unit kind captured at dispatch (sim thread) so alarms can
         *  carry it without the consumer touching live auditor
         *  state. */
        MonitorTarget target = MonitorTarget::None;
        bool hasContention = false;
        bool hasOscillation = false;
        // Owned snapshots, filled for the async hand-off (and for an
        // inline batch about to be corrupted); the clean inline path
        // analyses the live windows in place.
        std::vector<Histogram> windowCopy;
        Histogram mergedCopy{1};
        bool mergedValid = false;
        std::vector<double> labels;
        ContentionVerdict contention;
        OscillationVerdict oscillation;

        // Degradation context captured at dispatch (sim thread) so the
        // consumer can stamp confidences without touching live state.
        double coverage = 1.0;
        double integrity = 1.0;
        double satFraction = 0.0; //!< filled by analyzeBatch
    };

    /** One quantum's hand-off unit. */
    struct AnalysisBatch
    {
        std::uint64_t quantum = 0;
        Tick now = 0;
        std::vector<SlotWork> work;
    };

    void onQuantum(std::uint64_t quantum_index, Tick now);
    void wireCacheSlot(unsigned slot);
    void ingestConflicts(unsigned slot,
                         const std::vector<ConflictMissEvent>& evs);
    void dispatchAnalyses(std::uint64_t quantum_index, Tick now);
    void materializeSnapshots(AnalysisBatch& batch);
    bool applyBatchCorruption(AnalysisBatch& batch,
                              FaultInjector::BatchCorruption kind);
    QuarantineReason validateBatch(const AnalysisBatch& batch,
                                   bool from_snapshots) const;
    void quarantineBatch(QuarantineReason reason);
    void analyzeBatch(AnalysisBatch& batch, bool from_snapshots);
    void applyVerdicts(AnalysisBatch& batch);
    void recordAnalysisLatency(double micros);
    void analysisLoop();
    void setContentionRetention(std::size_t quanta);
    const SlotState& slotState(unsigned slot) const;

    Machine& machine_;
    CCAuditor& auditor_;
    DaemonRetention retention_;
    std::vector<SlotState> slots_;
    FaultInjector* injector_ = nullptr;
    /** 1 per attended quantum, 0 per missed one, over the contention
     *  retention window (sim thread only). */
    RingBuffer<std::uint8_t> presence_{512};
    DegradedStats degraded_;
    std::uint64_t currentQuantum_ = 0;
    std::uint64_t quanta_ = 0;
    bool online_ = false;
    bool debugRecompute_ = false;
    bool debugRecomputeAutocorr_ = false;
    OnlineAnalysisParams onlineParams_;
    AlarmCallback alarmCallback_;
    std::vector<Alarm> alarms_;
    std::unique_ptr<ThreadPool> pool_;

    // Pipeline observability (drain-side counters live here; eviction
    // counters are read off the rings; queue counters off the queue).
    PipelineStats stats_;
    mutable std::mutex statsMutex_;

    // Async hand-off machinery.
    std::unique_ptr<BoundedQueue<AnalysisBatch>> queue_;
    std::thread analysisThread_;
    mutable std::mutex alarmsMutex_;
    mutable std::mutex idleMutex_;
    mutable std::condition_variable idleCv_;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_DAEMON_HH
