/**
 * @file
 * The CC-Hunter software daemon (paper section V-B).
 *
 * A background process records the auditor's histogram buffers at each
 * OS time quantum (contention channels) and drains the conflict vector
 * registers (cache channels), translating hardware context IDs into
 * process IDs using the OS's knowledge of the schedule — this is how
 * trojan/spy pairs are identified correctly despite migration across
 * contexts.  The recorded series feed the CCHunter analysis engine.
 */

#ifndef CCHUNTER_AUDITOR_DAEMON_HH
#define CCHUNTER_AUDITOR_DAEMON_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "auditor/cc_auditor.hh"
#include "detect/detector.hh"
#include "util/histogram.hh"
#include "util/thread_pool.hh"
#include "util/types.hh"

namespace cchunter
{

/** A conflict miss translated to schedulable-entity identities. */
struct ConflictRecord
{
    Tick time = 0;
    ContextId replacerContext = invalidContext;
    ContextId victimContext = invalidContext;
    ProcessId replacerPid = invalidProcess;
    ProcessId victimPid = invalidProcess;
    std::uint64_t quantum = 0;
};

/** Online analysis cadence (paper section V-B). */
struct OnlineAnalysisParams
{
    /** Pattern clustering runs once per this many quanta (the paper's
     *  51.2 s at a 0.1 s quantum). */
    std::size_t clusteringIntervalQuanta = 512;

    /** Autocorrelation runs at the end of every OS time quantum. */
    bool autocorrEveryQuantum = true;

    /**
     * Worker threads for the per-quantum analysis fan-out.  1 keeps
     * the serial path; larger values analyse the monitored units
     * concurrently on a fixed pool, applying verdicts in slot order so
     * the alarm stream is identical to the serial path.  0 sizes the
     * pool to the hardware concurrency.
     */
    std::size_t analysisThreads = 1;

    /** Analysis parameters. */
    CCHunterParams hunter;
};

/** One raised alarm. */
struct Alarm
{
    unsigned slot = 0;
    Tick when = 0;
    std::uint64_t quantum = 0;
    std::string summary;
};

/** Invoked whenever an online analysis pass flags a channel. */
using AlarmCallback = std::function<void(const Alarm&)>;

/**
 * The daemon: quantum-driven recording plus analysis entry points.
 */
class AuditDaemon
{
  public:
    /**
     * Constructing the daemon registers it as a quantum observer on the
     * machine's scheduler; it then records every active auditor slot at
     * every quantum boundary.
     */
    AuditDaemon(Machine& machine, CCAuditor& auditor);

    /** Per-quantum density histograms collected from a contention
     *  slot. */
    const std::vector<Histogram>& contentionQuanta(unsigned slot) const;

    /** All conflict records collected from a cache slot. */
    const std::vector<ConflictRecord>& conflictRecords(
        unsigned slot) const;

    /**
     * Label series for oscillation analysis: one value per conflict
     * record, 1.0 when the replacer pid is the smaller of the pair and
     * 0.0 otherwise (every ordered pair maps to a stable label).
     */
    std::vector<double> labelSeries(unsigned slot) const;

    /** Label series restricted to records from one quantum. */
    std::vector<double> labelSeriesForQuantum(
        unsigned slot, std::uint64_t quantum) const;

    /** Run the recurrent-burst pipeline on a contention slot. */
    ContentionVerdict analyzeContention(unsigned slot,
                                        CCHunterParams params = {}) const;

    /** Run the oscillation pipeline on a cache slot. */
    OscillationVerdict analyzeOscillation(
        unsigned slot, CCHunterParams params = {}) const;

    /** Quanta recorded so far. */
    std::uint64_t quantaRecorded() const { return quanta_; }

    /**
     * Switch on live analysis at the paper's cadence: recurrent-burst
     * clustering every clusteringIntervalQuanta, oscillation analysis
     * on each quantum's conflict labels.  The callback fires for every
     * positive verdict; raised alarms are also retained.
     */
    void enableOnlineAnalysis(OnlineAnalysisParams params,
                              AlarmCallback callback = {});

    /** Alarms raised by online analysis so far. */
    const std::vector<Alarm>& alarms() const { return alarms_; }

    /** Quantum index of the first alarm on a slot (detection latency);
     *  returns SIZE_MAX when the slot never alarmed. */
    std::uint64_t firstAlarmQuantum(unsigned slot) const;

  private:
    void onQuantum(std::uint64_t quantum_index, Tick now);
    void wireCacheSlot(unsigned slot);
    void runOnlineAnalyses(std::uint64_t quantum_index, Tick now);

    Machine& machine_;
    CCAuditor& auditor_;
    std::vector<std::vector<Histogram>> contention_;
    std::vector<std::vector<ConflictRecord>> conflicts_;
    std::uint64_t currentQuantum_ = 0;
    std::uint64_t quanta_ = 0;
    bool online_ = false;
    OnlineAnalysisParams onlineParams_;
    AlarmCallback alarmCallback_;
    std::vector<Alarm> alarms_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_DAEMON_HH
