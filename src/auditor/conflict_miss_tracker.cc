#include "auditor/conflict_miss_tracker.hh"

#include "util/logging.hh"

namespace cchunter
{

ConflictMissTracker::ConflictMissTracker(std::size_t num_blocks,
                                         ConflictTrackerParams params)
    : numBlocks_(num_blocks), params_(params)
{
    if (num_blocks == 0)
        fatal("ConflictMissTracker: cache has no blocks");
    if (params_.numGenerations < 2 || params_.numGenerations > 8)
        fatal("ConflictMissTracker: generations must be in [2, 8]");
    threshold_ = params_.generationThreshold != 0
                     ? params_.generationThreshold
                     : num_blocks / params_.numGenerations;
    if (threshold_ == 0)
        threshold_ = 1;
    const std::size_t bloom_bits =
        params_.bloomBitsPerGeneration != 0
            ? params_.bloomBitsPerGeneration
            : num_blocks;
    genBits_.assign(num_blocks, 0);
    for (unsigned g = 0; g < params_.numGenerations; ++g)
        filters_.emplace_back(bloom_bits, params_.bloomHashes);
}

void
ConflictMissTracker::rotateGeneration()
{
    // Advance to the next slot: it currently holds the *oldest*
    // generation, which is discarded (bottom of the LRU stack).
    currentGen_ = (currentGen_ + 1) % params_.numGenerations;
    filters_[currentGen_].clear();
    const std::uint8_t mask =
        static_cast<std::uint8_t>(~(1u << currentGen_));
    for (auto& bits : genBits_)
        bits &= mask;
    currentGenCount_ = 0;
    ++rotations_;
}

void
ConflictMissTracker::onAccess(std::size_t block_idx, Addr, ContextId,
                              Tick)
{
    if (block_idx >= numBlocks_)
        panic("ConflictMissTracker: block index out of range");
    const std::uint8_t bit =
        static_cast<std::uint8_t>(1u << currentGen_);
    if (!(genBits_[block_idx] & bit)) {
        genBits_[block_idx] |= bit;
        if (++currentGenCount_ >= threshold_)
            rotateGeneration();
    }
}

void
ConflictMissTracker::onEvict(std::size_t block_idx, Addr line_addr,
                             ContextId, Tick)
{
    if (block_idx >= numBlocks_)
        panic("ConflictMissTracker: block index out of range");
    const std::uint8_t bits = genBits_[block_idx];
    if (bits != 0) {
        // Youngest generation in which the block was accessed: scan
        // from the current generation backwards in age.
        for (unsigned age = 0; age < params_.numGenerations; ++age) {
            const unsigned g =
                (currentGen_ + params_.numGenerations - age) %
                params_.numGenerations;
            if (bits & (1u << g)) {
                filters_[g].insert(line_addr);
                break;
            }
        }
    } else {
        // All of the block's access bits were flash-cleared: its last
        // access predates every live generation, i.e. it sits at the
        // bottom of the approximated LRU stack.  Record it in the
        // oldest live generation so it retains brief protection.
        const unsigned oldest =
            (currentGen_ + 1) % params_.numGenerations;
        filters_[oldest].insert(line_addr);
    }
    // The physical slot is being refilled: its history belongs to the
    // departing line.
    genBits_[block_idx] = 0;
}

void
ConflictMissTracker::onMiss(Addr line_addr, ContextId requester,
                            ContextId victim_owner, bool had_victim,
                            Tick now)
{
    ++totalMisses_;
    bool conflict = false;
    for (auto& f : filters_) {
        if (f.mayContain(line_addr)) {
            conflict = true;
            break;
        }
    }
    if (!conflict && aliasHook_ && aliasHook_()) {
        // A forced Bloom alias: the filters aliased a never-inserted
        // tag, so the miss is misclassified as a conflict miss.
        conflict = true;
        ++forcedAliases_;
    }
    if (!conflict)
        return;
    ++conflictMisses_;
    const ConflictMissEvent ev{
        now, requester, had_victim ? victim_owner : invalidContext};
    for (const auto& listener : listeners_)
        listener(ev);
}

void
ConflictMissTracker::addListener(ConflictMissListener listener)
{
    listeners_.push_back(std::move(listener));
}

void
ConflictMissTracker::setAliasHook(BloomAliasHook hook)
{
    aliasHook_ = std::move(hook);
}

} // namespace cchunter
