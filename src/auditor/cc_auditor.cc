#include "auditor/cc_auditor.hh"

#include <iterator>

#include "sim/trace.hh"
#include "util/logging.hh"

namespace cchunter
{

AuditKey
requestAuditKey(bool is_admin)
{
    if (!is_admin)
        fatal("audit authorization denied: caller is not privileged");
    AuditKey key;
    key.valid_ = true;
    return key;
}

CCAuditor::CCAuditor(Machine& machine, unsigned num_slots)
    : machine_(machine), numSlots_(num_slots)
{
    if (num_slots == 0 || num_slots > maxSuperSecureSlots)
        fatal("CCAuditor: slot count must be in [1, ",
              maxSuperSecureSlots, "]");
    if (num_slots > maxSlots)
        warn("CCAuditor: ", num_slots, " slots exceed the paper's "
             "low-overhead configuration (super-secure mode)");
    slots_.resize(numSlots_);
    for (auto& slot : slots_)
        slot = std::make_shared<SlotState>();
}

CCAuditor::~CCAuditor()
{
    for (unsigned s = 0; s < numSlots_; ++s)
        release(s);
}

void
CCAuditor::setHistogramParams(HistogramBufferParams params)
{
    if (params.numBins == 0)
        fatal("CCAuditor: histogram buffers need at least one bin");
    histogramParams_ = params;
}

void
CCAuditor::checkKey(const AuditKey& key) const
{
    if (!key.valid())
        fatal("audit instruction executed without a valid key");
}

void
CCAuditor::checkSlot(unsigned slot) const
{
    if (slot >= numSlots_)
        fatal("CC-Auditor monitors at most ", numSlots_,
              " units; slot ", slot, " does not exist");
}

void
CCAuditor::release(unsigned slot)
{
    SlotState& st = *slots_[slot];
    if (!st.active)
        return;
    if (st.target == MonitorTarget::L2Cache)
        machine_.mem().l2(st.core).setMonitor(nullptr);
    // Listener lambdas hold the shared state and check `active`, so
    // deactivating suffices to silence a reprogrammed slot.
    st.active = false;
    slots_[slot] = std::make_shared<SlotState>();
}

void
CCAuditor::monitorBus(const AuditKey& key, unsigned slot, Tick delta_t)
{
    checkKey(key);
    checkSlot(slot);
    release(slot);
    auto st = slots_[slot];
    st->active = true;
    st->target = MonitorTarget::MemoryBus;
    trace(TraceCategory::Auditor, machine_.now(), "slot ", slot,
          " monitors memory bus, dt=", delta_t);
    st->histogram = std::make_unique<HistogramBuffer>(
        delta_t, machine_.now(), histogramParams_);
    machine_.mem().bus().addLockListener(
        [st](Tick when, ContextId) {
            if (st->active)
                st->histogram->recordEvent(when);
        });
}

void
CCAuditor::monitorDivider(const AuditKey& key, unsigned slot,
                          unsigned core, Tick delta_t)
{
    checkKey(key);
    checkSlot(slot);
    if (core >= machine_.numCores())
        fatal("CC-Auditor: no divider on core ", core);
    release(slot);
    auto st = slots_[slot];
    st->active = true;
    st->target = MonitorTarget::IntegerDivider;
    trace(TraceCategory::Auditor, machine_.now(), "slot ", slot,
          " monitors divider core ", core, ", dt=", delta_t);
    st->core = core;
    st->histogram = std::make_unique<HistogramBuffer>(
        delta_t, machine_.now(), histogramParams_);
    machine_.divider(core).addWaitListener(
        [st](const WaitConflictBurst& burst) {
            if (st->active)
                st->histogram->recordBurst(burst.start, burst.count,
                                           burst.spacing);
        });
}

void
CCAuditor::monitorMultiplier(const AuditKey& key, unsigned slot,
                             unsigned core, Tick delta_t)
{
    checkKey(key);
    checkSlot(slot);
    if (core >= machine_.numCores())
        fatal("CC-Auditor: no multiplier on core ", core);
    release(slot);
    auto st = slots_[slot];
    st->active = true;
    st->target = MonitorTarget::IntegerMultiplier;
    trace(TraceCategory::Auditor, machine_.now(), "slot ", slot,
          " monitors multiplier core ", core, ", dt=", delta_t);
    st->core = core;
    st->histogram = std::make_unique<HistogramBuffer>(
        delta_t, machine_.now(), histogramParams_);
    machine_.multiplier(core).addWaitListener(
        [st](const WaitConflictBurst& burst) {
            if (st->active)
                st->histogram->recordBurst(burst.start, burst.count,
                                           burst.spacing);
        });
}

void
CCAuditor::monitorCache(const AuditKey& key, unsigned slot,
                        unsigned core, ConflictTrackerParams params)
{
    checkKey(key);
    checkSlot(slot);
    if (core >= machine_.numCores())
        fatal("CC-Auditor: no L2 cache on core ", core);
    release(slot);
    auto st = slots_[slot];
    st->active = true;
    st->target = MonitorTarget::L2Cache;
    st->core = core;
    Cache& l2 = machine_.mem().l2(core);
    st->cacheTracker = std::make_unique<ConflictMissTracker>(
        l2.geometry().numBlocks(), params);
    st->vectors = std::make_unique<ConflictVectorRegisters>();
    st->cacheTracker->addListener(
        [st](const ConflictMissEvent& ev) {
            if (st->active)
                st->vectors->record(ev);
        });
    l2.setMonitor(st->cacheTracker.get());
}

void
CCAuditor::monitorCacheIdeal(const AuditKey& key, unsigned slot,
                             unsigned core)
{
    checkKey(key);
    checkSlot(slot);
    if (core >= machine_.numCores())
        fatal("CC-Auditor: no L2 cache on core ", core);
    release(slot);
    auto st = slots_[slot];
    st->active = true;
    st->target = MonitorTarget::L2Cache;
    st->core = core;
    Cache& l2 = machine_.mem().l2(core);
    st->idealTracker = std::make_unique<LruStackTracker>(
        l2.geometry().numBlocks());
    st->vectors = std::make_unique<ConflictVectorRegisters>();
    st->idealTracker->addListener(
        [st](const ConflictMissEvent& ev) {
            if (st->active)
                st->vectors->record(ev);
        });
    l2.setMonitor(st->idealTracker.get());
}

void
CCAuditor::monitorTlb(const AuditKey& key, unsigned slot, unsigned core)
{
    checkKey(key);
    checkSlot(slot);
    if (core >= machine_.numCores())
        fatal("CC-Auditor: no TLB on core ", core);
    if (!machine_.mem().tlbEnabled())
        fatal("CC-Auditor: machine was built without TLBs "
              "(MemSystemParams::tlb.enabled)");
    release(slot);
    auto st = slots_[slot];
    st->active = true;
    st->target = MonitorTarget::Tlb;
    st->core = core;
    trace(TraceCategory::Auditor, machine_.now(), "slot ", slot,
          " monitors TLB core ", core);
    st->vectors = std::make_unique<ConflictVectorRegisters>();
    machine_.mem().tlb(core).addConflictListener(
        [st](const TlbConflict& conflict) {
            if (st->active)
                st->vectors->record(ConflictMissEvent{
                    conflict.time, conflict.replacer, conflict.victim});
        });
}

void
CCAuditor::stopMonitor(const AuditKey& key, unsigned slot)
{
    checkKey(key);
    checkSlot(slot);
    release(slot);
}

bool
CCAuditor::slotActive(unsigned slot) const
{
    checkSlot(slot);
    return slots_[slot]->active;
}

MonitorTarget
CCAuditor::slotTarget(unsigned slot) const
{
    checkSlot(slot);
    return slots_[slot]->target;
}

const char*
monitorTargetName(MonitorTarget target)
{
    // Indexed by enum value; the registry test pins each entry against
    // the corresponding UnitDescriptor::name.
    static constexpr const char* kNames[] = {
        "none", "bus", "divider", "multiplier", "cache", "tlb",
    };
    const auto idx = static_cast<std::size_t>(target);
    return idx < std::size(kNames) ? kNames[idx] : "?";
}

HistogramBuffer*
CCAuditor::histogramBuffer(unsigned slot)
{
    checkSlot(slot);
    return slots_[slot]->histogram.get();
}

ConflictVectorRegisters*
CCAuditor::vectorRegisters(unsigned slot)
{
    checkSlot(slot);
    return slots_[slot]->vectors.get();
}

ConflictMissTracker*
CCAuditor::tracker(unsigned slot)
{
    checkSlot(slot);
    return slots_[slot]->cacheTracker.get();
}

LruStackTracker*
CCAuditor::idealTracker(unsigned slot)
{
    checkSlot(slot);
    return slots_[slot]->idealTracker.get();
}

} // namespace cchunter
