/**
 * @file
 * The CC-Auditor's event-density accumulation hardware: a 32-bit Δt
 * count-down register, a 16-bit event accumulator, and a 128-entry
 * histogram buffer (paper section V-A).
 *
 * Whenever the monitored unit signals an indicator event the
 * accumulator increments; at the end of each Δt the accumulator value
 * indexes the histogram buffer (whose entry increments) and the
 * count-down register resets.  At the end of each OS time quantum the
 * software daemon snapshots and clears the buffer.
 *
 * Divider wait conflicts arrive as bursts (start, count, spacing); the
 * buffer integrates a burst across its Δt windows arithmetically so the
 * cost is proportional to the number of windows touched, not events.
 */

#ifndef CCHUNTER_AUDITOR_HISTOGRAM_BUFFER_HH
#define CCHUNTER_AUDITOR_HISTOGRAM_BUFFER_HH

#include <cstdint>
#include <vector>

#include "util/histogram.hh"
#include "util/types.hh"

namespace cchunter
{

/** Hardware sizing of one histogram-buffer channel. */
struct HistogramBufferParams
{
    std::size_t numBins = 128;  //!< histogram buffer entries
    bool saturate16 = false;    //!< model 16-bit entry saturation
};

/**
 * One monitored unit's Δt accumulator + histogram buffer.
 */
class HistogramBuffer
{
  public:
    /**
     * @param delta_t Δt window length in ticks (count-down preset).
     * @param origin Tick at which the first window starts.
     */
    HistogramBuffer(Tick delta_t, Tick origin = 0,
                    HistogramBufferParams params = {});

    /** Record a single indicator event. */
    void recordEvent(Tick when);

    /** Record a burst: `count` events at when = start + i * spacing. */
    void recordBurst(Tick start, std::uint64_t count, Tick spacing);

    /**
     * Finish all windows ending at or before `now`, bin them, and
     * return the histogram accumulated since the last snapshot.  The
     * buffer restarts with a window origin at `now`.
     */
    Histogram snapshotAndReset(Tick now);

    /** Δt in ticks. */
    Tick deltaT() const { return deltaT_; }

    /** Events recorded since construction. */
    std::uint64_t totalEvents() const { return totalEvents_; }

    /** Event increments suppressed because a window's 16-bit
     *  accumulator had already topped out (saturate16 only). */
    std::uint64_t accumulatorSaturations() const
    {
        return accumulatorSaturations_;
    }

  private:
    /** Ensure the window containing `when` exists; returns its index. */
    std::size_t windowIndex(Tick when);

    Tick deltaT_;
    Tick origin_;
    HistogramBufferParams params_;
    /** Event count per Δt window since the last snapshot. */
    std::vector<std::uint32_t> windows_;
    std::uint64_t totalEvents_ = 0;
    std::uint64_t accumulatorSaturations_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_AUDITOR_HISTOGRAM_BUFFER_HH
