#include "auditor/histogram_buffer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

/** 16-bit accumulator ceiling. */
constexpr std::uint32_t max16 = 0xffff;

} // namespace

HistogramBuffer::HistogramBuffer(Tick delta_t, Tick origin,
                                 HistogramBufferParams params)
    : deltaT_(delta_t), origin_(origin), params_(params)
{
    if (delta_t == 0)
        fatal("HistogramBuffer: delta_t must be positive");
    if (params_.numBins == 0)
        fatal("HistogramBuffer: need at least one bin");
}

std::size_t
HistogramBuffer::windowIndex(Tick when)
{
    if (when < origin_)
        panic("HistogramBuffer: event precedes window origin");
    const auto idx = static_cast<std::size_t>((when - origin_) / deltaT_);
    if (idx >= windows_.size())
        windows_.resize(idx + 1, 0);
    return idx;
}

void
HistogramBuffer::recordEvent(Tick when)
{
    auto& w = windows_[windowIndex(when)];
    if (!params_.saturate16 || w < max16)
        ++w;
    else
        ++accumulatorSaturations_;
    ++totalEvents_;
}

void
HistogramBuffer::recordBurst(Tick start, std::uint64_t count,
                             Tick spacing)
{
    if (count == 0)
        return;
    if (spacing == 0)
        spacing = 1;
    totalEvents_ += count;
    const Tick last = start + (count - 1) * spacing;
    const std::size_t first_w = windowIndex(start);
    const std::size_t last_w = windowIndex(last);
    for (std::size_t w = first_w; w <= last_w; ++w) {
        // Events with start + i*spacing in [w_begin, w_end).
        const Tick w_begin = origin_ + w * deltaT_;
        const Tick w_end = w_begin + deltaT_;
        // ceil((max(w_begin,start) - start) / spacing)
        const Tick lo = std::max(w_begin, start);
        const std::uint64_t i_lo = (lo - start + spacing - 1) / spacing;
        const std::uint64_t i_hi =
            std::min<std::uint64_t>(count, (w_end - start + spacing - 1) /
                                               spacing);
        if (i_hi <= i_lo)
            continue;
        const std::uint64_t n = i_hi - i_lo;
        auto& cell = windows_[w];
        const std::uint64_t updated = cell + n;
        if (params_.saturate16 && updated > max16) {
            accumulatorSaturations_ += updated - max16;
            cell = max16;
        } else {
            cell = static_cast<std::uint32_t>(updated);
        }
    }
}

Histogram
HistogramBuffer::snapshotAndReset(Tick now)
{
    Histogram hist(params_.numBins);
    if (now < origin_)
        panic("HistogramBuffer: snapshot before origin");
    const auto complete =
        static_cast<std::size_t>((now - origin_) / deltaT_);
    if (windows_.size() < complete)
        windows_.resize(complete, 0);
    for (std::size_t w = 0; w < complete; ++w)
        hist.addSample(windows_[w]);
    if (params_.saturate16) {
        // Clamp bin counts to the 16-bit entry width; a clamped bin is
        // flagged so downstream analyses can exclude the undercounted
        // entry from the second-distribution fit.
        Histogram clamped(params_.numBins);
        for (std::size_t b = 0; b < hist.numBins(); ++b) {
            const std::uint64_t count = hist.bin(b);
            if (count > max16) {
                clamped.addSample(b, max16);
                clamped.markSaturated(b);
            } else {
                clamped.addSample(b, count);
            }
        }
        hist = clamped;
    }
    windows_.clear();
    origin_ = now;
    return hist;
}

} // namespace cchunter
