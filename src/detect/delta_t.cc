#include "detect/delta_t.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace cchunter
{

double
alphaForResource(const ResourceTiming& timing)
{
    if (timing.maxBandwidthBps <= 0.0 || timing.minBandwidthBps <= 0.0)
        fatal("alphaForResource: bandwidths must be positive");
    if (timing.maxBandwidthBps < timing.minBandwidthBps)
        fatal("alphaForResource: max bandwidth below min bandwidth");
    if (timing.conflictsPerBit <= 0.0)
        fatal("alphaForResource: conflictsPerBit must be positive");
    // Bit times at the bandwidth extremes, in seconds.
    const double t_fast = 1.0 / timing.maxBandwidthBps;
    const double t_slow = 1.0 / timing.minBandwidthBps;
    // Geometric mean keeps Delta-t between the extremes on a log scale;
    // dividing by the burst size positions one Delta-t around one burst.
    const double ratio = std::sqrt(t_fast * t_slow) / t_fast;
    return ratio / timing.conflictsPerBit;
}

Tick
determineDeltaT(const EventTrain& train, double alpha, Tick min_dt,
                Tick max_dt)
{
    if (alpha <= 0.0)
        fatal("determineDeltaT: alpha must be positive");
    if (train.empty())
        return std::clamp<Tick>(min_dt, min_dt, max_dt);
    const double rate = train.meanRate();
    if (rate <= 0.0)
        return std::clamp<Tick>(min_dt, min_dt, max_dt);
    const double dt = alpha / rate;
    const double clamped =
        std::clamp(dt, static_cast<double>(min_dt),
                   static_cast<double>(max_dt));
    return std::max<Tick>(1, static_cast<Tick>(clamped));
}

} // namespace cchunter
