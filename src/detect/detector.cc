#include "detect/detector.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace cchunter
{

std::string
ContentionVerdict::summary() const
{
    std::ostringstream os;
    os << (detected ? "DETECTED" : "clean")
       << " likelihood=" << combined.likelihoodRatio
       << " threshold_bin=" << combined.thresholdBin
       << " burst_peak_bin=" << combined.burstPeakBin
       << " bursty_quanta=" << recurrence.burstyQuanta
       << " recurrent=" << (recurrence.recurrent ? "yes" : "no");
    return os.str();
}

std::string
OscillationVerdict::summary() const
{
    std::ostringstream os;
    os << (detected ? "DETECTED" : "clean")
       << " dominant_lag=" << analysis.dominantLag
       << " peak=" << analysis.dominantValue
       << " trough=" << analysis.deepestTrough
       << " period_score=" << analysis.periodScore
       << " events=" << analysis.seriesLength;
    return os.str();
}

bool
ContentionVerdict::detectedAt(double likelihood_threshold,
                              const PatternClusteringParams& params)
    const
{
    if (perQuantum.empty())
        return false;
    // Mirror analyzeContention's decision rule: one quantum decides on
    // its own significance, multiple quanta on recurrence.
    if (perQuantum.size() == 1)
        return combined.significantAt(likelihood_threshold,
                                      params.burst);
    return recurrence.recurrentAt(likelihood_threshold, params);
}

bool
OscillationVerdict::detectedAt(const OscillationParams& params) const
{
    return analysis.oscillatingAt(params);
}

const char*
detectBackendName(DetectBackend backend)
{
    switch (backend) {
    case DetectBackend::CCHunter:
        return "cchunter";
    case DetectBackend::Indicator2:
        return "indicator2";
    }
    return "?";
}

DetectBackend
detectBackendFromName(const std::string& name)
{
    for (const DetectBackend b :
         {DetectBackend::CCHunter, DetectBackend::Indicator2})
        if (name == detectBackendName(b))
            return b;
    fatal("unknown detect backend '", name,
          "' (valid: cchunter, indicator2)");
}

void
DetectionThresholds::validate() const
{
    for (const double t :
         {contentionLikelihood, oscillationPeak, oscillationStrongPeak,
          indicator2Threshold})
        if (t < 0.0 || t > 1.0)
            fatal("DetectionThresholds: cut-off ", t,
                  " outside [0, 1]");
}

CCHunterParams
DetectionThresholds::apply(CCHunterParams base) const
{
    validate();
    base.clustering.burst.likelihoodThreshold = contentionLikelihood;
    base.oscillation.peakThreshold = oscillationPeak;
    base.oscillation.strongPeakThreshold = oscillationStrongPeak;
    return base;
}

CCHunter::CCHunter(CCHunterParams params, ThreadPool* pool)
    : params_(params), pool_(pool)
{
}

ContentionVerdict
CCHunter::analyzeContention(const std::vector<Histogram>& quanta) const
{
    std::vector<const Histogram*> view;
    view.reserve(quanta.size());
    for (const Histogram& h : quanta)
        view.push_back(&h);
    return analyzeContention(view, nullptr);
}

ContentionVerdict
CCHunter::analyzeContention(const std::vector<const Histogram*>& quanta,
                            const Histogram* premerged) const
{
    ContentionVerdict out;
    if (quanta.empty())
        return out;

    BurstDetector detector(params_.clustering.burst);

    // Per-quantum burst scans are independent; fan them out and write
    // results by index so the output matches the serial order.
    out.perQuantum.resize(quanta.size());
    auto scanQuantum = [&](std::size_t i) {
        out.perQuantum[i] = detector.analyze(*quanta[i]);
    };
    if (pool_ && quanta.size() > 1) {
        pool_->parallelFor(quanta.size(), scanQuantum);
    } else {
        for (std::size_t i = 0; i < quanta.size(); ++i)
            scanQuantum(i);
    }
    for (const auto& ba : out.perQuantum)
        if (ba.significant)
            ++out.significantQuanta;

    if (premerged) {
        // The incrementally maintained merged histogram accumulates
        // saturation flags from every quantum it ever absorbed; the
        // fit must only exclude bins saturated within the *current*
        // window, so rebuild the mask from the window when saturation
        // is in play.  Clean windows take the zero-copy path.
        bool saturation = premerged->saturatedBins() != 0;
        for (const Histogram* h : quanta) {
            if (saturation)
                break;
            saturation = h->saturatedBins() != 0;
        }
        if (saturation) {
            Histogram merged = *premerged;
            merged.clearSaturation();
            for (const Histogram* h : quanta)
                for (std::size_t b = 0; b < h->numBins(); ++b)
                    if (h->binSaturated(b))
                        merged.markSaturated(b);
            out.combined = detector.analyze(merged);
        } else {
            out.combined = detector.analyze(*premerged);
        }
    } else {
        Histogram merged(quanta.front()->numBins());
        for (const Histogram* h : quanta)
            merged.merge(*h);
        out.combined = detector.analyze(merged);
    }

    PatternClusteringAnalyzer clusterer(params_.clustering);
    out.recurrence = clusterer.analyze(quanta, pool_);

    // A channel is flagged when significant bursts exist and recur.
    // With a single quantum of data, the per-quantum significance alone
    // decides (there is no recurrence to establish yet).
    if (quanta.size() == 1) {
        out.detected = out.combined.significant;
    } else {
        out.detected = out.recurrence.recurrent;
    }
    return out;
}

OscillationVerdict
CCHunter::analyzeOscillation(
        const std::vector<double>& label_series) const
{
    OscillationVerdict out;
    OscillationDetector detector(params_.oscillation);
    out.analysis = detector.analyze(label_series);
    out.detected = out.analysis.oscillating;
    return out;
}

OscillationVerdict
CCHunter::analyzeOscillationWindowed(
        const std::vector<double>& label_series,
        std::size_t num_windows) const
{
    if (num_windows == 0)
        fatal("analyzeOscillationWindowed: need at least one window");
    const std::size_t n = label_series.size();
    const std::size_t win = std::max<std::size_t>(1, n / num_windows);
    std::size_t windows = 0;
    while (windows < num_windows && windows * win < n)
        ++windows;
    if (windows == 0)
        return OscillationVerdict{};

    std::vector<OscillationVerdict> verdicts(windows);
    auto analyzeWindow = [&](std::size_t w) {
        const std::size_t lo = w * win;
        const std::size_t hi = std::min(n, lo + win);
        std::vector<double> sub(label_series.begin() + lo,
                                label_series.begin() + hi);
        verdicts[w] = analyzeOscillation(sub);
    };
    if (pool_ && windows > 1) {
        pool_->parallelFor(windows, analyzeWindow);
    } else {
        for (std::size_t w = 0; w < windows; ++w)
            analyzeWindow(w);
    }

    // Reduce in window order: identical selection to the serial scan.
    OscillationVerdict best;
    for (auto& v : verdicts) {
        const bool better =
            (v.detected && !best.detected) ||
            (v.detected == best.detected &&
             v.analysis.dominantValue > best.analysis.dominantValue);
        if (better)
            best = std::move(v);
    }
    return best;
}

} // namespace cchunter
