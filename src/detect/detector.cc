#include "detect/detector.hh"

#include <sstream>

#include "util/logging.hh"

namespace cchunter
{

std::string
ContentionVerdict::summary() const
{
    std::ostringstream os;
    os << (detected ? "DETECTED" : "clean")
       << " likelihood=" << combined.likelihoodRatio
       << " threshold_bin=" << combined.thresholdBin
       << " burst_peak_bin=" << combined.burstPeakBin
       << " bursty_quanta=" << recurrence.burstyQuanta
       << " recurrent=" << (recurrence.recurrent ? "yes" : "no");
    return os.str();
}

std::string
OscillationVerdict::summary() const
{
    std::ostringstream os;
    os << (detected ? "DETECTED" : "clean")
       << " dominant_lag=" << analysis.dominantLag
       << " peak=" << analysis.dominantValue
       << " trough=" << analysis.deepestTrough
       << " period_score=" << analysis.periodScore
       << " events=" << analysis.seriesLength;
    return os.str();
}

CCHunter::CCHunter(CCHunterParams params)
    : params_(params)
{
}

ContentionVerdict
CCHunter::analyzeContention(const std::vector<Histogram>& quanta) const
{
    ContentionVerdict out;
    if (quanta.empty())
        return out;

    BurstDetector detector(params_.clustering.burst);
    out.perQuantum.reserve(quanta.size());
    Histogram merged(quanta.front().numBins());
    for (const auto& h : quanta) {
        merged.merge(h);
        BurstAnalysis ba = detector.analyze(h);
        if (ba.significant)
            ++out.significantQuanta;
        out.perQuantum.push_back(std::move(ba));
    }
    out.combined = detector.analyze(merged);

    PatternClusteringAnalyzer clusterer(params_.clustering);
    out.recurrence = clusterer.analyze(quanta);

    // A channel is flagged when significant bursts exist and recur.
    // With a single quantum of data, the per-quantum significance alone
    // decides (there is no recurrence to establish yet).
    if (quanta.size() == 1) {
        out.detected = out.combined.significant;
    } else {
        out.detected = out.recurrence.recurrent;
    }
    return out;
}

OscillationVerdict
CCHunter::analyzeOscillation(
        const std::vector<double>& label_series) const
{
    OscillationVerdict out;
    OscillationDetector detector(params_.oscillation);
    out.analysis = detector.analyze(label_series);
    out.detected = out.analysis.oscillating;
    return out;
}

OscillationVerdict
CCHunter::analyzeOscillationWindowed(
        const std::vector<double>& label_series,
        std::size_t num_windows) const
{
    if (num_windows == 0)
        fatal("analyzeOscillationWindowed: need at least one window");
    OscillationVerdict best;
    const std::size_t n = label_series.size();
    const std::size_t win = std::max<std::size_t>(1, n / num_windows);
    for (std::size_t w = 0; w < num_windows; ++w) {
        const std::size_t lo = w * win;
        if (lo >= n)
            break;
        const std::size_t hi = std::min(n, lo + win);
        std::vector<double> sub(label_series.begin() + lo,
                                label_series.begin() + hi);
        OscillationVerdict v = analyzeOscillation(sub);
        const bool better =
            (v.detected && !best.detected) ||
            (v.detected == best.detected &&
             v.analysis.dominantValue > best.analysis.dominantValue);
        if (better)
            best = std::move(v);
    }
    return best;
}

} // namespace cchunter
