/**
 * @file
 * Second-moment indicator backend ("indicator2").
 *
 * Yao et al. ("Towards a Better Indicator for Cache Timing Channels")
 * argue that first-order pattern statistics — the autocorrelation and
 * likelihood-ratio indicators the classic CC-Hunter backend deploys —
 * break when the trojan randomizes its pacing or duty cycle, and
 * propose distribution-shape statistics over the event train instead.
 * This backend follows that idea on both analysis paths:
 *
 *  - Contention path: the second moment of the event-density
 *    distribution, restricted to non-idle Δt windows.  A covert sender
 *    must pack many conflict events into the windows it does use — no
 *    matter how those windows are spaced in time — so the conditional
 *    second moment E[d² | d > 0] stays large under jittered gaps,
 *    randomized duty and low-and-slow stretching, while benign sharing
 *    spreads thin (densities of a few events) and scores low.  The
 *    statistic depends only on the density histogram, making it exactly
 *    invariant under time-shift and burst re-ordering.
 *
 *  - Oscillation path: a robust second moment of the run lengths of
 *    the labelled conflict-miss series — the squared *median* run,
 *    weighted by the label balance 4p(1-p).  Communication by eviction
 *    produces long, near-uniform same-label runs (a whole group of
 *    sets conflicts, then the other group does) with near-balanced
 *    labels; benign interference yields short geometric runs; and a
 *    self-thrashing pair yields a heavy-tailed, one-sided run
 *    distribution whose few huge runs would dominate a mean-based
 *    moment but leave the median untouched.  Run lengths are indexed
 *    by event order, not wall-clock, so the statistic survives pacing
 *    jitter by construction.
 *
 * Both statistics are squashed to scores in [0, 1) via x / (x + scale),
 * so a single threshold (DetectionThresholds::indicator2Threshold)
 * sweeps ROC curves over stored results without re-simulation.  The
 * scales are per-unit calibration constants (like the Δt presets) and
 * come from the unit registry's `indicator2Scale`.
 */

#ifndef CCHUNTER_DETECT_INDICATOR2_HH
#define CCHUNTER_DETECT_INDICATOR2_HH

#include <cstddef>
#include <vector>

#include "util/histogram.hh"

namespace cchunter
{

/** Tunables of the second-moment backend. */
struct Indicator2Params
{
    /**
     * Squash scale of the contention statistic: score =
     * M2 / (M2 + contentionScale) where M2 = E[d² | d > 0] over the
     * window's merged density histogram.  M2 is expressed in the
     * unit's own density terms, so production paths override this with
     * the unit registry's per-unit `indicator2Scale` (bus bursts pack
     * tens of events per Δt window, divider bursts hundreds); the
     * default suits divider-scale densities.
     */
    double contentionScale = 500.0;

    /** Squash scale of the oscillation run-length statistic
     *  (median-run² x balance; also overridable per unit). */
    double runScale = 64.0;

    /**
     * Minimum number of non-idle Δt windows before the contention
     * statistic is trusted; fewer yields score 0 (mirrors the burst
     * detector's minNonZeroSamples floor).
     */
    std::size_t minNonZeroSamples = 4;

    /** Minimum labelled-event count of the oscillation path. */
    std::size_t minSeriesLength = 64;

    /** Fatal when a knob is out of range (named knob + value). */
    void validate() const;
};

/** Outcome of one indicator2 evaluation (either path). */
struct Indicator2Result
{
    /** Normalized score in [0, 1); compare against the threshold. */
    double score = 0.0;

    /** Raw statistic before squashing (M2, or median-run² x
     *  balance). */
    double rawStatistic = 0.0;

    /** Samples the statistic was computed from (non-idle windows or
     *  labelled events). */
    std::size_t samples = 0;

    /** Re-decide at any cut-off; `score >= threshold`. */
    bool detectedAt(double threshold) const
    {
        return score >= threshold;
    }
};

/** The second-moment analysis engine (stateless; cheap to copy). */
class Indicator2
{
  public:
    explicit Indicator2(Indicator2Params params = {});

    /** Contention path over a window of per-quantum density
     *  histograms (same input as CCHunter::analyzeContention). */
    Indicator2Result scoreContention(
        const std::vector<const Histogram*>& quanta) const;

    /** Convenience overload for owned windows. */
    Indicator2Result scoreContention(
        const std::vector<Histogram>& quanta) const;

    /** Oscillation path over a labelled conflict-miss series (same
     *  input as CCHunter::analyzeOscillation). */
    Indicator2Result scoreOscillation(
        const std::vector<double>& label_series) const;

    const Indicator2Params& params() const { return params_; }

  private:
    Indicator2Params params_;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_INDICATOR2_HH
