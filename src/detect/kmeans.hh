/**
 * @file
 * k-means clustering over dense feature vectors
 * (paper section IV-B, step five, part two).
 */

#ifndef CCHUNTER_DETECT_KMEANS_HH
#define CCHUNTER_DETECT_KMEANS_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace cchunter
{

/** Result of one k-means run. */
struct KMeansResult
{
    /** Cluster centroid per cluster. */
    std::vector<std::vector<double>> centroids;

    /** Cluster index assigned to each input point. */
    std::vector<std::size_t> assignments;

    /** Points per cluster. */
    std::vector<std::size_t> clusterSizes;

    /** Total within-cluster sum of squared distances. */
    double inertia = 0.0;

    /** Iterations executed before convergence (or the iteration cap). */
    unsigned iterations = 0;
};

/** Parameters for k-means. */
struct KMeansParams
{
    std::size_t k = 4;           //!< number of clusters
    unsigned maxIterations = 64; //!< convergence cap
    std::uint64_t seed = 42;     //!< k-means++ seeding RNG
};

/**
 * Run k-means with k-means++ initialisation on row-major points.
 * Empty clusters are re-seeded from the farthest point.
 */
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansParams& params);

/**
 * Select a cluster count in [2, max_k] by maximising the mean silhouette
 * score, and return the corresponding clustering.  Falls back to k = 1
 * when there are fewer than two distinct points.
 */
KMeansResult kmeansAuto(const std::vector<std::vector<double>>& points,
                        std::size_t max_k, std::uint64_t seed = 42);

/** Mean silhouette score of a clustering in [-1, 1]. */
double silhouetteScore(const std::vector<std::vector<double>>& points,
                       const KMeansResult& result);

/** Squared Euclidean distance between two equal-length vectors. */
double squaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

} // namespace cchunter

#endif // CCHUNTER_DETECT_KMEANS_HH
