/**
 * @file
 * k-means clustering over dense feature vectors
 * (paper section IV-B, step five, part two).
 */

#ifndef CCHUNTER_DETECT_KMEANS_HH
#define CCHUNTER_DETECT_KMEANS_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace cchunter
{

class ThreadPool;

/** Result of one k-means run. */
struct KMeansResult
{
    /** Cluster centroid per cluster. */
    std::vector<std::vector<double>> centroids;

    /** Cluster index assigned to each input point. */
    std::vector<std::size_t> assignments;

    /** Points per cluster. */
    std::vector<std::size_t> clusterSizes;

    /** Total within-cluster sum of squared distances. */
    double inertia = 0.0;

    /** Iterations executed before convergence (or the iteration cap). */
    unsigned iterations = 0;

    /** Assignments went stable before the iteration cap (early exit). */
    bool converged = false;
};

/** Parameters for k-means. */
struct KMeansParams
{
    std::size_t k = 4;           //!< number of clusters
    unsigned maxIterations = 64; //!< convergence cap
    std::uint64_t seed = 42;     //!< k-means++ seeding RNG

    /**
     * Independent k-means++ restarts; restart r seeds its own
     * Rng(seed + r) and the run with the lowest inertia wins (ties
     * break towards the lowest r).  Each restart's stream is
     * self-contained, so serial and pool-parallel execution produce
     * bit-identical results.
     */
    unsigned restarts = 1;
};

/**
 * Run k-means with k-means++ initialisation on row-major points.
 * Empty clusters are re-seeded from the farthest point.  Iteration
 * stops early once assignments are stable.  When a pool is given and
 * params.restarts > 1, restarts run concurrently.
 */
KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KMeansParams& params,
                    ThreadPool* pool = nullptr);

/**
 * Select a cluster count in [2, max_k] by maximising the mean silhouette
 * score, and return the corresponding clustering.  Falls back to k = 1
 * when there are fewer than two distinct points.  When a pool is given,
 * the candidate cluster counts are evaluated concurrently (the inner
 * kmeans runs stay serial); the selection is identical to the serial
 * scan.
 */
KMeansResult kmeansAuto(const std::vector<std::vector<double>>& points,
                        std::size_t max_k, std::uint64_t seed = 42,
                        ThreadPool* pool = nullptr,
                        unsigned restarts = 1);

/** Mean silhouette score of a clustering in [-1, 1]. */
double silhouetteScore(const std::vector<std::vector<double>>& points,
                       const KMeansResult& result);

/** Squared Euclidean distance between two equal-length vectors. */
double squaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

} // namespace cchunter

#endif // CCHUNTER_DETECT_KMEANS_HH
