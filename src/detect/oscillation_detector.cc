#include "detect/oscillation_detector.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace cchunter
{

OscillationDetector::OscillationDetector(OscillationParams params)
    : params_(params)
{
    if (params_.maxLag < 2)
        fatal("OscillationDetector: maxLag must be at least 2");
}

OscillationAnalysis
OscillationDetector::analyze(const std::vector<double>& series) const
{
    OscillationAnalysis out;
    out.seriesLength = series.size();
    out.correlogram = autocorrelogram(series, params_.maxLag);
    decideOscillation(out, params_);
    return out;
}

void
decideOscillation(OscillationAnalysis& out,
                  const OscillationParams& params)
{
    // Reset every derived field so a stored analysis can be re-decided
    // under new thresholds.
    out.peaks.clear();
    out.r1 = 0.0;
    out.dominantLag = 0;
    out.dominantValue = 0.0;
    out.deepestTrough = 0.0;
    out.periodScore = 0.0;
    out.spanFraction = 0.0;
    out.oscillating = false;
    if (out.seriesLength < params.minSeriesLength)
        return;

    out.r1 = out.correlogram.size() > 1 ? out.correlogram[1] : 0.0;
    for (std::size_t lag = 1; lag < out.correlogram.size(); ++lag)
        out.deepestTrough =
            std::min(out.deepestTrough, out.correlogram[lag]);

    out.peaks = findPeaks(out.correlogram, params.peakThreshold,
                          params.minPeakSeparation);
    if (out.peaks.empty())
        return;

    const auto strongest = std::max_element(
        out.peaks.begin(), out.peaks.end(),
        [](const AutocorrPeak& a, const AutocorrPeak& b) {
            return a.value < b.value;
        });
    out.dominantLag = strongest->lag;
    out.dominantValue = strongest->value;

    if (out.peaks.size() >= 2) {
        // Multi-peak signature: evenly spaced peaks spanning most of the
        // lag range.
        std::vector<double> spacings;
        spacings.reserve(out.peaks.size() - 1);
        for (std::size_t i = 1; i < out.peaks.size(); ++i)
            spacings.push_back(static_cast<double>(
                out.peaks[i].lag - out.peaks[i - 1].lag));
        const double mean_spacing = meanOf(spacings);
        const double sd = std::sqrt(varianceOf(spacings));
        out.periodScore = mean_spacing > 0.0 ?
            std::clamp(1.0 - sd / mean_spacing, 0.0, 1.0) : 0.0;
        // Span from the origin through the last peak: a full periodic
        // train has peaks from ~period through ~maxLag.
        out.spanFraction =
            static_cast<double>(out.peaks.back().lag) /
            static_cast<double>(params.maxLag);
        if (out.periodScore >= params.minPeriodScore &&
            out.spanFraction >= params.minSpanFraction) {
            out.oscillating = true;
        }
    }

    if (!out.oscillating) {
        // Single-strong-peak signature: one high peak plus a deep
        // negative trough near the half period (square-wave train whose
        // period fits the correlogram only once).
        if (out.dominantValue >= params.strongPeakThreshold &&
            out.deepestTrough <= -params.troughThreshold) {
            out.oscillating = true;
            // The dominant period estimate remains the strongest peak.
        }
    }
}

bool
OscillationAnalysis::oscillatingAt(const OscillationParams& params) const
{
    OscillationAnalysis copy = *this;
    decideOscillation(copy, params);
    return copy.oscillating;
}

} // namespace cchunter
