/**
 * @file
 * Autocorrelation analysis (paper section IV-D).
 *
 * Cache-based covert timing channels modulate event *latency* rather than
 * inter-event intervals; the (replacer, victim)-labelled conflict-miss
 * event train then oscillates with a period tied to the number of cache
 * sets used for transmission.  Oscillation is measured through the
 * autocorrelation coefficient of the label series with time-lagged
 * versions of itself.
 */

#ifndef CCHUNTER_DETECT_AUTOCORRELATION_HH
#define CCHUNTER_DETECT_AUTOCORRELATION_HH

#include <cstddef>
#include <vector>

#include "util/fft.hh"

namespace cchunter
{

/**
 * Autocorrelation coefficient r_p of a series at a single lag p:
 *
 *   r_p = sum_{i=1}^{n-p} (X_i - mean)(X_{i+p} - mean)
 *         / sum_{i=1}^{n} (X_i - mean)^2
 *
 * Returns 0 for degenerate inputs (p >= n or zero variance).
 */
double autocorrelationAt(const std::vector<double>& series,
                         std::size_t lag);

/**
 * An autocorrelogram: coefficients for lags 0..maxLag (inclusive).
 * r_0 is 1 by definition for a non-degenerate series.
 *
 * Dispatches between the direct O(N·L) evaluation and the FFT-based
 * O(N log N) Wiener-Khinchin evaluation: the FFT path is taken when
 * the series has at least kFftAutocorrMinSeries samples and the
 * direct op count n·(max_lag+1) reaches kFftAutocorrOpsThreshold.
 * Both paths agree within ~1e-12 per coefficient.
 */
std::vector<double> autocorrelogram(const std::vector<double>& series,
                                    std::size_t max_lag);

/** Direct O(N·L) correlogram (the dispatch fallback; also the
 *  reference implementation for verification). */
std::vector<double> autocorrelogramNaive(
    const std::vector<double>& series, std::size_t max_lag);

/** FFT-based O(N log N) correlogram via Wiener-Khinchin.  The
 *  scratch overload writes into `out` (resized to max_lag+1) reusing
 *  the caller's buffers, so repeated windows allocate nothing once
 *  the buffers reach capacity; the vector overload delegates to a
 *  thread-local scratch. */
std::vector<double> autocorrelogramFft(
    const std::vector<double>& series, std::size_t max_lag);
void autocorrelogramFft(const std::vector<double>& series,
                        std::size_t max_lag, FftScratch& scratch,
                        std::vector<double>& out);

/**
 * Correlograms of many series through one shared plan and scratch
 * arena (the fleet's per-shard batched pass).  Each series is
 * dispatched exactly as autocorrelogram() would dispatch it (naive
 * below the FFT thresholds), and each result is bit-identical to the
 * corresponding independent call — batching shares the twiddle
 * tables and buffers, never the dataflow of one series.
 */
std::vector<std::vector<double>> autocorrelogramsBatched(
    const std::vector<const std::vector<double>*>& series,
    std::size_t max_lag);

/** Minimum series length before the FFT path is considered. */
constexpr std::size_t kFftAutocorrMinSeries = 256;

/** Direct-path op count n·(max_lag+1) above which FFT wins.  Below
 *  this the padded transforms cost more than the double loop. */
constexpr std::size_t kFftAutocorrOpsThreshold = std::size_t{1} << 18;

/** A detected autocorrelogram peak. */
struct AutocorrPeak
{
    std::size_t lag = 0;  //!< lag of the local maximum
    double value = 0.0;   //!< coefficient at that lag
};

/**
 * Find local maxima of an autocorrelogram above a floor value,
 * excluding lag 0 and enforcing a minimum separation between peaks.
 */
std::vector<AutocorrPeak> findPeaks(const std::vector<double>& correlogram,
                                    double min_value,
                                    std::size_t min_separation = 8);

} // namespace cchunter

#endif // CCHUNTER_DETECT_AUTOCORRELATION_HH
