/**
 * @file
 * The CC-Hunter detection facade: the software half of the framework.
 *
 * The CC-Auditor hardware (src/auditor) produces, per OS time quantum,
 * either event-density histogram snapshots (contention channels on
 * combinational hardware) or labelled conflict-miss streams (cache
 * channels).  This facade feeds those observations through the burst /
 * recurrence and oscillation analyses and renders verdicts.
 */

#ifndef CCHUNTER_DETECT_DETECTOR_HH
#define CCHUNTER_DETECT_DETECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "detect/burst_detector.hh"
#include "detect/oscillation_detector.hh"
#include "detect/pattern_clustering.hh"
#include "util/histogram.hh"

namespace cchunter
{

/** Verdict from the contention (recurrent-burst) path. */
struct ContentionVerdict
{
    /** Burst analysis of the merged (all-quanta) histogram. */
    BurstAnalysis combined;

    /** Per-quantum burst analyses. */
    std::vector<BurstAnalysis> perQuantum;

    /** Recurrence analysis over the quanta window. */
    PatternClusteringResult recurrence;

    /** Number of quanta whose own histogram was burst-significant. */
    std::size_t significantQuanta = 0;

    /** Covert timing channel likely present on this resource. */
    bool detected = false;

    /**
     * Re-evaluate the verdict at a different likelihood-ratio cut-off
     * from the stored analyses (no re-clustering, no histogram
     * re-scan).  `detectedAt(params.burst.likelihoodThreshold, params)`
     * equals `detected` for the params the analysis ran under; ROC
     * sweeps call this across a threshold grid.
     */
    bool detectedAt(double likelihood_threshold,
                    const PatternClusteringParams& params = {}) const;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

/** Verdict from the oscillation (cache-channel) path. */
struct OscillationVerdict
{
    OscillationAnalysis analysis;

    /** Covert timing channel likely present on this resource. */
    bool detected = false;

    /** Re-evaluate the verdict under different oscillation thresholds
     *  from the stored correlogram (see OscillationAnalysis). */
    bool detectedAt(const OscillationParams& params) const;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

/** Configuration of a full CC-Hunter software instance. */
struct CCHunterParams
{
    PatternClusteringParams clustering;
    OscillationParams oscillation;
};

/**
 * Which analysis backend renders the final verdict.  CCHunter is the
 * classic recurrent-burst / autocorrelation pipeline; Indicator2 is
 * the second-moment backend (detect/indicator2.hh) built to survive
 * evasive senders.  Both run from the same auditor observations, so a
 * scenario can score either (or both) without re-simulation.
 */
enum class DetectBackend : std::uint8_t
{
    CCHunter,
    Indicator2,
};

/** Short lower-case backend name ("cchunter", "indicator2"). */
const char* detectBackendName(DetectBackend backend);

/** Parse a backend name; fatal on an unknown one, listing the valid
 *  names. */
DetectBackend detectBackendFromName(const std::string& name);

/**
 * The decision cut-offs of both analysis paths in one plumbable
 * struct, defaulted to the paper's values: likelihood ratio >= 0.5
 * flags a contention channel (real channels score >= 0.9, benign
 * programs < 0.5), and the oscillation path keeps its published peak
 * thresholds.  Scenario harnesses carry one of these instead of
 * hard-coding 0.5, which is what lets the detection-quality subsystem
 * sweep full ROC curves through otherwise-identical runs.
 */
struct DetectionThresholds
{
    /** Likelihood-ratio cut-off of the recurrent-burst path. */
    double contentionLikelihood = 0.5;

    /** Minimum autocorrelogram peak of the oscillation path. */
    double oscillationPeak = 0.35;

    /** Single-strong-peak cut-off of the oscillation path. */
    double oscillationStrongPeak = 0.6;

    /** Backend whose decision becomes the unit verdict. */
    DetectBackend backend = DetectBackend::CCHunter;

    /** Score cut-off of the indicator2 backend (both paths). */
    double indicator2Threshold = 0.5;

    /** Fatal when any threshold lies outside [0, 1]. */
    void validate() const;

    /** Copy of `base` with every cut-off replaced by this struct's. */
    CCHunterParams apply(CCHunterParams base = {}) const;
};

/**
 * The CC-Hunter analysis engine.
 *
 * analyzeContention() consumes per-quantum event-density histograms for
 * one monitored combinational resource; analyzeOscillation() consumes
 * the labelled conflict-miss series for a monitored cache.
 */
class CCHunter
{
  public:
    /**
     * An optional thread pool fans out the independent pieces of each
     * analysis (per-quantum burst scans, k-means candidate counts,
     * oscillation sub-windows).  Results are identical to the serial
     * path; the pool must outlive the hunter.
     */
    explicit CCHunter(CCHunterParams params = {},
                      ThreadPool* pool = nullptr);

    /** Run the recurrent-burst pipeline over a window of quanta. */
    ContentionVerdict analyzeContention(
        const std::vector<Histogram>& quanta) const;

    /**
     * Pointer-view overload for streaming callers whose window lives
     * in a ring buffer.  When @p premerged is given it is taken as the
     * already-maintained bin-wise sum of the window (the daemon keeps
     * it incrementally, add-on-drain / subtract-on-evict) and the
     * O(window) re-merge is skipped; passing nullptr recomputes the
     * merged histogram from scratch (the legacy path, kept for
     * equivalence checks).
     */
    ContentionVerdict analyzeContention(
        const std::vector<const Histogram*>& quanta,
        const Histogram* premerged = nullptr) const;

    /** Run the oscillation pipeline over a labelled event series. */
    OscillationVerdict analyzeOscillation(
        const std::vector<double>& label_series) const;

    /**
     * Run the oscillation pipeline over sub-windows of the series and
     * report the strongest verdict.  Fine-grained windows improve the
     * detection probability of low-bandwidth channels (paper VI-A).
     *
     * @param label_series Full labelled event series.
     * @param num_windows Number of equal sub-windows to analyse.
     */
    OscillationVerdict analyzeOscillationWindowed(
        const std::vector<double>& label_series,
        std::size_t num_windows) const;

    const CCHunterParams& params() const { return params_; }

  private:
    CCHunterParams params_;
    ThreadPool* pool_ = nullptr;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_DETECTOR_HH
