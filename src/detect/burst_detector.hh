/**
 * @file
 * Recurrent-burst detection over event-density histograms
 * (paper section IV-B, steps three and four).
 *
 * A bursty train produces a bimodal density histogram: a non-burst
 * distribution whose mean density is below 1.0 and a burst distribution
 * in the right tail whose mean exceeds 1.0.  The two are separated at the
 * *threshold density* — the first bin smaller than its predecessor and
 * not larger than its successor — and the burst distribution's
 * significance is measured by its likelihood ratio (samples in the burst
 * distribution over all samples, bin 0 excluded).
 */

#ifndef CCHUNTER_DETECT_BURST_DETECTOR_HH
#define CCHUNTER_DETECT_BURST_DETECTOR_HH

#include <cstddef>
#include <optional>

#include "util/histogram.hh"

namespace cchunter
{

/** Tunable thresholds for burst detection. */
struct BurstDetectorParams
{
    /**
     * Likelihood ratio above which the burst distribution is considered
     * significant.  The paper observes >= 0.9 for real channels and
     * < 0.5 for benign programs, and sets a conservative 0.5 cut-off.
     */
    double likelihoodThreshold = 0.5;

    /**
     * When no interior valley exists, the threshold falls back to the
     * first bin where the smoothed downward slope flattens to below
     * this fraction of the curve's peak beyond bin 0.
     */
    double gentleSlopeFraction = 0.01;

    /**
     * A local minimum of the fitted (smoothed) curve only separates
     * "two distinct distributions" when it is a genuine valley: its
     * value must not exceed this fraction of the largest smoothed
     * count at any later bin.  This rejects sawtooth artefacts in a
     * monotonically decaying (benign) contention histogram.
     */
    double valleyDepthRatio = 0.5;

    /** Minimum mean density for a valid burst (second) distribution. */
    double minBurstMean = 1.0;

    /**
     * Minimum non-idle samples (Δt windows with at least one event)
     * for a likelihood ratio to be meaningful.  A histogram with a
     * handful of contended windows carries too little evidence to call
     * a burst distribution significant.
     */
    std::uint64_t minNonZeroSamples = 8;
};

/** Outcome of analysing one event-density histogram. */
struct BurstAnalysis
{
    /** Separating bin between non-burst and burst distributions. */
    std::size_t thresholdBin = 0;

    /** True when a distinct second (burst) distribution exists. */
    bool hasSecondDistribution = false;

    /** Likelihood ratio of the burst distribution (bin 0 excluded). */
    double likelihoodRatio = 0.0;

    /** Mean density of the non-burst distribution (bins < threshold). */
    double nonBurstMean = 0.0;

    /** Mean density of the burst distribution (bins >= threshold). */
    double burstMean = 0.0;

    /** Peak (most populated) bin of the burst distribution. */
    std::size_t burstPeakBin = 0;

    /** First and last non-empty bins of the burst distribution. */
    std::size_t burstFirstBin = 0;
    std::size_t burstLastBin = 0;

    /** Total samples in the burst distribution. */
    std::uint64_t burstSamples = 0;

    /** Total samples excluding bin 0. */
    std::uint64_t nonZeroSamples = 0;

    /** True when the burst distribution passes the likelihood test. */
    bool significant = false;

    /**
     * Re-evaluate significance at a different likelihood-ratio cut-off
     * without re-analysing the histogram: the stored evidence (second
     * distribution, sample floor) is threshold-independent, only the
     * ratio test moves.  `significantAt(params.likelihoodThreshold)`
     * equals `significant` for the params the analysis ran under.
     * ROC sweeps use this to score one analysis at many thresholds.
     */
    bool significantAt(double likelihood_threshold,
                       const BurstDetectorParams& params = {}) const;

    /**
     * Bins excluded from the second-distribution fit because their
     * 16-bit hardware entry saturated (the recorded count is only a
     * floor).  0 on a clean histogram; when non-zero the burst/non-
     * burst statistics above were computed over the trusted bins only.
     */
    std::size_t saturatedBins = 0;
};

/**
 * Detects burst (contention-cluster) patterns in density histograms.
 */
class BurstDetector
{
  public:
    explicit BurstDetector(BurstDetectorParams params = {});

    /** Analyse one event-density histogram. */
    BurstAnalysis analyze(const Histogram& hist) const;

    /**
     * Locate the threshold density bin for a histogram: the first
     * genuine valley of the fitted (smoothed) curve — smaller than its
     * predecessor, not larger than its successor, and well below the
     * remaining right-tail mass — with the gentle-slope rule as the
     * fallback.  Returns std::nullopt when the histogram has no
     * samples beyond bin 0.
     */
    std::optional<std::size_t> thresholdDensity(const Histogram& hist)
        const;

    const BurstDetectorParams& params() const { return params_; }

  private:
    BurstDetectorParams params_;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_BURST_DETECTOR_HH
