/**
 * @file
 * Discretization of event-density histograms into symbol strings
 * (paper section IV-B, step five, part one).
 *
 * Each per-quantum histogram is rendered as a fixed-length string of
 * symbols, one per bin, where the symbol encodes the bin count on a
 * logarithmic scale.  Strings abstract away small count fluctuations so
 * that k-means clustering groups quanta with the same burst signature.
 */

#ifndef CCHUNTER_DETECT_DISCRETIZER_HH
#define CCHUNTER_DETECT_DISCRETIZER_HH

#include <string>
#include <vector>

#include "util/histogram.hh"

namespace cchunter
{

/** Parameters for histogram discretization. */
struct DiscretizerParams
{
    /** Number of distinct symbols (log-scale levels). */
    unsigned alphabetSize = 8;
};

/**
 * Converts histograms to symbol strings and numeric feature vectors.
 */
class HistogramDiscretizer
{
  public:
    explicit HistogramDiscretizer(DiscretizerParams params = {});

    /**
     * Discretize a histogram into a string with one character per bin.
     * Character '0' + level, level = min(alphabet-1, floor(log2(c + 1))).
     */
    std::string toString(const Histogram& hist) const;

    /**
     * Numeric feature embedding of the same discretization, suitable for
     * k-means (one dimension per bin, values 0..alphabetSize-1).
     */
    std::vector<double> toFeatures(const Histogram& hist) const;

    /** Symbol level for a single bin count. */
    unsigned levelOf(std::uint64_t count) const;

    /** Hamming distance between two equal-length symbol strings. */
    static std::size_t hammingDistance(const std::string& a,
                                       const std::string& b);

    const DiscretizerParams& params() const { return params_; }

  private:
    DiscretizerParams params_;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_DISCRETIZER_HH
