/**
 * @file
 * Oscillatory-pattern detection on labelled conflict-miss event trains
 * (paper section IV-D).
 *
 * An oscillation is inferred when the autocorrelogram of the label
 * series shows significant periodicity with sufficiently high peaks.
 * Two signatures are accepted:
 *   - multiple evenly spaced peaks covering a substantial share of the
 *     lag range (channels whose period fits several times into the
 *     correlogram, e.g. few cache sets), and
 *   - a single strong peak accompanied by a deep negative trough near
 *     the half period (square-wave-like trains whose period fits only
 *     once, e.g. 512 sets with a 1000-lag correlogram).
 * Brief local wiggles (e.g. the webserver pair's transient periodicity
 * between lags 120 and 180) fail the span requirement and are ignored.
 */

#ifndef CCHUNTER_DETECT_OSCILLATION_DETECTOR_HH
#define CCHUNTER_DETECT_OSCILLATION_DETECTOR_HH

#include <cstddef>
#include <vector>

#include "detect/autocorrelation.hh"

namespace cchunter
{

/** Tunable thresholds for oscillation detection. */
struct OscillationParams
{
    /** Highest lag evaluated in the autocorrelogram. */
    std::size_t maxLag = 1000;

    /** Minimum coefficient for a local maximum to count as a peak. */
    double peakThreshold = 0.35;

    /** Minimum coefficient for the single-peak signature. */
    double strongPeakThreshold = 0.6;

    /** Minimum |negative| trough accompanying a single strong peak. */
    double troughThreshold = 0.2;

    /** Minimum spacing regularity (1 - cv of peak spacings). */
    double minPeriodScore = 0.7;

    /** Peaks must span at least this fraction of the lag range. */
    double minSpanFraction = 0.4;

    /** Minimum events in the train for a meaningful analysis. */
    std::size_t minSeriesLength = 64;

    /** Minimum separation between detected peaks. */
    std::size_t minPeakSeparation = 8;
};

/** Outcome of oscillation analysis on one label series. */
struct OscillationAnalysis
{
    /** Autocorrelation coefficients for lags 0..maxLag. */
    std::vector<double> correlogram;

    /** Detected peaks (lag > 0). */
    std::vector<AutocorrPeak> peaks;

    /** r_1, the lag-1 coefficient (non-randomness indicator). */
    double r1 = 0.0;

    /** Lag of the strongest peak (0 when none). */
    std::size_t dominantLag = 0;

    /** Coefficient at the dominant lag. */
    double dominantValue = 0.0;

    /** Deepest (most negative) coefficient over all lags. */
    double deepestTrough = 0.0;

    /** Spacing-regularity score in [0, 1] (multi-peak signature). */
    double periodScore = 0.0;

    /** Fraction of the lag range covered by the peak sequence. */
    double spanFraction = 0.0;

    /** Number of events analysed. */
    std::size_t seriesLength = 0;

    /** Final verdict: the train oscillates. */
    bool oscillating = false;

    /**
     * Re-evaluate the verdict under different thresholds from the
     * stored correlogram (peaks are re-found; no series re-scan).
     * `oscillatingAt(params)` equals `oscillating` for the params the
     * analysis ran under; ROC sweeps call this across a peak-threshold
     * grid.
     */
    bool oscillatingAt(const OscillationParams& params) const;
};

/**
 * Fill every decision field of an analysis (peaks, dominant lag/value,
 * trough, period/span scores, verdict) from its correlogram and
 * seriesLength — the second half of OscillationDetector::analyze,
 * exposed so stored correlograms can be re-decided under different
 * thresholds.
 */
void decideOscillation(OscillationAnalysis& analysis,
                       const OscillationParams& params);

/**
 * Detects oscillatory patterns in labelled event trains.
 */
class OscillationDetector
{
  public:
    explicit OscillationDetector(OscillationParams params = {});

    /** Analyse a label series (one value per conflict-miss event). */
    OscillationAnalysis analyze(const std::vector<double>& series) const;

    const OscillationParams& params() const { return params_; }

  private:
    OscillationParams params_;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_OSCILLATION_DETECTOR_HH
