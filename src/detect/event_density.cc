#include "detect/event_density.hh"

#include "util/logging.hh"

namespace cchunter
{

std::vector<std::uint32_t>
eventDensitySeries(const EventTrain& train, Tick delta_t)
{
    if (delta_t == 0)
        fatal("eventDensitySeries: delta_t must be positive");
    const Tick begin = train.windowBegin();
    const Tick end = train.windowEnd();
    std::vector<std::uint32_t> out;
    if (end <= begin)
        return out;
    const Tick span = end - begin;
    const std::size_t n_windows =
        static_cast<std::size_t>((span + delta_t - 1) / delta_t);
    out.assign(n_windows, 0);
    for (const auto& e : train.events()) {
        if (e.time < begin || e.time >= end)
            continue;
        const std::size_t idx =
            static_cast<std::size_t>((e.time - begin) / delta_t);
        ++out[idx];
    }
    return out;
}

Histogram
buildEventDensityHistogram(const EventTrain& train, Tick delta_t,
                           std::size_t num_bins)
{
    Histogram hist(num_bins);
    for (auto density : eventDensitySeries(train, delta_t))
        hist.addSample(density);
    return hist;
}

} // namespace cchunter
