#include "detect/pattern_clustering.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

std::size_t
PatternClusteringResult::burstyQuantaAt(
        double likelihood_threshold,
        const BurstDetectorParams& burst) const
{
    std::size_t quanta = 0;
    for (std::size_t c = 0; c < clusterAnalyses.size(); ++c) {
        if (clusterAnalyses[c].significantAt(likelihood_threshold,
                                             burst))
            quanta += clustering.clusterSizes[c];
    }
    return quanta;
}

bool
PatternClusteringResult::recurrentAt(
        double likelihood_threshold,
        const PatternClusteringParams& params) const
{
    const std::size_t total = clustering.assignments.size();
    if (total == 0)
        return false;
    const std::size_t bursty =
        burstyQuantaAt(likelihood_threshold, params.burst);
    const double fraction =
        static_cast<double>(bursty) / static_cast<double>(total);
    return bursty >= params.minRecurrentQuanta &&
           fraction >= params.minRecurrentFraction;
}

PatternClusteringAnalyzer::PatternClusteringAnalyzer(
        PatternClusteringParams params)
    : params_(params)
{
    if (params_.windowQuanta == 0)
        fatal("PatternClusteringAnalyzer: windowQuanta must be positive");
    if (params_.maxClusters < 2)
        fatal("PatternClusteringAnalyzer: need at least 2 max clusters");
}

PatternClusteringResult
PatternClusteringAnalyzer::analyze(
        const std::vector<Histogram>& quanta, ThreadPool* pool) const
{
    std::vector<const Histogram*> view;
    view.reserve(quanta.size());
    for (const Histogram& h : quanta)
        view.push_back(&h);
    return analyze(view, pool);
}

PatternClusteringResult
PatternClusteringAnalyzer::analyze(
        const std::vector<const Histogram*>& quanta,
        ThreadPool* pool) const
{
    PatternClusteringResult out;
    if (quanta.empty())
        return out;

    // Limit the window to the most recent quanta so that long idle
    // periods do not dilute the significance of the histograms involved
    // in covert communication.
    const std::size_t first =
        quanta.size() > params_.windowQuanta ?
        quanta.size() - params_.windowQuanta : 0;
    std::vector<const Histogram*> window(
        quanta.begin() + static_cast<std::ptrdiff_t>(first),
        quanta.end());

    // Step 1: discretize histograms into strings / feature vectors.
    HistogramDiscretizer disc(params_.discretizer);
    std::vector<std::vector<double>> features;
    features.reserve(window.size());
    out.strings.reserve(window.size());
    for (const Histogram* h : window) {
        out.strings.push_back(disc.toString(*h));
        features.push_back(disc.toFeatures(*h));
    }

    // Step 1b (optional): feature-dimension reduction.  Most of the
    // 128 bins never vary across quanta; clustering on the top-variance
    // bins gives the same assignments at a fraction of the cost.
    if (params_.maxFeatureDims != 0 && !features.empty() &&
        features[0].size() > params_.maxFeatureDims) {
        const std::size_t dims = features[0].size();
        std::vector<double> mean(dims, 0.0), var(dims, 0.0);
        for (const auto& f : features)
            for (std::size_t d = 0; d < dims; ++d)
                mean[d] += f[d];
        for (auto& m : mean)
            m /= static_cast<double>(features.size());
        for (const auto& f : features)
            for (std::size_t d = 0; d < dims; ++d)
                var[d] += (f[d] - mean[d]) * (f[d] - mean[d]);
        std::vector<std::size_t> order(dims);
        for (std::size_t d = 0; d < dims; ++d)
            order[d] = d;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (var[a] != var[b])
                          return var[a] > var[b];
                      return a < b;
                  });
        for (std::size_t i = 0;
             i < params_.maxFeatureDims && var[order[i]] > 0.0; ++i)
            out.featureDims.push_back(order[i]);
        std::sort(out.featureDims.begin(), out.featureDims.end());
        if (!out.featureDims.empty()) {
            std::vector<std::vector<double>> reduced;
            reduced.reserve(features.size());
            for (const auto& f : features) {
                std::vector<double> r;
                r.reserve(out.featureDims.size());
                for (std::size_t d : out.featureDims)
                    r.push_back(f[d]);
                reduced.push_back(std::move(r));
            }
            features = std::move(reduced);
        }
    }

    // Step 2: aggregate similar strings with k-means.
    out.clustering = kmeansAuto(features, params_.maxClusters,
                                params_.seed, pool,
                                params_.kmeansRestarts);
    const std::size_t k = out.clustering.centroids.size();
    if (k == 0)
        return out;

    // Step 3: analyse each cluster's merged histogram for bursts.
    BurstDetector detector(params_.burst);
    std::vector<Histogram> merged(
        k, Histogram(window.front()->numBins()));
    for (std::size_t i = 0; i < window.size(); ++i)
        merged[out.clustering.assignments[i]].merge(*window[i]);

    out.clusterAnalyses.reserve(k);
    out.clusterBursty.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
        BurstAnalysis ba = detector.analyze(merged[c]);
        out.clusterBursty.push_back(ba.significant);
        if (ba.significant) {
            out.burstyQuanta += out.clustering.clusterSizes[c];
            out.maxLikelihoodRatio =
                std::max(out.maxLikelihoodRatio, ba.likelihoodRatio);
        }
        out.clusterAnalyses.push_back(std::move(ba));
    }

    out.burstyFraction =
        static_cast<double>(out.burstyQuanta) /
        static_cast<double>(window.size());
    out.recurrent =
        out.burstyQuanta >= params_.minRecurrentQuanta &&
        out.burstyFraction >= params_.minRecurrentFraction;
    return out;
}

} // namespace cchunter
