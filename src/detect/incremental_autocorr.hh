/**
 * @file
 * Incremental sliding-window autocorrelation (paper section IV-D math
 * maintained the way PR 2 maintained histograms: update-on-append,
 * downdate-on-evict).
 *
 * The daemon's end-of-run oscillation verdict needs the correlogram
 * of the full retained label window; recomputing it per analysis
 * costs O(N log N) in the window length.  This maintainer tracks the
 * raw lag products
 *
 *   sumXY[p] = sum_i x_i * x_{i+p},   p = 0..maxLag
 *
 * plus the running sum S and sum of squares Q over its own ring, at
 * O(maxLag) per pushed sample, and reconstructs the mean-centred
 * correlogram in O(maxLag) per query:
 *
 *   num[p] = sumXY[p] - mu*(head(p) + tail(p)) + (n-p)*mu^2
 *   den    = Q - 2*mu*S + n*mu^2
 *   r_p    = num[p] / den
 *
 * where head(p)/tail(p) are the sums of the first/last n-p samples
 * (recovered from two prefix scans over at most maxLag boundary
 * samples).  For the binary 0/1 label series the daemon feeds it,
 * every maintained sum is an exact integer, so the only deviation
 * from a full recompute is the final-expression rounding —
 * property-tested within 1e-9 against the reference correlogram.
 */

#ifndef CCHUNTER_DETECT_INCREMENTAL_AUTOCORR_HH
#define CCHUNTER_DETECT_INCREMENTAL_AUTOCORR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cchunter
{

/**
 * Sliding-window autocorrelation state over the most recent
 * `capacity` samples.
 */
class IncrementalAutocorrelation
{
  public:
    /** max_lag >= 2 (the detector's own floor); capacity > max_lag
     *  makes the window meaningful but is not required. */
    IncrementalAutocorrelation(std::size_t max_lag,
                               std::size_t capacity);

    /** Append a sample, evicting the oldest once at capacity.
     *  O(min(maxLag, size)). */
    void push(double x);

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t maxLag() const { return maxLag_; }

    /** Samples evicted so far. */
    std::uint64_t evictions() const { return evictions_; }

    /**
     * Mean-centred correlogram for lags 0..max_lag (max_lag <=
     * maxLag()), matching autocorrelogram(window, max_lag) within
     * 1e-9: zeros for fewer than 2 samples or a zero-variance window,
     * r_0 = 1 otherwise.  O(max_lag); no allocation once `out` has
     * capacity.
     */
    void correlogram(std::size_t max_lag,
                     std::vector<double>& out) const;
    std::vector<double> correlogram(std::size_t max_lag) const;

  private:
    double at(std::size_t i) const
    {
        return ring_[(head_ + i) % capacity_];
    }
    void evictFront();

    std::size_t maxLag_ = 0;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t evictions_ = 0;
    double sum_ = 0.0;   //!< S  = sum of the window
    double sumSq_ = 0.0; //!< Q  = sum of squares
    std::vector<double> ring_;
    std::vector<double> sumXY_; //!< raw lag products, 0..maxLag

    // Query-time prefix scans (first/last boundary sums); members so
    // a steady-state query allocates nothing.
    mutable std::vector<double> firstPrefix_;
    mutable std::vector<double> lastPrefix_;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_INCREMENTAL_AUTOCORR_HH
