/**
 * @file
 * Determination of the event-density observation interval Δt
 * (paper section IV-B, algorithm step one).
 *
 * Δt is the product of the inverse of the average event rate and an
 * empirical constant α derived from the maximum and minimum achievable
 * covert-channel bandwidths on the monitored hardware.  α tempers Δt so
 * that it is neither so small that densities degenerate to a Poisson
 * process nor so large that they approach a normal distribution.
 */

#ifndef CCHUNTER_DETECT_DELTA_T_HH
#define CCHUNTER_DETECT_DELTA_T_HH

#include "detect/event_train.hh"
#include "util/types.hh"

namespace cchunter
{

/**
 * Parameters describing a monitored shared-hardware resource, used to
 * derive the α constant.
 */
struct ResourceTiming
{
    /** Conflicts/second required to reliably signal one bit at the
     *  maximum achievable channel bandwidth. */
    double maxBandwidthBps = 1000.0;
    /** Lowest bandwidth considered a feasible channel (TCSEC: 0.1 bps). */
    double minBandwidthBps = 0.1;
    /** Typical number of back-to-back conflict events needed to signal
     *  one bit reliably on this resource. */
    double conflictsPerBit = 20.0;
};

/**
 * Compute the α tempering constant for a resource.
 *
 * α is chosen so that, at the maximum channel bandwidth, one Δt window
 * spans roughly one bit's worth of conflict events: the geometric mean of
 * the max- and min-bandwidth bit times measured in conflict events,
 * normalised by the conflicts-per-bit burst size.
 */
double alphaForResource(const ResourceTiming& timing);

/**
 * Determine Δt for an event train: (1 / mean event rate) * α.
 *
 * @param train Event train with a valid observation window.
 * @param alpha Empirical tempering constant (see alphaForResource()).
 * @param min_dt Lower clamp (hardware countdown granularity).
 * @param max_dt Upper clamp (window must contain many Δt's).
 * @return Interval length in ticks; at least 1.
 */
Tick determineDeltaT(const EventTrain& train, double alpha,
                     Tick min_dt = 1, Tick max_dt = maxTick);

} // namespace cchunter

#endif // CCHUNTER_DETECT_DELTA_T_HH
