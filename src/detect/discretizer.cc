#include "detect/discretizer.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace cchunter
{

HistogramDiscretizer::HistogramDiscretizer(DiscretizerParams params)
    : params_(params)
{
    if (params_.alphabetSize < 2)
        fatal("HistogramDiscretizer: alphabet must have >= 2 symbols");
    if (params_.alphabetSize > 64)
        fatal("HistogramDiscretizer: alphabet too large");
}

unsigned
HistogramDiscretizer::levelOf(std::uint64_t count) const
{
    // floor(log2(count + 1)): 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
    const unsigned level =
        count == 0 ? 0u
                   : static_cast<unsigned>(std::bit_width(count + 1) - 1);
    return std::min(level, params_.alphabetSize - 1);
}

std::string
HistogramDiscretizer::toString(const Histogram& hist) const
{
    std::string out;
    out.reserve(hist.numBins());
    for (std::size_t i = 0; i < hist.numBins(); ++i)
        out.push_back(static_cast<char>('0' + levelOf(hist.bin(i))));
    return out;
}

std::vector<double>
HistogramDiscretizer::toFeatures(const Histogram& hist) const
{
    std::vector<double> out;
    out.reserve(hist.numBins());
    for (std::size_t i = 0; i < hist.numBins(); ++i)
        out.push_back(static_cast<double>(levelOf(hist.bin(i))));
    return out;
}

std::size_t
HistogramDiscretizer::hammingDistance(const std::string& a,
                                      const std::string& b)
{
    if (a.size() != b.size())
        fatal("hammingDistance: length mismatch");
    std::size_t d = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            ++d;
    return d;
}

} // namespace cchunter
