#include "detect/indicator2.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

void
Indicator2Params::validate() const
{
    if (contentionScale <= 0.0)
        fatal("Indicator2Params: contention_scale ", contentionScale,
              " must be positive");
    if (runScale <= 0.0)
        fatal("Indicator2Params: run_scale ", runScale,
              " must be positive");
}

namespace
{

/** x / (x + scale): monotone squash of [0, inf) onto [0, 1). */
double
squash(double x, double scale)
{
    if (x <= 0.0)
        return 0.0;
    return x / (x + scale);
}

} // namespace

Indicator2::Indicator2(Indicator2Params params) : params_(params)
{
    params_.validate();
}

Indicator2Result
Indicator2::scoreContention(
    const std::vector<const Histogram*>& quanta) const
{
    Indicator2Result out;
    if (quanta.empty())
        return out;

    // Conditional second moment E[d² | d > 0] over the merged window:
    // bin b holds the number of Δt windows that saw exactly b events,
    // so Σ b²·c_b / Σ c_b (b >= 1) measures how hard the busy windows
    // were driven, independent of how many idle windows separate them.
    double weighted = 0.0;
    std::uint64_t busy = 0;
    for (const Histogram* h : quanta) {
        for (std::size_t b = 1; b < h->numBins(); ++b) {
            const std::uint64_t c = h->bin(b);
            if (c == 0)
                continue;
            weighted += static_cast<double>(b) *
                        static_cast<double>(b) *
                        static_cast<double>(c);
            busy += c;
        }
    }
    out.samples = static_cast<std::size_t>(busy);
    if (busy < params_.minNonZeroSamples)
        return out;
    out.rawStatistic = weighted / static_cast<double>(busy);
    out.score = squash(out.rawStatistic, params_.contentionScale);
    return out;
}

Indicator2Result
Indicator2::scoreContention(const std::vector<Histogram>& quanta) const
{
    std::vector<const Histogram*> view;
    view.reserve(quanta.size());
    for (const Histogram& h : quanta)
        view.push_back(&h);
    return scoreContention(view);
}

Indicator2Result
Indicator2::scoreOscillation(
    const std::vector<double>& label_series) const
{
    Indicator2Result out;
    out.samples = label_series.size();
    if (label_series.size() < params_.minSeriesLength)
        return out;

    // Robust second moment of the same-label run lengths, in event
    // order: the squared *median* run, weighted by the label balance.
    // Group-wise eviction produces long, near-uniform alternating runs
    // (the median run IS the signalling period), benign interference
    // produces short geometric runs (median 1-3), and self-thrashing
    // workloads produce a heavy tail — a few huge one-sided runs over
    // a sea of singletons — that would dominate a mean-based moment
    // but leaves the median untouched.
    std::vector<std::size_t> runs;
    std::size_t ones = 0;
    std::size_t runLen = 1;
    auto labelOf = [](double v) { return v >= 0.5; };
    ones += labelOf(label_series.front()) ? 1 : 0;
    for (std::size_t i = 1; i < label_series.size(); ++i) {
        const bool cur = labelOf(label_series[i]);
        ones += cur ? 1 : 0;
        if (cur == labelOf(label_series[i - 1])) {
            ++runLen;
            continue;
        }
        runs.push_back(runLen);
        runLen = 1;
    }
    runs.push_back(runLen);

    // Upper median (deterministic for even counts).
    const std::size_t mid = runs.size() / 2;
    std::nth_element(runs.begin(), runs.begin() + mid, runs.end());
    const double median = static_cast<double>(runs[mid]);

    const double n = static_cast<double>(label_series.size());
    const double p = static_cast<double>(ones) / n;
    // 4p(1-p) is 1 for balanced labels and 0 for one-sided series;
    // it suppresses degenerate all-hit / all-miss workloads whose
    // single huge run is not communication.
    const double balance = 4.0 * p * (1.0 - p);
    out.rawStatistic = median * median * balance;
    out.score = squash(out.rawStatistic, params_.runScale);
    return out;
}

} // namespace cchunter
