#include "detect/kmeans.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/logging.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace cchunter
{

double
squaredDistance(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.size() != b.size())
        fatal("squaredDistance: dimension mismatch");
    // The shim's fixed 4-lane reduction tree: identical result on the
    // vector and scalar backends (this feeds every assignment sweep,
    // the k-means++ seeding and silhouetteScore).
    return simd::squaredDistance(a.data(), b.data(), a.size());
}

namespace
{

/** k-means++ seeding. */
std::vector<std::vector<double>>
seedCentroids(const std::vector<std::vector<double>>& points,
              std::size_t k, Rng& rng)
{
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    centroids.push_back(points[rng.nextBelow(points.size())]);
    std::vector<double> dist2(points.size(),
                              std::numeric_limits<double>::infinity());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            dist2[i] = std::min(
                dist2[i], squaredDistance(points[i], centroids.back()));
            total += dist2[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; duplicate.
            centroids.push_back(points[rng.nextBelow(points.size())]);
            continue;
        }
        double target = rng.nextDouble() * total;
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= dist2[i];
            if (target <= 0.0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }
    return centroids;
}

/** One complete k-means run from a single seed. */
KMeansResult
runFromSeed(const std::vector<std::vector<double>>& points,
            std::size_t k, std::size_t dim, unsigned max_iterations,
            std::uint64_t seed)
{
    KMeansResult result;
    Rng rng(seed);
    result.centroids = seedCentroids(points, k, rng);
    result.assignments.assign(points.size(), 0);

    for (unsigned iter = 0; iter < max_iterations; ++iter) {
        result.iterations = iter + 1;
        bool changed = false;
        // Assignment step.
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::size_t best = 0;
            double best_d = std::numeric_limits<double>::infinity();
            for (std::size_t c = 0; c < k; ++c) {
                const double d =
                    squaredDistance(points[i], result.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.assignments[i] != best) {
                result.assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dim, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const std::size_t c = result.assignments[i];
            ++counts[c];
            for (std::size_t d = 0; d < dim; ++d)
                sums[c][d] += points[i][d];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                // Re-seed an empty cluster from the farthest point.
                std::size_t far = 0;
                double far_d = -1.0;
                for (std::size_t i = 0; i < points.size(); ++i) {
                    const double d = squaredDistance(
                        points[i],
                        result.centroids[result.assignments[i]]);
                    if (d > far_d) {
                        far_d = d;
                        far = i;
                    }
                }
                result.centroids[c] = points[far];
                changed = true;
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d)
                result.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
        }
        if (!changed) {
            result.converged = true;
            break;
        }
    }

    result.clusterSizes.assign(k, 0);
    result.inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::size_t c = result.assignments[i];
        ++result.clusterSizes[c];
        result.inertia +=
            squaredDistance(points[i], result.centroids[c]);
    }
    return result;
}

} // namespace

KMeansResult
kmeans(const std::vector<std::vector<double>>& points,
       const KMeansParams& params, ThreadPool* pool)
{
    if (points.empty())
        return KMeansResult{};
    const std::size_t dim = points[0].size();
    for (const auto& p : points)
        if (p.size() != dim)
            fatal("kmeans: inconsistent point dimensions");
    const std::size_t k = std::min(params.k, points.size());
    if (k == 0)
        fatal("kmeans: k must be positive");

    const unsigned restarts = std::max(1u, params.restarts);
    std::vector<KMeansResult> runs(restarts);
    auto oneRestart = [&](std::size_t r) {
        runs[r] = runFromSeed(points, k, dim, params.maxIterations,
                              params.seed + r);
    };
    if (pool && restarts > 1) {
        pool->parallelFor(restarts, oneRestart);
    } else {
        for (std::size_t r = 0; r < restarts; ++r)
            oneRestart(r);
    }

    // Lowest inertia wins; ties break towards the earliest restart so
    // the winner does not depend on completion order.
    std::size_t best = 0;
    for (std::size_t r = 1; r < restarts; ++r)
        if (runs[r].inertia < runs[best].inertia)
            best = r;
    return std::move(runs[best]);
}

double
silhouetteScore(const std::vector<std::vector<double>>& points,
                const KMeansResult& result)
{
    const std::size_t n = points.size();
    const std::size_t k = result.centroids.size();
    if (n < 2 || k < 2)
        return 0.0;

    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t ci = result.assignments[i];
        if (result.clusterSizes[ci] < 2)
            continue; // silhouette undefined for singleton's member
        double a = 0.0;
        std::vector<double> other(k, 0.0);
        std::vector<std::size_t> other_n(k, 0);
        for (std::size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const double d =
                std::sqrt(squaredDistance(points[i], points[j]));
            if (result.assignments[j] == ci) {
                a += d;
            } else {
                other[result.assignments[j]] += d;
                ++other_n[result.assignments[j]];
            }
        }
        a /= static_cast<double>(result.clusterSizes[ci] - 1);
        double b = std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < k; ++c) {
            if (c == ci || other_n[c] == 0)
                continue;
            b = std::min(b, other[c] / static_cast<double>(other_n[c]));
        }
        if (!std::isfinite(b))
            continue;
        const double s = (b - a) / std::max(a, b);
        if (std::max(a, b) > 0.0) {
            total += s;
            ++counted;
        }
    }
    return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

KMeansResult
kmeansAuto(const std::vector<std::vector<double>>& points,
           std::size_t max_k, std::uint64_t seed, ThreadPool* pool,
           unsigned restarts)
{
    KMeansResult best;
    if (points.empty())
        return best;

    // Count distinct points to bound the useful k.
    std::set<std::vector<double>> distinct(points.begin(), points.end());
    const std::size_t limit = std::min(max_k, distinct.size());
    if (limit < 2) {
        KMeansParams p;
        p.k = 1;
        p.seed = seed;
        p.restarts = restarts;
        return kmeans(points, p, pool);
    }

    // Each candidate k is independent; fan them out, then select in
    // ascending-k order exactly as the serial scan would.
    const std::size_t candidates = limit - 1;
    std::vector<KMeansResult> runs(candidates);
    std::vector<double> scores(candidates, -2.0);
    auto oneCandidate = [&](std::size_t idx) {
        KMeansParams p;
        p.k = idx + 2;
        p.seed = seed + p.k;
        p.restarts = restarts;
        runs[idx] = kmeans(points, p); // serial inside: no nested fan-out
        scores[idx] = silhouetteScore(points, runs[idx]);
    };
    if (pool && candidates > 1) {
        pool->parallelFor(candidates, oneCandidate);
    } else {
        for (std::size_t idx = 0; idx < candidates; ++idx)
            oneCandidate(idx);
    }

    double best_score = -2.0;
    for (std::size_t idx = 0; idx < candidates; ++idx) {
        if (scores[idx] > best_score) {
            best_score = scores[idx];
            best = std::move(runs[idx]);
        }
    }
    return best;
}

} // namespace cchunter
