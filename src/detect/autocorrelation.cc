#include "detect/autocorrelation.hh"

#include <algorithm>

#include "util/fft.hh"
#include "util/simd.hh"
#include "util/stats.hh"

namespace cchunter
{

namespace
{

/** Shared denominator: total sum of squared deviations. */
double
sumSquaredDeviations(const std::vector<double>& series, double mean)
{
    double s = 0.0;
    for (double x : series)
        s += (x - mean) * (x - mean);
    return s;
}

double
numeratorAt(const std::vector<double>& series, double mean,
            std::size_t lag)
{
    double s = 0.0;
    for (std::size_t i = 0; i + lag < series.size(); ++i)
        s += (series[i] - mean) * (series[i + lag] - mean);
    return s;
}

} // namespace

double
autocorrelationAt(const std::vector<double>& series, std::size_t lag)
{
    if (series.size() < 2 || lag >= series.size())
        return 0.0;
    const double mean = meanOf(series);
    const double denom = sumSquaredDeviations(series, mean);
    if (denom == 0.0)
        return 0.0;
    return numeratorAt(series, mean, lag) / denom;
}

std::vector<double>
autocorrelogramNaive(const std::vector<double>& series,
                     std::size_t max_lag)
{
    std::vector<double> out;
    out.reserve(max_lag + 1);
    if (series.size() < 2) {
        out.assign(max_lag + 1, 0.0);
        return out;
    }
    const double mean = meanOf(series);
    const double denom = sumSquaredDeviations(series, mean);
    if (denom == 0.0) {
        out.assign(max_lag + 1, 0.0);
        return out;
    }
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
        if (lag >= series.size()) {
            out.push_back(0.0);
            continue;
        }
        out.push_back(numeratorAt(series, mean, lag) / denom);
    }
    return out;
}

void
autocorrelogramFft(const std::vector<double>& series,
                   std::size_t max_lag, FftScratch& scratch,
                   std::vector<double>& out)
{
    const std::size_t n = series.size();
    if (n < 2) {
        out.assign(max_lag + 1, 0.0);
        return;
    }
    const double mean = meanOf(series);
    // The exact degeneracy test (a constant series must yield all
    // zeros, not roundoff noise) uses the direct denominator.
    if (sumSquaredDeviations(series, mean) == 0.0) {
        out.assign(max_lag + 1, 0.0);
        return;
    }

    scratch.centered.resize(n);
    simd::subtractScalar(series.data(), n, mean,
                         scratch.centered.data());
    autocorrelationSumsFft(scratch.centered.data(), n, max_lag,
                           scratch, out);
    // out[0] is the sum of squared deviations computed by the same
    // transform, so r_0 normalises to exactly 1.
    const double denom = out[0];
    if (denom <= 0.0) {
        out.assign(max_lag + 1, 0.0);
        return;
    }
    simd::divideInPlace(out.data(), out.size(), denom);
}

std::vector<double>
autocorrelogramFft(const std::vector<double>& series, std::size_t max_lag)
{
    thread_local FftScratch scratch;
    std::vector<double> out;
    autocorrelogramFft(series, max_lag, scratch, out);
    return out;
}

namespace
{

bool
fftDispatch(std::size_t n, std::size_t max_lag)
{
    return n >= kFftAutocorrMinSeries &&
           n * (max_lag + 1) >= kFftAutocorrOpsThreshold;
}

} // namespace

std::vector<double>
autocorrelogram(const std::vector<double>& series, std::size_t max_lag)
{
    if (fftDispatch(series.size(), max_lag))
        return autocorrelogramFft(series, max_lag);
    return autocorrelogramNaive(series, max_lag);
}

std::vector<std::vector<double>>
autocorrelogramsBatched(
    const std::vector<const std::vector<double>*>& series,
    std::size_t max_lag)
{
    // One arena for the whole batch; the thread-local plan cache
    // means every same-padded-size series reuses one twiddle table.
    FftScratch scratch;
    std::vector<std::vector<double>> out(series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (fftDispatch(series[i]->size(), max_lag))
            autocorrelogramFft(*series[i], max_lag, scratch, out[i]);
        else
            out[i] = autocorrelogramNaive(*series[i], max_lag);
    }
    return out;
}

std::vector<AutocorrPeak>
findPeaks(const std::vector<double>& correlogram, double min_value,
          std::size_t min_separation)
{
    std::vector<AutocorrPeak> peaks;
    const std::size_t n = correlogram.size();
    for (std::size_t lag = 1; lag + 1 < n; ++lag) {
        const double v = correlogram[lag];
        if (v < min_value)
            continue;
        if (v < correlogram[lag - 1] || v < correlogram[lag + 1])
            continue;
        // Plateau handling: take the first sample of a flat top only.
        if (correlogram[lag - 1] == v)
            continue;
        if (!peaks.empty() && lag - peaks.back().lag < min_separation) {
            if (v > peaks.back().value)
                peaks.back() = AutocorrPeak{lag, v};
            continue;
        }
        peaks.push_back(AutocorrPeak{lag, v});
    }
    return peaks;
}

} // namespace cchunter
