/**
 * @file
 * Event trains: uni-dimensional time series of indicator-event
 * occurrences (paper section IV-B, step two).
 *
 * Combinational-hardware channels are analysed from an *unlabelled* train
 * (each event is one conflict: a bus lock, a divider-wait).  Cache
 * channels are analysed from a *labelled* train where each conflict miss
 * carries an identifier derived from its (replacer, victim) context pair.
 */

#ifndef CCHUNTER_DETECT_EVENT_TRAIN_HH
#define CCHUNTER_DETECT_EVENT_TRAIN_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace cchunter
{

/** One recorded indicator event. */
struct Event
{
    Tick time = 0;          //!< occurrence time in CPU cycles
    std::uint8_t label = 0; //!< ordered replacer/victim pair id (or 0)
};

/**
 * An append-only, time-ordered record of indicator events within an
 * observation window.
 */
class EventTrain
{
  public:
    EventTrain() = default;

    /** Construct with an explicit observation window [begin, end). */
    EventTrain(Tick begin, Tick end);

    /** Append an event; times must be non-decreasing. */
    void addEvent(Tick time, std::uint8_t label = 0);

    /** Number of recorded events. */
    std::size_t size() const { return events_.size(); }

    /** @return true when no events are recorded. */
    bool empty() const { return events_.empty(); }

    /** Event at index i. */
    const Event& operator[](std::size_t i) const { return events_[i]; }

    /** All events in time order. */
    const std::vector<Event>& events() const { return events_; }

    /** Start of the observation window. */
    Tick windowBegin() const { return begin_; }

    /** End of the observation window (exclusive). */
    Tick windowEnd() const { return end_; }

    /** Set the observation window explicitly. */
    void setWindow(Tick begin, Tick end);

    /** Window length in ticks (at least 1). */
    Tick duration() const;

    /** Mean event rate in events per tick. */
    double meanRate() const;

    /** Number of events with time in [t0, t1). */
    std::size_t countInRange(Tick t0, Tick t1) const;

    /** Sub-train containing events in [t0, t1), window set to match. */
    EventTrain slice(Tick t0, Tick t1) const;

    /** Labels of all events, in order, as doubles (for autocorrelation). */
    std::vector<double> labelSeries() const;

    /** Inter-event intervals (size()-1 entries). */
    std::vector<double> interEventIntervals() const;

    /** Remove all events and reset the window. */
    void clear();

  private:
    std::vector<Event> events_;
    Tick begin_ = 0;
    Tick end_ = 0;
    bool explicitWindow_ = false;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_EVENT_TRAIN_HH
