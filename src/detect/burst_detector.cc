#include "detect/burst_detector.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hh"

namespace cchunter
{

bool
BurstAnalysis::significantAt(double likelihood_threshold,
                             const BurstDetectorParams& params) const
{
    return hasSecondDistribution &&
           likelihoodRatio >= likelihood_threshold &&
           nonZeroSamples >= params.minNonZeroSamples;
}

BurstDetector::BurstDetector(BurstDetectorParams params)
    : params_(params)
{
    if (params_.likelihoodThreshold < 0.0 ||
        params_.likelihoodThreshold > 1.0)
        fatal("BurstDetector: likelihoodThreshold outside [0,1]");
    if (params_.gentleSlopeFraction <= 0.0)
        fatal("BurstDetector: gentleSlopeFraction must be positive");
}

std::optional<std::size_t>
BurstDetector::thresholdDensity(const Histogram& hist) const
{
    const std::size_t n = hist.numBins();
    if (hist.countInRange(1, n - 1) == 0)
        return std::nullopt;

    // When even the least-dense window holds two or more events there
    // is no non-burst distribution at all: the train is wall-to-wall
    // contention (continuous signalling) and every populated bin
    // belongs to the burst distribution.
    std::size_t first_populated = 0;
    while (first_populated < n && hist.bin(first_populated) == 0)
        ++first_populated;
    if (first_populated >= 2)
        return first_populated;

    // Fit a curve to the histogram (three-point moving average).
    std::vector<double> smooth(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = static_cast<double>(hist.bin(i));
        double cnt = 1.0;
        if (i > 0) {
            sum += static_cast<double>(hist.bin(i - 1));
            cnt += 1.0;
        }
        if (i + 1 < n) {
            sum += static_cast<double>(hist.bin(i + 1));
            cnt += 1.0;
        }
        smooth[i] = sum / cnt;
    }

    // Suffix maxima: the largest smoothed count at or beyond each bin.
    std::vector<double> suffix_max(n + 1, 0.0);
    for (std::size_t i = n; i-- > 0;)
        suffix_max[i] = std::max(smooth[i], suffix_max[i + 1]);

    // Rule 1: the first bin of the fitted curve that is smaller than
    // its predecessor, not larger than its successor, and a genuine
    // valley (well below the remaining right-tail mass) — the point
    // separating the non-burst and burst distributions.
    for (std::size_t i = 1; i + 1 < n; ++i) {
        if (smooth[i] < smooth[i - 1] && smooth[i] <= smooth[i + 1] &&
            smooth[i] <= params_.valleyDepthRatio * suffix_max[i + 1])
            return i;
    }

    // Rule 2 (fallback): the bin where the slope of the fitted curve
    // becomes gentle, relative to the curve's own scale beyond bin 0
    // (a monotonically decaying benign histogram reaches this deep in
    // its tail).
    const double peak1 =
        n > 1 ? suffix_max[1] : suffix_max[0];
    const double gentle =
        std::max(params_.gentleSlopeFraction * peak1, 1e-9);
    for (std::size_t i = 1; i < n; ++i) {
        const double slope = smooth[i - 1] - smooth[i];
        if (std::abs(slope) <= gentle)
            return i;
    }
    return n - 1;
}

BurstAnalysis
BurstDetector::analyze(const Histogram& hist) const
{
    BurstAnalysis out;
    const std::size_t n = hist.numBins();
    out.saturatedBins = hist.saturatedBins();

    if (out.saturatedBins == 0) {
        // Clean (unsaturated) histogram: the exact published pipeline.
        out.nonZeroSamples = hist.countInRange(1, n - 1);

        const auto threshold = thresholdDensity(hist);
        if (!threshold) {
            // All samples (if any) sit in bin 0: no contention at all.
            return out;
        }
        out.thresholdBin = *threshold;
        out.nonBurstMean =
            out.thresholdBin > 0 ?
            hist.meanInRange(0, out.thresholdBin - 1) : 0.0;
        out.burstSamples = hist.countInRange(out.thresholdBin, n - 1);

        if (out.burstSamples == 0)
            return out;

        out.burstMean = hist.meanInRange(out.thresholdBin, n - 1);
        out.burstPeakBin = hist.peakBin(out.thresholdBin, n - 1);

        // Extent of the burst distribution (first/last populated bin
        // at or beyond the threshold).
        out.burstFirstBin = out.thresholdBin;
        while (out.burstFirstBin < n - 1 &&
               hist.bin(out.burstFirstBin) == 0)
            ++out.burstFirstBin;
        out.burstLastBin = hist.maxNonZeroBin();

        out.hasSecondDistribution = out.burstMean > params_.minBurstMean;
        if (!out.hasSecondDistribution)
            return out;

        out.likelihoodRatio =
            out.nonZeroSamples == 0 ? 0.0 :
            static_cast<double>(out.burstSamples) /
            static_cast<double>(out.nonZeroSamples);
        out.significant =
            out.likelihoodRatio >= params_.likelihoodThreshold &&
            out.nonZeroSamples >= params_.minNonZeroSamples;
        return out;
    }

    // Degraded path: same pipeline, but bins whose 16-bit hardware
    // entry clamped are excluded from the distribution statistics —
    // their recorded counts are floors, not measurements, and folding
    // them into the likelihood ratio (either side) would let sensor
    // saturation masquerade as evidence.
    auto usable = [&hist](std::size_t i) {
        return !hist.binSaturated(i);
    };
    auto countRange = [&](std::size_t first, std::size_t last) {
        last = std::min(last, n - 1);
        std::uint64_t c = 0;
        for (std::size_t i = first; i <= last && i < n; ++i)
            if (usable(i))
                c += hist.bin(i);
        return c;
    };
    auto meanRange = [&](std::size_t first, std::size_t last) {
        last = std::min(last, n - 1);
        double weighted = 0.0;
        double count = 0.0;
        for (std::size_t i = first; i <= last && i < n; ++i) {
            if (!usable(i))
                continue;
            weighted += static_cast<double>(i) *
                        static_cast<double>(hist.bin(i));
            count += static_cast<double>(hist.bin(i));
        }
        return count == 0.0 ? 0.0 : weighted / count;
    };
    auto peakRange = [&](std::size_t first, std::size_t last) {
        last = std::min(last, n - 1);
        std::size_t best = first;
        std::uint64_t best_count = 0;
        for (std::size_t i = first; i <= last && i < n; ++i) {
            if (usable(i) && hist.bin(i) > best_count) {
                best_count = hist.bin(i);
                best = i;
            }
        }
        return best;
    };

    out.nonZeroSamples = countRange(1, n - 1);

    // The threshold density comes off the smoothed raw curve — a
    // clamped bin still marks where the valley sits.
    const auto threshold = thresholdDensity(hist);
    if (!threshold)
        return out;
    out.thresholdBin = *threshold;
    out.nonBurstMean =
        out.thresholdBin > 0 ?
        meanRange(0, out.thresholdBin - 1) : 0.0;
    out.burstSamples = countRange(out.thresholdBin, n - 1);

    if (out.burstSamples == 0)
        return out;

    out.burstMean = meanRange(out.thresholdBin, n - 1);
    out.burstPeakBin = peakRange(out.thresholdBin, n - 1);

    out.burstFirstBin = out.thresholdBin;
    while (out.burstFirstBin < n - 1 &&
           (hist.bin(out.burstFirstBin) == 0 ||
            !usable(out.burstFirstBin)))
        ++out.burstFirstBin;
    out.burstLastBin = 0;
    for (std::size_t i = n; i-- > 0;) {
        if (usable(i) && hist.bin(i) != 0) {
            out.burstLastBin = i;
            break;
        }
    }

    out.hasSecondDistribution = out.burstMean > params_.minBurstMean;
    if (!out.hasSecondDistribution)
        return out;

    out.likelihoodRatio =
        out.nonZeroSamples == 0 ? 0.0 :
        static_cast<double>(out.burstSamples) /
        static_cast<double>(out.nonZeroSamples);
    out.significant =
        out.likelihoodRatio >= params_.likelihoodThreshold &&
        out.nonZeroSamples >= params_.minNonZeroSamples;
    return out;
}

} // namespace cchunter
