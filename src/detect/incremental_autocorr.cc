#include "detect/incremental_autocorr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

IncrementalAutocorrelation::IncrementalAutocorrelation(
    std::size_t max_lag, std::size_t capacity)
    : maxLag_(max_lag), capacity_(capacity)
{
    if (maxLag_ < 2)
        fatal("IncrementalAutocorrelation: maxLag must be >= 2");
    if (capacity_ == 0)
        fatal("IncrementalAutocorrelation: capacity must be > 0");
    ring_.resize(capacity_, 0.0);
    sumXY_.assign(maxLag_ + 1, 0.0);
    firstPrefix_.assign(maxLag_ + 1, 0.0);
    lastPrefix_.assign(maxLag_ + 1, 0.0);
}

void
IncrementalAutocorrelation::evictFront()
{
    const double y = ring_[head_];
    // y participated in sumXY[p] as y * x_p for every retained lag.
    // at(lag) ascends from head_+1, so the ring splits into at most
    // two contiguous segments — walk raw pointers instead of paying a
    // modulo per lag (this loop runs once per evicted sample).
    const std::size_t top = std::min(maxLag_, size_ - 1);
    std::size_t lag = 1;
    std::size_t idx = head_ + 1;
    while (lag <= top) {
        if (idx >= capacity_)
            idx -= capacity_;
        const std::size_t run =
            std::min(top - lag + 1, capacity_ - idx);
        const double* x = ring_.data() + idx;
        double* xy = sumXY_.data() + lag;
        for (std::size_t j = 0; j < run; ++j)
            xy[j] -= y * x[j];
        lag += run;
        idx += run;
    }
    sumXY_[0] -= y * y;
    sum_ -= y;
    sumSq_ -= y * y;
    head_ = (head_ + 1) % capacity_;
    --size_;
    ++evictions_;
}

void
IncrementalAutocorrelation::push(double x)
{
    if (size_ == capacity_)
        evictFront();
    // x pairs with the last min(maxLag, size) samples: at(size_-lag)
    // descends from the newest sample, again at most two contiguous
    // ring segments.
    const std::size_t top = std::min(maxLag_, size_);
    std::size_t lag = 1;
    while (lag <= top) {
        std::size_t pos = head_ + size_ - lag;
        if (pos >= capacity_)
            pos -= capacity_;
        const std::size_t run = std::min(top - lag + 1, pos + 1);
        const double* xs = ring_.data() + pos;
        double* xy = sumXY_.data() + lag;
        for (std::size_t j = 0; j < run; ++j)
            xy[j] += xs[-static_cast<std::ptrdiff_t>(j)] * x;
        lag += run;
    }
    sumXY_[0] += x * x;
    ring_[(head_ + size_) % capacity_] = x;
    ++size_;
    sum_ += x;
    sumSq_ += x * x;
}

void
IncrementalAutocorrelation::correlogram(std::size_t max_lag,
                                        std::vector<double>& out) const
{
    if (max_lag > maxLag_)
        fatal("IncrementalAutocorrelation: lag beyond maintained "
              "range");
    out.assign(max_lag + 1, 0.0);
    const std::size_t n = size_;
    if (n < 2)
        return;
    const double nn = static_cast<double>(n);
    const double mu = sum_ / nn;
    // den = sum (x - mu)^2, expanded around the maintained sums.  For
    // a constant 0/1 window every term is exact, so the degenerate
    // window still reads exactly zero (matching the reference's exact
    // zero-variance test).
    const double den = sumSq_ - 2.0 * mu * sum_ + nn * mu * mu;
    if (den <= 0.0)
        return;

    const std::size_t top = std::min(max_lag, n - 1);
    // Boundary prefix sums: firstPrefix_[p] = x_0 + .. + x_{p-1},
    // lastPrefix_[p] = x_{n-1} + .. + x_{n-p}.
    firstPrefix_[0] = 0.0;
    lastPrefix_[0] = 0.0;
    for (std::size_t p = 1; p <= top; ++p) {
        firstPrefix_[p] = firstPrefix_[p - 1] + at(p - 1);
        lastPrefix_[p] = lastPrefix_[p - 1] + at(n - p);
    }
    for (std::size_t lag = 0; lag <= top; ++lag) {
        const double head = sum_ - lastPrefix_[lag];  // x_0..x_{n-1-lag}
        const double tail = sum_ - firstPrefix_[lag]; // x_lag..x_{n-1}
        const double num =
            sumXY_[lag] - mu * (head + tail) +
            static_cast<double>(n - lag) * mu * mu;
        out[lag] = num / den;
    }
}

std::vector<double>
IncrementalAutocorrelation::correlogram(std::size_t max_lag) const
{
    std::vector<double> out;
    correlogram(max_lag, out);
    return out;
}

} // namespace cchunter
