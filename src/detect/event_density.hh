/**
 * @file
 * Event density histogram construction (paper section IV-B, step two).
 *
 * The observation window is divided into consecutive Δt intervals; the
 * number of indicator events inside each interval is its *density*, and
 * the histogram counts how many intervals exhibited each density.
 */

#ifndef CCHUNTER_DETECT_EVENT_DENSITY_HH
#define CCHUNTER_DETECT_EVENT_DENSITY_HH

#include <vector>

#include "detect/event_train.hh"
#include "util/histogram.hh"
#include "util/types.hh"

namespace cchunter
{

/**
 * Build the event-density histogram for a train at interval Δt.
 *
 * @param train Event train with a valid observation window.
 * @param delta_t Density interval in ticks (>= 1).
 * @param num_bins Histogram bins (hardware buffer: 128 entries).
 * @return Histogram whose bin i counts the Δt windows with i events
 *         (densities >= num_bins land in the last bin).
 */
Histogram buildEventDensityHistogram(const EventTrain& train, Tick delta_t,
                                     std::size_t num_bins = 128);

/**
 * The per-interval density sequence itself (one entry per Δt window),
 * used by tests and by the density-sequence diagnostics.
 */
std::vector<std::uint32_t> eventDensitySeries(const EventTrain& train,
                                              Tick delta_t);

} // namespace cchunter

#endif // CCHUNTER_DETECT_EVENT_DENSITY_HH
