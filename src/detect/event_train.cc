#include "detect/event_train.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

EventTrain::EventTrain(Tick begin, Tick end)
    : begin_(begin), end_(end), explicitWindow_(true)
{
    if (end < begin)
        fatal("EventTrain window end precedes begin");
}

void
EventTrain::addEvent(Tick time, std::uint8_t label)
{
    if (!events_.empty() && time < events_.back().time)
        panic("EventTrain events must be appended in time order");
    events_.push_back(Event{time, label});
    if (!explicitWindow_) {
        if (events_.size() == 1)
            begin_ = time;
        end_ = time + 1;
    }
}

void
EventTrain::setWindow(Tick begin, Tick end)
{
    if (end < begin)
        fatal("EventTrain window end precedes begin");
    begin_ = begin;
    end_ = end;
    explicitWindow_ = true;
}

Tick
EventTrain::duration() const
{
    return end_ > begin_ ? end_ - begin_ : 1;
}

double
EventTrain::meanRate() const
{
    return static_cast<double>(events_.size()) /
           static_cast<double>(duration());
}

std::size_t
EventTrain::countInRange(Tick t0, Tick t1) const
{
    auto lo = std::lower_bound(
        events_.begin(), events_.end(), t0,
        [](const Event& e, Tick t) { return e.time < t; });
    auto hi = std::lower_bound(
        events_.begin(), events_.end(), t1,
        [](const Event& e, Tick t) { return e.time < t; });
    return static_cast<std::size_t>(hi - lo);
}

EventTrain
EventTrain::slice(Tick t0, Tick t1) const
{
    EventTrain out(t0, t1);
    for (const auto& e : events_) {
        if (e.time >= t1)
            break;
        if (e.time >= t0)
            out.addEvent(e.time, e.label);
    }
    return out;
}

std::vector<double>
EventTrain::labelSeries() const
{
    std::vector<double> out;
    out.reserve(events_.size());
    for (const auto& e : events_)
        out.push_back(static_cast<double>(e.label));
    return out;
}

std::vector<double>
EventTrain::interEventIntervals() const
{
    std::vector<double> out;
    if (events_.size() < 2)
        return out;
    out.reserve(events_.size() - 1);
    for (std::size_t i = 1; i < events_.size(); ++i)
        out.push_back(static_cast<double>(
            events_[i].time - events_[i - 1].time));
    return out;
}

void
EventTrain::clear()
{
    events_.clear();
    begin_ = end_ = 0;
    explicitWindow_ = false;
}

} // namespace cchunter
