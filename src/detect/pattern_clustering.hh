/**
 * @file
 * Pattern clustering: recurrence analysis of bursty density histograms
 * across OS time quanta (paper section IV-B, step five).
 *
 * The observation window is limited to 512 OS time quanta (51.2 s at a
 * 0.1 s quantum).  Each quantum's density histogram is discretized into
 * a symbol string, similar strings are aggregated with k-means, and the
 * burst-significant clusters reveal how often burst patterns recur —
 * regardless of burst intervals, so low-bandwidth and irregular channels
 * are still caught.
 */

#ifndef CCHUNTER_DETECT_PATTERN_CLUSTERING_HH
#define CCHUNTER_DETECT_PATTERN_CLUSTERING_HH

#include <cstdint>
#include <vector>

#include "detect/burst_detector.hh"
#include "detect/discretizer.hh"
#include "detect/kmeans.hh"
#include "util/histogram.hh"

namespace cchunter
{

/** Parameters for recurrence analysis. */
struct PatternClusteringParams
{
    /** Maximum quanta considered per analysis window (paper: 512). */
    std::size_t windowQuanta = 512;

    /** Upper bound for the auto-selected cluster count. */
    std::size_t maxClusters = 6;

    /**
     * Minimum fraction of quanta in burst-significant clusters for the
     * pattern to count as recurrent.  The paper detects channels
     * "regardless of burst intervals" — a 0.1 bps channel signals in
     * only ~2 of 512 quanta — so the default imposes no floor beyond
     * minRecurrentQuanta.
     */
    double minRecurrentFraction = 0.0;

    /** Minimum absolute number of bursty quanta. */
    std::size_t minRecurrentQuanta = 2;

    BurstDetectorParams burst;    //!< burst significance thresholds
    DiscretizerParams discretizer; //!< string alphabet
    std::uint64_t seed = 42;       //!< clustering seed

    /**
     * Feature-dimension reduction before k-means: keep only the
     * feature dimensions (histogram bins) whose discretized values
     * actually vary across the window, up to this many, ranked by
     * variance.  The paper reports this optimisation cuts the
     * worst-case clustering time from 0.25 s to 0.02 s.  0 disables
     * reduction (cluster on all 128 bins).
     */
    std::size_t maxFeatureDims = 16;

    /** Independent k-means++ restarts per candidate cluster count
     *  (see KMeansParams::restarts). */
    unsigned kmeansRestarts = 1;
};

/** Outcome of recurrence analysis over a window of quanta. */
struct PatternClusteringResult
{
    /** The clustering over per-quantum discretized histograms. */
    KMeansResult clustering;

    /** Discretized string per quantum (diagnostic). */
    std::vector<std::string> strings;

    /** Histogram bins selected as clustering features (empty when
     *  reduction is disabled). */
    std::vector<std::size_t> featureDims;

    /** Burst analysis of each cluster's merged histogram. */
    std::vector<BurstAnalysis> clusterAnalyses;

    /** Whether each cluster is burst-significant. */
    std::vector<bool> clusterBursty;

    /** Number of quanta assigned to burst-significant clusters. */
    std::size_t burstyQuanta = 0;

    /** burstyQuanta / total quanta. */
    double burstyFraction = 0.0;

    /** Highest likelihood ratio among bursty clusters. */
    double maxLikelihoodRatio = 0.0;

    /** Final verdict: burst patterns recur across the window. */
    bool recurrent = false;

    /**
     * Quanta that land in clusters significant at a different
     * likelihood cut-off, recomputed from the stored per-cluster
     * analyses (no re-clustering).
     */
    std::size_t burstyQuantaAt(double likelihood_threshold,
                               const BurstDetectorParams& burst = {})
        const;

    /**
     * Re-evaluate the recurrence verdict at a different likelihood
     * cut-off.  `recurrentAt(params.burst.likelihoodThreshold, params)`
     * equals `recurrent` for the params the analysis ran under; ROC
     * sweeps call this across a threshold grid.
     */
    bool recurrentAt(double likelihood_threshold,
                     const PatternClusteringParams& params = {}) const;
};

/**
 * Clusters per-quantum event-density histograms and decides whether
 * significant burst patterns recur.
 */
class PatternClusteringAnalyzer
{
  public:
    explicit PatternClusteringAnalyzer(PatternClusteringParams params = {});

    /**
     * Analyse one window of per-quantum histograms.  Only the most
     * recent windowQuanta histograms are considered.  A pool, when
     * given, fans out the candidate cluster counts of the k-means
     * search; the result is identical to the serial path.
     */
    PatternClusteringResult analyze(
        const std::vector<Histogram>& quanta,
        ThreadPool* pool = nullptr) const;

    /**
     * Pointer-view overload: analyse a window referenced in place.
     * The streaming daemon keeps its quanta in a ring buffer and hands
     * the analyzer a view instead of materialising a fresh vector of
     * histograms each pass.
     */
    PatternClusteringResult analyze(
        const std::vector<const Histogram*>& quanta,
        ThreadPool* pool = nullptr) const;

    const PatternClusteringParams& params() const { return params_; }

  private:
    PatternClusteringParams params_;
};

} // namespace cchunter

#endif // CCHUNTER_DETECT_PATTERN_CLUSTERING_HH
