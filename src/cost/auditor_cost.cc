#include "cost/auditor_cost.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

CostEstimate
AuditorCostReport::total() const
{
    CostEstimate t;
    t += histogramBuffers;
    t += registers;
    t += conflictMissDetector;
    return t;
}

double
AuditorCostReport::areaFractionOfI7() const
{
    constexpr double i7AreaMm2 = 263.0;
    return total().areaMm2 / i7AreaMm2;
}

double
AuditorCostReport::powerFractionOfI7() const
{
    constexpr double i7PowerMw = 130.0 * 1000.0;
    return total().powerMw / i7PowerMw;
}

double
AuditorCostReport::latencyOverClockPeriod() const
{
    constexpr double clockNs = 1.0 / 3.0; // 3 GHz
    return total().latencyNs / clockNs;
}

double
AuditorCostReport::cacheMetadataLatencyOverhead() const
{
    // Seven extra bits widen each ~44-bit tag+state metadata entry by
    // ~16%; the metadata array contributes roughly a tenth of the
    // cache access path, giving ~1.6% (the paper reports about 1.5%).
    constexpr double tag_state_bits = 44.0;
    constexpr double metadata_path_share = 0.1;
    return 7.0 / tag_state_bits * metadata_path_share;
}

AuditorCostReport
estimateAuditorCost(const AuditorCostConfig& config)
{
    if (config.cacheBlocks == 0)
        fatal("estimateAuditorCost: cacheBlocks must be positive");
    CostModel model;
    AuditorCostReport report;

    const std::size_t hist_bits = config.histogramBuffers *
                                  config.histogramEntries *
                                  config.histogramEntryBits;
    report.histogramBuffers =
        model.estimateArray(ArrayStyle::SramBuffer, hist_bits);

    const std::size_t reg_bits =
        config.vectorRegisters * config.vectorRegisterBytes * 8 +
        config.accumulators * config.accumulatorBits +
        config.countdowns * config.countdownBits;
    report.registers =
        model.estimateArray(ArrayStyle::RegisterFile, reg_bits);

    const std::size_t bloom_bits =
        config.bloomFilters * (config.bloomBitsPerFilter != 0
                                   ? config.bloomBitsPerFilter
                                   : config.cacheBlocks);
    const std::size_t detector_bits =
        bloom_bits + config.metadataBitsPerBlock * config.cacheBlocks;
    report.conflictMissDetector =
        model.estimateArray(ArrayStyle::DenseSram, detector_bits);

    return report;
}

} // namespace cchunter
