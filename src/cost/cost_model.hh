/**
 * @file
 * An analytical SRAM/register-array cost model standing in for Cacti
 * 5.3 (paper section V-A1).
 *
 * The paper sizes the CC-Auditor with Cacti at a 45 nm-class node; this
 * model reproduces the same estimates from per-bit area/power constants
 * and a log-depth latency term, with coefficients calibrated against
 * the paper's Table I.  The point of the model is the *sizing
 * arithmetic* — how buffer geometry translates to cost — not process
 * physics.
 */

#ifndef CCHUNTER_COST_COST_MODEL_HH
#define CCHUNTER_COST_COST_MODEL_HH

#include <cstddef>
#include <string>

namespace cchunter
{

/** Cost estimate for one hardware structure. */
struct CostEstimate
{
    double areaMm2 = 0.0;
    double powerMw = 0.0;
    double latencyNs = 0.0;

    CostEstimate& operator+=(const CostEstimate& other);
};

/** Array implementation styles with distinct cost densities. */
enum class ArrayStyle
{
    /** Multiported register-file cells (accumulators, vector regs). */
    RegisterFile,
    /** Small SRAM buffer with read-modify-write port (histograms). */
    SramBuffer,
    /** Dense single-port SRAM (bloom filters, metadata columns). */
    DenseSram,
};

/**
 * Cacti-like analytical model: area and power scale linearly with bit
 * count at a style-dependent density; access latency grows with the
 * logarithm of the array size (decode depth).
 */
class CostModel
{
  public:
    CostModel() = default;

    /** Estimate one array of `bits` storage bits. */
    CostEstimate estimateArray(ArrayStyle style, std::size_t bits) const;

    /** Human-readable style name. */
    static std::string styleName(ArrayStyle style);
};

} // namespace cchunter

#endif // CCHUNTER_COST_COST_MODEL_HH
