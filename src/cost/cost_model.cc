#include "cost/cost_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace cchunter
{

CostEstimate&
CostEstimate::operator+=(const CostEstimate& other)
{
    areaMm2 += other.areaMm2;
    powerMw += other.powerMw;
    latencyNs = std::max(latencyNs, other.latencyNs);
    return *this;
}

namespace
{

struct StyleCoefficients
{
    double areaUm2PerBit;   //!< cell + overhead area per bit
    double powerUwPerBit;   //!< dynamic + leakage per bit at 2.5 GHz
    double latencyBaseNs;   //!< wordline/sense floor
    double latencyPerLog2;  //!< decode depth slope
};

/**
 * Coefficients calibrated so the paper's structure sizes reproduce its
 * Table I (Cacti 5.3):
 *  - histogram buffers: 2 x 128 x 16 b = 4096 b
 *      -> 0.0028 mm^2, 2.8 mW, 0.17 ns
 *  - registers: 2 x 128 B + 2 x 16 b + 2 x 32 b = 2144 b
 *      -> 0.0011 mm^2, 0.8 mW, 0.17 ns
 *  - conflict-miss detector: 4 x 4096 b bloom + 7 x 4096 b metadata
 *      = 45056 b -> 0.004 mm^2, 5.4 mW, 0.12 ns
 */
StyleCoefficients
coefficientsFor(ArrayStyle style)
{
    switch (style) {
      case ArrayStyle::RegisterFile:
        return {0.513, 0.373, 0.059, 0.0100};
      case ArrayStyle::SramBuffer:
        return {0.684, 0.684, 0.050, 0.0100};
      case ArrayStyle::DenseSram:
        return {0.0888, 0.1198, 0.043, 0.0050};
    }
    panic("unknown array style");
}

} // namespace

CostEstimate
CostModel::estimateArray(ArrayStyle style, std::size_t bits) const
{
    if (bits == 0)
        fatal("CostModel: zero-bit array");
    const StyleCoefficients c = coefficientsFor(style);
    CostEstimate e;
    e.areaMm2 = c.areaUm2PerBit * static_cast<double>(bits) * 1e-6;
    e.powerMw = c.powerUwPerBit * static_cast<double>(bits) * 1e-3;
    e.latencyNs =
        c.latencyBaseNs +
        c.latencyPerLog2 * std::log2(static_cast<double>(bits));
    return e;
}

std::string
CostModel::styleName(ArrayStyle style)
{
    switch (style) {
      case ArrayStyle::RegisterFile:
        return "register-file";
      case ArrayStyle::SramBuffer:
        return "sram-buffer";
      case ArrayStyle::DenseSram:
        return "dense-sram";
    }
    return "unknown";
}

} // namespace cchunter
