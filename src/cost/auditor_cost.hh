/**
 * @file
 * CC-Auditor hardware cost report: reproduces the paper's Table I and
 * its contextual claims (area vs. an i7 die, power vs. its TDP, access
 * latency vs. a 3 GHz clock period, cache metadata overhead).
 */

#ifndef CCHUNTER_COST_AUDITOR_COST_HH
#define CCHUNTER_COST_AUDITOR_COST_HH

#include <cstddef>

#include "cost/cost_model.hh"

namespace cchunter
{

/** Structure sizing knobs (defaults = the paper's configuration). */
struct AuditorCostConfig
{
    std::size_t histogramEntries = 128;   //!< entries per buffer
    std::size_t histogramEntryBits = 16;
    unsigned histogramBuffers = 2;

    std::size_t vectorRegisterBytes = 128;
    unsigned vectorRegisters = 2;
    std::size_t accumulatorBits = 16;
    unsigned accumulators = 2;
    std::size_t countdownBits = 32;
    unsigned countdowns = 2;

    std::size_t cacheBlocks = 4096;       //!< 256 KB / 64 B
    unsigned bloomFilters = 4;            //!< one per generation
    std::size_t bloomBitsPerFilter = 0;   //!< 0 = cacheBlocks
    std::size_t metadataBitsPerBlock = 7; //!< 4 generation + 3 owner
};

/** The three Table I rows plus context. */
struct AuditorCostReport
{
    CostEstimate histogramBuffers;
    CostEstimate registers;
    CostEstimate conflictMissDetector;

    /** Sum of all three structures. */
    CostEstimate total() const;

    /** Fraction of a 263 mm^2 Intel i7 die. */
    double areaFractionOfI7() const;

    /** Fraction of a 130 W Intel i7 peak power budget. */
    double powerFractionOfI7() const;

    /** Worst structure latency over a 3 GHz clock period (0.33 ns). */
    double latencyOverClockPeriod() const;

    /** Relative L2 access-latency increase from the 7 metadata bits
     *  (paper: about 1.5%). */
    double cacheMetadataLatencyOverhead() const;
};

/** Evaluate the cost model over a configuration. */
AuditorCostReport estimateAuditorCost(
    const AuditorCostConfig& config = {});

} // namespace cchunter

#endif // CCHUNTER_COST_AUDITOR_COST_HH
