#include "mem/dram.hh"

#include "util/logging.hh"

namespace cchunter
{

Dram::Dram(DramParams params)
    : params_(params)
{
    if (params_.numBanks == 0 || params_.rowBytes == 0)
        fatal("Dram: banks and row size must be positive");
    openRow_.assign(params_.numBanks, 0);
    rowValid_.assign(params_.numBanks, false);
}

Cycles
Dram::access(Addr addr)
{
    const std::uint64_t row = addr / params_.rowBytes;
    const std::size_t bank = row % params_.numBanks;
    if (rowValid_[bank] && openRow_[bank] == row) {
        ++rowHits_;
        return params_.rowHitCycles;
    }
    openRow_[bank] = row;
    rowValid_[bank] = true;
    ++rowMisses_;
    return params_.rowMissCycles;
}

} // namespace cchunter
