/**
 * @file
 * A set-associative cache model with LRU replacement, per-block owner
 * context metadata (the paper's three owner bits) and a monitor hook
 * for the CC-Auditor's conflict-miss tracker.
 *
 * The cache is purely structural: it decides hits, misses and victims.
 * Latency and the journey to the next level are composed by MemSystem.
 */

#ifndef CCHUNTER_MEM_CACHE_HH
#define CCHUNTER_MEM_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace cchunter
{

/** Geometry of one cache. */
struct CacheGeometry
{
    std::size_t sizeBytes = 256 * 1024;
    std::size_t associativity = 8;
    std::size_t lineSize = 64;

    std::size_t
    numBlocks() const
    {
        return sizeBytes / lineSize;
    }

    std::size_t
    numSets() const
    {
        return numBlocks() / associativity;
    }
};

/**
 * Observer interface for cache-internal events; implemented by the
 * CC-Auditor's conflict-miss trackers (practical and oracle).
 */
class CacheMonitor
{
  public:
    virtual ~CacheMonitor() = default;

    /**
     * Every completed access to a block (after a fill on a miss).
     * @param block_idx Stable storage index (set * assoc + way).
     * @param line_addr Line-aligned address of the accessed block.
     */
    virtual void onAccess(std::size_t block_idx, Addr line_addr,
                          ContextId ctx, Tick now) = 0;

    /** A valid block is evicted to make room for another line. */
    virtual void onEvict(std::size_t block_idx, Addr line_addr,
                         ContextId owner, Tick now) = 0;

    /**
     * A miss is being serviced.
     * @param line_addr Line address of the incoming block.
     * @param requester Context performing the access (the "replacer").
     * @param victim_owner Owner of the block being evicted (valid only
     *        when had_victim).
     * @param had_victim False for fills into invalid ways.
     */
    virtual void onMiss(Addr line_addr, ContextId requester,
                        ContextId victim_owner, bool had_victim,
                        Tick now) = 0;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool evicted = false;          //!< a valid block was displaced
    Addr evictedLineAddr = 0;      //!< line address of the victim
    ContextId evictedOwner = invalidContext;
};

/**
 * Set-associative, write-allocate cache with true-LRU replacement.
 */
class Cache
{
  public:
    Cache(std::string name, CacheGeometry geometry);

    /**
     * Perform an access: on a miss the line is filled (evicting the LRU
     * way if no invalid way exists).  Owner metadata is updated to the
     * accessing context.
     */
    CacheAccessResult access(Addr addr, ContextId ctx, Tick now);

    /** @return true if the line is present (no state change). */
    bool probe(Addr addr) const;

    /** Invalidate a line if present (back-invalidation from an
     *  inclusive outer level). @return true if it was present. */
    bool invalidate(Addr addr);

    /** Invalidate every line. */
    void flush();

    /** Owner context of a resident line, or invalidContext. */
    ContextId ownerOf(Addr addr) const;

    /** Attach a monitor (nullptr to detach). */
    void setMonitor(CacheMonitor* monitor) { monitor_ = monitor; }

    const std::string& name() const { return name_; }
    const CacheGeometry& geometry() const { return geom_; }

    /** Line-aligned address for any byte address. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(geom_.lineSize - 1);
    }

    /** Set index for an address. */
    std::size_t
    setIndex(Addr addr) const
    {
        return (addr / geom_.lineSize) % geom_.numSets();
    }

    /** Lifetime statistics. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    struct Block
    {
        bool valid = false;
        Addr lineAddr = 0;
        ContextId owner = invalidContext;
        std::uint64_t lastUse = 0; //!< LRU timestamp (access sequence)
    };

    std::size_t findWay(std::size_t set, Addr line) const;
    std::size_t victimWay(std::size_t set) const;

    std::string name_;
    CacheGeometry geom_;
    std::vector<Block> blocks_; //!< set-major storage
    std::uint64_t useCounter_ = 0;
    CacheMonitor* monitor_ = nullptr;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_MEM_CACHE_HH
