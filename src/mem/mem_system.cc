#include "mem/mem_system.hh"

#include <string>

#include "util/logging.hh"

namespace cchunter
{

MemSystem::MemSystem(MemSystemParams params)
    : params_(params), bus_(params.bus), dram_(params.dram)
{
    if (params_.numCores == 0 || params_.threadsPerCore == 0)
        fatal("MemSystem: need at least one core and one thread");
    const unsigned contexts = numContexts();
    if (contexts > 8)
        warn("MemSystem: more than 8 contexts; the paper's 3-bit owner "
             "metadata would not suffice");
    for (unsigned c = 0; c < contexts; ++c)
        l1s_.push_back(std::make_unique<Cache>(
            "l1." + std::to_string(c), params_.l1));
    for (unsigned c = 0; c < params_.numCores; ++c)
        l2s_.push_back(std::make_unique<Cache>(
            "l2." + std::to_string(c), params_.l2));
    if (params_.tlb.enabled)
        for (unsigned c = 0; c < params_.numCores; ++c)
            tlbs_.push_back(std::make_unique<Tlb>(
                "tlb." + std::to_string(c), params_.tlb));
}

Tlb&
MemSystem::tlb(unsigned core)
{
    if (core >= tlbs_.size())
        panic("MemSystem::tlb: TLBs disabled or core out of range");
    return *tlbs_[core];
}

void
MemSystem::translate(MemAccessOutcome& out, unsigned core,
                     ContextId ctx, Addr addr, Tick now)
{
    if (tlbs_.empty())
        return;
    const TlbOutcome t = tlbs_[core]->translate(addr, ctx, now);
    out.tlbWalkCycles += t.latency;
    out.latency += t.latency;
}

Cache&
MemSystem::l1(ContextId ctx)
{
    if (ctx >= l1s_.size())
        panic("MemSystem::l1: context out of range");
    return *l1s_[ctx];
}

Cache&
MemSystem::l2(unsigned core)
{
    if (core >= l2s_.size())
        panic("MemSystem::l2: core out of range");
    return *l2s_[core];
}

Cache&
MemSystem::l2ForContext(ContextId ctx)
{
    return l2(coreOf(ctx));
}

MemAccessOutcome
MemSystem::access(ContextId ctx, Addr addr, bool write, Tick now)
{
    MemAccessOutcome out;
    Cache& l1c = l1(ctx);
    const unsigned core = coreOf(ctx);
    Cache& l2c = l2(core);

    // Address translation precedes the cache lookup; a TLB miss adds
    // the page-walk latency on top of whatever the hierarchy charges.
    translate(out, core, ctx, addr, now);

    const CacheAccessResult r1 = l1c.access(addr, ctx, now);
    if (r1.hit) {
        out.l1Hit = true;
        out.latency += params_.l1HitCycles;
        return out;
    }
    // L1 miss: evicted L1 lines need no write-back handling in this
    // timing model.
    const CacheAccessResult r2 = l2c.access(addr, ctx, now);
    if (r2.hit) {
        out.l2Hit = true;
        out.latency += params_.l1HitCycles + params_.l2HitCycles;
        return out;
    }
    // L2 miss: the fill may have evicted another line from L2; enforce
    // inclusion by invalidating that line in every L1 of this core.
    if (r2.evicted) {
        const unsigned first = core * params_.threadsPerCore;
        for (unsigned t = 0; t < params_.threadsPerCore; ++t)
            l1(static_cast<ContextId>(first + t))
                .invalidate(r2.evictedLineAddr);
    }
    // Fetch from DRAM across the shared bus.
    const Tick bus_done = bus_.transfer(ctx, now);
    const Cycles dram_lat = dram_.access(addr);
    const Tick done = bus_done + dram_lat;
    out.latency += static_cast<Cycles>(done - now) +
                   params_.l2HitCycles + params_.l1HitCycles;
    return out;
}

MemAccessOutcome
MemSystem::lockedAccess(ContextId ctx, Addr addr, Tick now)
{
    MemAccessOutcome out;
    // Touch both lines the unaligned access spans so that the cache
    // state reflects the two-line footprint.
    Cache& l1c = l1(ctx);
    Cache& l2c = l2ForContext(ctx);
    const Addr second = addr + l1c.geometry().lineSize;
    translate(out, coreOf(ctx), ctx, addr, now);
    if (!tlbs_.empty() &&
        tlbs_[coreOf(ctx)]->pageNumber(second) !=
            tlbs_[coreOf(ctx)]->pageNumber(addr))
        translate(out, coreOf(ctx), ctx, second, now);
    for (Addr a : {addr, second}) {
        l1c.access(a, ctx, now);
        const CacheAccessResult r2 = l2c.access(a, ctx, now);
        if (r2.evicted) {
            const unsigned first =
                coreOf(ctx) * params_.threadsPerCore;
            for (unsigned t = 0; t < params_.threadsPerCore; ++t)
                l1(static_cast<ContextId>(first + t))
                    .invalidate(r2.evictedLineAddr);
        }
    }
    // The locked transaction itself: exclusive bus ownership.
    const Tick done = bus_.lockedTransfer(ctx, now);
    const Cycles dram_lat = dram_.access(addr);
    out.latency += static_cast<Cycles>(done - now) + dram_lat;
    return out;
}

} // namespace cchunter
