/**
 * @file
 * The memory hierarchy: per-context L1s, per-core shared L2s (shared by
 * the core's SMT contexts), a single shared memory bus, and DRAM.
 *
 * The L2 is inclusive of its L1s: when the L2 evicts a line it
 * back-invalidates the copies in the core's L1s, so an L2 conflict
 * eviction (the cache covert channel's mechanism) is observable by the
 * victim as a full miss.
 */

#ifndef CCHUNTER_MEM_MEM_SYSTEM_HH
#define CCHUNTER_MEM_MEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory_bus.hh"
#include "mem/tlb.hh"
#include "util/types.hh"

namespace cchunter
{

/** Latency and geometry configuration for the hierarchy. */
struct MemSystemParams
{
    unsigned numCores = 4;
    unsigned threadsPerCore = 2;
    CacheGeometry l1{32 * 1024, 8, 64};
    CacheGeometry l2{256 * 1024, 8, 64};
    Cycles l1HitCycles = 2;
    Cycles l2HitCycles = 12;
    BusParams bus;
    DramParams dram;

    /** Per-core TLB shared by the core's SMT contexts; disabled by
     *  default so existing scenarios see no timing change. */
    TlbParams tlb;
};

/** Outcome of one memory access through the hierarchy. */
struct MemAccessOutcome
{
    Cycles latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    Cycles tlbWalkCycles = 0; //!< walk latency included in `latency`

    bool
    missedAll() const
    {
        return !l1Hit && !l2Hit;
    }
};

/**
 * The full memory hierarchy shared by all cores.
 */
class MemSystem
{
  public:
    explicit MemSystem(MemSystemParams params = {});

    /** Regular load/store at `addr` by hardware context `ctx`. */
    MemAccessOutcome access(ContextId ctx, Addr addr, bool write,
                            Tick now);

    /**
     * Atomic unaligned access spanning two lines: touches both lines
     * and asserts the bus lock.
     */
    MemAccessOutcome lockedAccess(ContextId ctx, Addr addr, Tick now);

    /** The L1 cache private to a hardware context. */
    Cache& l1(ContextId ctx);

    /** The L2 cache shared by a core's contexts. */
    Cache& l2(unsigned core);

    /** The L2 serving a given hardware context. */
    Cache& l2ForContext(ContextId ctx);

    MemoryBus& bus() { return bus_; }
    Dram& dram() { return dram_; }

    /** True when per-core TLBs are modelled. */
    bool tlbEnabled() const { return !tlbs_.empty(); }

    /** The TLB shared by a core's contexts (TLBs must be enabled). */
    Tlb& tlb(unsigned core);

    unsigned numCores() const { return params_.numCores; }
    unsigned numContexts() const
    {
        return params_.numCores * params_.threadsPerCore;
    }

    /** Core owning a hardware context. */
    unsigned
    coreOf(ContextId ctx) const
    {
        return ctx / params_.threadsPerCore;
    }

    const MemSystemParams& params() const { return params_; }

  private:
    MemSystemParams params_;
    /** Translate `addr` and charge walk cycles into `out`. */
    void translate(MemAccessOutcome& out, unsigned core, ContextId ctx,
                   Addr addr, Tick now);

    std::vector<std::unique_ptr<Cache>> l1s_; //!< one per context
    std::vector<std::unique_ptr<Cache>> l2s_; //!< one per core
    std::vector<std::unique_ptr<Tlb>> tlbs_;  //!< per core, if enabled
    MemoryBus bus_;
    Dram dram_;
};

} // namespace cchunter

#endif // CCHUNTER_MEM_MEM_SYSTEM_HH
