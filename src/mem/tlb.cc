#include "mem/tlb.hh"

#include "util/logging.hh"

namespace cchunter
{

Tlb::Tlb(std::string name, TlbParams params)
    : name_(std::move(name)), params_(params)
{
    if (params_.entries == 0 || params_.associativity == 0 ||
        params_.pageBytes == 0)
        fatal("Tlb ", name_, ": zero entries, associativity or page "
              "size");
    if (params_.entries % params_.associativity != 0)
        fatal("Tlb ", name_,
              ": entries must be a multiple of associativity");
    entries_.resize(params_.entries);
}

std::size_t
Tlb::findWay(std::size_t set, std::uint64_t page) const
{
    const std::size_t base = set * params_.associativity;
    for (std::size_t w = 0; w < params_.associativity; ++w) {
        const Entry& e = entries_[base + w];
        if (e.valid && e.page == page)
            return w;
    }
    return params_.associativity;
}

std::size_t
Tlb::victimWay(std::size_t set) const
{
    const std::size_t base = set * params_.associativity;
    std::size_t victim = 0;
    std::uint64_t oldest = entries_[base].lastUse;
    for (std::size_t w = 0; w < params_.associativity; ++w) {
        const Entry& e = entries_[base + w];
        if (!e.valid)
            return w;
        if (e.lastUse < oldest) {
            oldest = e.lastUse;
            victim = w;
        }
    }
    return victim;
}

TlbOutcome
Tlb::translate(Addr addr, ContextId ctx, Tick now)
{
    TlbOutcome out;
    const std::uint64_t page = pageNumber(addr);
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * params_.associativity;

    const std::size_t way = findWay(set, page);
    if (way < params_.associativity) {
        Entry& e = entries_[base + way];
        e.lastUse = ++useCounter_;
        e.owner = ctx;
        ++hits_;
        out.hit = true;
        return out;
    }

    // Miss: walk the page table and fill, evicting the LRU way when the
    // set is full.  A displacement of another context's entry is the
    // auditable conflict.
    ++misses_;
    out.latency = params_.missCycles;
    const std::size_t victim = victimWay(set);
    Entry& e = entries_[base + victim];
    if (e.valid && e.owner != ctx) {
        ++conflicts_;
        const TlbConflict conflict{now, ctx, e.owner};
        for (const auto& listener : listeners_)
            listener(conflict);
    }
    e.valid = true;
    e.page = page;
    e.owner = ctx;
    e.lastUse = ++useCounter_;
    return out;
}

bool
Tlb::probe(Addr addr) const
{
    return findWay(setIndex(addr), pageNumber(addr)) <
           params_.associativity;
}

void
Tlb::flush()
{
    for (Entry& e : entries_)
        e.valid = false;
}

void
Tlb::addConflictListener(TlbConflictListener listener)
{
    listeners_.push_back(std::move(listener));
}

} // namespace cchunter
