/**
 * @file
 * A simple DRAM latency model with per-bank open-row state.
 */

#ifndef CCHUNTER_MEM_DRAM_HH
#define CCHUNTER_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace cchunter
{

/** DRAM timing parameters. */
struct DramParams
{
    Cycles rowHitCycles = 110;   //!< access hitting the open row
    Cycles rowMissCycles = 180;  //!< precharge + activate + access
    std::size_t numBanks = 8;    //!< interleaved banks
    std::size_t rowBytes = 8192; //!< bytes per row
};

/**
 * DRAM device: returns access latency; tracks open rows per bank.
 */
class Dram
{
  public:
    explicit Dram(DramParams params = {});

    /** Latency of a line access at the given address. */
    Cycles access(Addr addr);

    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }

    const DramParams& params() const { return params_; }

  private:
    DramParams params_;
    std::vector<std::uint64_t> openRow_;
    std::vector<bool> rowValid_;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_MEM_DRAM_HH
