/**
 * @file
 * The shared memory bus / QPI model.
 *
 * All off-chip transfers arbitrate for a single shared bus.  Atomic
 * unaligned accesses spanning two cache lines assert a *bus lock*
 * (emulated even on QPI systems, per the paper), holding the bus
 * exclusively for an extended period; lock events are the indicator
 * events of the memory-bus covert channel.
 */

#ifndef CCHUNTER_MEM_MEMORY_BUS_HH
#define CCHUNTER_MEM_MEMORY_BUS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace cchunter
{

/** Timing of the shared bus. */
struct BusParams
{
    /** Cycles to transfer one cache line across the bus. */
    Cycles transferCycles = 36;

    /** Cycles a bus lock holds the bus exclusively.  Covers the two
     *  split transfers plus the locked read-modify-write window. */
    Cycles lockHoldCycles = 3600;
};

/**
 * Listener invoked on every bus-lock operation (the covert-channel
 * indicator event for wires).
 */
using BusLockListener =
    std::function<void(Tick when, ContextId locker)>;

/**
 * A single shared memory bus with FIFO arbitration and lock support.
 */
class MemoryBus
{
  public:
    explicit MemoryBus(BusParams params = {});

    /**
     * Arbitrate for the bus for a normal line transfer.
     * @return the tick at which the transfer completes.
     */
    Tick transfer(ContextId ctx, Tick now);

    /**
     * Perform a locked (atomic unaligned) transaction: waits for the
     * bus, holds it for lockHoldCycles and fires the lock listeners at
     * the acquisition tick.
     * @return the tick at which the locked transaction completes.
     */
    Tick lockedTransfer(ContextId ctx, Tick now);

    /** Register a lock-event listener. */
    void addLockListener(BusLockListener listener);

    /**
     * Rate-limit locked transactions: successive bus locks are forced
     * at least `min_interval` cycles apart (0 disables).  A mitigation
     * control — throttling lock throughput caps the bus channel's
     * bandwidth without penalising ordinary transfers.
     */
    void setLockRateLimit(Cycles min_interval);

    /** Current lock rate limit (0 = none). */
    Cycles lockRateLimit() const { return lockRateLimit_; }

    /** Locks that were delayed by the rate limiter. */
    std::uint64_t throttledLocks() const { return throttledLocks_; }

    /** Tick until which the bus is occupied (including any scheduled
     *  future lock window). */
    Tick busyUntil() const;

    /** Lifetime statistics. */
    std::uint64_t transfers() const { return transfers_; }
    std::uint64_t locks() const { return locks_; }
    Cycles totalWaitCycles() const { return totalWait_; }

    const BusParams& params() const { return params_; }

  private:
    BusParams params_;
    /** The bus is free for ordinary transfers from this tick (up to a
     *  pending lock window, if one is scheduled). */
    Tick freeFrom_ = 0;
    /** A scheduled (possibly rate-limit-deferred) lock window; the
     *  gap before lockStart_ remains usable by ordinary transfers. */
    bool lockPending_ = false;
    Tick lockStart_ = 0;
    Tick lockEnd_ = 0;
    /** Earliest tick the next lock may start (rate limiter). */
    Tick nextLockAllowed_ = 0;
    std::vector<BusLockListener> lockListeners_;
    std::uint64_t transfers_ = 0;
    std::uint64_t locks_ = 0;
    Cycles totalWait_ = 0;
    Cycles lockRateLimit_ = 0;
    std::uint64_t throttledLocks_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_MEM_MEMORY_BUS_HH
