#include "mem/cache.hh"

#include <limits>

#include "util/logging.hh"

namespace cchunter
{

Cache::Cache(std::string name, CacheGeometry geometry)
    : name_(std::move(name)), geom_(geometry)
{
    if (geom_.lineSize == 0 || (geom_.lineSize & (geom_.lineSize - 1)))
        fatal("Cache ", name_, ": line size must be a power of two");
    if (geom_.associativity == 0)
        fatal("Cache ", name_, ": associativity must be positive");
    if (geom_.sizeBytes % (geom_.lineSize * geom_.associativity) != 0)
        fatal("Cache ", name_, ": size not divisible into sets");
    if (geom_.numSets() == 0)
        fatal("Cache ", name_, ": zero sets");
    blocks_.assign(geom_.numBlocks(), Block{});
}

std::size_t
Cache::findWay(std::size_t set, Addr line) const
{
    const std::size_t base = set * geom_.associativity;
    for (std::size_t w = 0; w < geom_.associativity; ++w) {
        const Block& b = blocks_[base + w];
        if (b.valid && b.lineAddr == line)
            return w;
    }
    return geom_.associativity; // not found
}

std::size_t
Cache::victimWay(std::size_t set) const
{
    const std::size_t base = set * geom_.associativity;
    std::size_t victim = 0;
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t w = 0; w < geom_.associativity; ++w) {
        const Block& b = blocks_[base + w];
        if (!b.valid)
            return w; // prefer invalid ways
        if (b.lastUse < oldest) {
            oldest = b.lastUse;
            victim = w;
        }
    }
    return victim;
}

CacheAccessResult
Cache::access(Addr addr, ContextId ctx, Tick now)
{
    CacheAccessResult result;
    const Addr line = lineAddr(addr);
    const std::size_t set = setIndex(addr);
    const std::size_t base = set * geom_.associativity;

    std::size_t way = findWay(set, line);
    if (way != geom_.associativity) {
        // Hit.
        result.hit = true;
        Block& b = blocks_[base + way];
        b.lastUse = ++useCounter_;
        b.owner = ctx;
        ++hits_;
        if (monitor_)
            monitor_->onAccess(base + way, line, ctx, now);
        return result;
    }

    // Miss: pick a victim and fill.
    ++misses_;
    way = victimWay(set);
    Block& b = blocks_[base + way];
    if (b.valid) {
        result.evicted = true;
        result.evictedLineAddr = b.lineAddr;
        result.evictedOwner = b.owner;
        ++evictions_;
    }
    if (monitor_) {
        monitor_->onMiss(line, ctx, b.owner, b.valid, now);
        if (b.valid)
            monitor_->onEvict(base + way, b.lineAddr, b.owner, now);
    }
    b.valid = true;
    b.lineAddr = line;
    b.owner = ctx;
    b.lastUse = ++useCounter_;
    if (monitor_)
        monitor_->onAccess(base + way, line, ctx, now);
    return result;
}

bool
Cache::probe(Addr addr) const
{
    return findWay(setIndex(addr), lineAddr(addr)) !=
           geom_.associativity;
}

bool
Cache::invalidate(Addr addr)
{
    const Addr line = lineAddr(addr);
    const std::size_t set = setIndex(addr);
    const std::size_t way = findWay(set, line);
    if (way == geom_.associativity)
        return false;
    blocks_[set * geom_.associativity + way] = Block{};
    return true;
}

void
Cache::flush()
{
    for (auto& b : blocks_)
        b = Block{};
}

ContextId
Cache::ownerOf(Addr addr) const
{
    const std::size_t set = setIndex(addr);
    const std::size_t way = findWay(set, lineAddr(addr));
    if (way == geom_.associativity)
        return invalidContext;
    return blocks_[set * geom_.associativity + way].owner;
}

} // namespace cchunter
