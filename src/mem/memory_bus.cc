#include "mem/memory_bus.hh"

#include <algorithm>

namespace cchunter
{

MemoryBus::MemoryBus(BusParams params)
    : params_(params)
{
}

Tick
MemoryBus::busyUntil() const
{
    return lockPending_ ? std::max(freeFrom_, lockEnd_) : freeFrom_;
}

Tick
MemoryBus::transfer(ContextId ctx, Tick now)
{
    Tick start = std::max(now, freeFrom_);
    if (lockPending_) {
        if (start + params_.transferCycles <= lockStart_) {
            // The transfer fits in the idle gap before the scheduled
            // lock window.
        } else {
            start = std::max(start, lockEnd_);
            // The lock window now lies behind the cursor.
            lockPending_ = false;
        }
    }
    totalWait_ += start - now;
    freeFrom_ = start + params_.transferCycles;
    ++transfers_;
    return freeFrom_;
}

Tick
MemoryBus::lockedTransfer(ContextId ctx, Tick now)
{
    // Locks serialize after all current occupancy, including any
    // still-pending lock window.
    Tick start = std::max(now, freeFrom_);
    if (lockPending_) {
        start = std::max(start, lockEnd_);
        // Ordinary transfers may no longer slip before the old window.
        freeFrom_ = std::max(freeFrom_, lockEnd_);
    }
    if (lockRateLimit_ != 0 && start < nextLockAllowed_) {
        start = nextLockAllowed_;
        ++throttledLocks_;
    }
    totalWait_ += start - now;
    lockPending_ = true;
    lockStart_ = start;
    lockEnd_ = start + params_.lockHoldCycles;
    nextLockAllowed_ = start + lockRateLimit_;
    ++locks_;
    for (const auto& listener : lockListeners_)
        listener(start, ctx);
    return lockEnd_;
}

void
MemoryBus::setLockRateLimit(Cycles min_interval)
{
    lockRateLimit_ = min_interval;
}

void
MemoryBus::addLockListener(BusLockListener listener)
{
    lockListeners_.push_back(std::move(listener));
}

} // namespace cchunter
