/**
 * @file
 * A per-core set-associative TLB model shared by the core's SMT
 * contexts, with per-entry owner metadata and a conflict hook for the
 * CC-Auditor.
 *
 * Like the caches, the TLB is purely structural: it decides hits,
 * misses and victims, and MemSystem composes the page-walk latency into
 * the access.  A fill that displaces a valid entry owned by a
 * *different* hardware context is a cross-context displacement — the
 * conflict event a TLB-set covert channel (TLBleed-style prime/probe
 * between SMT siblings) modulates, and the series the oscillation
 * detector audits.
 *
 * The TLB is disabled by default (TlbParams::enabled == false); a
 * disabled TLB adds zero latency and emits no events, so existing
 * scenarios are bit-identical.
 */

#ifndef CCHUNTER_MEM_TLB_HH
#define CCHUNTER_MEM_TLB_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace cchunter
{

/** Geometry and latency configuration of one TLB. */
struct TlbParams
{
    /** Build per-core TLBs and charge walk latency when true. */
    bool enabled = false;

    /** Total entries (entries / associativity sets). */
    std::size_t entries = 256;

    std::size_t associativity = 4;

    /** Page size; the set index is pageNumber % numSets. */
    std::size_t pageBytes = 4096;

    /** Page-walk latency charged on a TLB miss. */
    Cycles missCycles = 30;

    std::size_t
    numSets() const
    {
        return entries / associativity;
    }
};

/** A cross-context displacement: a fill evicted another context's
 *  translation. */
struct TlbConflict
{
    Tick time = 0;
    ContextId replacer = invalidContext; //!< context requesting the fill
    ContextId victim = invalidContext;   //!< owner of the evicted entry
};

using TlbConflictListener = std::function<void(const TlbConflict&)>;

/** Outcome of one translation. */
struct TlbOutcome
{
    bool hit = false;
    Cycles latency = 0; //!< 0 on a hit, missCycles on a walk
};

/**
 * Set-associative, true-LRU TLB with per-entry owner context metadata.
 */
class Tlb
{
  public:
    Tlb(std::string name, TlbParams params);

    /** Translate `addr` for context `ctx`; fills on a miss. */
    TlbOutcome translate(Addr addr, ContextId ctx, Tick now);

    /** @return true if the page's translation is resident. */
    bool probe(Addr addr) const;

    /** Invalidate every entry (e.g. a full TLB shootdown). */
    void flush();

    /** Observe cross-context displacements. */
    void addConflictListener(TlbConflictListener listener);

    const std::string& name() const { return name_; }
    const TlbParams& params() const { return params_; }
    std::size_t numSets() const { return params_.numSets(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t conflicts() const { return conflicts_; }

    /** Page number of a byte address. */
    std::uint64_t
    pageNumber(Addr addr) const
    {
        return addr / params_.pageBytes;
    }

    /** Set index of a byte address. */
    std::size_t
    setIndex(Addr addr) const
    {
        return pageNumber(addr) % params_.numSets();
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t page = 0;
        ContextId owner = invalidContext;
        std::uint64_t lastUse = 0;
    };

    std::size_t findWay(std::size_t set, std::uint64_t page) const;
    std::size_t victimWay(std::size_t set) const;

    std::string name_;
    TlbParams params_;
    std::vector<Entry> entries_; //!< set-major storage
    std::vector<TlbConflictListener> listeners_;
    std::uint64_t useCounter_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t conflicts_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_MEM_TLB_HH
