/**
 * @file
 * Named benchmark proxies: the SPEC2006 / Stream / Filebench stand-ins
 * used in the paper's false-alarm study (section VI-D).
 *
 * Tuning rationale per proxy:
 *  - gobmk, sjeng: CPU benchmarks with numerous memory-bus accesses and
 *    rare incidental bus locks (misaligned atomics in library code).
 *  - bzip2, h264ref: CPU benchmarks with a significant number of
 *    integer divisions, so hyperthreaded pairs create random divider
 *    contention.
 *  - mcf: memory-bound pointer chasing (generic cache-noise process).
 *  - stream: pure streaming bandwidth kernel; no locks, no divisions.
 *  - webserver: Filebench-style multi-threaded open-read-close request
 *    loops (bursty reads with mild regularity).
 *  - mailserver: Filebench-style create-append-SYNC loops; each sync
 *    issues a short burst of locked operations, producing the weak
 *    second distribution (histogram bins 5-8) whose likelihood ratio
 *    stays below 0.5 in the paper.
 */

#ifndef CCHUNTER_WORKLOADS_SUITES_HH
#define CCHUNTER_WORKLOADS_SUITES_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/synthetic.hh"

namespace cchunter
{

/**
 * Instantiate a benchmark proxy by name; fatal for unknown names.
 *
 * @param intensity Activity scaling in (0, 1]: values below 1 stretch
 *        the proxy's compute phases, lowering its event rate and
 *        simulation cost proportionally (used as background noise in
 *        long low-bandwidth runs).
 */
std::unique_ptr<SyntheticWorkload> makeBenchmark(const std::string& name,
                                                 std::uint64_t seed,
                                                 double intensity = 1.0);

/** All available proxy names. */
std::vector<std::string> benchmarkNames();

/** The pairings evaluated in the paper's figure 14. */
std::vector<std::pair<std::string, std::string>> falseAlarmPairs();

} // namespace cchunter

#endif // CCHUNTER_WORKLOADS_SUITES_HH
