#include "workloads/suites.hh"

#include "util/logging.hh"

namespace cchunter
{

namespace
{

SyntheticParams
baseParams(const std::string& name, std::uint64_t seed, Addr base)
{
    SyntheticParams p;
    p.name = name;
    p.seed = seed;
    p.addrBase = base;
    return p;
}

} // namespace

namespace
{

std::unique_ptr<SyntheticWorkload>
finishProxy(SyntheticParams p, double intensity)
{
    if (intensity <= 0.0 || intensity > 1.0)
        fatal("makeBenchmark: intensity must be in (0, 1]");
    p.computeMin = static_cast<Cycles>(
        static_cast<double>(p.computeMin) / intensity);
    p.computeMax = static_cast<Cycles>(
        static_cast<double>(p.computeMax) / intensity);
    return std::make_unique<SyntheticWorkload>(std::move(p));
}

} // namespace

std::unique_ptr<SyntheticWorkload>
makeBenchmark(const std::string& name, std::uint64_t seed,
              double intensity)
{
    // Give each instance a distinct address region so co-runners do not
    // share data.
    const Addr base = 0x100000000ull + (seed % 64) * 0x10000000ull;

    if (name == "gobmk") {
        SyntheticParams p = baseParams(name, seed, base);
        p.memFraction = 0.55;
        p.streamFraction = 0.2;
        p.workingSetLines = 16384; // 1 MiB: frequent L2 misses
        p.lockFraction = 0.00004;  // rare incidental misaligned atomics
        p.computeMin = 300;
        p.computeMax = 1500;
        return finishProxy(p, intensity);
    }
    if (name == "sjeng") {
        SyntheticParams p = baseParams(name, seed, base);
        p.memFraction = 0.5;
        p.streamFraction = 0.1;
        p.workingSetLines = 32768; // 2 MiB
        p.lockFraction = 0.00005;
        p.computeMin = 300;
        p.computeMax = 2000;
        return finishProxy(p, intensity);
    }
    if (name == "bzip2") {
        SyntheticParams p = baseParams(name, seed, base);
        p.memFraction = 0.35;
        p.streamFraction = 0.7;
        p.workingSetLines = 8192;
        p.divideFraction = 0.30;
        p.divideOpsMin = 4;
        p.divideOpsMax = 32;
        p.computeMin = 200;
        p.computeMax = 1200;
        return finishProxy(p, intensity);
    }
    if (name == "h264ref") {
        SyntheticParams p = baseParams(name, seed, base);
        p.memFraction = 0.4;
        p.streamFraction = 0.8;
        p.workingSetLines = 8192;
        p.divideFraction = 0.25;
        p.divideOpsMin = 8;
        p.divideOpsMax = 48;
        p.computeMin = 200;
        p.computeMax = 1000;
        return finishProxy(p, intensity);
    }
    if (name == "mcf") {
        SyntheticParams p = baseParams(name, seed, base);
        p.memFraction = 0.75;
        p.streamFraction = 0.05; // pointer chasing: random
        p.workingSetLines = 131072; // 8 MiB
        p.computeMin = 100;
        p.computeMax = 500;
        return finishProxy(p, intensity);
    }
    if (name == "stream") {
        SyntheticParams p = baseParams(name, seed, base);
        p.memFraction = 0.9;
        p.streamFraction = 1.0;
        p.workingSetLines = 1048576; // 64 MiB: pure streaming
        p.computeMin = 100;
        p.computeMax = 300;
        return finishProxy(p, intensity);
    }
    if (name == "webserver") {
        SyntheticParams p = baseParams(name, seed, base);
        // 100 threads of open-read-close: heavy, mildly regular reads.
        p.memFraction = 0.7;
        p.streamFraction = 0.6;
        p.workingSetLines = 65536; // 4 MiB of hot files
        p.lockFraction = 0.00002;
        p.computeMin = 150;
        p.computeMax = 900;
        return finishProxy(p, intensity);
    }
    if (name == "mailserver") {
        SyntheticParams p = baseParams(name, seed, base);
        // create-append-sync: each sync issues a burst of locked ops.
        p.memFraction = 0.55;
        p.streamFraction = 0.4;
        p.workingSetLines = 32768;
        p.lockFraction = 0.00010;      // scattered single locks
        p.lockBurstFraction = 0.00004; // occasional sync bursts
        p.lockBurstMin = 5;
        p.lockBurstMax = 8;
        p.computeMin = 150;
        p.computeMax = 1000;
        return finishProxy(p, intensity);
    }
    fatal("unknown benchmark proxy '", name, "'");
}

std::vector<std::string>
benchmarkNames()
{
    return {"gobmk",  "sjeng",  "bzip2",     "h264ref",
            "mcf",    "stream", "webserver", "mailserver"};
}

std::vector<std::pair<std::string, std::string>>
falseAlarmPairs()
{
    return {
        {"gobmk", "sjeng"},           {"bzip2", "h264ref"},
        {"stream", "stream"},         {"mailserver", "mailserver"},
        {"webserver", "webserver"},   {"gobmk", "bzip2"},
        {"mcf", "stream"},            {"sjeng", "h264ref"},
        {"mcf", "mailserver"},        {"webserver", "stream"},
    };
}

} // namespace cchunter
