/**
 * @file
 * Parameterized synthetic workloads standing in for the paper's benign
 * benchmarks (SPEC2006, Stream, Filebench).
 *
 * Only the *resource-conflict* behaviour matters to CC-Hunter: how
 * often a program locks the bus, contends for the divider, and churns
 * the caches — and whether any of that recurs in channel-like patterns
 * (it must not, for benign programs).  SyntheticWorkload generates
 * actions from a tunable stochastic mix; suites.hh instantiates the
 * named benchmark proxies.
 */

#ifndef CCHUNTER_WORKLOADS_SYNTHETIC_HH
#define CCHUNTER_WORKLOADS_SYNTHETIC_HH

#include <cstdint>
#include <string>

#include "sim/workload.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cchunter
{

/** Stochastic action-mix parameters. */
struct SyntheticParams
{
    std::string name = "synthetic";
    std::uint64_t seed = 1;

    /** Probability the next action is a memory access. */
    double memFraction = 0.4;

    /** Probability a memory access streams sequentially (vs random
     *  within the working set). */
    double streamFraction = 0.5;

    /** Working-set size in cache lines (locality footprint). */
    std::size_t workingSetLines = 4096;

    /** Probability the next action is a division batch. */
    double divideFraction = 0.0;

    /** Division batch size range. */
    std::uint32_t divideOpsMin = 4;
    std::uint32_t divideOpsMax = 40;

    /** Probability the next action is a single locked access
     *  (misaligned atomic in benign code). */
    double lockFraction = 0.0;

    /** Probability of starting a burst of locked accesses (e.g. a
     *  mailserver fsync); burst length uniform in [burstMin,
     *  burstMax]. */
    double lockBurstFraction = 0.0;
    std::uint32_t lockBurstMin = 5;
    std::uint32_t lockBurstMax = 8;

    /** Compute action duration range in cycles. */
    Cycles computeMin = 200;
    Cycles computeMax = 2000;

    /** Base of the private address region. */
    Addr addrBase = 0x100000000ull;

    /**
     * Optional phase behaviour: the program alternates between an
     * active phase of phaseOnTicks (normal action mix) and a quiet
     * phase of phaseOffTicks (compute only), as real programs do
     * between computation and I/O phases.  Both 0 disables phasing.
     */
    Tick phaseOnTicks = 0;
    Tick phaseOffTicks = 0;
};

/**
 * A stochastic, endlessly running benign workload.
 */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(SyntheticParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return params_.name; }

    const SyntheticParams& params() const { return params_; }

  private:
    Addr nextMemAddr();

    SyntheticParams params_;
    Rng rng_;
    std::uint64_t streamCursor_ = 0;
    std::uint32_t lockBurstRemaining_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_WORKLOADS_SYNTHETIC_HH
