#include "workloads/synthetic.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

SyntheticWorkload::SyntheticWorkload(SyntheticParams params)
    : params_(std::move(params)), rng_(params_.seed)
{
    if (params_.workingSetLines == 0)
        fatal("SyntheticWorkload: empty working set");
    if (params_.computeMin == 0 ||
        params_.computeMax < params_.computeMin)
        fatal("SyntheticWorkload: bad compute range");
    if (params_.divideOpsMax < params_.divideOpsMin)
        fatal("SyntheticWorkload: bad divide range");
    if (params_.lockBurstMax < params_.lockBurstMin)
        fatal("SyntheticWorkload: bad lock burst range");
    const double total = params_.memFraction + params_.divideFraction +
                         params_.lockFraction +
                         params_.lockBurstFraction;
    if (total > 1.0)
        fatal("SyntheticWorkload: action fractions exceed 1.0");
}

Addr
SyntheticWorkload::nextMemAddr()
{
    std::uint64_t line;
    if (rng_.nextBool(params_.streamFraction)) {
        line = streamCursor_++ % params_.workingSetLines;
    } else {
        line = rng_.nextBelow(params_.workingSetLines);
    }
    return params_.addrBase + line * 64;
}

Action
SyntheticWorkload::nextAction(const ExecView& view)
{
    // Quiet phase: pure compute until the next active phase begins.
    if (params_.phaseOnTicks != 0 && params_.phaseOffTicks != 0) {
        const Tick period =
            params_.phaseOnTicks + params_.phaseOffTicks;
        const Tick pos = view.now % period;
        if (pos >= params_.phaseOnTicks) {
            const Tick remaining = period - pos;
            const Cycles chunk = static_cast<Cycles>(std::min<Tick>(
                remaining, params_.computeMax * 4));
            return Action::compute(std::max<Cycles>(1, chunk));
        }
    }

    if (lockBurstRemaining_ > 0) {
        --lockBurstRemaining_;
        return Action::lockedAccess(nextMemAddr());
    }

    double roll = rng_.nextDouble();
    if (roll < params_.memFraction)
        return Action::read(nextMemAddr());
    roll -= params_.memFraction;

    if (roll < params_.divideFraction) {
        const auto ops = static_cast<std::uint32_t>(rng_.nextRange(
            params_.divideOpsMin, params_.divideOpsMax));
        return Action::divideBatch(ops);
    }
    roll -= params_.divideFraction;

    if (roll < params_.lockFraction)
        return Action::lockedAccess(nextMemAddr());
    roll -= params_.lockFraction;

    if (roll < params_.lockBurstFraction) {
        lockBurstRemaining_ = static_cast<std::uint32_t>(rng_.nextRange(
            params_.lockBurstMin, params_.lockBurstMax));
        return Action::lockedAccess(nextMemAddr());
    }

    const auto cycles = static_cast<Cycles>(rng_.nextRange(
        static_cast<std::int64_t>(params_.computeMin),
        static_cast<std::int64_t>(params_.computeMax)));
    return Action::compute(cycles);
}

} // namespace cchunter
