/**
 * @file
 * A generic contended SMT execution unit.
 *
 * The integer divider of the paper's section IV-A is one instance of a
 * wider class: any non-pipelined unit shared between a core's hardware
 * contexts (the paper cites Wang and Lee's SMT/multiplier channel as
 * another).  SmtExecUnit models the class once; DividerUnit and
 * MultiplierUnit are configured instances.
 *
 * Contention model and wait-conflict burst reporting are documented in
 * divider.hh (the original, divider-specific description).
 */

#ifndef CCHUNTER_UARCH_EXEC_UNIT_HH
#define CCHUNTER_UARCH_EXEC_UNIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace cchunter
{

/** Timing of a contended execution unit. */
struct ExecUnitParams
{
    /** Cycles one operation occupies the unit without contention. */
    Cycles opLatency = 5;
};

/**
 * A burst of wait-conflict events, all with the same waiter/occupant.
 */
struct WaitConflictBurst
{
    Tick start = 0;          //!< time of the first conflict
    std::uint64_t count = 0; //!< number of conflicts in the burst
    Tick spacing = 1;        //!< inter-conflict interval
    ContextId waiter = 0;    //!< context whose instruction waited
    ContextId occupant = 0;  //!< context occupying the unit
};

/** Listener invoked for every wait-conflict burst. */
using WaitConflictListener =
    std::function<void(const WaitConflictBurst&)>;

/**
 * A non-pipelined execution unit shared by one core's two SMT
 * contexts.
 */
class SmtExecUnit
{
  public:
    /**
     * @param name Unit name for diagnostics ("divider", "multiplier").
     * @param first_context Lowest hardware context id on this core.
     */
    SmtExecUnit(std::string name, ContextId first_context,
                ExecUnitParams params = {});

    /**
     * Execute a batch of `count` dependent operations issued by `ctx`
     * at time `now`.
     * @return completion tick of the batch.
     */
    Tick executeBatch(ContextId ctx, std::uint32_t count, Tick now);

    /** Register a wait-conflict listener. */
    void addWaitListener(WaitConflictListener listener);

    /** Total wait-conflict events reported so far. */
    std::uint64_t totalConflicts() const { return totalConflicts_; }

    /** Total operations executed. */
    std::uint64_t totalOps() const { return totalOps_; }

    const ExecUnitParams& params() const { return params_; }
    const std::string& name() const { return name_; }

  private:
    /** Slot index (0/1) for a context; fatal for foreign contexts. */
    unsigned slotOf(ContextId ctx) const;

    void emitBurst(Tick start, std::uint64_t count, Tick spacing,
                   ContextId waiter, ContextId occupant);

    struct BatchState
    {
        Tick start = 0;
        Tick end = 0; //!< end <= start means inactive
    };

    std::string name_;
    ContextId firstContext_;
    ExecUnitParams params_;
    BatchState batches_[2];
    std::vector<WaitConflictListener> listeners_;
    std::uint64_t totalConflicts_ = 0;
    std::uint64_t totalOps_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_UARCH_EXEC_UNIT_HH
