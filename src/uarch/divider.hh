/**
 * @file
 * The shared integer-division unit of one SMT core.
 *
 * Both hardware contexts of a core issue division batches to the same
 * non-pipelined divider.  When batches from the two contexts overlap in
 * time the divider round-robins between them: each context's operations
 * effectively take twice the base latency, and every operation that
 * finds the unit busy with the *other* context is a wait conflict — the
 * indicator event of the integer-divider covert channel ("the number of
 * times a division instruction from one process waits on a busy divider
 * occupied by an instruction from another context").
 *
 * For efficiency, wait conflicts are reported to listeners as *bursts*
 * (start, count, spacing): a burst expands to `count` events at
 * `start + i * spacing`.  The CC-Auditor integrates bursts into its Δt
 * accumulators arithmetically, so no per-operation callback cost is
 * paid even under full contention.
 *
 * The contention machinery is shared with other SMT execution units
 * (see exec_unit.hh); this header configures the divider instance.
 */

#ifndef CCHUNTER_UARCH_DIVIDER_HH
#define CCHUNTER_UARCH_DIVIDER_HH

#include "uarch/exec_unit.hh"

namespace cchunter
{

/** Timing of the division unit. */
struct DividerParams : public ExecUnitParams
{
};

/**
 * The shared divider of one core.
 */
class DividerUnit : public SmtExecUnit
{
  public:
    /**
     * @param first_context Lowest hardware context id on this core
     *        (contexts first_context and first_context+1 share the
     *        unit).
     */
    explicit DividerUnit(ContextId first_context,
                         DividerParams params = {})
        : SmtExecUnit("divider", first_context, params)
    {
    }
};

} // namespace cchunter

#endif // CCHUNTER_UARCH_DIVIDER_HH
