#include "uarch/exec_unit.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

SmtExecUnit::SmtExecUnit(std::string name, ContextId first_context,
                         ExecUnitParams params)
    : name_(std::move(name)), firstContext_(first_context),
      params_(params)
{
    if (params_.opLatency == 0)
        fatal("SmtExecUnit ", name_, ": opLatency must be positive");
}

unsigned
SmtExecUnit::slotOf(ContextId ctx) const
{
    if (ctx != firstContext_ &&
        ctx != static_cast<ContextId>(firstContext_ + 1))
        panic("SmtExecUnit ", name_, ": context ", int{ctx},
              " does not belong to this core");
    return ctx - firstContext_;
}

void
SmtExecUnit::emitBurst(Tick start, std::uint64_t count, Tick spacing,
                       ContextId waiter, ContextId occupant)
{
    if (count == 0)
        return;
    totalConflicts_ += count;
    const WaitConflictBurst burst{start, count, spacing, waiter,
                                  occupant};
    for (const auto& listener : listeners_)
        listener(burst);
}

Tick
SmtExecUnit::executeBatch(ContextId ctx, std::uint32_t count, Tick now)
{
    if (count == 0)
        return now;
    totalOps_ += count;

    const unsigned slot = slotOf(ctx);
    const unsigned other = 1 - slot;
    const Tick op = params_.opLatency;
    const BatchState& peer = batches_[other];

    Tick end;
    if (peer.end <= now) {
        // Unit free: full throughput, no conflicts.
        end = now + static_cast<Tick>(count) * op;
    } else {
        // Contended: while the peer batch is active, the divider
        // round-robins, so each of our operations takes 2 * op.
        const Tick peer_remaining = peer.end - now;
        const Tick fully_contended =
            static_cast<Tick>(count) * 2 * op;
        std::uint64_t contended_ops;
        if (fully_contended <= peer_remaining) {
            contended_ops = count;
            end = now + fully_contended;
        } else {
            contended_ops = peer_remaining / (2 * op);
            const std::uint64_t free_ops = count - contended_ops;
            end = now + contended_ops * 2 * op + free_ops * op;
        }
        // Wait conflicts over the contended window, both directions:
        // our ops wait on the peer and the peer's ops wait on us.
        // Interleaved execution -> one wait per op slot of 2*op for
        // each side, the two sides offset by one op latency.
        const ContextId peer_ctx =
            static_cast<ContextId>(firstContext_ + other);
        emitBurst(now, contended_ops, 2 * op, ctx, peer_ctx);
        // The peer only waits on us while both batches are active.
        const Tick overlap_end = std::min(end, peer.end);
        const std::uint64_t peer_waits =
            overlap_end > now ? (overlap_end - now) / (2 * op) : 0;
        emitBurst(now + op, peer_waits, 2 * op, peer_ctx, ctx);
    }

    batches_[slot] = BatchState{now, end};
    return end;
}

void
SmtExecUnit::addWaitListener(WaitConflictListener listener)
{
    listeners_.push_back(std::move(listener));
}

} // namespace cchunter
