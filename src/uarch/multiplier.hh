/**
 * @file
 * The shared integer-multiplier unit of one SMT core.
 *
 * Wang and Lee demonstrated a covert channel through SMT/multiplier
 * contention (the paper's reference [7]); CC-Hunter's claim is that it
 * detects covert channels on *all* shared processor hardware using
 * recurrent conflict patterns, so the framework must handle this unit
 * with no channel-specific logic.  The multiplier shares the generic
 * SMT execution-unit contention model with a shorter operation latency
 * than the divider.
 */

#ifndef CCHUNTER_UARCH_MULTIPLIER_HH
#define CCHUNTER_UARCH_MULTIPLIER_HH

#include "uarch/exec_unit.hh"

namespace cchunter
{

/** Timing of the multiplier unit. */
struct MultiplierParams : public ExecUnitParams
{
    MultiplierParams() { opLatency = 3; }
};

/**
 * The shared multiplier of one core.
 */
class MultiplierUnit : public SmtExecUnit
{
  public:
    explicit MultiplierUnit(ContextId first_context,
                            MultiplierParams params = {})
        : SmtExecUnit("multiplier", first_context, params)
    {
    }
};

} // namespace cchunter

#endif // CCHUNTER_UARCH_MULTIPLIER_HH
