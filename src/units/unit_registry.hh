/**
 * @file
 * The monitor-unit registry: one descriptor per auditable shared
 * hardware structure, registered in a process-wide catalogue.
 *
 * CC-Hunter's thesis is that recurrent-burst/oscillation detection
 * covers *any* shared processor structure, so adding a structure must
 * be a registration, not a code sweep.  A UnitDescriptor carries
 * everything the layered stack previously obtained from per-unit
 * switch statements: the stable name, the conflict semantics, the
 * detector policy (contention vs. oscillation), default thresholds and
 * Δt, the recommended mitigation, and the hooks that configure a
 * machine, build the trojan/spy workload pair, and program the
 * CC-Auditor.
 *
 * Layers above (scenario, eval, fleet, mitigate) iterate or look up
 * descriptors; the only remaining per-unit translation shims are data
 * tables (monitorTargetName's array, the benign pairing table).
 */

#ifndef CCHUNTER_UNITS_UNIT_REGISTRY_HH
#define CCHUNTER_UNITS_UNIT_REGISTRY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "channels/message.hh"
#include "channels/timing.hh"
#include "detect/detector.hh"
#include "sim/machine.hh"
#include "util/types.hh"

namespace cchunter
{

/**
 * Workload a live-audited machine runs (the per-tenant unit of the
 * fleet subsystem, also usable standalone).  The channel workloads
 * place a trojan/spy pair on the named resource; BenignPair runs two
 * benchmark proxies with no channel at all (false-alarm baseline).
 * Channel values correspond one-to-one with registry descriptors.
 */
enum class AuditedWorkload : std::uint8_t
{
    Bus,
    Divider,
    Multiplier,
    Cache,
    BenignPair,
    Tlb,
};

/** Short lower-case name of an audited workload. */
const char* auditedWorkloadName(AuditedWorkload workload);

/** Parse a workload name; fatal on an unknown one, listing the valid
 *  (registry-derived) names. */
AuditedWorkload auditedWorkloadFromName(const std::string& name);

/**
 * Which two hardware units a BenignPair run audits (the two-slot
 * auditor limit).  Channel workloads always audit the attacked unit;
 * benign pairs pick a pairing so every unit kind can accumulate
 * negatives for the detection-quality corpus.
 */
enum class BenignAuditUnits : std::uint8_t
{
    BusDivider,    //!< default: both contention units of the pair
    CacheBus,      //!< shared L2 + bus: feeds the oscillation path
    MultiplierBus, //!< SMT multiplier + bus
    TlbBus,        //!< shared TLB + bus: oscillation negatives, too
};

/** One benign audit pairing: which unit each auditor slot watches. */
struct BenignPairing
{
    BenignAuditUnits id;
    const char* name;
    std::array<MonitorTarget, 2> slots;
};

/** The pairing table (registration order). */
const std::vector<BenignPairing>& benignPairings();

/** Look up a pairing (fatal on an unknown id). */
const BenignPairing& benignPairing(BenignAuditUnits id);

/** Available post-detection responses (see mitigate/). */
enum class MitigationKind : std::uint8_t
{
    None,
    UnshareCore,       //!< migrate one suspect to another core
    RateLimitBusLocks, //!< throttle atomic-unaligned transactions
};

/**
 * Per-run context handed to the descriptor hooks: the scenario layer's
 * translation of its options into unit-agnostic knobs.  `message` is
 * the wire message (already protocol-encoded when the run uses the
 * protocol adversary).
 */
struct UnitRunContext
{
    Message message;
    ChannelTiming timing;
    std::uint64_t seed = 1;

    // Oscillation-unit knobs (cache + TLB prime/probe channels).
    std::size_t channelSets = 512;
    std::size_t linesPerSet = 1;
    std::size_t cacheNoiseEvery = 24;
    Tick cacheDormantNoiseGap = 0;
    std::size_t roundsPerBit = 1;
    std::size_t tlbChannelSets = 32;

    // Contention-unit knobs.
    Cycles busEvasionPeriod = 0;

    // Auditor programming knobs.
    bool idealTracker = false;
    ConflictTrackerParams trackerParams;
};

/**
 * Everything the stack needs to know about one auditable unit.
 */
struct UnitDescriptor
{
    /** Auditor-level identity (also the channelSignature unit bits). */
    MonitorTarget id = MonitorTarget::None;

    /** Scenario-level workload tag for the unit's trojan/spy pair. */
    AuditedWorkload workload = AuditedWorkload::BenignPair;

    /** Stable lower-case name (config keys, stat prefixes, quality
     *  tables); must equal monitorTargetName(id). */
    const char* name = "";

    /** What constitutes one auditable conflict on this unit. */
    const char* conflictSemantics = "";

    /** Which analysis path judges the unit. */
    AlarmKind policy = AlarmKind::Contention;

    /** Default Δt of the contention histogram (0 for oscillation
     *  units, which have no count-down register). */
    Tick deltaT = 0;

    /**
     * Squash scale of the indicator2 backend on this unit (0 keeps
     * Indicator2Params' defaults).  The second-moment statistic is
     * expressed in the unit's own event-density terms — a divider
     * conflict burst packs hundreds of events per Δt window where a
     * bus lock burst packs tens — so, exactly like Δt, the scale that
     * maps "clearly covert" onto the same [0, 1) score band is a
     * per-unit calibration constant.  Contention units use it as the
     * contention scale, oscillation units as the run-length scale.
     */
    double indicator2Scale = 0.0;

    /** Paper operating point for the unit's verdicts. */
    DetectionThresholds defaultThresholds;

    /** Recommended post-detection response. */
    MitigationKind mitigation = MitigationKind::None;

    /** The two hardware contexts buildWorkload pins the trojan/spy
     *  pair onto — the pair the response ladder partitions or
     *  quarantines.  SMT channels share a core ({0, 1}); the bus
     *  channel crosses cores ({0, 2}). */
    std::array<ContextId, 2> channelContexts = {ContextId{0},
                                                ContextId{1}};

    /** Adjust machine parameters for a channel run on this unit
     *  (e.g. the cache channel's direct-mapped L2 substitution). */
    std::function<void(MachineParams&, const UnitRunContext&)>
        configureMachine;

    /** Adjust machine parameters for a benign run that audits this
     *  unit (e.g. enabling TLBs; never the channel-specific geometry
     *  substitutions). */
    std::function<void(MachineParams&, const UnitRunContext&)>
        configureBenignMachine;

    /** Add the unit's trojan/spy pair to the machine (channel runs
     *  pin them onto core 0's contexts). */
    std::function<void(Machine&, const UnitRunContext&)> buildWorkload;

    /** Program one auditor slot on this unit. */
    std::function<void(CCAuditor&, const AuditKey&, unsigned slot,
                       const UnitRunContext&)>
        program;
};

/**
 * The process-wide unit catalogue.  Iteration order is registration
 * order, which for the builtins follows the MonitorTarget values —
 * deterministic across runs, pinned by tests.
 */
class UnitRegistry
{
  public:
    /** Empty registry (tests); production code uses instance(). */
    UnitRegistry() = default;

    /** The singleton, with the builtin units registered. */
    static UnitRegistry& instance();

    /** Register a unit; fatal on a duplicate id, name or workload. */
    void registerUnit(UnitDescriptor descriptor);

    /** All descriptors, in registration order. */
    const std::vector<UnitDescriptor>& descriptors() const
    {
        return descriptors_;
    }

    /** Descriptor by auditor id (nullptr when unknown). */
    const UnitDescriptor* byId(MonitorTarget id) const;

    /** Descriptor by stable name (nullptr when unknown). */
    const UnitDescriptor* byName(const std::string& name) const;

    /** Descriptor by workload tag (nullptr when unknown — notably
     *  AuditedWorkload::BenignPair, which is not a unit). */
    const UnitDescriptor* byWorkload(AuditedWorkload workload) const;

    /** byId that is fatal on an unknown id. */
    const UnitDescriptor& require(MonitorTarget id) const;

  private:
    std::vector<UnitDescriptor> descriptors_;
};

} // namespace cchunter

#endif // CCHUNTER_UNITS_UNIT_REGISTRY_HH
