#include "units/unit_registry.hh"

#include <memory>
#include <string>

#include "channels/bus_channel.hh"
#include "channels/cache_channel.hh"
#include "channels/divider_channel.hh"
#include "channels/tlb_channel.hh"
#include "util/logging.hh"

namespace cchunter
{

namespace
{

/** Name reserved for the no-channel benchmark-pair workload; not a
 *  unit, so it lives beside the registry, not in it. */
constexpr const char* kBenignWorkloadName = "benign";

UnitDescriptor
makeBusUnit()
{
    UnitDescriptor d;
    d.id = MonitorTarget::MemoryBus;
    d.workload = AuditedWorkload::Bus;
    d.name = "bus";
    d.conflictSemantics =
        "atomic unaligned access asserting the shared bus lock";
    d.policy = AlarmKind::Contention;
    d.deltaT = busDeltaT;
    d.indicator2Scale = 50.0;
    d.mitigation = MitigationKind::RateLimitBusLocks;
    d.channelContexts = {ContextId{0}, ContextId{2}};
    d.buildWorkload = [](Machine& machine, const UnitRunContext& ctx) {
        BusTrojanParams tp;
        tp.timing = ctx.timing;
        tp.message = ctx.message;
        tp.evasionLockPeriod = ctx.busEvasionPeriod;
        machine.addProcess(std::make_unique<BusTrojan>(tp), 0);
        BusSpyParams sp;
        sp.timing = ctx.timing;
        machine.addProcess(std::make_unique<BusSpy>(sp), 2);
    };
    d.program = [](CCAuditor& auditor, const AuditKey& key,
                   unsigned slot, const UnitRunContext&) {
        auditor.monitorBus(key, slot);
    };
    return d;
}

UnitDescriptor
makeDividerUnit()
{
    UnitDescriptor d;
    d.id = MonitorTarget::IntegerDivider;
    d.workload = AuditedWorkload::Divider;
    d.name = "divider";
    d.conflictSemantics =
        "SMT sibling waiting on the busy integer divider";
    d.policy = AlarmKind::Contention;
    d.deltaT = dividerDeltaT;
    d.indicator2Scale = 2000.0;
    d.mitigation = MitigationKind::UnshareCore;
    d.buildWorkload = [](Machine& machine, const UnitRunContext& ctx) {
        DividerTrojanParams tp;
        tp.timing = ctx.timing;
        tp.message = ctx.message;
        machine.addProcess(std::make_unique<DividerTrojan>(tp), 0);
        DividerSpyParams sp;
        sp.timing = ctx.timing;
        machine.addProcess(std::make_unique<DividerSpy>(sp), 1);
    };
    d.program = [](CCAuditor& auditor, const AuditKey& key,
                   unsigned slot, const UnitRunContext&) {
        auditor.monitorDivider(key, slot, /*core=*/0);
    };
    return d;
}

UnitDescriptor
makeMultiplierUnit()
{
    UnitDescriptor d;
    d.id = MonitorTarget::IntegerMultiplier;
    d.workload = AuditedWorkload::Multiplier;
    d.name = "multiplier";
    d.conflictSemantics =
        "SMT sibling waiting on the busy integer multiplier";
    d.policy = AlarmKind::Contention;
    d.deltaT = multiplierDeltaT;
    d.indicator2Scale = 2000.0;
    d.mitigation = MitigationKind::UnshareCore;
    d.buildWorkload = [](Machine& machine, const UnitRunContext& ctx) {
        DividerTrojanParams tp;
        tp.timing = ctx.timing;
        tp.message = ctx.message;
        tp.useMultiplier = true;
        machine.addProcess(std::make_unique<DividerTrojan>(tp), 0);
        DividerSpyParams sp;
        sp.timing = ctx.timing;
        sp.useMultiplier = true;
        // Multiplier ops are 3 cycles: 20 ops -> 60 uncontended, 120
        // contended; split the decode threshold between the plateaus.
        sp.decodeThreshold = 90;
        machine.addProcess(std::make_unique<DividerSpy>(sp), 1);
    };
    d.program = [](CCAuditor& auditor, const AuditKey& key,
                   unsigned slot, const UnitRunContext&) {
        auditor.monitorMultiplier(key, slot, /*core=*/0);
    };
    return d;
}

UnitDescriptor
makeCacheUnit()
{
    UnitDescriptor d;
    d.id = MonitorTarget::L2Cache;
    d.workload = AuditedWorkload::Cache;
    d.name = "cache";
    d.conflictSemantics =
        "conflict miss displacing another context's L2 line";
    d.policy = AlarmKind::Oscillation;
    d.indicator2Scale = 64.0;
    d.mitigation = MitigationKind::UnshareCore;
    d.configureMachine = [](MachineParams& mp, const UnitRunContext&) {
        // The cache channel experiments configure the 256 KB L2 with
        // associativity 1 (4096 sets) so that each side implements the
        // prime/probe conflict with a single line per set; see
        // DESIGN.md for the substitution note.
        mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    };
    d.buildWorkload = [](Machine& machine, const UnitRunContext& ctx) {
        CacheChannelLayout layout;
        const CacheGeometry& l2 = machine.mem().l2(0).geometry();
        layout.l2NumSets = l2.numSets();
        layout.lineSize = l2.lineSize;
        layout.channelSets = ctx.channelSets;
        layout.linesPerSet = ctx.linesPerSet;
        CacheTrojanParams tp;
        tp.timing = ctx.timing;
        tp.message = ctx.message;
        tp.layout = layout;
        tp.roundsPerBit = ctx.roundsPerBit;
        machine.addProcess(std::make_unique<CacheTrojan>(tp), 0);
        CacheSpyParams sp;
        sp.timing = ctx.timing;
        sp.layout = layout;
        sp.noiseEvery = ctx.cacheNoiseEvery;
        sp.dormantNoiseGap = ctx.cacheDormantNoiseGap;
        sp.roundsPerBit = ctx.roundsPerBit;
        sp.seed = ctx.seed + 7;
        machine.addProcess(std::make_unique<CacheSpy>(sp), 1);
    };
    d.program = [](CCAuditor& auditor, const AuditKey& key,
                   unsigned slot, const UnitRunContext& ctx) {
        if (ctx.idealTracker)
            auditor.monitorCacheIdeal(key, slot, /*core=*/0);
        else
            auditor.monitorCache(key, slot, /*core=*/0,
                                 ctx.trackerParams);
    };
    return d;
}

UnitDescriptor
makeTlbUnit()
{
    UnitDescriptor d;
    d.id = MonitorTarget::Tlb;
    d.workload = AuditedWorkload::Tlb;
    d.name = "tlb";
    d.conflictSemantics =
        "fill displacing another context's TLB translation";
    d.policy = AlarmKind::Oscillation;
    d.indicator2Scale = 64.0;
    d.mitigation = MitigationKind::UnshareCore;
    const auto enableTlb = [](MachineParams& mp,
                              const UnitRunContext&) {
        mp.mem.tlb.enabled = true;
    };
    d.configureMachine = enableTlb;
    d.configureBenignMachine = enableTlb;
    d.buildWorkload = [](Machine& machine, const UnitRunContext& ctx) {
        const Tlb& tlb = machine.mem().tlb(0);
        TlbChannelLayout layout;
        layout.tlbNumSets = tlb.numSets();
        layout.tlbWays = tlb.params().associativity;
        layout.pageBytes = tlb.params().pageBytes;
        layout.channelSets = ctx.tlbChannelSets;
        TlbTrojanParams tp;
        tp.timing = ctx.timing;
        tp.message = ctx.message;
        tp.layout = layout;
        tp.roundsPerBit = ctx.roundsPerBit;
        machine.addProcess(std::make_unique<TlbTrojan>(tp), 0);
        TlbSpyParams sp;
        sp.timing = ctx.timing;
        sp.layout = layout;
        sp.roundsPerBit = ctx.roundsPerBit;
        sp.seed = ctx.seed + 7;
        machine.addProcess(std::make_unique<TlbSpy>(sp), 1);
    };
    d.program = [](CCAuditor& auditor, const AuditKey& key,
                   unsigned slot, const UnitRunContext&) {
        auditor.monitorTlb(key, slot, /*core=*/0);
    };
    return d;
}

void
validateDescriptor(const UnitDescriptor& d)
{
    if (d.id == MonitorTarget::None)
        fatal("UnitRegistry: descriptor needs a monitor target");
    if (d.workload == AuditedWorkload::BenignPair)
        fatal("UnitRegistry: BenignPair is not a unit workload");
    if (d.name == nullptr || *d.name == '\0')
        fatal("UnitRegistry: descriptor needs a name");
    if (!d.buildWorkload)
        fatal("UnitRegistry: unit '", d.name,
              "' needs a workload factory");
    if (!d.program)
        fatal("UnitRegistry: unit '", d.name,
              "' needs an auditor-programming hook");
}

} // namespace

void
UnitRegistry::registerUnit(UnitDescriptor descriptor)
{
    validateDescriptor(descriptor);
    for (const UnitDescriptor& existing : descriptors_) {
        if (existing.id == descriptor.id)
            fatal("UnitRegistry: duplicate unit id for '",
                  descriptor.name, "' (already '", existing.name,
                  "')");
        if (std::string(existing.name) == descriptor.name)
            fatal("UnitRegistry: duplicate unit name '",
                  descriptor.name, "'");
        if (existing.workload == descriptor.workload)
            fatal("UnitRegistry: duplicate workload tag for '",
                  descriptor.name, "' (already '", existing.name,
                  "')");
    }
    descriptors_.push_back(std::move(descriptor));
}

UnitRegistry&
UnitRegistry::instance()
{
    static UnitRegistry registry = [] {
        UnitRegistry r;
        r.registerUnit(makeBusUnit());
        r.registerUnit(makeDividerUnit());
        r.registerUnit(makeMultiplierUnit());
        r.registerUnit(makeCacheUnit());
        r.registerUnit(makeTlbUnit());
        return r;
    }();
    return registry;
}

const UnitDescriptor*
UnitRegistry::byId(MonitorTarget id) const
{
    for (const UnitDescriptor& d : descriptors_)
        if (d.id == id)
            return &d;
    return nullptr;
}

const UnitDescriptor*
UnitRegistry::byName(const std::string& name) const
{
    for (const UnitDescriptor& d : descriptors_)
        if (name == d.name)
            return &d;
    return nullptr;
}

const UnitDescriptor*
UnitRegistry::byWorkload(AuditedWorkload workload) const
{
    for (const UnitDescriptor& d : descriptors_)
        if (d.workload == workload)
            return &d;
    return nullptr;
}

const UnitDescriptor&
UnitRegistry::require(MonitorTarget id) const
{
    const UnitDescriptor* d = byId(id);
    if (!d)
        fatal("UnitRegistry: no unit registered for target '",
              monitorTargetName(id), "'");
    return *d;
}

const char*
auditedWorkloadName(AuditedWorkload workload)
{
    if (workload == AuditedWorkload::BenignPair)
        return kBenignWorkloadName;
    if (const UnitDescriptor* d =
            UnitRegistry::instance().byWorkload(workload))
        return d->name;
    return "?";
}

AuditedWorkload
auditedWorkloadFromName(const std::string& name)
{
    if (name == kBenignWorkloadName)
        return AuditedWorkload::BenignPair;
    if (const UnitDescriptor* d =
            UnitRegistry::instance().byName(name))
        return d->workload;
    std::string valid;
    for (const UnitDescriptor& d :
         UnitRegistry::instance().descriptors()) {
        valid += d.name;
        valid += ", ";
    }
    valid += kBenignWorkloadName;
    fatal("unknown audited workload: '", name, "' (valid: ", valid,
          ")");
}

const std::vector<BenignPairing>&
benignPairings()
{
    static const std::vector<BenignPairing> pairings{
        {BenignAuditUnits::BusDivider, "bus+divider",
         {MonitorTarget::MemoryBus, MonitorTarget::IntegerDivider}},
        {BenignAuditUnits::CacheBus, "cache+bus",
         {MonitorTarget::L2Cache, MonitorTarget::MemoryBus}},
        {BenignAuditUnits::MultiplierBus, "multiplier+bus",
         {MonitorTarget::IntegerMultiplier, MonitorTarget::MemoryBus}},
        {BenignAuditUnits::TlbBus, "tlb+bus",
         {MonitorTarget::Tlb, MonitorTarget::MemoryBus}},
    };
    return pairings;
}

const BenignPairing&
benignPairing(BenignAuditUnits id)
{
    for (const BenignPairing& p : benignPairings())
        if (p.id == id)
            return p;
    fatal("unknown benign audit pairing: ",
          static_cast<int>(id));
}

} // namespace cchunter
