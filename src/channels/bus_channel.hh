/**
 * @file
 * The memory-bus covert timing channel (paper section IV-A).
 *
 * To transmit '1' the trojan repeatedly performs atomic unaligned
 * accesses spanning two cache lines; each asserts the bus lock and puts
 * the bus in a contended state.  To transmit '0' it leaves the bus
 * idle.  The spy continuously generates cache misses and times them:
 * inflated average latency within a bit slot decodes as '1'.
 */

#ifndef CCHUNTER_CHANNELS_BUS_CHANNEL_HH
#define CCHUNTER_CHANNELS_BUS_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "channels/channel_spy.hh"
#include "channels/message.hh"
#include "channels/timing.hh"
#include "sim/workload.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cchunter
{

/** Configuration of the bus trojan. */
struct BusTrojanParams
{
    ChannelTiming timing;
    Message message;
    bool repeat = true;        //!< retransmit the message cyclically
    Cycles lockPeriod = 5000;  //!< spacing between locked accesses
    Addr addrBase = 0x10000000; //!< trojan-private address region
    /**
     * Evasion attempt (paper section III): while *not* signalling, the
     * trojan emits decoy locks with this mean spacing (0 disables),
     * jittered randomly, hoping to drown the burst pattern.  The
     * paper's point — reproduced by bench_ext_evasion — is that the
     * decoys corrupt the spy's decoding long before they blur the
     * detector's statistics.
     */
    Cycles evasionLockPeriod = 0;
    std::uint64_t seed = 17;   //!< evasion jitter stream
};

/**
 * The transmitting side of the bus channel.
 */
class BusTrojan : public Workload
{
  public:
    explicit BusTrojan(BusTrojanParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "bus-trojan"; }

    /** Locked accesses issued so far. */
    std::uint64_t locksIssued() const { return locksIssued_; }

    /** Bits whose signal window has begun. */
    std::size_t bitsSignalled() const { return bitsSignalled_; }

  private:
    Addr nextUnalignedAddr();

    BusTrojanParams params_;
    Rng rng_;
    Tick nextDecoyAt_ = 0;
    Tick nextLockAt_ = 0;
    std::size_t lastBit_ = SIZE_MAX;
    std::uint64_t locksIssued_ = 0;
    std::size_t bitsSignalled_ = 0;
    unsigned addrCursor_ = 0;
};

/** Configuration of the bus spy. */
struct BusSpyParams
{
    ChannelTiming timing;       //!< must match the trojan's timing
    std::size_t sampleAccesses = 32; //!< misses averaged per sample
    Cycles decodeThreshold = 450;    //!< fallback mean separating 0 / 1
    /**
     * Self-calibrating decode: once the observed slot means span a
     * sufficient range, the threshold becomes their midpoint (real
     * spies calibrate against the live baseline, which shifts with
     * background load).
     */
    bool adaptiveDecode = true;
    Addr addrBase = 0x20000000;      //!< spy-private streaming region
    std::size_t regionBytes = 8 * 1024 * 1024;
    std::size_t maxBits = 0;  //!< stop after N bits (0 = run forever)
};

/**
 * The receiving side: times memory accesses to sense bus contention.
 */
class BusSpy : public Workload, public ChannelSpy
{
  public:
    explicit BusSpy(BusSpyParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "bus-spy"; }

    /** Average-latency samples (the series of paper figure 2). */
    const std::vector<double>& samples() const { return samples_; }

    /** Bits decoded so far. */
    Message decoded() const override;

    /** (bit-slot index, decoded value) pairs, in decode order. */
    const std::vector<std::pair<std::size_t, bool>>& decodedSlots()
        const override
    {
        return decodedSlots_;
    }

    /** (bit-slot index, mean observed latency) pairs, per decoded
     *  slot. */
    const std::vector<std::pair<std::size_t, double>>& slotMeans()
        const
    {
        return slotMeans_;
    }

  private:
    void finishSlot();
    double currentThreshold() const;

    BusSpyParams params_;
    std::vector<double> samples_;
    std::vector<std::pair<std::size_t, bool>> decodedSlots_;
    std::vector<std::pair<std::size_t, double>> slotMeans_;
    double minSlotMean_ = 0.0;
    double maxSlotMean_ = 0.0;
    bool haveSlotMeans_ = false;
    bool pendingMeasure_ = false;
    double sampleSum_ = 0.0;
    std::size_t sampleCount_ = 0;
    double slotSum_ = 0.0;
    std::size_t slotCount_ = 0;
    std::size_t currentSlot_ = 0;
    std::uint64_t addrCursor_ = 0;
    bool done_ = false;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_BUS_CHANNEL_HH
