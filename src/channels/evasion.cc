#include "channels/evasion.hh"

#include "util/logging.hh"

namespace cchunter
{

const char*
evasionStrategyName(EvasionStrategy strategy)
{
    switch (strategy) {
    case EvasionStrategy::None:
        return "none";
    case EvasionStrategy::RandomGaps:
        return "gaps";
    case EvasionStrategy::DutyCycle:
        return "duty";
    case EvasionStrategy::LowAndSlow:
        return "lowslow";
    }
    return "?";
}

EvasionStrategy
evasionStrategyFromName(const std::string& name)
{
    for (const EvasionStrategy s :
         {EvasionStrategy::None, EvasionStrategy::RandomGaps,
          EvasionStrategy::DutyCycle, EvasionStrategy::LowAndSlow})
        if (name == evasionStrategyName(s))
            return s;
    fatal("unknown evasion strategy '", name,
          "' (valid: none, gaps, duty, lowslow)");
}

void
EvasionPlan::validate() const
{
    if (gapJitter < 0.0 || gapJitter > 1.0)
        fatal("EvasionPlan: gap_jitter ", gapJitter,
              " outside [0, 1]");
    if (dutyMin <= 0.0 || dutyMin > 1.0)
        fatal("EvasionPlan: duty_min ", dutyMin, " outside (0, 1]");
    if (dutyMax <= 0.0 || dutyMax > 1.0)
        fatal("EvasionPlan: duty_max ", dutyMax, " outside (0, 1]");
    if (dutyMin > dutyMax)
        fatal("EvasionPlan: duty_min ", dutyMin,
              " exceeds duty_max ", dutyMax);
    if (stretch == 0)
        fatal("EvasionPlan: stretch must be >= 1");
}

EvasionPlan
EvasionPlan::fromConfig(const Config& cfg)
{
    EvasionPlan plan;
    plan.strategy = evasionStrategyFromName(cfg.getString(
        "evasion.strategy", evasionStrategyName(plan.strategy)));
    plan.seed = cfg.getUint("evasion.seed", plan.seed);
    plan.gapJitter = cfg.getDouble("evasion.gap_jitter", plan.gapJitter);
    plan.dutyMin = cfg.getDouble("evasion.duty_min", plan.dutyMin);
    plan.dutyMax = cfg.getDouble("evasion.duty_max", plan.dutyMax);
    plan.stretch = cfg.getUint("evasion.stretch", plan.stretch);
    plan.validate();
    return plan;
}

void
EvasionPlan::toConfig(Config& cfg) const
{
    cfg.set("evasion.strategy", std::string(evasionStrategyName(strategy)));
    cfg.set("evasion.seed", static_cast<std::int64_t>(seed));
    cfg.set("evasion.gap_jitter", gapJitter);
    cfg.set("evasion.duty_min", dutyMin);
    cfg.set("evasion.duty_max", dutyMax);
    cfg.set("evasion.stretch", static_cast<std::int64_t>(stretch));
}

std::uint64_t
EvasionPlan::bitHash(std::size_t bit) const
{
    // splitmix64 over (seed, bit): cheap, stateless, identical on
    // both ends of the pair, and O(1) per query so the timing API
    // stays constant-time.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                                 (static_cast<std::uint64_t>(bit) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
EvasionPlan::bitUnit(std::size_t bit) const
{
    return static_cast<double>(bitHash(bit) >> 11) * 0x1.0p-53;
}

} // namespace cchunter
