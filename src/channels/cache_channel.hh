/**
 * @file
 * The shared-L2-cache covert timing channel (paper section IV-C, after
 * Xu et al.).
 *
 * Trojan and spy agree (during synchronization) on two groups of cache
 * sets, G1 and G0.  To transmit '1' the trojan visits G1 and replaces
 * the constituent blocks (evicting the spy's lines); for '0' it visits
 * G0.  The spy then probes *both* groups, timing them: the group whose
 * accesses miss (higher latency) names the transmitted bit, and the
 * probe simultaneously re-installs the spy's lines for the next round.
 *
 * Each prime step evicts a spy line (a T->S conflict miss) and each
 * probe step of the primed group re-evicts a trojan line (S->T), so the
 * labelled conflict-miss train oscillates with a period close to the
 * total number of channel sets — the signature figure 8 detects.
 */

#ifndef CCHUNTER_CHANNELS_CACHE_CHANNEL_HH
#define CCHUNTER_CHANNELS_CACHE_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "channels/channel_spy.hh"
#include "channels/message.hh"
#include "channels/timing.hh"
#include "sim/workload.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cchunter
{

/**
 * Geometry of the agreed-on set groups, shared by both sides.
 */
struct CacheChannelLayout
{
    std::size_t l2NumSets = 4096; //!< sets in the monitored L2
    std::size_t lineSize = 64;
    std::size_t channelSets = 512; //!< total sets across G1 and G0
    std::size_t firstSet = 0;      //!< first set used by the channel
    std::size_t linesPerSet = 1;   //!< lines each side maps per set

    std::size_t
    setsPerGroup() const
    {
        return channelSets / 2;
    }

    /** Distinct lines one side touches per prime of one group. */
    std::size_t
    linesPerGroup() const
    {
        return setsPerGroup() * linesPerSet;
    }

    /**
     * Address of the `line`-th line the caller maps onto the `idx`-th
     * set of a group.  Adding multiples of (l2NumSets * lineSize)
     * changes the tag while preserving the set index.
     */
    Addr addrFor(Addr base, bool group1, std::size_t idx,
                 std::size_t line) const;
};

/** Configuration of the cache trojan. */
struct CacheTrojanParams
{
    ChannelTiming timing;
    Message message;
    CacheChannelLayout layout;
    bool repeat = true;
    Addr addrBase = 0x40000000; //!< trojan's private tag space
    /**
     * Prime/probe rounds per bit.  Reliable transmission needs "a
     * certain number of conflicts per second" (paper section VI-A):
     * both sides repeat the prime/probe cycle throughout the signal
     * window, so even one bit produces many oscillation periods.
     */
    std::size_t roundsPerBit = 1;
};

/**
 * The transmitting side of the cache channel.
 */
class CacheTrojan : public Workload
{
  public:
    explicit CacheTrojan(CacheTrojanParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "cache-trojan"; }

    std::uint64_t primesIssued() const { return primesIssued_; }

  private:
    CacheTrojanParams params_;
    std::size_t lastBit_ = SIZE_MAX;
    std::uint64_t lastRoundKey_ = UINT64_MAX;
    std::size_t primeCursor_ = 0;
    std::uint64_t primesIssued_ = 0;
};

/** Configuration of the cache spy. */
struct CacheSpyParams
{
    ChannelTiming timing;
    CacheChannelLayout layout;
    Addr addrBase = 0x80000000; //!< spy's private tag space
    Addr noiseBase = 0xc0000000; //!< "surrounding code" noise region
    /** Issue one random (noise) access every N probes; 0 disables.
     *  Models the random conflict misses of surrounding code that
     *  shift the autocorrelation peak slightly beyond the set count. */
    std::size_t noiseEvery = 0;
    /**
     * While dormant (outside the probe window), issue one random
     * "cover program" access every this-many ticks; 0 disables.  On
     * very low-bandwidth channels these accesses interleave random
     * conflict labels between the sparse signalling episodes, diluting
     * whole-series autocorrelation (the effect paper figure 11
     * counters with finer observation windows).
     */
    Tick dormantNoiseGap = 0;
    std::size_t maxBits = 0; //!< stop after N bits (0 = forever)
    std::uint64_t seed = 99;
    /** Prime/probe rounds per bit; must match the trojan's. */
    std::size_t roundsPerBit = 1;
};

/**
 * The receiving side of the cache channel (prime+probe timing).
 */
class CacheSpy : public Workload, public ChannelSpy
{
  public:
    explicit CacheSpy(CacheSpyParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "cache-spy"; }

    /** G1/G0 access-time ratios, one per bit (paper figure 7). */
    const std::vector<double>& ratios() const { return ratios_; }

    Message decoded() const override;

    /** (bit-slot index, decoded value) pairs, in decode order. */
    const std::vector<std::pair<std::size_t, bool>>& decodedSlots()
        const override
    {
        return decodedSlots_;
    }

  private:
    void finishBit();

    CacheSpyParams params_;
    Rng rng_;
    std::vector<double> ratios_;
    std::vector<std::pair<std::size_t, bool>> decodedSlots_;
    std::size_t lastBit_ = SIZE_MAX;
    std::uint64_t lastRoundKey_ = UINT64_MAX;
    std::size_t probeCursor_ = 0;
    bool pendingMeasure_ = false;
    bool measuringG1_ = false;
    double g1Sum_ = 0.0;
    std::size_t g1Count_ = 0;
    double g0Sum_ = 0.0;
    std::size_t g0Count_ = 0;
    std::size_t sinceNoise_ = 0;
    Tick nextDormantRead_ = 0;
    bool done_ = false;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_CACHE_CHANNEL_HH
