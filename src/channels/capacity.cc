#include "channels/capacity.hh"

#include <algorithm>
#include <cmath>

namespace cchunter
{

double
binaryEntropy(double p)
{
    p = std::clamp(p, 0.0, 1.0);
    if (p == 0.0 || p == 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double
bscCapacity(double errorRate)
{
    return std::clamp(1.0 - binaryEntropy(errorRate), 0.0, 1.0);
}

} // namespace cchunter
