/**
 * @file
 * The shared-TLB covert timing channel (TLBleed-style prime/probe
 * between SMT siblings sharing a per-core TLB).
 *
 * Trojan and spy agree on two groups of TLB sets, G1 and G0.  To
 * transmit '1' the trojan touches one page per way in every set of G1,
 * filling those sets and displacing the spy's translations; for '0' it
 * fills G0.  The spy keeps one page resident per set of both groups and
 * probes them each round, timing the accesses: the group whose
 * translations walk (higher latency) names the transmitted bit, and the
 * probe re-installs the spy's entries for the next round.
 *
 * Every trojan fill that displaces a spy translation is a T->S
 * cross-context displacement and every probe of the primed group
 * re-displaces a trojan entry (S->T), so the labelled conflict train
 * oscillates with a period close to the number of channel sets —
 * the same signature the cache channel exhibits, on a different shared
 * structure.
 *
 * Addresses are laid out so each page additionally owns a distinct
 * cache-line slot inside the page (spy slots disjoint from trojan
 * slots), keeping the probe working set L1-resident and the timing
 * difference purely TLB-induced.
 */

#ifndef CCHUNTER_CHANNELS_TLB_CHANNEL_HH
#define CCHUNTER_CHANNELS_TLB_CHANNEL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "channels/channel_spy.hh"
#include "channels/message.hh"
#include "channels/timing.hh"
#include "sim/workload.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cchunter
{

/**
 * Geometry of the agreed-on TLB set groups, shared by both sides.
 */
struct TlbChannelLayout
{
    std::size_t tlbNumSets = 64; //!< sets in the monitored TLB
    std::size_t tlbWays = 4;     //!< associativity (trojan fill depth)
    std::size_t pageBytes = 4096;
    std::size_t lineBytes = 64;   //!< cache-line slot stride
    std::size_t channelSets = 32; //!< total sets across G1 and G0
    std::size_t firstSet = 0;     //!< first TLB set used

    std::size_t
    setsPerGroup() const
    {
        return channelSets / 2;
    }

    /** Pages the trojan touches per prime of one group. */
    std::size_t
    pagesPerGroup() const
    {
        return setsPerGroup() * tlbWays;
    }

    /**
     * Address of the trojan's `way`-th page mapped onto the `idx`-th
     * set of a group.  Adding multiples of (tlbNumSets * pageBytes)
     * changes the page while preserving the TLB set index.
     */
    Addr trojanAddr(Addr base, bool group1, std::size_t idx,
                    std::size_t way) const;

    /** Address of the spy's single resident page for the `idx`-th set
     *  of a group. */
    Addr spyAddr(Addr base, bool group1, std::size_t idx) const;

    void validate(const char* who) const;
};

/** Configuration of the TLB trojan. */
struct TlbTrojanParams
{
    ChannelTiming timing;
    Message message;
    TlbChannelLayout layout;
    bool repeat = true;
    Addr addrBase = 0x40000000; //!< trojan's private page space
    /** Prime/probe rounds per bit (see CacheTrojanParams). */
    std::size_t roundsPerBit = 1;
};

/**
 * The transmitting side of the TLB channel.
 */
class TlbTrojan : public Workload
{
  public:
    explicit TlbTrojan(TlbTrojanParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "tlb-trojan"; }

    std::uint64_t primesIssued() const { return primesIssued_; }

  private:
    TlbTrojanParams params_;
    std::uint64_t lastRoundKey_ = UINT64_MAX;
    std::size_t primeCursor_ = 0;
    std::uint64_t primesIssued_ = 0;
};

/** Configuration of the TLB spy. */
struct TlbSpyParams
{
    ChannelTiming timing;
    TlbChannelLayout layout;
    Addr addrBase = 0x80000000;  //!< spy's private page space
    Addr noiseBase = 0xc0000000; //!< "surrounding code" noise region
    /** Issue one random (noise) access every N probes; 0 disables. */
    std::size_t noiseEvery = 0;
    /** Dormant-phase cover-program read gap in ticks; 0 disables. */
    Tick dormantNoiseGap = 0;
    std::size_t maxBits = 0; //!< stop after N bits (0 = forever)
    std::uint64_t seed = 99;
    /** Prime/probe rounds per bit; must match the trojan's. */
    std::size_t roundsPerBit = 1;
};

/**
 * The receiving side of the TLB channel (prime+probe timing).
 */
class TlbSpy : public Workload, public ChannelSpy
{
  public:
    explicit TlbSpy(TlbSpyParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "tlb-spy"; }

    /** G1/G0 access-time ratios, one per bit. */
    const std::vector<double>& ratios() const { return ratios_; }

    Message decoded() const override;

    /** (bit-slot index, decoded value) pairs, in decode order. */
    const std::vector<std::pair<std::size_t, bool>>& decodedSlots()
        const override
    {
        return decodedSlots_;
    }

  private:
    void finishBit();

    TlbSpyParams params_;
    Rng rng_;
    std::vector<double> ratios_;
    std::vector<std::pair<std::size_t, bool>> decodedSlots_;
    std::size_t lastBit_ = SIZE_MAX;
    std::uint64_t lastRoundKey_ = UINT64_MAX;
    std::size_t probeCursor_ = 0;
    bool pendingMeasure_ = false;
    bool measuringG1_ = false;
    double g1Sum_ = 0.0;
    std::size_t g1Count_ = 0;
    double g0Sum_ = 0.0;
    std::size_t g0Count_ = 0;
    std::size_t sinceNoise_ = 0;
    Tick nextDormantRead_ = 0;
    bool done_ = false;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_TLB_CHANNEL_HH
