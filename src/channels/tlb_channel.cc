#include "channels/tlb_channel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

void
TlbChannelLayout::validate(const char* who) const
{
    if (channelSets < 2 || channelSets % 2 != 0)
        fatal(who, ": channelSets must be even and >= 2");
    if (firstSet + channelSets > tlbNumSets)
        fatal(who, ": channel sets exceed the TLB");
    if (tlbWays == 0)
        fatal(who, ": tlbWays must be positive");
    if (2 * channelSets * lineBytes > pageBytes)
        fatal(who, ": too many channel sets for the in-page cache-line "
                   "slots");
}

namespace
{

/**
 * Compose an address owning TLB set `set` (via its page number) and a
 * distinct cache-line slot inside the page.  Spy pages use slots
 * [0, channelSets) and trojan pages slots [channelSets, 2*channelSets),
 * so the two sides never collide in the (per-context) L1 or shared L2
 * and the probe latency difference is purely TLB-induced.
 */
Addr
composeAddr(const TlbChannelLayout& l, Addr base, std::size_t set,
            std::size_t tagMultiple, std::size_t lineSlot)
{
    const Addr page = static_cast<Addr>(set) +
                      static_cast<Addr>(tagMultiple) * l.tlbNumSets;
    return base + page * l.pageBytes +
           static_cast<Addr>(lineSlot) * l.lineBytes;
}

} // namespace

Addr
TlbChannelLayout::trojanAddr(Addr base, bool group1, std::size_t idx,
                             std::size_t way) const
{
    if (idx >= setsPerGroup())
        panic("TlbChannelLayout: set index out of range");
    if (way >= tlbWays)
        panic("TlbChannelLayout: way index out of range");
    const std::size_t group_off = group1 ? 0 : setsPerGroup();
    const std::size_t set = firstSet + group_off + idx;
    const std::size_t slot = channelSets + (group_off + idx) % channelSets;
    return composeAddr(*this, base, set, way, slot);
}

Addr
TlbChannelLayout::spyAddr(Addr base, bool group1, std::size_t idx) const
{
    if (idx >= setsPerGroup())
        panic("TlbChannelLayout: set index out of range");
    const std::size_t group_off = group1 ? 0 : setsPerGroup();
    const std::size_t set = firstSet + group_off + idx;
    return composeAddr(*this, base, set, 0, group_off + idx);
}

TlbTrojan::TlbTrojan(TlbTrojanParams params) : params_(std::move(params))
{
    if (params_.message.empty())
        fatal("TlbTrojan: empty message");
    params_.layout.validate("TlbTrojan");
}

Action
TlbTrojan::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t bit = t.bitIndexAt(now);
    if (!params_.repeat && bit >= params_.message.size())
        return Action::halt();

    // Rounds: the signal window splits into roundsPerBit prime/probe
    // cycles; the trojan fills during the first half of each round.
    const Tick win_start = t.signalStart(bit);
    const Tick signal = t.activeTicks(bit);
    const std::size_t rounds =
        std::max<std::size_t>(1, params_.roundsPerBit);
    const Tick round_ticks = std::max<Tick>(2, signal / rounds);
    if (now >= win_start + signal)
        return Action::sleepUntil(t.bitStart(bit + 1));
    if (now < win_start)
        return Action::sleepUntil(win_start);

    const std::size_t round = std::min<std::size_t>(
        rounds - 1,
        static_cast<std::size_t>((now - win_start) / round_ticks));
    const std::uint64_t round_key =
        static_cast<std::uint64_t>(bit) * rounds + round;
    if (round_key != lastRoundKey_) {
        lastRoundKey_ = round_key;
        primeCursor_ = 0;
    }

    const bool value = params_.message.bitCyclic(bit);
    const Tick round_start = win_start + round * round_ticks;
    const Tick prime_end = round_start + round_ticks / 2;
    const std::size_t total = params_.layout.pagesPerGroup();
    if (primeCursor_ >= total || now >= prime_end) {
        const Tick next_round = round_start + round_ticks;
        if (round + 1 < rounds && next_round < win_start + signal)
            return Action::sleepUntil(next_round);
        return Action::sleepUntil(t.bitStart(bit + 1));
    }

    // Way-major: visit every set at way w before moving to way w+1, so
    // the spy's (most recently used) entries are displaced in one
    // contiguous burst by the final way pass.
    const std::size_t idx = primeCursor_ % params_.layout.setsPerGroup();
    const std::size_t way = primeCursor_ / params_.layout.setsPerGroup();
    ++primeCursor_;
    ++primesIssued_;
    return Action::read(
        params_.layout.trojanAddr(params_.addrBase, value, idx, way));
}

TlbSpy::TlbSpy(TlbSpyParams params)
    : params_(std::move(params)), rng_(params.seed)
{
    params_.layout.validate("TlbSpy");
}

Message
TlbSpy::decoded() const
{
    std::vector<bool> bits;
    bits.reserve(decodedSlots_.size());
    for (const auto& [slot, value] : decodedSlots_)
        bits.push_back(value);
    return Message::fromBits(std::move(bits));
}

void
TlbSpy::finishBit()
{
    if (g1Count_ == 0 || g0Count_ == 0)
        return;
    const double g1 = g1Sum_ / static_cast<double>(g1Count_);
    const double g0 = g0Sum_ / static_cast<double>(g0Count_);
    const double ratio = g0 > 0.0 ? g1 / g0 : 0.0;
    ratios_.push_back(ratio);
    decodedSlots_.emplace_back(lastBit_, ratio > 1.0);
    g1Sum_ = g0Sum_ = 0.0;
    g1Count_ = g0Count_ = 0;
}

Action
TlbSpy::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;

    if (pendingMeasure_) {
        pendingMeasure_ = false;
        const double lat = static_cast<double>(view.lastLatency);
        if (measuringG1_) {
            g1Sum_ += lat;
            ++g1Count_;
        } else {
            g0Sum_ += lat;
            ++g0Count_;
        }
    }

    if (done_)
        return Action::halt();
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t bit = t.bitIndexAt(now);
    if (bit != lastBit_) {
        finishBit();
        lastBit_ = bit;
        probeCursor_ = 0;
        if (params_.maxBits != 0 &&
            decodedSlots_.size() >= params_.maxBits) {
            done_ = true;
            return Action::halt();
        }
    }

    // While dormant (outside the signal window), optionally behave
    // like the embedding cover program: sparse random reads, not pure
    // sleep.
    const Tick win_start = t.signalStart(bit);
    const Tick signal = t.activeTicks(bit);
    auto dormant_until = [&](Tick until) -> Action {
        if (params_.dormantNoiseGap == 0)
            return Action::sleepUntil(until);
        if (now >= nextDormantRead_) {
            nextDormantRead_ = now + params_.dormantNoiseGap;
            const Addr noise =
                params_.noiseBase +
                rng_.nextBelow(params_.layout.tlbNumSets * 2) *
                    params_.layout.pageBytes;
            return Action::read(noise);
        }
        return Action::sleepUntil(std::min(nextDormantRead_, until));
    };
    if (now >= win_start + signal)
        return dormant_until(t.bitStart(bit + 1));
    if (now < win_start)
        return dormant_until(win_start);

    // Rounds: probe during the second half of each prime/probe round.
    const std::size_t rounds =
        std::max<std::size_t>(1, params_.roundsPerBit);
    const Tick round_ticks = std::max<Tick>(2, signal / rounds);
    const std::size_t round = std::min<std::size_t>(
        rounds - 1,
        static_cast<std::size_t>((now - win_start) / round_ticks));
    const std::uint64_t round_key =
        static_cast<std::uint64_t>(bit) * rounds + round;
    if (round_key != lastRoundKey_) {
        lastRoundKey_ = round_key;
        probeCursor_ = 0;
    }
    const Tick round_start = win_start + round * round_ticks;
    const Tick probe_start = round_start + round_ticks / 2;
    if (now < probe_start)
        return Action::sleepUntil(probe_start);

    const std::size_t per_group = params_.layout.setsPerGroup();
    const std::size_t total = 2 * per_group;
    if (probeCursor_ >= total) {
        const Tick next_round = round_start + round_ticks;
        if (round + 1 < rounds && next_round < win_start + signal)
            return Action::sleepUntil(next_round);
        finishBit();
        return dormant_until(t.bitStart(bit + 1));
    }

    // Occasional "surrounding code" accesses: random pages that may
    // collide with channel sets and interleave noise conflicts.
    if (params_.noiseEvery != 0 && ++sinceNoise_ >= params_.noiseEvery) {
        sinceNoise_ = 0;
        const Addr noise =
            params_.noiseBase +
            rng_.nextBelow(params_.layout.tlbNumSets * 4) *
                params_.layout.pageBytes;
        return Action::read(noise);
    }

    const bool in_g1 = probeCursor_ < per_group;
    const std::size_t idx =
        in_g1 ? probeCursor_ : probeCursor_ - per_group;
    ++probeCursor_;
    pendingMeasure_ = true;
    measuringG1_ = in_g1;
    return Action::read(
        params_.layout.spyAddr(params_.addrBase, in_g1, idx));
}

} // namespace cchunter
