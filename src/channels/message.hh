/**
 * @file
 * Covert-channel payloads: bit messages such as the randomly chosen
 * 64-bit credit-card number the paper transmits in its examples.
 */

#ifndef CCHUNTER_CHANNELS_MESSAGE_HH
#define CCHUNTER_CHANNELS_MESSAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace cchunter
{

/**
 * An immutable bit string transmitted over a covert channel.
 */
class Message
{
  public:
    Message() = default;

    /** Build from explicit bits (index 0 transmitted first). */
    static Message fromBits(std::vector<bool> bits);

    /** Build from a 64-bit value, MSB first. */
    static Message fromUint64(std::uint64_t value);

    /** A random 64-bit message (the paper's credit-card proxy). */
    static Message random64(Rng& rng);

    /** A random message of arbitrary length. */
    static Message random(Rng& rng, std::size_t bits);

    /** Bit at transmission index i (cyclic when repeat). */
    bool bit(std::size_t i) const;

    /** Bit at index i modulo the message length. */
    bool bitCyclic(std::size_t i) const;

    std::size_t size() const { return bits_.size(); }
    bool empty() const { return bits_.empty(); }

    /** Number of set bits. */
    std::size_t popCount() const;

    /** Fraction of differing bits against another message (compared up
     *  to the shorter length; 1.0 when either is empty). */
    double bitErrorRate(const Message& other) const;

    /** "0101..." rendering. */
    std::string toString() const;

    bool operator==(const Message& other) const = default;

  private:
    std::vector<bool> bits_;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_MESSAGE_HH
