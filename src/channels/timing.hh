/**
 * @file
 * Shared transmission timing for trojan/spy pairs.
 *
 * The paper's channels are synchronized (a synchronization phase
 * precedes transmission); we model the established schedule directly:
 * both sides agree on the start tick, the bit period, and the signal
 * window (the leading portion of each bit slot during which conflicts
 * are generated — low-bandwidth channels signal briefly and lie dormant
 * for the rest of the slot, as the paper's section VI-A describes).
 *
 * An attached EvasionPlan perturbs the schedule per bit — jittered
 * burst starts, randomized duty, or a stretched low-and-slow slot —
 * identically on both ends (the plan's seed is part of the agreed
 * schedule), so evasive channels still decode.  A default (None) plan
 * leaves every query bit-identical to the classic arithmetic.
 */

#ifndef CCHUNTER_CHANNELS_TIMING_HH
#define CCHUNTER_CHANNELS_TIMING_HH

#include <cstddef>

#include "channels/evasion.hh"
#include "util/types.hh"

namespace cchunter
{

/** Transmission schedule shared by a trojan/spy pair. */
struct ChannelTiming
{
    Tick start = 0;             //!< first bit slot begins here
    double bandwidthBps = 10.0; //!< bits per second
    double ghz = defaultCoreGHz;
    /**
     * Cap on the per-bit signalling window in ticks (0 = the whole bit
     * slot).  Low-bandwidth channels use a bounded window so a bit's
     * conflicts form a burst followed by dormancy.
     */
    Tick maxSignalTicks = 0;

    /** Evasive schedule perturbation (None = classic schedule). */
    EvasionPlan evasion;

    /** Ticks per transmitted bit (LowAndSlow stretches the slot). */
    Tick bitTicks() const;

    /** Ticks of active signalling per bit before per-bit duty jitter
     *  (the classic head-of-slot window length). */
    Tick signalTicks() const;

    /** Index of the bit slot containing `now`. */
    std::size_t bitIndexAt(Tick now) const;

    /** Start tick of bit slot i. */
    Tick bitStart(std::size_t i) const;

    /** Start of the signalling window of bit slot i (== bitStart(i)
     *  under the classic schedule; jittered under evasion). */
    Tick signalStart(std::size_t i) const;

    /** Active signalling ticks of bit slot i (== signalTicks() unless
     *  the duty is jittered). */
    Tick activeTicks(std::size_t i) const;

    /** End of the signalling window of bit slot i. */
    Tick signalEnd(std::size_t i) const;

    /** @return true when `now` lies inside bit i's signal window. */
    bool inSignalWindow(Tick now) const;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_TIMING_HH
