/**
 * @file
 * The common receiver interface every channel spy implements: what it
 * decoded, slot by slot.  The response subsystem uses this as the
 * ground-truth oracle for residual channel bandwidth — after a
 * mitigation engages, the trojan/spy pair is re-run and the spy's
 * surviving decode rate (through the link-layer protocol decoder) is
 * the channel's residual capacity.
 *
 * The interface lets the scenario layer recover the spy from a machine
 * built by any registry descriptor's buildWorkload hook, with no
 * per-unit dispatch.
 */

#ifndef CCHUNTER_CHANNELS_CHANNEL_SPY_HH
#define CCHUNTER_CHANNELS_CHANNEL_SPY_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "channels/message.hh"

namespace cchunter
{

/** Decode-side view of a covert-channel receiver. */
class ChannelSpy
{
  public:
    virtual ~ChannelSpy() = default;

    /** Bits decoded so far (wire bits, pre-protocol). */
    virtual Message decoded() const = 0;

    /** (bit-slot index, decoded value) pairs, in decode order. */
    virtual const std::vector<std::pair<std::size_t, bool>>&
    decodedSlots() const = 0;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_CHANNEL_SPY_HH
