#include "channels/bus_channel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

BusTrojan::BusTrojan(BusTrojanParams params)
    : params_(std::move(params)), rng_(params_.seed)
{
    if (params_.message.empty())
        fatal("BusTrojan: empty message");
    if (params_.lockPeriod == 0)
        fatal("BusTrojan: lockPeriod must be positive");
}

Addr
BusTrojan::nextUnalignedAddr()
{
    // Cycle a small pool of line-pair bases; the lock is asserted
    // regardless of cache state, the pool just varies the footprint.
    const Addr base =
        params_.addrBase + (addrCursor_ % 16) * 128;
    ++addrCursor_;
    return base + 60; // offset so the access spans two lines
}

Action
BusTrojan::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t bit = t.bitIndexAt(now);
    if (!params_.repeat && bit >= params_.message.size())
        return Action::halt();

    if (bit != lastBit_) {
        lastBit_ = bit;
        ++bitsSignalled_;
        nextLockAt_ = t.signalStart(bit);
    }

    const bool value = params_.message.bitCyclic(bit);
    const Tick signal_end = t.signalEnd(bit);
    if (!value || now >= signal_end) {
        // Dormant.  With evasion enabled, emit jittered decoy locks
        // instead of staying silent.
        const Tick next_bit = t.bitStart(bit + 1);
        if (params_.evasionLockPeriod == 0)
            return Action::sleepUntil(next_bit);
        if (now >= nextDecoyAt_) {
            nextDecoyAt_ =
                now + params_.evasionLockPeriod / 2 +
                rng_.nextBelow(params_.evasionLockPeriod);
            ++locksIssued_;
            return Action::lockedAccess(nextUnalignedAddr());
        }
        return Action::sleepUntil(
            std::min(nextDecoyAt_, next_bit));
    }

    if (now < t.signalStart(bit))
        return Action::sleepUntil(t.signalStart(bit));
    if (now < nextLockAt_) {
        const Tick pad = std::min(nextLockAt_, signal_end) - now;
        return Action::compute(static_cast<Cycles>(pad));
    }
    nextLockAt_ = now + params_.lockPeriod;
    ++locksIssued_;
    return Action::lockedAccess(nextUnalignedAddr());
}

BusSpy::BusSpy(BusSpyParams params)
    : params_(std::move(params))
{
    if (params_.sampleAccesses == 0)
        fatal("BusSpy: sampleAccesses must be positive");
    if (params_.regionBytes < 64)
        fatal("BusSpy: region too small");
}

Message
BusSpy::decoded() const
{
    std::vector<bool> bits;
    bits.reserve(decodedSlots_.size());
    for (const auto& [slot, value] : decodedSlots_)
        bits.push_back(value);
    return Message::fromBits(std::move(bits));
}

double
BusSpy::currentThreshold() const
{
    if (params_.adaptiveDecode && haveSlotMeans_ &&
        maxSlotMean_ > 1.3 * minSlotMean_) {
        return 0.5 * (minSlotMean_ + maxSlotMean_);
    }
    return static_cast<double>(params_.decodeThreshold);
}

void
BusSpy::finishSlot()
{
    if (slotCount_ == 0)
        return;
    const double mean = slotSum_ / static_cast<double>(slotCount_);
    if (!haveSlotMeans_) {
        minSlotMean_ = maxSlotMean_ = mean;
        haveSlotMeans_ = true;
    } else {
        minSlotMean_ = std::min(minSlotMean_, mean);
        maxSlotMean_ = std::max(maxSlotMean_, mean);
    }
    slotMeans_.emplace_back(currentSlot_, mean);
    decodedSlots_.emplace_back(currentSlot_, mean > currentThreshold());
    slotSum_ = 0.0;
    slotCount_ = 0;
}

Action
BusSpy::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;

    if (pendingMeasure_) {
        pendingMeasure_ = false;
        const double lat = static_cast<double>(view.lastLatency);
        sampleSum_ += lat;
        slotSum_ += lat;
        ++slotCount_;
        if (++sampleCount_ >= params_.sampleAccesses) {
            samples_.push_back(sampleSum_ /
                               static_cast<double>(sampleCount_));
            sampleSum_ = 0.0;
            sampleCount_ = 0;
        }
    }

    if (done_)
        return Action::halt();
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t slot = t.bitIndexAt(now);
    if (slot != currentSlot_) {
        finishSlot();
        currentSlot_ = slot;
        if (params_.maxBits != 0 &&
            decodedSlots_.size() >= params_.maxBits) {
            done_ = true;
            return Action::halt();
        }
    }

    // Sample only inside the signal window: low-bandwidth channels lie
    // dormant for most of each bit slot and so does the receiver.
    if (now >= t.signalEnd(slot)) {
        finishSlot();
        return Action::sleepUntil(t.bitStart(slot + 1));
    }
    if (now < t.signalStart(slot))
        return Action::sleepUntil(t.signalStart(slot));

    // Stream through the private region to force L2 misses.
    const std::size_t lines = params_.regionBytes / 64;
    const Addr addr = params_.addrBase + (addrCursor_ % lines) * 64;
    ++addrCursor_;
    pendingMeasure_ = true;
    return Action::read(addr);
}

} // namespace cchunter
