/**
 * @file
 * The integer-divider covert timing channel (paper section IV-A).
 *
 * Trojan and spy run as hyperthreads on the same core.  For '1' the
 * trojan saturates the shared division unit with back-to-back division
 * batches; for '0' it spins in an empty loop.  The spy times loop
 * iterations containing a constant number of divisions: contended
 * iterations take roughly twice as long.
 */

#ifndef CCHUNTER_CHANNELS_DIVIDER_CHANNEL_HH
#define CCHUNTER_CHANNELS_DIVIDER_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "channels/channel_spy.hh"
#include "channels/message.hh"
#include "channels/timing.hh"
#include "sim/workload.hh"
#include "util/types.hh"

namespace cchunter
{

/** Configuration of the divider trojan. */
struct DividerTrojanParams
{
    ChannelTiming timing;
    Message message;
    bool repeat = true;
    std::uint32_t chunkOps = 2000; //!< operations per issued batch
    /** Contend on the multiplier instead of the divider (the Wang &
     *  Lee SMT/multiplier variant). */
    bool useMultiplier = false;
};

/**
 * The transmitting side of the divider channel.
 */
class DividerTrojan : public Workload
{
  public:
    explicit DividerTrojan(DividerTrojanParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "divider-trojan"; }

    std::uint64_t opsIssued() const { return opsIssued_; }

  private:
    DividerTrojanParams params_;
    std::uint64_t opsIssued_ = 0;
};

/** Configuration of the divider spy. */
struct DividerSpyParams
{
    ChannelTiming timing;
    std::uint32_t opsPerIteration = 20; //!< operations per timed loop
    /** Time the multiplier instead of the divider. */
    bool useMultiplier = false;
    std::size_t iterationsPerSample = 16;
    Cycles decodeThreshold = 150; //!< mean iteration cycles for 0 vs 1
    std::size_t maxBits = 0;      //!< stop after N bits (0 = forever)
    /** Loop-overhead jitter range in cycles between iterations
     *  (models the timing loop's branch/counter overhead, spreading
     *  the contention-density burst over several histogram bins). */
    Cycles gapMax = 16;
    std::uint64_t seed = 11;
};

/**
 * The receiving side: times division loop iterations.
 */
class DividerSpy : public Workload, public ChannelSpy
{
  public:
    explicit DividerSpy(DividerSpyParams params);

    Action nextAction(const ExecView& view) override;
    std::string name() const override { return "divider-spy"; }

    /** Average loop-latency samples (the series of paper figure 3). */
    const std::vector<double>& samples() const { return samples_; }

    Message decoded() const override;

    /** (bit-slot index, decoded value) pairs, in decode order. */
    const std::vector<std::pair<std::size_t, bool>>& decodedSlots()
        const override
    {
        return decodedSlots_;
    }

    /** (bit-slot index, mean observed latency) pairs, per decoded
     *  slot. */
    const std::vector<std::pair<std::size_t, double>>& slotMeans()
        const
    {
        return slotMeans_;
    }

  private:
    void finishSlot();

    DividerSpyParams params_;
    Rng rng_;
    bool gapPending_ = false;
    std::vector<double> samples_;
    std::vector<std::pair<std::size_t, bool>> decodedSlots_;
    std::vector<std::pair<std::size_t, double>> slotMeans_;
    bool pendingMeasure_ = false;
    double sampleSum_ = 0.0;
    std::size_t sampleCount_ = 0;
    double slotSum_ = 0.0;
    std::size_t slotCount_ = 0;
    std::size_t currentSlot_ = 0;
    bool done_ = false;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_DIVIDER_CHANNEL_HH
