#include "channels/timing.hh"

#include "util/logging.hh"

namespace cchunter
{

Tick
ChannelTiming::bitTicks() const
{
    if (bandwidthBps <= 0.0)
        fatal("ChannelTiming: bandwidth must be positive");
    const double ticks = ghz * 1e9 / bandwidthBps;
    return ticks < 1.0 ? 1 : static_cast<Tick>(ticks);
}

Tick
ChannelTiming::signalTicks() const
{
    const Tick bit = bitTicks();
    if (maxSignalTicks == 0 || maxSignalTicks > bit)
        return bit;
    return maxSignalTicks;
}

std::size_t
ChannelTiming::bitIndexAt(Tick now) const
{
    if (now <= start)
        return 0;
    return static_cast<std::size_t>((now - start) / bitTicks());
}

Tick
ChannelTiming::bitStart(std::size_t i) const
{
    return start + static_cast<Tick>(i) * bitTicks();
}

Tick
ChannelTiming::signalEnd(std::size_t i) const
{
    return bitStart(i) + signalTicks();
}

bool
ChannelTiming::inSignalWindow(Tick now) const
{
    if (now < start)
        return false;
    const std::size_t bit = bitIndexAt(now);
    return now >= bitStart(bit) && now < signalEnd(bit);
}

} // namespace cchunter
