#include "channels/timing.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

/** Classic (unstretched) ticks per bit. */
Tick
classicBitTicks(double ghz, double bandwidthBps)
{
    if (bandwidthBps <= 0.0)
        fatal("ChannelTiming: bandwidth must be positive");
    const double ticks = ghz * 1e9 / bandwidthBps;
    return ticks < 1.0 ? 1 : static_cast<Tick>(ticks);
}

} // namespace

Tick
ChannelTiming::bitTicks() const
{
    const Tick classic = classicBitTicks(ghz, bandwidthBps);
    if (evasion.strategy == EvasionStrategy::LowAndSlow)
        return classic * static_cast<Tick>(evasion.stretch);
    return classic;
}

Tick
ChannelTiming::signalTicks() const
{
    // The burst keeps its classic length even when LowAndSlow
    // stretches the slot — that is the whole point of the strategy.
    const Tick bit = classicBitTicks(ghz, bandwidthBps);
    if (maxSignalTicks == 0 || maxSignalTicks > bit)
        return bit;
    return maxSignalTicks;
}

std::size_t
ChannelTiming::bitIndexAt(Tick now) const
{
    if (now <= start)
        return 0;
    return static_cast<std::size_t>((now - start) / bitTicks());
}

Tick
ChannelTiming::bitStart(std::size_t i) const
{
    return start + static_cast<Tick>(i) * bitTicks();
}

Tick
ChannelTiming::signalStart(std::size_t i) const
{
    switch (evasion.strategy) {
    case EvasionStrategy::None:
    case EvasionStrategy::DutyCycle:
        return bitStart(i);
    case EvasionStrategy::RandomGaps:
    case EvasionStrategy::LowAndSlow: {
        // Jittered pacing: the burst starts at a seeded random offset
        // inside the slot's idle slack, so inter-burst gaps lose their
        // fixed period.  Both ends derive the same offset from the
        // shared plan.
        const Tick slot = bitTicks();
        const Tick active = activeTicks(i);
        const Tick slack = slot > active ? slot - active : 0;
        const double span =
            static_cast<double>(slack) * evasion.gapJitter;
        const Tick offset =
            static_cast<Tick>(span * evasion.bitUnit(i));
        return bitStart(i) + offset;
    }
    }
    return bitStart(i);
}

Tick
ChannelTiming::activeTicks(std::size_t i) const
{
    if (evasion.strategy != EvasionStrategy::DutyCycle)
        return signalTicks();
    // Randomized duty: each bit's burst width is drawn from the plan's
    // duty range, breaking the constant on/off train the classic
    // autocorrelation indicator keys on.
    const double duty =
        evasion.dutyMin +
        evasion.bitUnit(i) * (evasion.dutyMax - evasion.dutyMin);
    const double active = static_cast<double>(signalTicks()) * duty;
    return std::max<Tick>(1, static_cast<Tick>(active));
}

Tick
ChannelTiming::signalEnd(std::size_t i) const
{
    return signalStart(i) + activeTicks(i);
}

bool
ChannelTiming::inSignalWindow(Tick now) const
{
    if (now < start)
        return false;
    const std::size_t bit = bitIndexAt(now);
    return now >= signalStart(bit) && now < signalEnd(bit);
}

} // namespace cchunter
