/**
 * @file
 * Channel-capacity arithmetic for residual-bandwidth accounting: a
 * covert channel whose receiver decodes with bit error rate p is a
 * binary symmetric channel, so its usable fraction of the raw decode
 * rate is the BSC capacity 1 - H2(p).  A mitigation that drives p
 * toward 0.5 has destroyed the channel even if the receiver still
 * "decodes" bits at full speed.
 */

#ifndef CCHUNTER_CHANNELS_CAPACITY_HH
#define CCHUNTER_CHANNELS_CAPACITY_HH

namespace cchunter
{

/** Binary entropy H2(p) in bits; 0 at p = 0 or 1, 1 at p = 0.5. */
double binaryEntropy(double p);

/** BSC capacity 1 - H2(p), clamped to [0, 1].  Error rates above 0.5
 *  fold back (a systematically inverted channel still carries
 *  information). */
double bscCapacity(double errorRate);

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_CAPACITY_HH
