#include "channels/divider_channel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

DividerTrojan::DividerTrojan(DividerTrojanParams params)
    : params_(std::move(params))
{
    if (params_.message.empty())
        fatal("DividerTrojan: empty message");
    if (params_.chunkOps == 0)
        fatal("DividerTrojan: chunkOps must be positive");
}

Action
DividerTrojan::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t bit = t.bitIndexAt(now);
    if (!params_.repeat && bit >= params_.message.size())
        return Action::halt();

    const bool value = params_.message.bitCyclic(bit);
    if (!value || now >= t.signalEnd(bit))
        return Action::sleepUntil(t.bitStart(bit + 1));
    if (now < t.signalStart(bit))
        return Action::sleepUntil(t.signalStart(bit));

    opsIssued_ += params_.chunkOps;
    return params_.useMultiplier
               ? Action::multiplyBatch(params_.chunkOps)
               : Action::divideBatch(params_.chunkOps);
}

DividerSpy::DividerSpy(DividerSpyParams params)
    : params_(std::move(params)), rng_(params_.seed)
{
    if (params_.opsPerIteration == 0)
        fatal("DividerSpy: opsPerIteration must be positive");
    if (params_.iterationsPerSample == 0)
        fatal("DividerSpy: iterationsPerSample must be positive");
}

Message
DividerSpy::decoded() const
{
    std::vector<bool> bits;
    bits.reserve(decodedSlots_.size());
    for (const auto& [slot, value] : decodedSlots_)
        bits.push_back(value);
    return Message::fromBits(std::move(bits));
}

void
DividerSpy::finishSlot()
{
    if (slotCount_ == 0)
        return;
    const double mean = slotSum_ / static_cast<double>(slotCount_);
    slotMeans_.emplace_back(currentSlot_, mean);
    decodedSlots_.emplace_back(
        currentSlot_,
        mean > static_cast<double>(params_.decodeThreshold));
    slotSum_ = 0.0;
    slotCount_ = 0;
}

Action
DividerSpy::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;

    if (pendingMeasure_) {
        pendingMeasure_ = false;
        const double lat = static_cast<double>(view.lastLatency);
        sampleSum_ += lat;
        slotSum_ += lat;
        ++slotCount_;
        if (++sampleCount_ >= params_.iterationsPerSample) {
            samples_.push_back(sampleSum_ /
                               static_cast<double>(sampleCount_));
            sampleSum_ = 0.0;
            sampleCount_ = 0;
        }
    }

    if (done_)
        return Action::halt();
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t slot = t.bitIndexAt(now);
    if (slot != currentSlot_) {
        finishSlot();
        currentSlot_ = slot;
        if (params_.maxBits != 0 &&
            decodedSlots_.size() >= params_.maxBits) {
            done_ = true;
            return Action::halt();
        }
    }

    // Sample only inside the signal window (see BusSpy).
    if (now >= t.signalEnd(slot)) {
        finishSlot();
        return Action::sleepUntil(t.bitStart(slot + 1));
    }
    if (now < t.signalStart(slot))
        return Action::sleepUntil(t.signalStart(slot));

    // Loop overhead between timed iterations.
    if (params_.gapMax > 0 && !gapPending_) {
        gapPending_ = true;
        return Action::compute(static_cast<Cycles>(
            1 + rng_.nextBelow(params_.gapMax)));
    }
    gapPending_ = false;
    pendingMeasure_ = true;
    return params_.useMultiplier
               ? Action::multiplyBatch(params_.opsPerIteration)
               : Action::divideBatch(params_.opsPerIteration);
}

} // namespace cchunter
