/**
 * @file
 * A two-layer protocol adversary usable by every channel sender.
 *
 * Realistic covert-channel implementations (TLBleed and the
 * tlbchannels line of work) do not transmit raw payload bits: they wrap
 * them in a link-layer protocol — a preamble for synchronization,
 * frame retransmission with an ACK turnaround gap, and a Hamming(7,4)
 * error-correcting code.  The coded wire stream is structured but
 * aperiodic, which stresses autocorrelation detectors: CC-Hunter still
 * sees the per-bit conflict bursts, but the bit *values* no longer
 * repeat with the payload's period.
 *
 * The codec is channel-agnostic: `encodeProtocol` maps a payload
 * Message to the wire Message any trojan transmits, and
 * `decodeProtocol` inverts it on the spy's decoded wire bits.
 */

#ifndef CCHUNTER_CHANNELS_PROTOCOL_HH
#define CCHUNTER_CHANNELS_PROTOCOL_HH

#include <cstddef>
#include <cstdint>

#include "channels/message.hh"

namespace cchunter
{

/** Configuration of the link-layer protocol framing. */
struct ProtocolParams
{
    /** Wrap payloads when true; false leaves messages untouched. */
    bool enabled = false;

    /** Payload nibbles (7-bit codewords) per frame. */
    std::size_t frameNibbles = 4;

    /** Times each frame is transmitted back-to-back; the receiver
     *  majority-votes per wire bit (retransmission layer). */
    std::size_t repeats = 3;

    /** Idle (zero) bits after each frame burst modelling the ACK
     *  turnaround of the reverse channel. */
    std::size_t ackGapBits = 4;

    /** Bits in the fixed synchronization preamble. */
    static constexpr std::size_t preambleBits = 8;

    /** Wire bits per frame burst: preamble + repeated body + ACK gap. */
    std::size_t
    burstBits() const
    {
        return preambleBits + repeats * frameNibbles * 7 + ackGapBits;
    }

    void validate() const;
};

/** Synchronization preamble, transmitted MSB first: 10101011.  The
 *  alternating run locks the receiver's bit clock; the final 11 breaks
 *  the alternation to mark the frame start. */
constexpr std::uint8_t kProtocolPreamble = 0xab;

/** Encode a data nibble (4 bits) into a Hamming(7,4) codeword.  Bit i
 *  of the result is codeword position i+1 (p1 p2 d1 p3 d2 d3 d4). */
std::uint8_t hammingEncodeNibble(std::uint8_t nibble);

/** Result of decoding one 7-bit codeword. */
struct HammingDecodeResult
{
    std::uint8_t nibble = 0;
    /** A single-bit error was corrected.  Double-bit errors alias to a
     *  wrong single-bit syndrome (Hamming(7,4) has distance 3), so
     *  they also report corrected == true but may miscorrect. */
    bool corrected = false;
};

HammingDecodeResult hammingDecodeNibble(std::uint8_t codeword);

/** Decode-side observability counters. */
struct ProtocolDecodeStats
{
    std::size_t frames = 0;       //!< frame bursts recovered
    std::size_t resyncShifts = 0; //!< bit slips consumed finding preambles
    std::size_t correctedCodewords = 0; //!< codewords Hamming-corrected
    std::size_t votedBits = 0;    //!< wire bits where repeats disagreed
};

/** Wrap `payload` into the protocol wire format.  Returns `payload`
 *  unchanged when the protocol is disabled. */
Message encodeProtocol(const Message& payload,
                       const ProtocolParams& params);

/**
 * Invert `encodeProtocol` on the received wire bits: resynchronize on
 * each preamble, majority-vote the retransmissions, Hamming-correct
 * each codeword.  `payloadBits` trims the zero padding the encoder
 * appended (0 keeps every decoded bit).  Returns `wire` unchanged when
 * the protocol is disabled.
 */
Message decodeProtocol(const Message& wire, const ProtocolParams& params,
                       std::size_t payloadBits = 0,
                       ProtocolDecodeStats* stats = nullptr);

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_PROTOCOL_HH
