#include "channels/cache_channel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

Addr
CacheChannelLayout::addrFor(Addr base, bool group1, std::size_t idx,
                            std::size_t line) const
{
    if (idx >= setsPerGroup())
        panic("CacheChannelLayout: set index out of range");
    if (line >= linesPerSet)
        panic("CacheChannelLayout: line index out of range");
    const std::size_t set =
        firstSet + (group1 ? 0 : setsPerGroup()) + idx;
    const Addr set_stride = static_cast<Addr>(lineSize);
    const Addr tag_stride = static_cast<Addr>(l2NumSets) * lineSize;
    return base + set * set_stride + line * tag_stride;
}

CacheTrojan::CacheTrojan(CacheTrojanParams params)
    : params_(std::move(params))
{
    if (params_.message.empty())
        fatal("CacheTrojan: empty message");
    if (params_.layout.channelSets < 2 ||
        params_.layout.channelSets % 2 != 0)
        fatal("CacheTrojan: channelSets must be even and >= 2");
    if (params_.layout.firstSet + params_.layout.channelSets >
        params_.layout.l2NumSets)
        fatal("CacheTrojan: channel sets exceed the L2");
}

Action
CacheTrojan::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t bit = t.bitIndexAt(now);
    if (!params_.repeat && bit >= params_.message.size())
        return Action::halt();

    // Rounds: the signal window splits into roundsPerBit prime/probe
    // cycles; the trojan primes during the first half of each round.
    const Tick win_start = t.signalStart(bit);
    const Tick signal = t.activeTicks(bit);
    const std::size_t rounds =
        std::max<std::size_t>(1, params_.roundsPerBit);
    const Tick round_ticks = std::max<Tick>(2, signal / rounds);
    if (now >= win_start + signal)
        return Action::sleepUntil(t.bitStart(bit + 1));
    if (now < win_start)
        return Action::sleepUntil(win_start);

    const std::size_t round = std::min<std::size_t>(
        rounds - 1, static_cast<std::size_t>(
                        (now - win_start) / round_ticks));
    const std::uint64_t round_key =
        static_cast<std::uint64_t>(bit) * rounds + round;
    if (round_key != lastRoundKey_) {
        lastRoundKey_ = round_key;
        primeCursor_ = 0;
    }

    const bool value = params_.message.bitCyclic(bit);
    const Tick round_start = win_start + round * round_ticks;
    const Tick prime_end = round_start + round_ticks / 2;
    const std::size_t total = params_.layout.linesPerGroup();
    if (primeCursor_ >= total || now >= prime_end) {
        const Tick next_round = round_start + round_ticks;
        if (round + 1 < rounds && next_round < win_start + signal)
            return Action::sleepUntil(next_round);
        return Action::sleepUntil(t.bitStart(bit + 1));
    }

    const std::size_t idx =
        primeCursor_ % params_.layout.setsPerGroup();
    const std::size_t line =
        primeCursor_ / params_.layout.setsPerGroup();
    ++primeCursor_;
    ++primesIssued_;
    return Action::read(
        params_.layout.addrFor(params_.addrBase, value, idx, line));
}

CacheSpy::CacheSpy(CacheSpyParams params)
    : params_(std::move(params)), rng_(params.seed)
{
    if (params_.layout.channelSets < 2 ||
        params_.layout.channelSets % 2 != 0)
        fatal("CacheSpy: channelSets must be even and >= 2");
}

Message
CacheSpy::decoded() const
{
    std::vector<bool> bits;
    bits.reserve(decodedSlots_.size());
    for (const auto& [slot, value] : decodedSlots_)
        bits.push_back(value);
    return Message::fromBits(std::move(bits));
}

void
CacheSpy::finishBit()
{
    if (g1Count_ == 0 || g0Count_ == 0)
        return;
    const double g1 = g1Sum_ / static_cast<double>(g1Count_);
    const double g0 = g0Sum_ / static_cast<double>(g0Count_);
    const double ratio = g0 > 0.0 ? g1 / g0 : 0.0;
    ratios_.push_back(ratio);
    decodedSlots_.emplace_back(lastBit_, ratio > 1.0);
    g1Sum_ = g0Sum_ = 0.0;
    g1Count_ = g0Count_ = 0;
}

Action
CacheSpy::nextAction(const ExecView& view)
{
    const Tick now = view.now;
    const ChannelTiming& t = params_.timing;

    if (pendingMeasure_) {
        pendingMeasure_ = false;
        const double lat = static_cast<double>(view.lastLatency);
        if (measuringG1_) {
            g1Sum_ += lat;
            ++g1Count_;
        } else {
            g0Sum_ += lat;
            ++g0Count_;
        }
    }

    if (done_)
        return Action::halt();
    if (now < t.start)
        return Action::sleepUntil(t.start);

    const std::size_t bit = t.bitIndexAt(now);
    if (bit != lastBit_) {
        finishBit();
        lastBit_ = bit;
        probeCursor_ = 0;
        if (params_.maxBits != 0 &&
            decodedSlots_.size() >= params_.maxBits) {
            done_ = true;
            return Action::halt();
        }
    }

    // While dormant (outside the signal window), optionally behave
    // like the embedding cover program: sparse random reads, not pure
    // sleep.
    const Tick win_start = t.signalStart(bit);
    const Tick signal = t.activeTicks(bit);
    auto dormant_until = [&](Tick until) -> Action {
        if (params_.dormantNoiseGap == 0)
            return Action::sleepUntil(until);
        if (now >= nextDormantRead_) {
            nextDormantRead_ = now + params_.dormantNoiseGap;
            const Addr noise =
                params_.noiseBase +
                rng_.nextBelow(params_.layout.l2NumSets * 2) * 64;
            return Action::read(noise);
        }
        return Action::sleepUntil(std::min(nextDormantRead_, until));
    };
    if (now >= win_start + signal)
        return dormant_until(t.bitStart(bit + 1));
    if (now < win_start)
        return dormant_until(win_start);

    // Rounds: probe during the second half of each prime/probe round.
    const std::size_t rounds =
        std::max<std::size_t>(1, params_.roundsPerBit);
    const Tick round_ticks = std::max<Tick>(2, signal / rounds);
    const std::size_t round = std::min<std::size_t>(
        rounds - 1, static_cast<std::size_t>(
                        (now - win_start) / round_ticks));
    const std::uint64_t round_key =
        static_cast<std::uint64_t>(bit) * rounds + round;
    if (round_key != lastRoundKey_) {
        lastRoundKey_ = round_key;
        probeCursor_ = 0;
    }
    const Tick round_start = win_start + round * round_ticks;
    const Tick probe_start = round_start + round_ticks / 2;
    if (now < probe_start)
        return Action::sleepUntil(probe_start);

    const std::size_t per_group = params_.layout.linesPerGroup();
    const std::size_t total = 2 * per_group;
    if (probeCursor_ >= total) {
        const Tick next_round = round_start + round_ticks;
        if (round + 1 < rounds && next_round < win_start + signal)
            return Action::sleepUntil(next_round);
        finishBit();
        return dormant_until(t.bitStart(bit + 1));
    }

    // Occasional "surrounding code" accesses: random lines that may
    // collide with channel sets and interleave noise conflicts.
    if (params_.noiseEvery != 0 &&
        ++sinceNoise_ >= params_.noiseEvery) {
        sinceNoise_ = 0;
        const Addr noise =
            params_.noiseBase +
            (rng_.nextBelow(params_.layout.l2NumSets * 4)) * 64;
        return Action::read(noise);
    }

    const bool in_g1 = probeCursor_ < per_group;
    const std::size_t within =
        in_g1 ? probeCursor_ : probeCursor_ - per_group;
    const std::size_t idx = within % params_.layout.setsPerGroup();
    const std::size_t line = within / params_.layout.setsPerGroup();
    ++probeCursor_;
    pendingMeasure_ = true;
    measuringG1_ = in_g1;
    return Action::read(
        params_.layout.addrFor(params_.addrBase, in_g1, idx, line));
}

} // namespace cchunter
