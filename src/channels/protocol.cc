#include "channels/protocol.hh"

#include <vector>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

bool
preambleBit(std::size_t i)
{
    return (kProtocolPreamble >> (ProtocolParams::preambleBits - 1 - i)) &
           1u;
}

} // namespace

void
ProtocolParams::validate() const
{
    if (!enabled)
        return;
    if (frameNibbles == 0)
        fatal("protocol: frame_nibbles must be positive");
    if (repeats == 0)
        fatal("protocol: repeats must be positive");
}

std::uint8_t
hammingEncodeNibble(std::uint8_t nibble)
{
    const unsigned d1 = (nibble >> 3) & 1u;
    const unsigned d2 = (nibble >> 2) & 1u;
    const unsigned d3 = (nibble >> 1) & 1u;
    const unsigned d4 = nibble & 1u;
    const unsigned p1 = d1 ^ d2 ^ d4;
    const unsigned p2 = d1 ^ d3 ^ d4;
    const unsigned p3 = d2 ^ d3 ^ d4;
    // Bit i of the codeword is classic Hamming position i+1:
    // p1 p2 d1 p3 d2 d3 d4.
    return static_cast<std::uint8_t>(p1 | (p2 << 1) | (d1 << 2) |
                                     (p3 << 3) | (d2 << 4) |
                                     (d3 << 5) | (d4 << 6));
}

HammingDecodeResult
hammingDecodeNibble(std::uint8_t codeword)
{
    codeword &= 0x7f;
    const auto bit = [&](unsigned pos) -> unsigned {
        return (codeword >> (pos - 1)) & 1u;
    };
    const unsigned s1 = bit(1) ^ bit(3) ^ bit(5) ^ bit(7);
    const unsigned s2 = bit(2) ^ bit(3) ^ bit(6) ^ bit(7);
    const unsigned s3 = bit(4) ^ bit(5) ^ bit(6) ^ bit(7);
    const unsigned syndrome = s1 | (s2 << 1) | (s3 << 2);
    HammingDecodeResult out;
    if (syndrome != 0) {
        codeword ^= static_cast<std::uint8_t>(1u << (syndrome - 1));
        out.corrected = true;
    }
    const unsigned d1 = (codeword >> 2) & 1u;
    const unsigned d2 = (codeword >> 4) & 1u;
    const unsigned d3 = (codeword >> 5) & 1u;
    const unsigned d4 = (codeword >> 6) & 1u;
    out.nibble =
        static_cast<std::uint8_t>((d1 << 3) | (d2 << 2) | (d3 << 1) | d4);
    return out;
}

Message
encodeProtocol(const Message& payload, const ProtocolParams& params)
{
    if (!params.enabled)
        return payload;
    params.validate();

    // Chop the payload MSB-first into nibbles, zero-padding the tail
    // so the last frame is full.
    std::vector<std::uint8_t> nibbles;
    for (std::size_t i = 0; i < payload.size(); i += 4) {
        std::uint8_t n = 0;
        for (std::size_t b = 0; b < 4; ++b) {
            n = static_cast<std::uint8_t>(n << 1);
            if (i + b < payload.size() && payload.bit(i + b))
                n |= 1u;
        }
        nibbles.push_back(n);
    }
    while (nibbles.size() % params.frameNibbles != 0)
        nibbles.push_back(0);

    std::vector<bool> wire;
    wire.reserve((nibbles.size() / params.frameNibbles) *
                 params.burstBits());
    for (std::size_t f = 0; f < nibbles.size();
         f += params.frameNibbles) {
        // Frame body: one 7-bit codeword per nibble, codeword position
        // 1 first.
        std::vector<bool> body;
        body.reserve(params.frameNibbles * 7);
        for (std::size_t k = 0; k < params.frameNibbles; ++k) {
            const std::uint8_t cw = hammingEncodeNibble(nibbles[f + k]);
            for (unsigned b = 0; b < 7; ++b)
                body.push_back((cw >> b) & 1u);
        }
        for (std::size_t i = 0; i < ProtocolParams::preambleBits; ++i)
            wire.push_back(preambleBit(i));
        for (std::size_t r = 0; r < params.repeats; ++r)
            wire.insert(wire.end(), body.begin(), body.end());
        for (std::size_t i = 0; i < params.ackGapBits; ++i)
            wire.push_back(false);
    }
    return Message::fromBits(std::move(wire));
}

Message
decodeProtocol(const Message& wire, const ProtocolParams& params,
               std::size_t payloadBits, ProtocolDecodeStats* stats)
{
    if (!params.enabled)
        return wire;
    params.validate();

    ProtocolDecodeStats local;
    ProtocolDecodeStats& st = stats ? *stats : local;

    const std::size_t bodyBits = params.frameNibbles * 7;
    std::vector<bool> payload;
    std::size_t cursor = 0;
    while (cursor + ProtocolParams::preambleBits +
               params.repeats * bodyBits <=
           wire.size()) {
        // Synchronize: accept the preamble with at most one bit in
        // error; otherwise slip one bit and retry (bounded so a
        // garbage stream cannot loop forever).
        std::size_t mismatches = 0;
        for (std::size_t i = 0; i < ProtocolParams::preambleBits; ++i)
            if (wire.bit(cursor + i) != preambleBit(i))
                ++mismatches;
        if (mismatches > 1) {
            ++cursor;
            ++st.resyncShifts;
            continue;
        }
        cursor += ProtocolParams::preambleBits;

        // Retransmission layer: majority-vote each body bit across the
        // repeated copies.
        std::vector<bool> body(bodyBits);
        for (std::size_t i = 0; i < bodyBits; ++i) {
            std::size_t ones = 0;
            for (std::size_t r = 0; r < params.repeats; ++r)
                if (wire.bit(cursor + r * bodyBits + i))
                    ++ones;
            body[i] = 2 * ones > params.repeats;
            if (ones != 0 && ones != params.repeats)
                ++st.votedBits;
        }
        cursor += params.repeats * bodyBits;
        cursor += params.ackGapBits;

        // ECC layer: Hamming-correct each codeword.
        for (std::size_t k = 0; k < params.frameNibbles; ++k) {
            std::uint8_t cw = 0;
            for (unsigned b = 0; b < 7; ++b)
                if (body[k * 7 + b])
                    cw |= static_cast<std::uint8_t>(1u << b);
            const HammingDecodeResult r = hammingDecodeNibble(cw);
            if (r.corrected)
                ++st.correctedCodewords;
            for (unsigned b = 0; b < 4; ++b)
                payload.push_back((r.nibble >> (3 - b)) & 1u);
        }
        ++st.frames;
    }

    if (payloadBits != 0 && payload.size() > payloadBits)
        payload.resize(payloadBits);
    return Message::fromBits(std::move(payload));
}

} // namespace cchunter
