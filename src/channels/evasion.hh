/**
 * @file
 * Evasive transmission strategies for colluding trojan/spy pairs.
 *
 * Yao et al. ("Towards a Better Indicator for Cache Timing Channels")
 * observe that first-order pattern statistics — exactly the
 * autocorrelation and likelihood-ratio indicators CC-Hunter deploys —
 * assume the trojan modulates contention on a regular rhythm, and that
 * an adversary who randomizes pacing, duty cycle or rate can stay
 * under them.  An EvasionPlan describes such an adversary: a seeded,
 * per-bit perturbation of the transmission schedule that BOTH ends of
 * the pair derive identically from the shared plan (the colluding pair
 * exchanges the seed during its synchronization phase), so the channel
 * still decodes while its contention footprint loses the regularity
 * the classic detector keys on.
 *
 * Three strategies, all riding on ChannelTiming so every registered
 * unit inherits them:
 *  - RandomGaps: each bit's signalling burst starts at a seeded random
 *    offset inside its slot (jittered pacing; inter-burst gaps become
 *    irregular).
 *  - DutyCycle: each bit's burst length is drawn from a seeded random
 *    duty range (on/off trains of randomized width).
 *  - LowAndSlow: the bit slot is stretched by an integer factor while
 *    the burst keeps its original length, so transmission drops below
 *    one bit per OS quantum and single bursts hide in mostly-idle
 *    windows (bits spread over multiple quanta).
 */

#ifndef CCHUNTER_CHANNELS_EVASION_HH
#define CCHUNTER_CHANNELS_EVASION_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/config.hh"

namespace cchunter
{

/** The evasive sender strategies (None = the classic schedule). */
enum class EvasionStrategy : std::uint8_t
{
    None,
    RandomGaps,
    DutyCycle,
    LowAndSlow,
};

/** Short lower-case name of a strategy ("none", "gaps", ...). */
const char* evasionStrategyName(EvasionStrategy strategy);

/** Parse a strategy name; fatal on an unknown one, listing the valid
 *  names. */
EvasionStrategy evasionStrategyFromName(const std::string& name);

/**
 * The shared evasion schedule of one colluding pair.  A
 * default-constructed plan (strategy None) leaves the transmission
 * schedule bit-identical to the classic ChannelTiming arithmetic.
 */
struct EvasionPlan
{
    EvasionStrategy strategy = EvasionStrategy::None;

    /** Seed of the per-bit jitter stream (shared by both ends). */
    std::uint64_t seed = 1;

    /**
     * RandomGaps / LowAndSlow: fraction of the slot's idle slack the
     * per-bit start offset may use, in [0, 1].  1 spreads bursts over
     * the whole slot; 0 degenerates to the classic head-of-slot
     * schedule.
     */
    double gapJitter = 1.0;

    /** DutyCycle: per-bit duty drawn uniformly from [dutyMin,
     *  dutyMax] ⊆ (0, 1]. */
    double dutyMin = 0.25;
    double dutyMax = 0.75;

    /**
     * LowAndSlow: integer slot-stretch factor (>= 1).  The bit slot
     * becomes stretch x the classic slot while the burst keeps its
     * classic length, cutting the transmitted rate to 1/stretch and
     * leaving most of every slot idle.  1 disables the stretch.
     */
    std::size_t stretch = 16;

    /** True when the plan perturbs the schedule at all. */
    bool enabled() const { return strategy != EvasionStrategy::None; }

    /** Fatal when any knob is out of range (named key + value). */
    void validate() const;

    /** Parse the `evasion.*` keys of a Config (missing keys keep
     *  their defaults); validates the result. */
    static EvasionPlan fromConfig(const Config& cfg);

    /** Echo the plan into a Config under the `evasion.*` keys. */
    void toConfig(Config& cfg) const;

    /**
     * Deterministic per-bit jitter word: both ends hash the shared
     * seed with the bit index (splitmix64) and carve offsets / duty
     * draws out of the result.  Pure function of (seed, bit).
     */
    std::uint64_t bitHash(std::size_t bit) const;

    /** Uniform double in [0, 1) derived from bitHash(bit). */
    double bitUnit(std::size_t bit) const;
};

} // namespace cchunter

#endif // CCHUNTER_CHANNELS_EVASION_HH
