#include "channels/message.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter
{

Message
Message::fromBits(std::vector<bool> bits)
{
    Message m;
    m.bits_ = std::move(bits);
    return m;
}

Message
Message::fromUint64(std::uint64_t value)
{
    std::vector<bool> bits(64);
    for (int i = 0; i < 64; ++i)
        bits[i] = (value >> (63 - i)) & 1;
    return fromBits(std::move(bits));
}

Message
Message::random64(Rng& rng)
{
    return fromUint64(rng.next());
}

Message
Message::random(Rng& rng, std::size_t bits)
{
    std::vector<bool> v(bits);
    for (std::size_t i = 0; i < bits; ++i)
        v[i] = rng.nextBool();
    return fromBits(std::move(v));
}

bool
Message::bit(std::size_t i) const
{
    if (i >= bits_.size())
        panic("Message::bit index out of range");
    return bits_[i];
}

bool
Message::bitCyclic(std::size_t i) const
{
    if (bits_.empty())
        panic("Message::bitCyclic on empty message");
    return bits_[i % bits_.size()];
}

std::size_t
Message::popCount() const
{
    return static_cast<std::size_t>(
        std::count(bits_.begin(), bits_.end(), true));
}

double
Message::bitErrorRate(const Message& other) const
{
    const std::size_t n = std::min(size(), other.size());
    if (n == 0)
        return 1.0;
    std::size_t errors = 0;
    for (std::size_t i = 0; i < n; ++i)
        errors += bits_[i] != other.bits_[i];
    return static_cast<double>(errors) / static_cast<double>(n);
}

std::string
Message::toString() const
{
    std::string s;
    s.reserve(bits_.size());
    for (bool b : bits_)
        s.push_back(b ? '1' : '0');
    return s;
}

} // namespace cchunter
