/**
 * @file
 * The response orchestrator: the subsystem that closes CC-Hunter's
 * loop.  It consumes the finalized incident stream (fleet or
 * standalone), drives each (tenant, unit) pair through the policy's
 * escalation ladder with deterministic hysteresis, and renders a
 * byte-stable action log with the same guarantees the incident stream
 * itself carries: identical across shard/thread layouts, identical
 * across crash/resume, hashable with the snapshot codec's FNV-1a.
 *
 * Time is counted in *epochs* — one observeIncidents() round equals
 * one epoch — because incidents already collapse quantum time and the
 * orchestrator must stay deterministic under replay.
 */

#ifndef CCHUNTER_RESPOND_ORCHESTRATOR_HH
#define CCHUNTER_RESPOND_ORCHESTRATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/incident_store.hh"
#include "respond/response_policy.hh"
#include "sim/stats_report.hh"

namespace cchunter
{

/** What one admitted action did. */
enum class ResponseActionKind : std::uint8_t
{
    Engage,     //!< Observe -> something
    Escalate,   //!< up the ladder, already engaged
    Deescalate, //!< down the ladder, still engaged
    Release,    //!< back to Observe
};

const char* responseActionKindName(ResponseActionKind kind);

/** One admitted state transition (the action log record). */
struct ResponseAction
{
    std::uint64_t id = 0;    //!< admission order
    std::uint64_t epoch = 0; //!< observeIncidents round
    TenantId tenant = 0;
    MonitorTarget unit = MonitorTarget::None;
    ResponseActionKind kind = ResponseActionKind::Engage;
    ResponseLevel from = ResponseLevel::Observe;
    ResponseLevel to = ResponseLevel::Observe;
    /** TTL de-escalations have no triggering incident. */
    bool ttl = false;
    std::uint64_t incidentId = 0;

    /** Canonical one-line rendering (byte-stable). */
    std::string actionLine() const;
};

/** Escalation state of one (tenant, unit) pair. */
struct ResponsePairState
{
    TenantId tenant = 0;
    MonitorTarget unit = MonitorTarget::None;
    ResponseLevel level = ResponseLevel::Observe;
    /** Incidents seen since the last admitted transition. */
    std::uint64_t incidentsAtLevel = 0;
    /** Epoch of the last incident (or admitted de-escalation, which
     *  restarts the quiet clock). */
    std::uint64_t lastActivityEpoch = 0;
};

/** The orchestrator's complete persistable state. */
struct ResponseOrchestratorState
{
    std::vector<ResponsePairState> states; //!< (tenant, unit) order
    std::vector<ResponseAction> actions;
    std::uint64_t suppressed = 0;
    std::uint64_t epoch = 0;
    std::uint64_t nextActionId = 0;
};

/**
 * Deterministic incident→response state machine.
 */
class ResponseOrchestrator
{
  public:
    explicit ResponseOrchestrator(ResponsePolicy policy = {});

    /** Rebuild from persisted state (quarantines survive restart). */
    static ResponseOrchestrator restored(ResponsePolicy policy,
                                         ResponseOrchestratorState state);

    /**
     * Process one finalized incident round (store emission order) as
     * one epoch: escalation pressure from each incident, then TTL
     * de-escalation for pairs that stayed quiet.  Fleet-wide records
     * pressure every correlated tenant.
     */
    void observeIncidents(const std::vector<Incident>& incidents);

    /** Current level of a pair (Observe when never seen). */
    ResponseLevel levelFor(TenantId tenant, MonitorTarget unit) const;

    /** Pairs currently above Observe, in (tenant, unit) order. */
    std::vector<ResponsePairState> engagedPairs() const;

    const std::vector<ResponsePairState>& states() const
    {
        return states_;
    }
    const std::vector<ResponseAction>& actions() const
    {
        return actions_;
    }
    /** Actions dropped by the rate caps (state unchanged). */
    std::uint64_t suppressed() const { return suppressed_; }
    std::uint64_t epoch() const { return epoch_; }
    const ResponsePolicy& policy() const { return policy_; }

    /** Snapshot for persistence. */
    ResponseOrchestratorState snapshotState() const;

    /** Canonical text rendering of the action log, one line per
     *  action; the determinism contract is stated over this string. */
    std::string streamText() const;

    /** FNV-1a 64-bit hash of streamText(). */
    std::uint64_t streamHash() const;

    /** Orchestrator counters as stat entries under `prefix`. */
    std::vector<StatEntry> statEntries(
        const std::string& prefix = "respond.") const;

  private:
    ResponsePairState& stateFor(TenantId tenant, MonitorTarget unit);
    void pressure(TenantId tenant, MonitorTarget unit,
                  const Incident& incident);
    /** Admit a transition unless a rate cap suppresses it. */
    bool transition(ResponsePairState& state, ResponseLevel to,
                    bool ttl, std::uint64_t incident_id);
    std::uint64_t actionsForTenant(TenantId tenant) const;

    ResponsePolicy policy_;
    std::vector<ResponsePairState> states_; //!< (tenant, unit) order
    std::vector<ResponseAction> actions_;
    std::uint64_t suppressed_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint64_t nextActionId_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_RESPOND_ORCHESTRATOR_HH
