/**
 * @file
 * The response policy: how incidents map onto the escalation ladder.
 *
 * A policy is deliberately dumb and deterministic — counters and
 * thresholds, no wall-clock, no randomness — because the fleet's
 * byte-identity contract extends to the response action log: the same
 * incident stream must produce the same actions on any shard/thread
 * layout and across crash/resume.
 */

#ifndef CCHUNTER_RESPOND_RESPONSE_POLICY_HH
#define CCHUNTER_RESPOND_RESPONSE_POLICY_HH

#include <cstdint>
#include <vector>

#include "mitigate/response_plan.hh"

namespace cchunter
{

enum class MonitorTarget : std::uint8_t;

/** Per-unit escalation tuning. */
struct UnitResponsePolicy
{
    /** Ladder cap: escalation never climbs past this level (e.g. a
     *  unit whose quarantine tax is unacceptable stops at
     *  temporal-partition). */
    ResponseLevel maxLevel = ResponseLevel::Quarantine;

    /** Incidents observed at the current level before climbing one
     *  rung (the escalation counter of the hysteresis pair). */
    std::uint64_t escalateAfterIncidents = 2;
};

/** Fleet-wide response policy. */
struct ResponsePolicy
{
    /** Applied when no per-unit override matches. */
    UnitResponsePolicy defaults;

    /** Per-unit overrides (checked in order; registry descriptors
     *  provide the id universe). */
    std::vector<std::pair<MonitorTarget, UnitResponsePolicy>> perUnit;

    /** A Critical-severity incident jumps straight to
     *  temporal-partition instead of waiting out the counter. */
    bool criticalFastPath = true;

    /** Cool-down TTL: epochs without a new incident on a pair before
     *  it de-escalates one rung (the de-escalation half of the
     *  hysteresis; each further TTL interval drops one more rung). */
    std::uint64_t deescalateAfterQuietEpochs = 2;

    /** Action rate limits, mirroring IncidentStore suppression: a
     *  capped action is counted and does NOT change state.  0 disables
     *  the respective cap. */
    std::uint64_t maxActionsPerTenant = 8;
    std::uint64_t maxTotalActions = 64;

    /** Tuning knobs used when a level is applied to a machine. */
    ResponsePlan plan;

    /** The effective per-unit policy. */
    const UnitResponsePolicy& forUnit(MonitorTarget unit) const;

    /** The plan that applies `level` with this policy's knobs. */
    ResponsePlan planFor(ResponseLevel level) const
    {
        ResponsePlan p = plan;
        p.level = level;
        return p;
    }
};

} // namespace cchunter

#endif // CCHUNTER_RESPOND_RESPONSE_POLICY_HH
