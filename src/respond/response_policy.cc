#include "respond/response_policy.hh"

namespace cchunter
{

const UnitResponsePolicy&
ResponsePolicy::forUnit(MonitorTarget unit) const
{
    for (const auto& [id, policy] : perUnit)
        if (id == unit)
            return policy;
    return defaults;
}

} // namespace cchunter
