#include "respond/residual.hh"

#include <algorithm>

namespace cchunter
{

ResidualProbe
probeResidualBandwidth(AuditedWorkload workload,
                       const OnlineAuditOptions& base,
                       const ResponsePlan& plan)
{
    OnlineAuditOptions options = base;
    options.workload = workload;
    options.scenario.response = plan;
    // Ground truth through the link layer: a mitigated channel that
    // still syncs frames and survives the vote is a real leak.
    options.scenario.protocol.enabled = true;
    // A fixed one-byte probe payload codes to a single protocol burst;
    // the window is stretched (never shrunk) so the whole burst fits —
    // otherwise the payload decode is truncation noise, not a leak
    // measurement.
    options.scenario.message = Message::fromBits(
        {true, false, true, true, false, false, true, false});
    const double bits_per_quantum =
        options.scenario.bandwidthBps *
        ticksToSeconds(options.scenario.quantum);
    if (bits_per_quantum > 0.0) {
        const std::size_t need =
            static_cast<std::size_t>(
                static_cast<double>(
                    options.scenario.protocol.burstBits()) /
                bits_per_quantum) +
            2;
        options.scenario.quanta =
            std::max(options.scenario.quanta, need);
    }
    // The probe needs no in-run trigger; the plan is engaged from the
    // first quantum.
    options.autoRespond.enabled = false;

    const OnlineAuditResult result = runOnlineAudit(options);

    ResidualProbe probe;
    probe.level = plan.level;
    probe.effectiveBandwidthBps = result.channel.effectiveBandwidthBps;
    probe.wireBitErrorRate = result.channel.wireBitErrorRate;
    probe.payloadBitErrorRate = result.channel.payloadBitErrorRate;
    probe.wireBitsDecoded = result.channel.wireBitsDecoded;
    probe.pairActions = result.pairActions;
    for (const UnitOutcome& outcome : result.finalVerdicts)
        probe.detected = probe.detected || outcome.detected;
    return probe;
}

double
bandwidthReduction(double baselineBps, double residualBps)
{
    if (baselineBps <= 0.0)
        return 1.0;
    return std::clamp(1.0 - residualBps / baselineBps, 0.0, 1.0);
}

TaxProbe
measureBenignTax(const OnlineAuditOptions& base,
                 const ResponsePlan& plan)
{
    OnlineAuditOptions options = base;
    options.workload = AuditedWorkload::BenignPair;
    options.autoRespond.enabled = false;

    options.scenario.response = ResponsePlan{};
    const OnlineAuditResult baseline = runOnlineAudit(options);

    options.scenario.response = plan;
    const OnlineAuditResult taxed = runOnlineAudit(options);

    TaxProbe probe;
    probe.level = plan.level;
    probe.baselineActions = baseline.pairActions;
    probe.taxedActions = taxed.pairActions;
    probe.tax = baseline.pairActions == 0
                    ? 0.0
                    : std::clamp(
                          1.0 - static_cast<double>(taxed.pairActions) /
                                    static_cast<double>(
                                        baseline.pairActions),
                          0.0, 1.0);
    return probe;
}

} // namespace cchunter
