/**
 * @file
 * Residual-bandwidth and performance-tax measurement.
 *
 * "Your Processor Leaks Information" showed channels survive naive
 * countermeasures, so engagement is not the end of the story: these
 * probes re-run a trojan/spy pair *under* a response level and report
 * what the receiver still decodes (through the link-layer protocol
 * decoder as ground truth), and re-run a benign pair to price the
 * response's collateral slowdown.  Both are deterministic re-runs of
 * the scenario layer — the same machinery the audit itself used.
 */

#ifndef CCHUNTER_RESPOND_RESIDUAL_HH
#define CCHUNTER_RESPOND_RESIDUAL_HH

#include <cstdint>

#include "scenario/experiment.hh"

namespace cchunter
{

/** What a channel run under one response level still delivered. */
struct ResidualProbe
{
    ResponseLevel level = ResponseLevel::Observe;
    /** Payload bits/s surviving mitigation (BSC-capacity scaled). */
    double effectiveBandwidthBps = 0.0;
    double wireBitErrorRate = 1.0;
    double payloadBitErrorRate = 1.0;
    std::uint64_t wireBitsDecoded = 0;
    /** Whether the audit still detects the (mitigated) channel. */
    bool detected = false;
    /** Trojan+spy actions executed (their own throughput cost). */
    std::uint64_t pairActions = 0;
};

/**
 * Run `workload`'s trojan/spy pair under `level` and measure the
 * surviving channel.  The protocol adversary is forced on so the
 * decode is judged end-to-end (preamble sync, voting, ECC), and the
 * probe seconds/bandwidth derive from the simulated clock.
 */
ResidualProbe probeResidualBandwidth(AuditedWorkload workload,
                                     const OnlineAuditOptions& base,
                                     const ResponsePlan& plan);

/** Bandwidth reduction fraction in [0, 1]; 1.0 when the baseline is
 *  itself zero (nothing to reduce). */
double bandwidthReduction(double baselineBps, double residualBps);

/** The price benign co-runners pay under one response level. */
struct TaxProbe
{
    ResponseLevel level = ResponseLevel::Observe;
    std::uint64_t baselineActions = 0;
    std::uint64_t taxedActions = 0;
    /** 1 - taxed/baseline throughput of the benign pair. */
    double tax = 0.0;
};

/**
 * Run a benign pair with and without `plan` (applied to the pair's
 * contexts {0, 1}) and report the slowdown.
 */
TaxProbe measureBenignTax(const OnlineAuditOptions& base,
                          const ResponsePlan& plan);

} // namespace cchunter

#endif // CCHUNTER_RESPOND_RESIDUAL_HH
