#include "respond/orchestrator.hh"

#include <algorithm>
#include <sstream>

#include "persist/codec.hh"

namespace cchunter
{

const char*
responseActionKindName(ResponseActionKind kind)
{
    switch (kind) {
      case ResponseActionKind::Engage:
        return "engage";
      case ResponseActionKind::Escalate:
        return "escalate";
      case ResponseActionKind::Deescalate:
        return "deescalate";
      case ResponseActionKind::Release:
        return "release";
    }
    return "?";
}

std::string
ResponseAction::actionLine() const
{
    // Byte-stable: fixed field order, integers only, the same rules as
    // Incident::streamLine.
    std::ostringstream os;
    os << "action " << id << " epoch=" << epoch
       << " tenant=" << tenant
       << " unit=" << monitorTargetName(unit) << ' '
       << responseActionKindName(kind) << ' '
       << responseLevelName(from) << "->" << responseLevelName(to)
       << " trigger=";
    if (ttl)
        os << "ttl";
    else
        os << "incident:" << incidentId;
    return os.str();
}

ResponseOrchestrator::ResponseOrchestrator(ResponsePolicy policy)
    : policy_(std::move(policy))
{
}

ResponseOrchestrator
ResponseOrchestrator::restored(ResponsePolicy policy,
                               ResponseOrchestratorState state)
{
    ResponseOrchestrator orch(std::move(policy));
    orch.states_ = std::move(state.states);
    orch.actions_ = std::move(state.actions);
    orch.suppressed_ = state.suppressed;
    orch.epoch_ = state.epoch;
    orch.nextActionId_ = state.nextActionId;
    return orch;
}

ResponsePairState&
ResponseOrchestrator::stateFor(TenantId tenant, MonitorTarget unit)
{
    // Keep states_ sorted by (tenant, unit) so iteration order — and
    // with it the TTL de-escalation action order — is canonical.
    auto key_less = [](const ResponsePairState& s, TenantId t,
                       MonitorTarget u) {
        return s.tenant != t ? s.tenant < t : s.unit < u;
    };
    auto pos = std::lower_bound(states_.begin(), states_.end(),
                                std::make_pair(tenant, unit),
                                [&](const ResponsePairState& s,
                                    const std::pair<TenantId,
                                                    MonitorTarget>& k) {
                                    return key_less(s, k.first,
                                                    k.second);
                                });
    if (pos != states_.end() && pos->tenant == tenant &&
        pos->unit == unit)
        return *pos;
    ResponsePairState fresh;
    fresh.tenant = tenant;
    fresh.unit = unit;
    return *states_.insert(pos, fresh);
}

std::uint64_t
ResponseOrchestrator::actionsForTenant(TenantId tenant) const
{
    return static_cast<std::uint64_t>(std::count_if(
        actions_.begin(), actions_.end(),
        [&](const ResponseAction& a) { return a.tenant == tenant; }));
}

bool
ResponseOrchestrator::transition(ResponsePairState& state,
                                 ResponseLevel to, bool ttl,
                                 std::uint64_t incident_id)
{
    // Rate caps mirror IncidentStore: a suppressed action is counted
    // and the state machine does not move (fail-safe for escalations,
    // fail-secure for de-escalations — a capped tenant's quarantine
    // stays put until the cap is lifted).
    if (policy_.maxTotalActions != 0 &&
        actions_.size() >= policy_.maxTotalActions) {
        ++suppressed_;
        return false;
    }
    if (policy_.maxActionsPerTenant != 0 &&
        actionsForTenant(state.tenant) >= policy_.maxActionsPerTenant) {
        ++suppressed_;
        return false;
    }

    ResponseAction action;
    action.id = nextActionId_++;
    action.epoch = epoch_;
    action.tenant = state.tenant;
    action.unit = state.unit;
    action.from = state.level;
    action.to = to;
    action.ttl = ttl;
    action.incidentId = incident_id;
    if (state.level == ResponseLevel::Observe)
        action.kind = ResponseActionKind::Engage;
    else if (to == ResponseLevel::Observe)
        action.kind = ResponseActionKind::Release;
    else if (to > state.level)
        action.kind = ResponseActionKind::Escalate;
    else
        action.kind = ResponseActionKind::Deescalate;
    actions_.push_back(action);

    state.level = to;
    state.incidentsAtLevel = 0;
    return true;
}

void
ResponseOrchestrator::pressure(TenantId tenant, MonitorTarget unit,
                               const Incident& incident)
{
    ResponsePairState& state = stateFor(tenant, unit);
    state.lastActivityEpoch = epoch_;
    ++state.incidentsAtLevel;

    const UnitResponsePolicy& unit_policy = policy_.forUnit(unit);
    ResponseLevel desired = state.level;
    if (policy_.criticalFastPath &&
        incident.severity == IncidentSeverity::Critical &&
        state.level < ResponseLevel::TemporalPartition)
        desired = ResponseLevel::TemporalPartition;
    else if (state.incidentsAtLevel >=
             unit_policy.escalateAfterIncidents)
        desired = escalated(state.level);
    desired = std::min(desired, unit_policy.maxLevel);
    if (desired > state.level)
        transition(state, desired, /*ttl=*/false, incident.id);
}

void
ResponseOrchestrator::observeIncidents(
    const std::vector<Incident>& incidents)
{
    ++epoch_;
    for (const Incident& incident : incidents) {
        if (incident.fleetWide) {
            // A cross-tenant correlation pressures every member pair
            // (ascending tenant order — canonical in the record).
            for (TenantId tenant : incident.correlatedTenants)
                pressure(tenant, incident.unit, incident);
        } else {
            pressure(incident.tenant, incident.unit, incident);
        }
    }

    // Cool-down: pairs with no activity for the TTL drop one rung per
    // TTL interval.  An admitted de-escalation restarts the quiet
    // clock, so a quarantined pair unwinds gradually, never all at
    // once.
    if (policy_.deescalateAfterQuietEpochs == 0)
        return;
    for (ResponsePairState& state : states_) {
        if (state.level == ResponseLevel::Observe)
            continue;
        if (epoch_ - state.lastActivityEpoch <
            policy_.deescalateAfterQuietEpochs)
            continue;
        if (transition(state, deescalated(state.level), /*ttl=*/true,
                       0))
            state.lastActivityEpoch = epoch_;
    }
}

ResponseLevel
ResponseOrchestrator::levelFor(TenantId tenant, MonitorTarget unit) const
{
    for (const ResponsePairState& state : states_)
        if (state.tenant == tenant && state.unit == unit)
            return state.level;
    return ResponseLevel::Observe;
}

std::vector<ResponsePairState>
ResponseOrchestrator::engagedPairs() const
{
    std::vector<ResponsePairState> engaged;
    for (const ResponsePairState& state : states_)
        if (state.level != ResponseLevel::Observe)
            engaged.push_back(state);
    return engaged;
}

ResponseOrchestratorState
ResponseOrchestrator::snapshotState() const
{
    ResponseOrchestratorState state;
    state.states = states_;
    state.actions = actions_;
    state.suppressed = suppressed_;
    state.epoch = epoch_;
    state.nextActionId = nextActionId_;
    return state;
}

std::string
ResponseOrchestrator::streamText() const
{
    std::string text;
    for (const ResponseAction& action : actions_) {
        text += action.actionLine();
        text += '\n';
    }
    return text;
}

std::uint64_t
ResponseOrchestrator::streamHash() const
{
    return persist::fnv1a64(streamText());
}

std::vector<StatEntry>
ResponseOrchestrator::statEntries(const std::string& prefix) const
{
    auto count_kind = [this](ResponseActionKind kind) {
        return static_cast<double>(std::count_if(
            actions_.begin(), actions_.end(),
            [&](const ResponseAction& a) { return a.kind == kind; }));
    };
    auto count_level = [this](ResponseLevel level) {
        return static_cast<double>(std::count_if(
            states_.begin(), states_.end(),
            [&](const ResponsePairState& s) {
                return s.level == level;
            }));
    };
    std::vector<StatEntry> entries;
    entries.push_back({prefix + "actions.total",
                       static_cast<double>(actions_.size()),
                       "admitted response actions"});
    entries.push_back({prefix + "actions.engage",
                       count_kind(ResponseActionKind::Engage),
                       "Observe -> engaged transitions"});
    entries.push_back({prefix + "actions.escalate",
                       count_kind(ResponseActionKind::Escalate),
                       "ladder escalations"});
    entries.push_back({prefix + "actions.deescalate",
                       count_kind(ResponseActionKind::Deescalate),
                       "TTL cool-down de-escalations"});
    entries.push_back({prefix + "actions.release",
                       count_kind(ResponseActionKind::Release),
                       "returns to Observe"});
    entries.push_back({prefix + "actions.suppressed",
                       static_cast<double>(suppressed_),
                       "actions dropped by rate caps"});
    entries.push_back({prefix + "epoch",
                       static_cast<double>(epoch_),
                       "incident rounds processed"});
    for (auto level :
         {ResponseLevel::RateLimit, ResponseLevel::TemporalPartition,
          ResponseLevel::Quarantine})
        entries.push_back(
            {prefix + "level." + responseLevelName(level),
             count_level(level),
             "pairs currently at this response level"});
    return entries;
}

} // namespace cchunter
