#include "persist/snapshot_file.hh"

#include <cstdio>

#include "util/logging.hh"

namespace cchunter::persist
{

const char*
snapshotDefectName(SnapshotDefect defect)
{
    switch (defect) {
    case SnapshotDefect::None:
        return "none";
    case SnapshotDefect::BadMagic:
        return "badMagic";
    case SnapshotDefect::BadChecksum:
        return "badChecksum";
    case SnapshotDefect::FutureVersion:
        return "futureVersion";
    case SnapshotDefect::TruncatedTail:
        return "truncatedTail";
    case SnapshotDefect::Unreadable:
        return "unreadable";
    }
    return "?";
}

void
DefectCounts::count(SnapshotDefect defect)
{
    switch (defect) {
    case SnapshotDefect::None:
        break;
    case SnapshotDefect::BadMagic:
        ++badMagic;
        break;
    case SnapshotDefect::BadChecksum:
        ++badChecksum;
        break;
    case SnapshotDefect::FutureVersion:
        ++futureVersion;
        break;
    case SnapshotDefect::TruncatedTail:
        ++truncatedTail;
        break;
    case SnapshotDefect::Unreadable:
        ++unreadable;
        break;
    }
}

std::uint64_t
DefectCounts::total() const
{
    return badMagic + badChecksum + futureVersion + truncatedTail +
           unreadable;
}

void
DefectCounts::accumulate(const DefectCounts& other)
{
    badMagic += other.badMagic;
    badChecksum += other.badChecksum;
    futureVersion += other.futureVersion;
    truncatedTail += other.truncatedTail;
    unreadable += other.unreadable;
}

void
appendFramedRecord(std::vector<std::uint8_t>& out,
                   const std::vector<std::uint8_t>& payload)
{
    ByteWriter frame;
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u64(fnv1a64(payload.data(), payload.size()));
    const auto& head = frame.bytes();
    out.insert(out.end(), head.begin(), head.end());
    out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t>
encodeRecordFile(const std::vector<std::vector<std::uint8_t>>& records)
{
    ByteWriter header;
    header.u64(kSnapshotMagic);
    header.u32(kSnapshotVersion);
    std::vector<std::uint8_t> bytes = header.take();
    for (const auto& payload : records)
        appendFramedRecord(bytes, payload);
    return bytes;
}

RecordFileContents
decodeRecordFile(const std::vector<std::uint8_t>& bytes, ReadMode mode)
{
    RecordFileContents out;
    ByteReader reader(bytes);

    // Header first: a wrong magic means "not ours at all" and a
    // future version means "ours, but we cannot be sure of the
    // layout" — both reject the whole file in either mode.
    const std::uint64_t magic = reader.u64();
    const std::uint32_t version = reader.u32();
    if (reader.bad() || magic != kSnapshotMagic) {
        out.defect = SnapshotDefect::BadMagic;
        return out;
    }
    if (version > kSnapshotVersion) {
        out.defect = SnapshotDefect::FutureVersion;
        return out;
    }

    while (reader.remaining() > 0) {
        const std::uint32_t length = reader.u32();
        const std::uint64_t checksum = reader.u64();
        if (reader.bad() || reader.remaining() < length) {
            // The frame itself ran past the end: a torn write.
            out.defect = SnapshotDefect::TruncatedTail;
            break;
        }
        std::vector<std::uint8_t> payload(length);
        for (std::uint32_t i = 0; i < length; ++i)
            payload[i] = reader.u8();
        if (fnv1a64(payload.data(), payload.size()) != checksum) {
            out.defect = SnapshotDefect::BadChecksum;
            break;
        }
        out.records.push_back(std::move(payload));
    }

    if (out.defect != SnapshotDefect::None) {
        // Everything from the defect onward is untrusted.  A journal
        // keeps its intact prefix; a snapshot must be whole or
        // nothing.
        ++out.discardedRecords;
        if (mode == ReadMode::Snapshot) {
            out.discardedRecords += out.records.size();
            out.records.clear();
        }
    }
    return out;
}

bool
writeFileAtomic(const std::string& path,
                const std::vector<std::uint8_t>& bytes)
{
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("persist: cannot open ", tmp, " for writing");
        return false;
    }
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        warn("persist: short write to ", tmp);
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("persist: cannot rename ", tmp, " over ", path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
readFileBytes(const std::string& path, bool& ok)
{
    ok = false;
    std::vector<std::uint8_t> bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    std::uint8_t buf[65536];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + got);
    ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok)
        bytes.clear();
    return bytes;
}

RecordFileContents
readRecordFile(const std::string& path, ReadMode mode)
{
    bool ok = false;
    const std::vector<std::uint8_t> bytes = readFileBytes(path, ok);
    if (!ok) {
        RecordFileContents out;
        out.defect = SnapshotDefect::Unreadable;
        return out;
    }
    return decodeRecordFile(bytes, mode);
}

} // namespace cchunter::persist
