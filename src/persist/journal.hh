/**
 * @file
 * Append-only record journal.
 *
 * Between checkpoints the fleet auditor appends every completed
 * tenant batch to a journal file: one framed, checksummed record per
 * append, flushed to the OS before the call returns.  Recovery reads
 * the journal in ReadMode::Journal, so a process killed mid-append
 * costs at most the record being written — the torn tail is detected
 * by its length prefix or checksum, counted, and discarded, never
 * misparsed.  A checkpoint compacts the log: the snapshot absorbs
 * everything journaled so far and reset() starts the journal afresh.
 */

#ifndef CCHUNTER_PERSIST_JOURNAL_HH
#define CCHUNTER_PERSIST_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "persist/snapshot_file.hh"

namespace cchunter::persist
{

/**
 * Appender half of the journal.  Not thread-safe; the fleet auditor
 * serializes appends under its persistence lock.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    /**
     * Open (truncate) the journal at `path` and write the container
     * header plus a first `headerRecord` (the checkpoint meta record,
     * so a journal is self-describing about which fleet wrote it).
     * Returns false when the filesystem refuses.
     */
    bool open(const std::string& path,
              const std::vector<std::uint8_t>& headerRecord);

    /** Append one framed record and flush it.  Returns false (and
     *  stops accepting) on a write error. */
    bool append(const std::vector<std::uint8_t>& payload);

    /** Truncate back to the header (after a checkpoint absorbed the
     *  journaled records). */
    bool reset();

    void close();

    bool isOpen() const { return file_ != nullptr; }
    std::uint64_t appends() const { return appends_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    std::FILE* file_ = nullptr;
    std::string path_;
    std::vector<std::uint8_t> headerRecord_;
    std::uint64_t appends_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

/** One journal read: the intact records plus tail-defect accounting. */
struct JournalContents
{
    /** Payloads of the header record and every intact append. */
    std::vector<std::vector<std::uint8_t>> records;

    /** Defect that ended the read (None when the file was clean). */
    SnapshotDefect tailDefect = SnapshotDefect::None;

    bool clean() const
    {
        return tailDefect == SnapshotDefect::None;
    }
};

/** Read a journal, keeping the valid prefix (see ReadMode::Journal). */
JournalContents readJournal(const std::string& path);

} // namespace cchunter::persist

#endif // CCHUNTER_PERSIST_JOURNAL_HH
