#include "persist/journal.hh"

#include "util/logging.hh"

namespace cchunter::persist
{

namespace
{

std::vector<std::uint8_t>
journalPreamble(const std::vector<std::uint8_t>& headerRecord)
{
    ByteWriter header;
    header.u64(kSnapshotMagic);
    header.u32(kSnapshotVersion);
    std::vector<std::uint8_t> bytes = header.take();
    appendFramedRecord(bytes, headerRecord);
    return bytes;
}

} // namespace

JournalWriter::~JournalWriter()
{
    close();
}

bool
JournalWriter::open(const std::string& path,
                    const std::vector<std::uint8_t>& headerRecord)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        warn("persist: cannot open journal ", path);
        return false;
    }
    path_ = path;
    headerRecord_ = headerRecord;
    appends_ = 0;
    bytesWritten_ = 0;
    const std::vector<std::uint8_t> preamble =
        journalPreamble(headerRecord_);
    if (std::fwrite(preamble.data(), 1, preamble.size(), file_) !=
            preamble.size() ||
        std::fflush(file_) != 0) {
        warn("persist: cannot write journal header to ", path);
        close();
        return false;
    }
    bytesWritten_ += preamble.size();
    return true;
}

bool
JournalWriter::append(const std::vector<std::uint8_t>& payload)
{
    if (!file_)
        return false;
    std::vector<std::uint8_t> frame;
    appendFramedRecord(frame, payload);
    if (std::fwrite(frame.data(), 1, frame.size(), file_) !=
            frame.size() ||
        std::fflush(file_) != 0) {
        warn("persist: journal append failed on ", path_);
        close();
        return false;
    }
    ++appends_;
    bytesWritten_ += frame.size();
    return true;
}

bool
JournalWriter::reset()
{
    if (!file_)
        return false;
    const std::string path = path_;
    const std::vector<std::uint8_t> headerRecord = headerRecord_;
    return open(path, headerRecord);
}

void
JournalWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

JournalContents
readJournal(const std::string& path)
{
    const RecordFileContents raw =
        readRecordFile(path, ReadMode::Journal);
    JournalContents out;
    out.records = raw.records;
    out.tailDefect = raw.defect;
    return out;
}

} // namespace cchunter::persist
