#include "persist/recovery.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cchunter::persist
{

PersistPolicy
PersistPolicy::fromConfig(const Config& cfg)
{
    PersistPolicy policy;
    policy.dir = cfg.getString("persist.dir", policy.dir);
    policy.checkpointIntervalBatches = static_cast<std::size_t>(
        cfg.getUint("persist.checkpoint_interval",
                    policy.checkpointIntervalBatches));
    policy.resume = cfg.getBool("persist.resume", policy.resume);
    policy.finalSnapshot =
        cfg.getBool("persist.final_snapshot", policy.finalSnapshot);
    return policy;
}

void
PersistPolicy::toConfig(Config& cfg) const
{
    cfg.set("persist.dir", dir);
    cfg.set("persist.checkpoint_interval",
            static_cast<std::int64_t>(checkpointIntervalBatches));
    cfg.set("persist.resume", resume);
    cfg.set("persist.final_snapshot", finalSnapshot);
}

std::string
snapshotPath(const PersistPolicy& policy)
{
    return policy.dir + "/fleet.snapshot";
}

std::string
journalPath(const PersistPolicy& policy)
{
    return policy.dir + "/fleet.journal";
}

std::vector<StatEntry>
persistStatEntries(const PersistStats& stats,
                   const std::string& prefix)
{
    std::vector<StatEntry> entries;
    auto add = [&](const char* name, double value, const char* desc) {
        entries.push_back({prefix + name, value, desc});
    };
    add("checkpoints", static_cast<double>(stats.checkpointsWritten),
        "snapshots written (interval + final)");
    add("snapshotBytes", static_cast<double>(stats.lastSnapshotBytes),
        "size of the newest snapshot");
    add("journalAppends", static_cast<double>(stats.journalAppends),
        "batch records journaled");
    add("journalBytes", static_cast<double>(stats.journalBytes),
        "bytes written to the journal");
    add("restoredSnapshot",
        static_cast<double>(stats.restoredFromSnapshot),
        "batches recovered from the snapshot");
    add("restoredJournal",
        static_cast<double>(stats.restoredFromJournal),
        "batches recovered from the journal");
    add("restoredTenants", static_cast<double>(stats.restoredTenants),
        "distinct tenants whose audit was recovered");
    add("duplicateRestored",
        static_cast<double>(stats.duplicateRestored),
        "recovered batches shadowed by an earlier copy");
    add("unknownTenants",
        static_cast<double>(stats.unknownTenantBatches),
        "recovered batches for tenants not in the plan");
    add("tailDiscards",
        static_cast<double>(stats.journalTailDiscards),
        "journal reads that lost a torn/corrupt tail");
    add("registryMismatches",
        static_cast<double>(stats.registryMismatches),
        "files refused for a foreign fleet fingerprint");
    add("coldStarts", static_cast<double>(stats.coldStarts),
        "resumes that recovered nothing");
    add("restoredResponseActions",
        static_cast<double>(stats.restoredResponseActions),
        "response actions restored with the orchestrator");
    add("defects.badMagic",
        static_cast<double>(stats.defects.badMagic),
        "files with a wrong or missing magic");
    add("defects.badChecksum",
        static_cast<double>(stats.defects.badChecksum),
        "records failing their FNV-1a checksum");
    add("defects.futureVersion",
        static_cast<double>(stats.defects.futureVersion),
        "files from a newer format version");
    add("defects.truncatedTail",
        static_cast<double>(stats.defects.truncatedTail),
        "files ending inside a record frame");
    add("defects.unreadable",
        static_cast<double>(stats.defects.unreadable),
        "files that could not be read at all");
    add("restoreMicros", stats.restoreMicros,
        "wall-clock cost of the recovery load (us)");
    return entries;
}

namespace
{

/** Append `batch` unless its tenant was already recovered. */
void
mergeBatch(RecoveredFleetState& state, TenantAlarmBatch batch,
           PersistStats& stats, bool fromSnapshot)
{
    const bool duplicate = std::any_of(
        state.batches.begin(), state.batches.end(),
        [&](const TenantAlarmBatch& b) {
            return b.tenant == batch.tenant;
        });
    if (duplicate) {
        ++stats.duplicateRestored;
        return;
    }
    state.batches.push_back(std::move(batch));
    if (fromSnapshot)
        ++stats.restoredFromSnapshot;
    else
        ++stats.restoredFromJournal;
}

/** Recover batches from the snapshot file (all-or-nothing). */
void
recoverSnapshot(const std::string& path,
                std::uint64_t expectedFingerprint,
                RecoveredFleetState& state, PersistStats& stats)
{
    const RecordFileContents contents =
        readRecordFile(path, ReadMode::Snapshot);
    if (!contents.clean()) {
        stats.defects.count(contents.defect);
        warn("persist: snapshot ", path, " rejected: ",
             snapshotDefectName(contents.defect));
        return;
    }
    FleetCheckpoint checkpoint;
    if (!decodeFleetCheckpoint(contents, checkpoint)) {
        // Checksummed frames that do not decode as a checkpoint mean
        // the payload bytes lie about their own structure — the same
        // quarantine bucket as a failed checksum.
        stats.defects.count(SnapshotDefect::BadChecksum);
        warn("persist: snapshot ", path, " rejected: undecodable");
        return;
    }
    if (checkpoint.registryFingerprint != expectedFingerprint) {
        ++stats.registryMismatches;
        warn("persist: snapshot ", path,
             " rejected: foreign fleet fingerprint");
        return;
    }
    for (TenantAlarmBatch& batch : checkpoint.batches)
        mergeBatch(state, std::move(batch), stats, true);
    if (checkpoint.respond) {
        stats.restoredResponseActions +=
            checkpoint.respond->actions.size();
        state.respond = std::move(checkpoint.respond);
    }
}

/** Recover batches from the journal's intact prefix. */
void
recoverJournal(const std::string& path,
               std::uint64_t expectedFingerprint,
               RecoveredFleetState& state, PersistStats& stats)
{
    JournalContents contents = readJournal(path);
    if (!contents.clean()) {
        stats.defects.count(contents.tailDefect);
        // A tail defect with a usable prefix is the torn-write case;
        // a header defect leaves no records at all.
        if (!contents.records.empty())
            ++stats.journalTailDiscards;
        else
            warn("persist: journal ", path, " rejected: ",
                 snapshotDefectName(contents.tailDefect));
    }
    if (contents.records.empty())
        return;

    // Record 0 is the meta header the writer stamped at open().
    std::uint64_t fingerprint = 0;
    std::uint64_t batchCount = 0;
    bool finalized = false;
    if (!decodeMeta(contents.records.front(), fingerprint, batchCount,
                    finalized)) {
        stats.defects.count(SnapshotDefect::BadChecksum);
        warn("persist: journal ", path, " rejected: bad header");
        return;
    }
    if (fingerprint != expectedFingerprint) {
        ++stats.registryMismatches;
        warn("persist: journal ", path,
             " rejected: foreign fleet fingerprint");
        return;
    }
    for (std::size_t i = 1; i < contents.records.size(); ++i) {
        TenantAlarmBatch batch;
        if (!decodeTenantBatch(contents.records[i], batch)) {
            // An intact frame holding a non-batch payload: treat it
            // and everything after as an untrusted tail.
            stats.defects.count(SnapshotDefect::BadChecksum);
            ++stats.journalTailDiscards;
            break;
        }
        mergeBatch(state, std::move(batch), stats, false);
    }
}

} // namespace

RecoveredFleetState
recoverFleetState(const PersistPolicy& policy,
                  std::uint64_t expectedFingerprint,
                  PersistStats& stats)
{
    RecoveredFleetState state;
    recoverSnapshot(snapshotPath(policy), expectedFingerprint, state,
                    stats);
    recoverJournal(journalPath(policy), expectedFingerprint, state,
                   stats);
    stats.restoredTenants += state.batches.size();
    if (state.batches.empty())
        ++stats.coldStarts;
    return state;
}

} // namespace cchunter::persist
