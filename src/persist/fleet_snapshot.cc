#include "persist/fleet_snapshot.hh"

#include <sstream>

#include "scenario/experiment.hh"
#include "units/unit_registry.hh"

namespace cchunter::persist
{

namespace
{

void
putPipeline(ByteWriter& w, const PipelineStats& p)
{
    w.u64(p.drainedHistograms);
    w.u64(p.drainedConflicts);
    w.u64(p.evictedQuanta);
    w.u64(p.evictedConflicts);
    w.u64(p.batchesEnqueued);
    w.u64(p.batchesDropped);
    w.u64(p.queueDepthHighWater);
    w.u64(p.analysesRun);
    w.f64(p.latencyMinUs);
    w.f64(p.latencyMaxUs);
    w.f64(p.latencyTotalUs);
}

void
getPipeline(ByteReader& r, PipelineStats& p)
{
    p.drainedHistograms = r.u64();
    p.drainedConflicts = r.u64();
    p.evictedQuanta = r.u64();
    p.evictedConflicts = r.u64();
    p.batchesEnqueued = r.u64();
    p.batchesDropped = r.u64();
    p.queueDepthHighWater = static_cast<std::size_t>(r.u64());
    p.analysesRun = r.u64();
    p.latencyMinUs = r.f64();
    p.latencyMaxUs = r.f64();
    p.latencyTotalUs = r.f64();
}

void
putDegraded(ByteWriter& w, const DegradedStats& d)
{
    w.u64(d.missedQuanta);
    w.u64(d.duplicatedQuanta);
    w.u64(d.truncatedBatches);
    w.u64(d.truncatedEvents);
    w.u64(d.reorderedBatches);
    w.u64(d.corruptedContexts);
    w.u64(d.bloomAliases);
    w.u64(d.saturatedBinEvents);
    w.u64(d.accumulatorSaturations);
    w.u64(d.unmergeUnderflows);
    w.u64(d.quarantinedBatches);
    w.u64(d.quarantineBadLabel);
    w.u64(d.quarantineBinMismatch);
    w.u64(d.quarantineSlotRange);
    w.u64(d.degradedAlarms);
    w.f64(d.minAlarmConfidence);
    w.f64(d.windowCoverage);
}

void
getDegraded(ByteReader& r, DegradedStats& d)
{
    d.missedQuanta = r.u64();
    d.duplicatedQuanta = r.u64();
    d.truncatedBatches = r.u64();
    d.truncatedEvents = r.u64();
    d.reorderedBatches = r.u64();
    d.corruptedContexts = r.u64();
    d.bloomAliases = r.u64();
    d.saturatedBinEvents = r.u64();
    d.accumulatorSaturations = r.u64();
    d.unmergeUnderflows = r.u64();
    d.quarantinedBatches = r.u64();
    d.quarantineBadLabel = r.u64();
    d.quarantineBinMismatch = r.u64();
    d.quarantineSlotRange = r.u64();
    d.degradedAlarms = r.u64();
    d.minAlarmConfidence = r.f64();
    d.windowCoverage = r.f64();
}

void
putAlarm(ByteWriter& w, const Alarm& a)
{
    w.u32(a.slot);
    w.u64(a.when);
    w.u64(a.quantum);
    w.str(a.summary);
    w.f64(a.confidence);
    w.u8(static_cast<std::uint8_t>(a.unit));
    w.u8(static_cast<std::uint8_t>(a.kind));
    w.u64(a.dominantFeature);
}

void
getAlarm(ByteReader& r, Alarm& a)
{
    a.slot = r.u32();
    a.when = r.u64();
    a.quantum = r.u64();
    a.summary = r.str();
    a.confidence = r.f64();
    a.unit = static_cast<MonitorTarget>(r.u8());
    a.kind = static_cast<AlarmKind>(r.u8());
    a.dominantFeature = r.u64();
}

void
putIncident(ByteWriter& w, const Incident& i)
{
    w.u64(i.id);
    w.u8(i.fleetWide ? 1 : 0);
    w.u32(i.tenant);
    w.u32(i.slot);
    w.u8(static_cast<std::uint8_t>(i.unit));
    w.u8(static_cast<std::uint8_t>(i.kind));
    w.u64(i.signature);
    w.u64(i.firstQuantum);
    w.u64(i.lastQuantum);
    w.u64(i.occurrences);
    w.f64(i.meanConfidence);
    w.f64(i.minConfidence);
    w.f64(i.score);
    w.u8(static_cast<std::uint8_t>(i.severity));
    w.u8(i.correlated ? 1 : 0);
    w.u64(i.correlatedTenants.size());
    for (const TenantId t : i.correlatedTenants)
        w.u32(t);
}

void
getIncident(ByteReader& r, Incident& i)
{
    i.id = r.u64();
    i.fleetWide = r.u8() != 0;
    i.tenant = r.u32();
    i.slot = r.u32();
    i.unit = static_cast<MonitorTarget>(r.u8());
    i.kind = static_cast<AlarmKind>(r.u8());
    i.signature = r.u64();
    i.firstQuantum = r.u64();
    i.lastQuantum = r.u64();
    i.occurrences = r.u64();
    i.meanConfidence = r.f64();
    i.minConfidence = r.f64();
    i.score = r.f64();
    i.severity = static_cast<IncidentSeverity>(r.u8());
    i.correlated = r.u8() != 0;
    const std::uint64_t tenants = r.u64();
    i.correlatedTenants.clear();
    for (std::uint64_t t = 0; t < tenants && !r.bad(); ++t)
        i.correlatedTenants.push_back(r.u32());
}

void
putPairState(ByteWriter& w, const ResponsePairState& s)
{
    w.u32(s.tenant);
    w.u8(static_cast<std::uint8_t>(s.unit));
    w.u8(static_cast<std::uint8_t>(s.level));
    w.u64(s.incidentsAtLevel);
    w.u64(s.lastActivityEpoch);
}

void
getPairState(ByteReader& r, ResponsePairState& s)
{
    s.tenant = r.u32();
    s.unit = static_cast<MonitorTarget>(r.u8());
    s.level = static_cast<ResponseLevel>(r.u8());
    s.incidentsAtLevel = r.u64();
    s.lastActivityEpoch = r.u64();
}

void
putResponseAction(ByteWriter& w, const ResponseAction& a)
{
    w.u64(a.id);
    w.u64(a.epoch);
    w.u32(a.tenant);
    w.u8(static_cast<std::uint8_t>(a.unit));
    w.u8(static_cast<std::uint8_t>(a.kind));
    w.u8(static_cast<std::uint8_t>(a.from));
    w.u8(static_cast<std::uint8_t>(a.to));
    w.u8(a.ttl ? 1 : 0);
    w.u64(a.incidentId);
}

void
getResponseAction(ByteReader& r, ResponseAction& a)
{
    a.id = r.u64();
    a.epoch = r.u64();
    a.tenant = r.u32();
    a.unit = static_cast<MonitorTarget>(r.u8());
    a.kind = static_cast<ResponseActionKind>(r.u8());
    a.from = static_cast<ResponseLevel>(r.u8());
    a.to = static_cast<ResponseLevel>(r.u8());
    a.ttl = r.u8() != 0;
    a.incidentId = r.u64();
}

} // namespace

std::vector<std::uint8_t>
encodeResponseState(const ResponseOrchestratorState& state)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RecordKind::ResponseState));
    w.u64(state.suppressed);
    w.u64(state.epoch);
    w.u64(state.nextActionId);
    w.u64(state.states.size());
    for (const ResponsePairState& s : state.states)
        putPairState(w, s);
    w.u64(state.actions.size());
    for (const ResponseAction& a : state.actions)
        putResponseAction(w, a);
    return w.take();
}

bool
decodeResponseState(const std::vector<std::uint8_t>& payload,
                    ResponseOrchestratorState& out)
{
    ByteReader r(payload);
    if (r.u8() != static_cast<std::uint8_t>(RecordKind::ResponseState))
        return false;
    out = ResponseOrchestratorState{};
    out.suppressed = r.u64();
    out.epoch = r.u64();
    out.nextActionId = r.u64();
    const std::uint64_t states = r.u64();
    for (std::uint64_t s = 0; s < states && !r.bad(); ++s) {
        ResponsePairState state;
        getPairState(r, state);
        out.states.push_back(state);
    }
    if (out.states.size() != states)
        return false;
    const std::uint64_t actions = r.u64();
    for (std::uint64_t a = 0; a < actions && !r.bad(); ++a) {
        ResponseAction action;
        getResponseAction(r, action);
        out.actions.push_back(action);
    }
    return r.exhausted() && out.actions.size() == actions;
}

std::vector<std::uint8_t>
encodeTenantBatch(const TenantAlarmBatch& batch)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RecordKind::TenantBatch));
    w.u32(batch.tenant);
    w.u64(batch.shard);
    w.u64(batch.quantaRecorded);
    w.u64(batch.offlineDetectedUnits);
    putPipeline(w, batch.pipeline);
    putDegraded(w, batch.degraded);
    w.u64(batch.alarms.size());
    for (const Alarm& alarm : batch.alarms)
        putAlarm(w, alarm);
    return w.take();
}

bool
decodeTenantBatch(const std::vector<std::uint8_t>& payload,
                  TenantAlarmBatch& out)
{
    ByteReader r(payload);
    if (r.u8() != static_cast<std::uint8_t>(RecordKind::TenantBatch))
        return false;
    out = TenantAlarmBatch{};
    out.tenant = r.u32();
    out.shard = static_cast<std::size_t>(r.u64());
    out.quantaRecorded = r.u64();
    out.offlineDetectedUnits = r.u64();
    getPipeline(r, out.pipeline);
    getDegraded(r, out.degraded);
    const std::uint64_t alarms = r.u64();
    for (std::uint64_t a = 0; a < alarms && !r.bad(); ++a) {
        Alarm alarm;
        getAlarm(r, alarm);
        out.alarms.push_back(std::move(alarm));
    }
    return r.exhausted() && out.alarms.size() == alarms;
}

std::vector<std::uint8_t>
encodeIncidentStore(const IncidentStore& store,
                    const IncidentRateLimit& limit)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RecordKind::IncidentStore));
    w.u64(limit.maxPerTenant);
    w.u64(limit.maxTotal);
    w.u64(store.suppressed());
    w.u64(store.incidents().size());
    for (const Incident& incident : store.incidents())
        putIncident(w, incident);
    return w.take();
}

bool
decodeIncidentStore(const std::vector<std::uint8_t>& payload,
                    IncidentStore& out)
{
    ByteReader r(payload);
    if (r.u8() != static_cast<std::uint8_t>(RecordKind::IncidentStore))
        return false;
    IncidentRateLimit limit;
    limit.maxPerTenant = static_cast<std::size_t>(r.u64());
    limit.maxTotal = static_cast<std::size_t>(r.u64());
    const std::uint64_t suppressed = r.u64();
    const std::uint64_t count = r.u64();
    std::vector<Incident> incidents;
    for (std::uint64_t i = 0; i < count && !r.bad(); ++i) {
        Incident incident;
        getIncident(r, incident);
        incidents.push_back(std::move(incident));
    }
    if (!r.exhausted() || incidents.size() != count)
        return false;
    out = IncidentStore::restored(limit, std::move(incidents),
                                  suppressed);
    return true;
}

std::vector<std::uint8_t>
encodeMeta(std::uint64_t fingerprint, bool finalized,
           std::uint64_t batchCount)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RecordKind::Meta));
    w.u64(fingerprint);
    w.u8(finalized ? 1 : 0);
    w.u64(batchCount);
    return w.take();
}

bool
decodeMeta(const std::vector<std::uint8_t>& payload,
           std::uint64_t& fingerprint, std::uint64_t& batchCount,
           bool& finalized)
{
    ByteReader r(payload);
    if (r.u8() != static_cast<std::uint8_t>(RecordKind::Meta))
        return false;
    fingerprint = r.u64();
    finalized = r.u8() != 0;
    batchCount = r.u64();
    return r.exhausted();
}

std::vector<std::uint8_t>
encodeFleetCheckpoint(const FleetCheckpoint& checkpoint,
                      const IncidentRateLimit& limit)
{
    std::vector<std::vector<std::uint8_t>> records;
    records.push_back(encodeMeta(checkpoint.registryFingerprint,
                                 checkpoint.finalized,
                                 checkpoint.batches.size()));
    for (const TenantAlarmBatch& batch : checkpoint.batches)
        records.push_back(encodeTenantBatch(batch));
    if (checkpoint.incidents)
        records.push_back(
            encodeIncidentStore(*checkpoint.incidents, limit));
    if (checkpoint.respond)
        records.push_back(encodeResponseState(*checkpoint.respond));
    return encodeRecordFile(records);
}

bool
decodeFleetCheckpoint(const RecordFileContents& contents,
                      FleetCheckpoint& out)
{
    out = FleetCheckpoint{};
    if (contents.records.empty())
        return false;

    std::uint64_t batchCount = 0;
    if (!decodeMeta(contents.records.front(), out.registryFingerprint,
                    batchCount, out.finalized))
        return false;

    for (std::size_t i = 1; i < contents.records.size(); ++i) {
        const auto& payload = contents.records[i];
        if (payload.empty())
            return false;
        const auto kind = static_cast<RecordKind>(payload.front());
        if (kind == RecordKind::TenantBatch) {
            TenantAlarmBatch batch;
            if (!decodeTenantBatch(payload, batch))
                return false;
            out.batches.push_back(std::move(batch));
        } else if (kind == RecordKind::IncidentStore) {
            IncidentStore store;
            if (!decodeIncidentStore(payload, store))
                return false;
            out.incidents = std::move(store);
        } else if (kind == RecordKind::ResponseState) {
            ResponseOrchestratorState respond;
            if (!decodeResponseState(payload, respond))
                return false;
            out.respond = std::move(respond);
        } else {
            return false;
        }
    }
    return out.batches.size() == batchCount;
}

std::uint64_t
registryFingerprint(const TenantRegistry& registry)
{
    std::uint64_t hash = fnv1a64("cchunter-fleet-v1");
    for (const TenantConfig& tenant : registry.tenants()) {
        std::ostringstream os;
        os << tenant.id << '\x1f' << tenant.name << '\x1f'
           << auditedWorkloadName(tenant.audit.workload) << '\x1f'
           << tenant.audit.benignA << '\x1f' << tenant.audit.benignB
           << '\x1f'
           << static_cast<int>(tenant.audit.benignUnits) << '\x1f'
           << tenant.audit.online.clusteringIntervalQuanta << '\x1f'
           << tenant.audit.online.analysisThreads << '\x1f'
           << tenant.audit.online.retentionQuanta << '\x1f'
           << tenant.audit.online.autocorrEveryQuantum << '\x1f'
           << tenant.audit.online.asyncAnalysis << '\x1f'
           << scenarioConfig(tenant.audit.scenario).dump();
        hash = fnv1a64(os.str(), hash);
    }
    return hash;
}

} // namespace cchunter::persist
