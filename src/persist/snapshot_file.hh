/**
 * @file
 * The on-disk container every persisted artefact shares.
 *
 * A snapshot (or journal) file is a fixed header — magic and format
 * version — followed by length-prefixed, individually checksummed
 * records:
 *
 *     [u64 magic][u32 version]
 *     [u32 length][u64 fnv1a64(payload)][payload bytes]  x N
 *
 * Reading is defensive by construction: a wrong magic, a version from
 * the future, a checksum mismatch or a record cut short by a torn
 * write is *detected and counted*, never a crash and never a silent
 * misparse.  Snapshot semantics reject the whole file on any defect
 * (an inconsistent checkpoint is worthless); journal semantics keep
 * the valid prefix and discard the defective tail (an append-only log
 * is exactly as good as its last intact record).
 */

#ifndef CCHUNTER_PERSIST_SNAPSHOT_FILE_HH
#define CCHUNTER_PERSIST_SNAPSHOT_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "persist/codec.hh"

namespace cchunter::persist
{

/** First eight bytes of every persisted file ("cchsnap!" LE). */
constexpr std::uint64_t kSnapshotMagic = 0x2170616e73686363ull;

/** Current format version; readers accept <= this. */
constexpr std::uint32_t kSnapshotVersion = 1;

/** Why a persisted file (or its tail) was refused. */
enum class SnapshotDefect : std::uint8_t
{
    None,
    BadMagic,      //!< header is not a snapshot at all
    BadChecksum,   //!< a record's payload does not match its FNV-1a
    FutureVersion, //!< written by a newer format than this reader
    TruncatedTail, //!< a record frame runs past the end of the file
    Unreadable,    //!< the file is absent or the OS refused the read
};

/** Short lower-case name of a defect (stat entry / log rendering). */
const char* snapshotDefectName(SnapshotDefect defect);

/** Per-reason defect tally — the persistence quarantine taxonomy. */
struct DefectCounts
{
    std::uint64_t badMagic = 0;
    std::uint64_t badChecksum = 0;
    std::uint64_t futureVersion = 0;
    std::uint64_t truncatedTail = 0;
    std::uint64_t unreadable = 0;

    void count(SnapshotDefect defect);
    std::uint64_t total() const;
    void accumulate(const DefectCounts& other);
};

/** Result of reading one record file. */
struct RecordFileContents
{
    /** Payloads of every intact record, in file order. */
    std::vector<std::vector<std::uint8_t>> records;

    /** First defect hit (None for a fully clean file). */
    SnapshotDefect defect = SnapshotDefect::None;

    /** Records discarded after the defect (journal reads only ever
     *  lose the tail; snapshot reads discard everything). */
    std::uint64_t discardedRecords = 0;

    bool clean() const { return defect == SnapshotDefect::None; }
};

/** How readRecordFile treats a mid-file defect. */
enum class ReadMode
{
    Snapshot, //!< any defect rejects the whole file (records cleared)
    Journal,  //!< keep the intact prefix, drop the defective tail
};

/** Serialize a header plus framed records into one byte vector. */
std::vector<std::uint8_t> encodeRecordFile(
    const std::vector<std::vector<std::uint8_t>>& records);

/** Append one framed record (length, checksum, payload) to `out`. */
void appendFramedRecord(std::vector<std::uint8_t>& out,
                        const std::vector<std::uint8_t>& payload);

/** Parse a byte image of a record file (see ReadMode semantics). */
RecordFileContents decodeRecordFile(
    const std::vector<std::uint8_t>& bytes, ReadMode mode);

/**
 * Write bytes to `path` atomically: the bytes land in `path + ".tmp"`
 * first and are renamed over the destination, so a crash mid-write
 * leaves either the old file or the new one — never a torn snapshot.
 * Returns false (and logs) when the filesystem refuses.
 */
bool writeFileAtomic(const std::string& path,
                     const std::vector<std::uint8_t>& bytes);

/** Read a whole file; empty optional-style flag via `ok`. */
std::vector<std::uint8_t> readFileBytes(const std::string& path,
                                        bool& ok);

/** Read + decode a record file in one step.  A missing/unreadable
 *  file yields SnapshotDefect::Unreadable. */
RecordFileContents readRecordFile(const std::string& path,
                                  ReadMode mode);

} // namespace cchunter::persist

#endif // CCHUNTER_PERSIST_SNAPSHOT_FILE_HH
