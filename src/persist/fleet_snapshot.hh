/**
 * @file
 * Serialization of fleet-audit state (format v1).
 *
 * A checkpoint is the AlarmAggregator's logical state: the set of
 * tenant alarm batches ingested so far.  Restoring re-ingests those
 * batches into a fresh aggregator, which reproduces its internal
 * state exactly — ingest is order-insensitive and keyed by tenant, so
 * the eventual incident stream depends only on the batch *set*, never
 * on who wrote the snapshot or when.  A finalized run's snapshot also
 * carries the scored IncidentStore, so a restarted auditor resumes
 * with the previous run's correlation context (ids, suppression
 * counts, rate-limit positions) intact.
 *
 * Every record is framed and checksummed by persist/snapshot_file;
 * this layer only defines payload layouts.  Payloads open with a
 * record-kind byte so a reader can verify it is looking at what it
 * expects before trusting any field.
 */

#ifndef CCHUNTER_PERSIST_FLEET_SNAPSHOT_HH
#define CCHUNTER_PERSIST_FLEET_SNAPSHOT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "fleet/alarm_aggregator.hh"
#include "fleet/incident_store.hh"
#include "fleet/tenant_registry.hh"
#include "persist/snapshot_file.hh"
#include "respond/orchestrator.hh"

namespace cchunter::persist
{

/** First payload byte of every record. */
enum class RecordKind : std::uint8_t
{
    Meta = 1,          //!< fingerprint + layout of the file
    TenantBatch = 2,   //!< one tenant's audit output
    IncidentStore = 3, //!< a finalized run's scored incident log
    ResponseState = 4, //!< the response orchestrator's ladder state
};

/** The decoded form of a checkpoint file. */
struct FleetCheckpoint
{
    /** Fingerprint of the registry the state was captured from; a
     *  restore against a different fleet must cold-start. */
    std::uint64_t registryFingerprint = 0;

    /** True when the run had finalized (incidents present). */
    bool finalized = false;

    /** Completed tenant batches, in capture order. */
    std::vector<TenantAlarmBatch> batches;

    /** The scored incident log (finalized snapshots only). */
    std::optional<IncidentStore> incidents;

    /** The response orchestrator's state (pair levels + action log),
     *  when a response policy was active.  Carrying it in the
     *  checkpoint is what makes quarantines survive a crash/restart:
     *  a resumed auditor rebuilds the orchestrator from here before
     *  observing any new incidents. */
    std::optional<ResponseOrchestratorState> respond;
};

/** Encode/decode one tenant batch payload. */
std::vector<std::uint8_t> encodeTenantBatch(
    const TenantAlarmBatch& batch);
bool decodeTenantBatch(const std::vector<std::uint8_t>& payload,
                       TenantAlarmBatch& out);

/** Encode/decode a whole incident store (incidents, suppression
 *  count, rate limits) as one payload. */
std::vector<std::uint8_t> encodeIncidentStore(
    const IncidentStore& store, const IncidentRateLimit& limit);
bool decodeIncidentStore(const std::vector<std::uint8_t>& payload,
                         IncidentStore& out);

/** Encode/decode the response orchestrator's persistable state
 *  (pair ladder positions, the full action log, counters). */
std::vector<std::uint8_t> encodeResponseState(
    const ResponseOrchestratorState& state);
bool decodeResponseState(const std::vector<std::uint8_t>& payload,
                         ResponseOrchestratorState& out);

/** Meta payload: fingerprint, finalized flag, expected batch count. */
std::vector<std::uint8_t> encodeMeta(std::uint64_t fingerprint,
                                     bool finalized,
                                     std::uint64_t batchCount);
bool decodeMeta(const std::vector<std::uint8_t>& payload,
                std::uint64_t& fingerprint, std::uint64_t& batchCount,
                bool& finalized);

/**
 * Serialize a checkpoint into a complete record-file byte image
 * (header, meta record, one record per batch, optionally the
 * incident store).
 */
std::vector<std::uint8_t> encodeFleetCheckpoint(
    const FleetCheckpoint& checkpoint,
    const IncidentRateLimit& limit = {});

/**
 * Decode a record file (already past the container's framing checks)
 * into a checkpoint.  Returns false when the records are structurally
 * inconsistent — wrong kinds, short payloads, a batch count that does
 * not match the meta record — which a same-version writer never
 * produces; callers quarantine such a file like a checksum failure.
 */
bool decodeFleetCheckpoint(const RecordFileContents& contents,
                           FleetCheckpoint& out);

/**
 * Stable fingerprint of a tenant registry: FNV-1a over every
 * tenant's id, name and full audit configuration (workload, scenario
 * echo, online cadence).  Two registries with equal fingerprints run
 * identical audits, so a snapshot is only replayed against the fleet
 * it was captured from.
 */
std::uint64_t registryFingerprint(const TenantRegistry& registry);

} // namespace cchunter::persist

#endif // CCHUNTER_PERSIST_FLEET_SNAPSHOT_HH
