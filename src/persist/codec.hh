/**
 * @file
 * Byte-level encoding primitives for the persistence subsystem.
 *
 * Every persisted structure is rendered through ByteWriter/ByteReader:
 * fixed-width little-endian integers, bit-cast doubles and
 * length-prefixed strings, independent of host endianness and struct
 * layout.  The same FNV-1a 64-bit hash that fingerprints the fleet
 * incident stream checksums every snapshot record, so one hash
 * function guards both the live determinism contract and the at-rest
 * bytes.
 */

#ifndef CCHUNTER_PERSIST_CODEC_HH
#define CCHUNTER_PERSIST_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cchunter::persist
{

/** FNV-1a 64-bit over a byte range (the PR-4 incident-stream hash). */
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 1469598103934665603ull);

/** FNV-1a 64-bit over a string. */
std::uint64_t fnv1a64(const std::string& text,
                      std::uint64_t seed = 1469598103934665603ull);

/**
 * Append-only little-endian byte sink.
 */
class ByteWriter
{
  public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v); //!< IEEE-754 bit pattern as u64
    void str(const std::string& s); //!< u32 length + raw bytes

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }
    std::size_t size() const { return bytes_.size(); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked reader over an encoded byte range.  Reads past the
 * end never throw or crash: the reader goes bad (sticky) and returns
 * zero values, so a truncated payload parses to a detectable failure
 * instead of undefined behaviour.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit ByteReader(const std::vector<std::uint8_t>& bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /** True once any read ran past the end of the buffer. */
    bool bad() const { return bad_; }

    /** True when every byte was consumed and no read overran. */
    bool exhausted() const { return !bad_ && pos_ == size_; }

    std::size_t remaining() const { return size_ - pos_; }

  private:
    bool take(void* out, std::size_t n);

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool bad_ = false;
};

} // namespace cchunter::persist

#endif // CCHUNTER_PERSIST_CODEC_HH
