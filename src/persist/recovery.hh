/**
 * @file
 * Crash-recovery policy and bookkeeping for the fleet auditor.
 *
 * PersistPolicy names where state lands and how often it is
 * checkpointed; recoverFleetState() turns whatever survived a crash —
 * the last atomic snapshot plus the journal's intact prefix — back
 * into the set of completed tenant batches.  Recovery never throws
 * and never trusts bytes: every defect (wrong magic, bad checksum,
 * future version, torn tail, unreadable file, fingerprint from a
 * different fleet) is counted under the persistence quarantine
 * taxonomy and degrades the restore toward a cold start, the worst
 * case being "re-audit everything", never "crash" or "wrong answer".
 */

#ifndef CCHUNTER_PERSIST_RECOVERY_HH
#define CCHUNTER_PERSIST_RECOVERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "persist/fleet_snapshot.hh"
#include "persist/journal.hh"
#include "sim/stats_report.hh"
#include "util/config.hh"

namespace cchunter::persist
{

/** Where and how often fleet state is persisted. */
struct PersistPolicy
{
    /** Directory for the snapshot + journal; empty disables
     *  persistence entirely. */
    std::string dir;

    /**
     * Rewrite the snapshot (and reset the journal) every this many
     * ingested batches.  0 journals every batch but never compacts
     * mid-run; recovery then replays the journal alone.
     */
    std::size_t checkpointIntervalBatches = 4;

    /** Attempt recovery from `dir` before auditing. */
    bool resume = false;

    /** Write a finalized snapshot (batches + scored incidents) after
     *  a successful run. */
    bool finalSnapshot = true;

    bool enabled() const { return !dir.empty(); }

    /** Parse the `persist.*` keys of a Config (missing keys keep
     *  their defaults). */
    static PersistPolicy fromConfig(const Config& cfg);

    /** Echo the policy into a Config under the `persist.*` keys. */
    void toConfig(Config& cfg) const;
};

/** Snapshot file inside the policy directory. */
std::string snapshotPath(const PersistPolicy& policy);

/** Journal file inside the policy directory. */
std::string journalPath(const PersistPolicy& policy);

/** Everything the persistence layer did during one fleet run. */
struct PersistStats
{
    std::uint64_t checkpointsWritten = 0; //!< snapshot rewrites
    std::uint64_t lastSnapshotBytes = 0;  //!< size of the newest one
    std::uint64_t journalAppends = 0;     //!< records journaled
    std::uint64_t journalBytes = 0;       //!< bytes journaled

    std::uint64_t restoredFromSnapshot = 0; //!< batches, via snapshot
    std::uint64_t restoredFromJournal = 0;  //!< batches, via journal
    std::uint64_t restoredTenants = 0; //!< distinct tenants recovered
    std::uint64_t duplicateRestored = 0; //!< journal/snapshot overlap
    std::uint64_t unknownTenantBatches = 0; //!< recovered, not in plan

    /** Journal records lost to a torn or corrupt tail. */
    std::uint64_t journalTailDiscards = 0;

    /** Snapshots/journals refused because they were captured from a
     *  differently-configured fleet. */
    std::uint64_t registryMismatches = 0;

    /** Resumes that recovered nothing and re-audited everything. */
    std::uint64_t coldStarts = 0;

    /** Response actions restored with the orchestrator's state. */
    std::uint64_t restoredResponseActions = 0;

    /** Per-reason defect tally across snapshot + journal reads. */
    DefectCounts defects;

    /** Wall-clock cost of the recovery load (microseconds). */
    double restoreMicros = 0.0;
};

/** PersistStats as flat stat entries under `prefix`. */
std::vector<StatEntry> persistStatEntries(
    const PersistStats& stats, const std::string& prefix = "persist.");

/** What a recovery pass salvaged. */
struct RecoveredFleetState
{
    /** One batch per recovered tenant (first occurrence wins:
     *  snapshot before journal). */
    std::vector<TenantAlarmBatch> batches;

    /** The response orchestrator's state, when the snapshot carried
     *  one (active quarantines survive the restart through this). */
    std::optional<ResponseOrchestratorState> respond;
};

/**
 * Load the snapshot and journal under `policy.dir`, validate both
 * against `expectedFingerprint`, and merge their batches (deduped by
 * tenant).  All defects are counted into `stats`; an empty result
 * with `stats.coldStarts == 1` is the graceful floor, never an
 * abort.
 */
RecoveredFleetState recoverFleetState(const PersistPolicy& policy,
                                      std::uint64_t expectedFingerprint,
                                      PersistStats& stats);

} // namespace cchunter::persist

#endif // CCHUNTER_PERSIST_RECOVERY_HH
