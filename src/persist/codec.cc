#include "persist/codec.hh"

#include <cstring>

namespace cchunter::persist
{

std::uint64_t
fnv1a64(const void* data, std::size_t size, std::uint64_t seed)
{
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

std::uint64_t
fnv1a64(const std::string& text, std::uint64_t seed)
{
    return fnv1a64(text.data(), text.size(), seed);
}

void
ByteWriter::u8(std::uint8_t v)
{
    bytes_.push_back(v);
}

void
ByteWriter::u32(std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

bool
ByteReader::take(void* out, std::size_t n)
{
    if (bad_ || size_ - pos_ < n) {
        bad_ = true;
        return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
}

std::uint8_t
ByteReader::u8()
{
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
}

std::uint32_t
ByteReader::u32()
{
    std::uint8_t raw[4] = {};
    if (!take(raw, sizeof(raw)))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    std::uint8_t raw[8] = {};
    if (!take(raw, sizeof(raw)))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
    return v;
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    const std::uint32_t n = u32();
    if (bad_ || size_ - pos_ < n) {
        bad_ = true;
        return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
}

} // namespace cchunter::persist
