/**
 * @file
 * The OS scheduler model: time quanta, round-robin assignment of
 * processes to hardware contexts, optional migration, and quantum
 * observers (the hook the CC-Hunter software daemon uses to record the
 * auditor's buffers each quantum).
 */

#ifndef CCHUNTER_SIM_SCHEDULER_HH
#define CCHUNTER_SIM_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/process.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cchunter
{

class Machine;

/** Scheduler configuration. */
struct SchedulerParams
{
    Tick quantum = defaultQuantumTicks; //!< OS time quantum (0.1 s)
    bool migrate = false; //!< unpinned processes hop contexts randomly
    std::uint64_t seed = 1;
};

/**
 * Callback invoked at the end of every OS time quantum, before
 * processes are re-assigned.  quantum_index counts completed quanta.
 */
using QuantumObserver =
    std::function<void(std::uint64_t quantum_index, Tick now)>;

/**
 * Quantum-based scheduler over the machine's hardware contexts.
 *
 * Pinned processes always run on their context (several pinned to one
 * context round-robin across quanta); unpinned processes round-robin
 * over the remaining contexts, optionally migrating.
 */
class Scheduler
{
  public:
    Scheduler(Machine& machine, SchedulerParams params);

    /** Register a process. */
    Process& addProcess(std::unique_ptr<Process> process);

    /** Begin scheduling: performs the initial assignment and arms the
     *  quantum timer.  Idempotent. */
    void start();

    /** Register an end-of-quantum observer. */
    void addQuantumObserver(QuantumObserver observer);

    /** Completed quanta. */
    std::uint64_t quantaElapsed() const { return quanta_; }

    /** All registered processes. */
    const std::vector<std::unique_ptr<Process>>& processes() const
    {
        return processes_;
    }

    const SchedulerParams& params() const { return params_; }

  private:
    void quantumBoundary();
    void assign(Tick now);

    Machine& machine_;
    SchedulerParams params_;
    Rng rng_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<QuantumObserver> observers_;
    std::uint64_t quanta_ = 0;
    std::uint64_t rrOffset_ = 0;
    bool started_ = false;
};

} // namespace cchunter

#endif // CCHUNTER_SIM_SCHEDULER_HH
