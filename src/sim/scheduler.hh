/**
 * @file
 * The OS scheduler model: time quanta, round-robin assignment of
 * processes to hardware contexts, optional migration, and quantum
 * observers (the hook the CC-Hunter software daemon uses to record the
 * auditor's buffers each quantum).
 */

#ifndef CCHUNTER_SIM_SCHEDULER_HH
#define CCHUNTER_SIM_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/process.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cchunter
{

class Machine;

/** Scheduler configuration. */
struct SchedulerParams
{
    Tick quantum = defaultQuantumTicks; //!< OS time quantum (0.1 s)
    bool migrate = false; //!< unpinned processes hop contexts randomly
    std::uint64_t seed = 1;
};

/**
 * Callback invoked at the end of every OS time quantum, before
 * processes are re-assigned.  quantum_index counts completed quanta.
 */
using QuantumObserver =
    std::function<void(std::uint64_t quantum_index, Tick now)>;

/** Counted engage/release transitions of the scheduler's isolation
 *  mechanisms (the knobs the response subsystem drives). */
struct IsolationStats
{
    std::uint64_t partitionsEngaged = 0;
    std::uint64_t partitionsReleased = 0;
    std::uint64_t throttlesEngaged = 0;
    std::uint64_t throttlesReleased = 0;
    std::uint64_t quarantinesEngaged = 0;
    std::uint64_t quarantinesReleased = 0;
    /** Context-quanta a pinned process was denied its context. */
    std::uint64_t suppressedQuanta = 0;
};

/** Two contexts that must never run in the same quantum: they
 *  alternate, `a` on even quanta and `b` on odd ones. */
struct TemporalPartition
{
    ContextId a = invalidContext;
    ContextId b = invalidContext;
};

/** Duty-cycle throttle: the context runs `active` quanta out of every
 *  `period` and is forced idle for the rest. */
struct ContextThrottle
{
    ContextId ctx = invalidContext;
    std::uint32_t period = 4;
    std::uint32_t active = 3;
};

/**
 * Quantum-based scheduler over the machine's hardware contexts.
 *
 * Pinned processes always run on their context (several pinned to one
 * context round-robin across quanta); unpinned processes round-robin
 * over the remaining contexts, optionally migrating.
 */
class Scheduler
{
  public:
    Scheduler(Machine& machine, SchedulerParams params);

    /** Register a process. */
    Process& addProcess(std::unique_ptr<Process> process);

    /** Begin scheduling: performs the initial assignment and arms the
     *  quantum timer.  Idempotent. */
    void start();

    /** Register an end-of-quantum observer. */
    void addQuantumObserver(QuantumObserver observer);

    /** Completed quanta. */
    std::uint64_t quantaElapsed() const { return quanta_; }

    /** All registered processes. */
    const std::vector<std::unique_ptr<Process>>& processes() const
    {
        return processes_;
    }

    const SchedulerParams& params() const { return params_; }

    /**
     * Isolation hooks.  All engage/release pairs are counted in
     * isolation() and are no-ops (returning false) when the requested
     * state is already present/absent.  With no isolation engaged the
     * schedule is bit-identical to a scheduler without these hooks: no
     * rng draws, no rotation changes.
     */

    /** Temporally partition two contexts: they alternate quanta and
     *  are never co-scheduled.  Returns false if already engaged. */
    bool partitionContexts(ContextId a, ContextId b);
    /** Release a partition (order-insensitive).  Returns false if no
     *  such partition is engaged. */
    bool releasePartition(ContextId a, ContextId b);

    /** Throttle a context to `active` out of every `period` quanta.
     *  Re-engaging an existing throttle updates its duty cycle without
     *  counting a new transition. */
    bool throttleContext(ContextId ctx, std::uint32_t period,
                         std::uint32_t active);
    bool releaseThrottle(ContextId ctx);

    /** Quarantine a context: nothing is ever scheduled on it. */
    bool quarantineContext(ContextId ctx);
    bool releaseQuarantine(ContextId ctx);

    /** True if any partition, throttle, or quarantine is engaged. */
    bool isolationActive() const
    {
        return !partitions_.empty() || !throttles_.empty() ||
               !quarantined_.empty();
    }

    /** Would `ctx` be forced idle during quantum `quantum`? */
    bool contextSuppressed(ContextId ctx, std::uint64_t quantum) const;

    const IsolationStats& isolation() const { return isolation_; }
    std::size_t activePartitions() const { return partitions_.size(); }
    std::size_t activeThrottles() const { return throttles_.size(); }
    std::size_t activeQuarantines() const { return quarantined_.size(); }

  private:
    void quantumBoundary();
    void assign(Tick now);
    void checkContext(ContextId ctx, const char* who) const;

    Machine& machine_;
    SchedulerParams params_;
    Rng rng_;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<QuantumObserver> observers_;
    std::uint64_t quanta_ = 0;
    std::uint64_t rrOffset_ = 0;
    bool started_ = false;
    std::vector<TemporalPartition> partitions_;
    std::vector<ContextThrottle> throttles_;
    std::vector<ContextId> quarantined_;
    IsolationStats isolation_;
    std::uint64_t lastSuppressCountQuantum_ = ~std::uint64_t{0};
};

} // namespace cchunter

#endif // CCHUNTER_SIM_SCHEDULER_HH
