/**
 * @file
 * Machine-wide statistics reporting.
 *
 * Every component keeps its own counters (cache hits/misses, bus
 * transfers/locks/waits, DRAM row hits, execution-unit operations and
 * conflicts, per-process action mixes, scheduler quanta); this module
 * walks the machine and renders them as a flat name/value listing in
 * the style of gem5's stats.txt, plus a per-process table.
 */

#ifndef CCHUNTER_SIM_STATS_REPORT_HH
#define CCHUNTER_SIM_STATS_REPORT_HH

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/machine.hh"

namespace cchunter
{

/** One named statistic. */
struct StatEntry
{
    std::string name;
    double value = 0.0;
    std::string description;
};

/** Collect every machine statistic as flat entries. */
std::vector<StatEntry> collectMachineStats(Machine& machine);

/** Render arbitrary entries in the stats.txt style (name, value,
 *  description columns) under an optional section title.  Components
 *  outside the machine (e.g. the audit daemon's pipeline counters)
 *  reuse this to join the same report. */
void dumpStatEntries(const std::vector<StatEntry>& entries,
                     std::ostream& os, const std::string& title = "");

/**
 * Parse a dumpStatEntries rendering back into entries.  Section-title
 * lines and blank lines are skipped; names of any length round-trip
 * (including ones wider than the name column), as do arbitrarily
 * nested dotted prefixes.  Lets tooling consume a saved stats dump
 * without a second format.
 */
std::vector<StatEntry> parseStatEntries(std::istream& is);

/** Render the flat listing (name, value, description columns). */
void dumpMachineStats(Machine& machine, std::ostream& os);

/** Render the per-process activity table. */
void dumpProcessStats(Machine& machine, std::ostream& os);

} // namespace cchunter

#endif // CCHUNTER_SIM_STATS_REPORT_HH
