/**
 * @file
 * A schedulable software process wrapping a workload.
 */

#ifndef CCHUNTER_SIM_PROCESS_HH
#define CCHUNTER_SIM_PROCESS_HH

#include <memory>
#include <string>

#include "sim/workload.hh"
#include "util/types.hh"

namespace cchunter
{

/** Aggregate execution statistics for one process. */
struct ProcessStats
{
    std::uint64_t actions = 0;      //!< actions executed
    std::uint64_t memAccesses = 0;  //!< loads + stores
    std::uint64_t cacheMisses = 0;  //!< accesses missing all cache levels
    std::uint64_t busLocks = 0;     //!< locked (atomic unaligned) accesses
    std::uint64_t divides = 0;      //!< division operations
    std::uint64_t multiplies = 0;   //!< multiplication operations
    Cycles busyCycles = 0;          //!< cycles spent executing
    Tick scheduledQuanta = 0;       //!< quanta during which it ran
};

/**
 * A process: identity, behaviour (workload) and scheduling constraints.
 */
class Process
{
  public:
    /**
     * @param pid Unique process identifier.
     * @param workload Behavioural model; owned by the process.
     * @param pinned_context Context to pin to, or invalidContext for a
     *        floating (migratable) process.
     */
    Process(ProcessId pid, std::unique_ptr<Workload> workload,
            ContextId pinned_context = invalidContext);

    ProcessId pid() const { return pid_; }
    Workload& workload() { return *workload_; }
    const Workload& workload() const { return *workload_; }
    std::string name() const { return workload_->name(); }

    /** Pinned hardware context, or invalidContext when floating. */
    ContextId pinnedContext() const { return pinnedContext_; }
    bool pinned() const { return pinnedContext_ != invalidContext; }

    /**
     * Re-pin the process (invalidContext to float).  Takes effect at
     * the next quantum boundary; mitigation uses this to migrate a
     * suspected covert-channel party away from the shared unit.
     */
    void setPinnedContext(ContextId ctx) { pinnedContext_ = ctx; }

    /** The process executed a Halt action and will not run again. */
    bool halted() const { return halted_; }
    void setHalted() { halted_ = true; }

    ProcessStats& stats() { return stats_; }
    const ProcessStats& stats() const { return stats_; }

  private:
    ProcessId pid_;
    std::unique_ptr<Workload> workload_;
    ContextId pinnedContext_;
    bool halted_ = false;
    ProcessStats stats_;
};

} // namespace cchunter

#endif // CCHUNTER_SIM_PROCESS_HH
