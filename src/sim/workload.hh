/**
 * @file
 * The workload interface: the behavioural model of a software process.
 *
 * A workload is a generator of Actions.  The trojan/spy channel
 * implementations, the benign SPEC/Stream/Filebench proxies and test
 * stubs all implement this interface.
 */

#ifndef CCHUNTER_SIM_WORKLOAD_HH
#define CCHUNTER_SIM_WORKLOAD_HH

#include <string>

#include "sim/action.hh"
#include "util/types.hh"

namespace cchunter
{

/**
 * The view of execution state a workload sees when deciding its next
 * action.  Spies use lastLatency to decode timing-modulated bits.
 */
struct ExecView
{
    Tick now = 0;              //!< current simulated time
    Cycles lastLatency = 0;    //!< latency of the previous action
    bool lastWasHit = true;    //!< previous memory access hit in cache
    ContextId context = 0;     //!< hardware context currently running on
};

/**
 * Abstract behaviour of one simulated process.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next action given the observed execution state. */
    virtual Action nextAction(const ExecView& view) = 0;

    /** Human-readable workload name. */
    virtual std::string name() const = 0;

    /**
     * Notification that the process was (re)scheduled onto a hardware
     * context; channels use it to track co-residency.
     */
    virtual void
    onSchedule(ContextId context, Tick now)
    {
    }

    /** Notification that the process was descheduled. */
    virtual void
    onDeschedule(Tick now)
    {
    }
};

} // namespace cchunter

#endif // CCHUNTER_SIM_WORKLOAD_HH
