/**
 * @file
 * Category-gated simulation tracing, in the spirit of gem5's DPRINTF.
 *
 * Traces are off by default and cost one branch when disabled.  Enable
 * categories programmatically or from the CCHUNTER_TRACE environment
 * variable (comma-separated category names, or "all"):
 *
 *   CCHUNTER_TRACE=sched,auditor ./build/examples/quickstart
 *
 * Each record carries the current tick, the category and a message;
 * the sink defaults to stderr and can be redirected for tests.
 */

#ifndef CCHUNTER_SIM_TRACE_HH
#define CCHUNTER_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "util/types.hh"

namespace cchunter
{

/** Trace categories (bitmask). */
enum class TraceCategory : std::uint32_t
{
    None = 0,
    Sched = 1u << 0,    //!< scheduler assignments and quanta
    Exec = 1u << 1,     //!< context action execution
    Cache = 1u << 2,    //!< cache accesses and evictions
    Bus = 1u << 3,      //!< bus transfers and locks
    Auditor = 1u << 4,  //!< auditor programming and snapshots
    Channel = 1u << 5,  //!< trojan/spy behaviour
    Detect = 1u << 6,   //!< analysis decisions
    All = 0xffffffffu,
};

/** Global trace controller. */
class Trace
{
  public:
    /** Enable one or more categories. */
    static void enable(TraceCategory categories);

    /** Disable one or more categories. */
    static void disable(TraceCategory categories);

    /** Disable everything. */
    static void reset();

    /** @return true when the category is enabled. */
    static bool enabled(TraceCategory category);

    /** Redirect output (nullptr restores stderr). */
    static void setSink(std::ostream* sink);

    /** Parse a comma-separated category list ("sched,auditor",
     *  "all"); unknown names are ignored with a warning. */
    static void enableFromString(const std::string& spec);

    /** Read CCHUNTER_TRACE from the environment (called lazily on the
     *  first emit/enabled check). */
    static void initFromEnvironment();

    /** Emit one record (used by the TRACE macro). */
    static void emit(TraceCategory category, Tick tick,
                     const std::string& message);

    /** Category name for rendering. */
    static std::string categoryName(TraceCategory category);
};

/**
 * Convenience emitter: builds the message only when the category is
 * enabled.
 */
template <typename... Args>
inline void
trace(TraceCategory category, Tick tick, Args&&... args)
{
    if (!Trace::enabled(category))
        return;
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    Trace::emit(category, tick, os.str());
}

} // namespace cchunter

#endif // CCHUNTER_SIM_TRACE_HH
