/**
 * @file
 * The simulated machine: a quad-core SMT processor (two hardware
 * contexts per core, 2.5 GHz), per-context L1s, per-core shared L2s, a
 * shared memory bus, DRAM, and one shared integer divider per core —
 * the platform of the paper's evaluation (MARSSx86 model).
 */

#ifndef CCHUNTER_SIM_MACHINE_HH
#define CCHUNTER_SIM_MACHINE_HH

#include <memory>
#include <vector>

#include "mem/mem_system.hh"
#include "sim/event_queue.hh"
#include "sim/process.hh"
#include "sim/scheduler.hh"
#include "sim/workload.hh"
#include "uarch/divider.hh"
#include "uarch/multiplier.hh"
#include "util/types.hh"

namespace cchunter
{

/** Full machine configuration. */
struct MachineParams
{
    double ghz = defaultCoreGHz;
    MemSystemParams mem;
    DividerParams divider;
    MultiplierParams multiplier;
    SchedulerParams scheduler;
    /** Cycles of pipeline refill charged after a context switch. */
    Cycles switchPenalty = 1000;
};

/**
 * Top-level simulation object.  Construct, add processes, run.
 */
class Machine
{
  public:
    explicit Machine(MachineParams params = {});

    /**
     * Create a process executing `workload`, optionally pinned to a
     * hardware context.
     */
    Process& addProcess(std::unique_ptr<Workload> workload,
                        ContextId pinned = invalidContext);

    /** Advance simulated time by `duration` ticks. */
    void run(Tick duration);

    /** Advance by a whole number of OS time quanta. */
    void runQuanta(std::uint64_t quanta);

    /** Current simulated time. */
    Tick now() const { return eq_.now(); }

    MemSystem& mem() { return mem_; }
    DividerUnit& divider(unsigned core);
    MultiplierUnit& multiplier(unsigned core);
    Scheduler& scheduler() { return sched_; }
    EventQueue& eventQueue() { return eq_; }

    unsigned numCores() const { return mem_.numCores(); }
    unsigned numContexts() const { return mem_.numContexts(); }

    /** Process currently running on a context (nullptr when idle). */
    Process* runningOn(ContextId ctx) const;

    const MachineParams& params() const { return params_; }

  private:
    friend class Scheduler;

    struct ContextState
    {
        Process* running = nullptr;
        std::uint64_t generation = 0;
        Tick busyUntil = 0;
        ExecView view;
    };

    /** Scheduler-facing: install a process on a context (nullptr to
     *  idle the context). */
    void assignContext(ContextId ctx, Process* process, Tick now);

    void scheduleStep(ContextId ctx, Tick when);
    void step(ContextId ctx, std::uint64_t generation);
    Tick executeAction(ContextId ctx, Process& process,
                       const Action& action);

    MachineParams params_;
    EventQueue eq_;
    MemSystem mem_;
    std::vector<std::unique_ptr<DividerUnit>> dividers_;
    std::vector<std::unique_ptr<MultiplierUnit>> multipliers_;
    Scheduler sched_;
    std::vector<ContextState> contexts_;
};

} // namespace cchunter

#endif // CCHUNTER_SIM_MACHINE_HH
