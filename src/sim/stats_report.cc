#include "sim/stats_report.hh"

#include <iomanip>
#include <sstream>

#include "util/table_writer.hh"

namespace cchunter
{

namespace
{

void
add(std::vector<StatEntry>& out, std::string name, double value,
    std::string description)
{
    out.push_back(
        StatEntry{std::move(name), value, std::move(description)});
}

} // namespace

std::vector<StatEntry>
collectMachineStats(Machine& machine)
{
    std::vector<StatEntry> out;
    add(out, "sim.ticks", static_cast<double>(machine.now()),
        "simulated time in CPU cycles");
    add(out, "sim.seconds", ticksToSeconds(machine.now()),
        "simulated time in seconds");
    add(out, "sched.quanta",
        static_cast<double>(machine.scheduler().quantaElapsed()),
        "completed OS time quanta");

    MemoryBus& bus = machine.mem().bus();
    add(out, "bus.transfers", static_cast<double>(bus.transfers()),
        "ordinary line transfers");
    add(out, "bus.locks", static_cast<double>(bus.locks()),
        "locked (atomic unaligned) transactions");
    add(out, "bus.wait_cycles",
        static_cast<double>(bus.totalWaitCycles()),
        "cycles requests waited for the bus");
    add(out, "bus.throttled_locks",
        static_cast<double>(bus.throttledLocks()),
        "locks delayed by the rate limiter");

    Dram& dram = machine.mem().dram();
    add(out, "dram.row_hits", static_cast<double>(dram.rowHits()),
        "accesses hitting an open row");
    add(out, "dram.row_misses", static_cast<double>(dram.rowMisses()),
        "accesses opening a new row");

    for (unsigned core = 0; core < machine.numCores(); ++core) {
        const std::string prefix = "core" + std::to_string(core);
        Cache& l2 = machine.mem().l2(core);
        add(out, prefix + ".l2.hits", static_cast<double>(l2.hits()),
            "L2 hits");
        add(out, prefix + ".l2.misses",
            static_cast<double>(l2.misses()), "L2 misses");
        add(out, prefix + ".l2.evictions",
            static_cast<double>(l2.evictions()), "L2 evictions");
        add(out, prefix + ".divider.ops",
            static_cast<double>(machine.divider(core).totalOps()),
            "division operations");
        add(out, prefix + ".divider.conflicts",
            static_cast<double>(
                machine.divider(core).totalConflicts()),
            "divider wait conflicts");
        add(out, prefix + ".multiplier.ops",
            static_cast<double>(machine.multiplier(core).totalOps()),
            "multiplication operations");
        add(out, prefix + ".multiplier.conflicts",
            static_cast<double>(
                machine.multiplier(core).totalConflicts()),
            "multiplier wait conflicts");
    }

    for (unsigned ctx = 0; ctx < machine.numContexts(); ++ctx) {
        Cache& l1 = machine.mem().l1(static_cast<ContextId>(ctx));
        add(out, "ctx" + std::to_string(ctx) + ".l1.hits",
            static_cast<double>(l1.hits()), "L1 hits");
        add(out, "ctx" + std::to_string(ctx) + ".l1.misses",
            static_cast<double>(l1.misses()), "L1 misses");
    }
    return out;
}

void
dumpStatEntries(const std::vector<StatEntry>& entries,
                std::ostream& os, const std::string& title)
{
    if (!title.empty())
        os << "---------- " << title << " ----------\n";
    for (const auto& e : entries) {
        // Integral values render without decimals (counter style);
        // fractional ones keep enough precision to be useful.
        const bool integral =
            e.value == static_cast<double>(
                           static_cast<long long>(e.value));
        os << std::left << std::setw(28) << e.name << ' '
           << std::right << std::setw(16) << std::fixed
           << std::setprecision(integral ? 0 : 3) << e.value
           << "  # " << e.description << '\n';
    }
}

std::vector<StatEntry>
parseStatEntries(std::istream& is)
{
    std::vector<StatEntry> entries;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line.rfind("----------", 0) == 0)
            continue;
        // Layout: <name> <padding><value>  # <description>.  The name
        // never contains whitespace and the value is the last token
        // before the comment marker, so both survive any padding
        // width (names longer than the column simply push the value
        // right).
        std::string left = line;
        std::string description;
        const std::size_t marker = line.find("  # ");
        if (marker != std::string::npos) {
            left = line.substr(0, marker);
            description = line.substr(marker + 4);
        }
        std::istringstream fields(left);
        StatEntry entry;
        std::string value;
        if (!(fields >> entry.name >> value))
            continue;
        entry.value = std::stod(value);
        entry.description = std::move(description);
        entries.push_back(std::move(entry));
    }
    return entries;
}

void
dumpMachineStats(Machine& machine, std::ostream& os)
{
    dumpStatEntries(collectMachineStats(machine), os,
                    "machine statistics");
}

void
dumpProcessStats(Machine& machine, std::ostream& os)
{
    TableWriter t({"pid", "name", "actions", "mem", "misses", "locks",
                   "divs", "muls", "busy cycles", "quanta"});
    for (const auto& p : machine.scheduler().processes()) {
        const ProcessStats& s = p->stats();
        t.addRow({fmtInt(static_cast<long long>(p->pid())), p->name(),
                  fmtInt(static_cast<long long>(s.actions)),
                  fmtInt(static_cast<long long>(s.memAccesses)),
                  fmtInt(static_cast<long long>(s.cacheMisses)),
                  fmtInt(static_cast<long long>(s.busLocks)),
                  fmtInt(static_cast<long long>(s.divides)),
                  fmtInt(static_cast<long long>(s.multiplies)),
                  fmtInt(static_cast<long long>(s.busyCycles)),
                  fmtInt(static_cast<long long>(s.scheduledQuanta))});
    }
    t.render(os);
}

} // namespace cchunter
