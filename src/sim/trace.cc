#include "sim/trace.hh"

#include <cstdlib>
#include <iostream>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

std::uint32_t enabledMask = 0;
std::ostream* sink = nullptr;
bool envChecked = false;

std::uint32_t
maskOf(TraceCategory c)
{
    return static_cast<std::uint32_t>(c);
}

} // namespace

void
Trace::enable(TraceCategory categories)
{
    envChecked = true;
    enabledMask |= maskOf(categories);
}

void
Trace::disable(TraceCategory categories)
{
    enabledMask &= ~maskOf(categories);
}

void
Trace::reset()
{
    envChecked = true;
    enabledMask = 0;
}

bool
Trace::enabled(TraceCategory category)
{
    if (!envChecked)
        initFromEnvironment();
    return (enabledMask & maskOf(category)) != 0;
}

void
Trace::setSink(std::ostream* s)
{
    sink = s;
}

void
Trace::enableFromString(const std::string& spec)
{
    envChecked = true;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string name =
            spec.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (name == "all")
            enable(TraceCategory::All);
        else if (name == "sched")
            enable(TraceCategory::Sched);
        else if (name == "exec")
            enable(TraceCategory::Exec);
        else if (name == "cache")
            enable(TraceCategory::Cache);
        else if (name == "bus")
            enable(TraceCategory::Bus);
        else if (name == "auditor")
            enable(TraceCategory::Auditor);
        else if (name == "channel")
            enable(TraceCategory::Channel);
        else if (name == "detect")
            enable(TraceCategory::Detect);
        else if (!name.empty())
            warn("unknown trace category '", name, "'");
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
}

void
Trace::initFromEnvironment()
{
    envChecked = true;
    if (const char* spec = std::getenv("CCHUNTER_TRACE"))
        enableFromString(spec);
}

void
Trace::emit(TraceCategory category, Tick tick,
            const std::string& message)
{
    std::ostream& os = sink ? *sink : std::cerr;
    os << tick << ": [" << categoryName(category) << "] " << message
       << '\n';
}

std::string
Trace::categoryName(TraceCategory category)
{
    switch (category) {
      case TraceCategory::Sched:
        return "sched";
      case TraceCategory::Exec:
        return "exec";
      case TraceCategory::Cache:
        return "cache";
      case TraceCategory::Bus:
        return "bus";
      case TraceCategory::Auditor:
        return "auditor";
      case TraceCategory::Channel:
        return "channel";
      case TraceCategory::Detect:
        return "detect";
      case TraceCategory::None:
        return "none";
      case TraceCategory::All:
        return "all";
    }
    return "?";
}

} // namespace cchunter
