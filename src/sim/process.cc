#include "sim/process.hh"

#include "util/logging.hh"

namespace cchunter
{

Process::Process(ProcessId pid, std::unique_ptr<Workload> workload,
                 ContextId pinned_context)
    : pid_(pid), workload_(std::move(workload)),
      pinnedContext_(pinned_context)
{
    if (!workload_)
        fatal("Process requires a workload");
}

} // namespace cchunter
