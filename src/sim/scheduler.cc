#include "sim/scheduler.hh"

#include <algorithm>

#include "sim/machine.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace cchunter
{

Scheduler::Scheduler(Machine& machine, SchedulerParams params)
    : machine_(machine), params_(params), rng_(params.seed)
{
    if (params_.quantum == 0)
        fatal("Scheduler: quantum must be positive");
}

Process&
Scheduler::addProcess(std::unique_ptr<Process> process)
{
    if (process->pinned() &&
        process->pinnedContext() >= machine_.numContexts())
        fatal("Scheduler: process pinned to non-existent context ",
              int{process->pinnedContext()});
    processes_.push_back(std::move(process));
    Process& ref = *processes_.back();
    if (started_) {
        // Late arrival: it will be picked up at the next boundary; if
        // its pinned context is idle, install it immediately.
        assign(machine_.now());
    }
    return ref;
}

void
Scheduler::addQuantumObserver(QuantumObserver observer)
{
    observers_.push_back(std::move(observer));
}

void
Scheduler::start()
{
    if (started_)
        return;
    started_ = true;
    assign(machine_.now());
    machine_.eventQueue().schedule(
        machine_.now() + params_.quantum, [this] { quantumBoundary(); },
        EventPriority::Scheduler);
}

void
Scheduler::quantumBoundary()
{
    const Tick now = machine_.now();
    trace(TraceCategory::Sched, now, "quantum ", quanta_, " ends");
    for (const auto& obs : observers_)
        obs(quanta_, now);
    ++quanta_;
    assign(now);
    machine_.eventQueue().schedule(
        now + params_.quantum, [this] { quantumBoundary(); },
        EventPriority::Scheduler);
}

void
Scheduler::assign(Tick now)
{
    const unsigned n_ctx = machine_.numContexts();

    // Partition live processes.
    std::vector<std::vector<Process*>> pinned(n_ctx);
    std::vector<Process*> floating;
    for (const auto& p : processes_) {
        if (p->halted())
            continue;
        if (p->pinned())
            pinned[p->pinnedContext()].push_back(p.get());
        else
            floating.push_back(p.get());
    }

    // Pinned processes: round-robin within their context by quantum.
    std::vector<Process*> chosen(n_ctx, nullptr);
    std::vector<ContextId> free_ctx;
    for (unsigned c = 0; c < n_ctx; ++c) {
        if (!pinned[c].empty()) {
            chosen[c] = pinned[c][quanta_ % pinned[c].size()];
        } else {
            free_ctx.push_back(static_cast<ContextId>(c));
        }
    }

    // Optional migration: randomise which free context each floating
    // process lands on this quantum.
    if (params_.migrate)
        rng_.shuffle(free_ctx);

    // Floating processes: rotate through the free contexts.
    if (!floating.empty()) {
        const std::size_t n_float = floating.size();
        for (std::size_t i = 0;
             i < free_ctx.size() && i < n_float; ++i) {
            Process* p = floating[(rrOffset_ + i) % n_float];
            chosen[free_ctx[i]] = p;
        }
        rrOffset_ = (rrOffset_ + std::min(free_ctx.size(), n_float)) %
                    n_float;
    }

    for (unsigned c = 0; c < n_ctx; ++c)
        machine_.assignContext(static_cast<ContextId>(c), chosen[c],
                               now);

    // Count scheduled quanta for stats.
    for (unsigned c = 0; c < n_ctx; ++c)
        if (chosen[c])
            ++chosen[c]->stats().scheduledQuanta;
}

} // namespace cchunter
