#include "sim/scheduler.hh"

#include <algorithm>

#include "sim/machine.hh"
#include "sim/trace.hh"
#include "util/logging.hh"

namespace cchunter
{

Scheduler::Scheduler(Machine& machine, SchedulerParams params)
    : machine_(machine), params_(params), rng_(params.seed)
{
    if (params_.quantum == 0)
        fatal("Scheduler: quantum must be positive");
}

Process&
Scheduler::addProcess(std::unique_ptr<Process> process)
{
    if (process->pinned() &&
        process->pinnedContext() >= machine_.numContexts())
        fatal("Scheduler: process pinned to non-existent context ",
              int{process->pinnedContext()});
    processes_.push_back(std::move(process));
    Process& ref = *processes_.back();
    if (started_) {
        // Late arrival: it will be picked up at the next boundary; if
        // its pinned context is idle, install it immediately.
        assign(machine_.now());
    }
    return ref;
}

void
Scheduler::addQuantumObserver(QuantumObserver observer)
{
    observers_.push_back(std::move(observer));
}

void
Scheduler::start()
{
    if (started_)
        return;
    started_ = true;
    assign(machine_.now());
    machine_.eventQueue().schedule(
        machine_.now() + params_.quantum, [this] { quantumBoundary(); },
        EventPriority::Scheduler);
}

void
Scheduler::quantumBoundary()
{
    const Tick now = machine_.now();
    trace(TraceCategory::Sched, now, "quantum ", quanta_, " ends");
    for (const auto& obs : observers_)
        obs(quanta_, now);
    ++quanta_;
    assign(now);
    machine_.eventQueue().schedule(
        now + params_.quantum, [this] { quantumBoundary(); },
        EventPriority::Scheduler);
}

void
Scheduler::checkContext(ContextId ctx, const char* who) const
{
    if (ctx >= machine_.numContexts())
        fatal("Scheduler::", who, ": context out of range ", int{ctx});
}

bool
Scheduler::partitionContexts(ContextId a, ContextId b)
{
    checkContext(a, "partitionContexts");
    checkContext(b, "partitionContexts");
    if (a == b)
        fatal("Scheduler::partitionContexts: contexts must differ");
    if (a > b)
        std::swap(a, b);
    for (const auto& p : partitions_)
        if (p.a == a && p.b == b)
            return false;
    partitions_.push_back({a, b});
    ++isolation_.partitionsEngaged;
    return true;
}

bool
Scheduler::releasePartition(ContextId a, ContextId b)
{
    if (a > b)
        std::swap(a, b);
    for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
        if (it->a == a && it->b == b) {
            partitions_.erase(it);
            ++isolation_.partitionsReleased;
            return true;
        }
    }
    return false;
}

bool
Scheduler::throttleContext(ContextId ctx, std::uint32_t period,
                           std::uint32_t active)
{
    checkContext(ctx, "throttleContext");
    if (period == 0 || active == 0 || active >= period)
        fatal("Scheduler::throttleContext: need 0 < active < period");
    for (auto& t : throttles_) {
        if (t.ctx == ctx) {
            t.period = period;
            t.active = active;
            return false;
        }
    }
    throttles_.push_back({ctx, period, active});
    ++isolation_.throttlesEngaged;
    return true;
}

bool
Scheduler::releaseThrottle(ContextId ctx)
{
    for (auto it = throttles_.begin(); it != throttles_.end(); ++it) {
        if (it->ctx == ctx) {
            throttles_.erase(it);
            ++isolation_.throttlesReleased;
            return true;
        }
    }
    return false;
}

bool
Scheduler::quarantineContext(ContextId ctx)
{
    checkContext(ctx, "quarantineContext");
    for (ContextId q : quarantined_)
        if (q == ctx)
            return false;
    quarantined_.push_back(ctx);
    ++isolation_.quarantinesEngaged;
    return true;
}

bool
Scheduler::releaseQuarantine(ContextId ctx)
{
    for (auto it = quarantined_.begin(); it != quarantined_.end();
         ++it) {
        if (*it == ctx) {
            quarantined_.erase(it);
            ++isolation_.quarantinesReleased;
            return true;
        }
    }
    return false;
}

bool
Scheduler::contextSuppressed(ContextId ctx, std::uint64_t quantum) const
{
    for (ContextId q : quarantined_)
        if (q == ctx)
            return true;
    for (const auto& t : throttles_)
        if (t.ctx == ctx && quantum % t.period >= t.active)
            return true;
    for (const auto& p : partitions_) {
        // `a` owns even quanta, `b` odd ones.
        if (p.b == ctx && quantum % 2 == 0)
            return true;
        if (p.a == ctx && quantum % 2 == 1)
            return true;
    }
    return false;
}

void
Scheduler::assign(Tick now)
{
    const unsigned n_ctx = machine_.numContexts();

    // Partition live processes.
    std::vector<std::vector<Process*>> pinned(n_ctx);
    std::vector<Process*> floating;
    for (const auto& p : processes_) {
        if (p->halted())
            continue;
        if (p->pinned())
            pinned[p->pinnedContext()].push_back(p.get());
        else
            floating.push_back(p.get());
    }

    // Pinned processes: round-robin within their context by quantum.
    // Suppressed contexts (quarantine / throttle off-phase / partition
    // off-phase) are forced idle and withheld from the floating pool so
    // nothing migrates onto them.
    const bool isolating = isolationActive();
    std::vector<Process*> chosen(n_ctx, nullptr);
    std::vector<ContextId> free_ctx;
    for (unsigned c = 0; c < n_ctx; ++c) {
        const auto ctx = static_cast<ContextId>(c);
        if (isolating && contextSuppressed(ctx, quanta_)) {
            if (!pinned[c].empty() &&
                lastSuppressCountQuantum_ != quanta_)
                ++isolation_.suppressedQuanta;
            continue;
        }
        if (!pinned[c].empty()) {
            chosen[c] = pinned[c][quanta_ % pinned[c].size()];
        } else {
            free_ctx.push_back(ctx);
        }
    }
    if (isolating)
        lastSuppressCountQuantum_ = quanta_;

    // Optional migration: randomise which free context each floating
    // process lands on this quantum.
    if (params_.migrate)
        rng_.shuffle(free_ctx);

    // Floating processes: rotate through the free contexts.
    if (!floating.empty()) {
        const std::size_t n_float = floating.size();
        for (std::size_t i = 0;
             i < free_ctx.size() && i < n_float; ++i) {
            Process* p = floating[(rrOffset_ + i) % n_float];
            chosen[free_ctx[i]] = p;
        }
        rrOffset_ = (rrOffset_ + std::min(free_ctx.size(), n_float)) %
                    n_float;
    }

    for (unsigned c = 0; c < n_ctx; ++c)
        machine_.assignContext(static_cast<ContextId>(c), chosen[c],
                               now);

    // Count scheduled quanta for stats.
    for (unsigned c = 0; c < n_ctx; ++c)
        if (chosen[c])
            ++chosen[c]->stats().scheduledQuanta;
}

} // namespace cchunter
