/**
 * @file
 * Actions: the unit of work a workload hands to its hardware context.
 *
 * The simulator is action-driven rather than instruction-driven: each
 * action represents a short block of instructions whose timing depends
 * on shared-resource state (caches, memory bus, divider).  This keeps
 * simulation cost low while reproducing contention and conflict event
 * trains at full cycle resolution.
 */

#ifndef CCHUNTER_SIM_ACTION_HH
#define CCHUNTER_SIM_ACTION_HH

#include <cstdint>

#include "util/types.hh"

namespace cchunter
{

/** Kinds of work a context can perform. */
enum class ActionKind : std::uint8_t
{
    Compute,      //!< pure ALU work for a fixed cycle count
    MemRead,      //!< load from an address through the cache hierarchy
    MemWrite,     //!< store to an address through the cache hierarchy
    LockedAccess, //!< atomic unaligned access: asserts the bus lock
    DivideBatch,  //!< a run of dependent integer divisions
    MultiplyBatch, //!< a run of dependent integer multiplications
    SleepUntil,   //!< stall until an absolute tick (pacing)
    Halt,         //!< the process is finished
};

/** One schedulable unit of work. */
struct Action
{
    ActionKind kind = ActionKind::Compute;
    Cycles cycles = 1;   //!< Compute: duration
    Addr addr = 0;       //!< Mem*/LockedAccess: target address
    std::uint32_t count = 1; //!< Divide/MultiplyBatch: operation count
    Tick until = 0;      //!< SleepUntil: absolute wake tick

    /** Factories for readability at call sites. */
    static Action
    compute(Cycles cycles)
    {
        Action a;
        a.kind = ActionKind::Compute;
        a.cycles = cycles;
        return a;
    }

    static Action
    read(Addr addr)
    {
        Action a;
        a.kind = ActionKind::MemRead;
        a.addr = addr;
        return a;
    }

    static Action
    write(Addr addr)
    {
        Action a;
        a.kind = ActionKind::MemWrite;
        a.addr = addr;
        return a;
    }

    static Action
    lockedAccess(Addr addr)
    {
        Action a;
        a.kind = ActionKind::LockedAccess;
        a.addr = addr;
        return a;
    }

    static Action
    divideBatch(std::uint32_t count)
    {
        Action a;
        a.kind = ActionKind::DivideBatch;
        a.count = count;
        return a;
    }

    static Action
    multiplyBatch(std::uint32_t count)
    {
        Action a;
        a.kind = ActionKind::MultiplyBatch;
        a.count = count;
        return a;
    }

    static Action
    sleepUntil(Tick until)
    {
        Action a;
        a.kind = ActionKind::SleepUntil;
        a.until = until;
        return a;
    }

    static Action
    halt()
    {
        Action a;
        a.kind = ActionKind::Halt;
        return a;
    }
};

} // namespace cchunter

#endif // CCHUNTER_SIM_ACTION_HH
