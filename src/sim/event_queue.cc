#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace cchunter
{

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    if (when < now_)
        panic("EventQueue: scheduling into the past (", when, " < ",
              now_, ")");
    queue_.push(Entry{when, prio, nextSeq_++, std::move(cb)});
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.top().when < until) {
        Entry e = queue_.top();
        queue_.pop();
        now_ = e.when;
        e.cb();
        ++executed;
    }
    if (now_ < until)
        now_ = until;
    return executed;
}

bool
EventQueue::step()
{
    if (queue_.empty())
        return false;
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.when;
    e.cb();
    return true;
}

} // namespace cchunter
