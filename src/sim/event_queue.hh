/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single global event queue orders callbacks by (tick, priority,
 * insertion sequence); the machine model schedules context steps,
 * scheduler quanta and daemon work onto it.
 */

#ifndef CCHUNTER_SIM_EVENT_QUEUE_HH
#define CCHUNTER_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace cchunter
{

/** Relative ordering of simultaneous events. */
enum class EventPriority : std::uint8_t
{
    Scheduler = 0, //!< quantum boundaries run before context steps
    Default = 1,
    Late = 2,      //!< bookkeeping after all same-tick activity
};

/**
 * Time-ordered queue of simulation callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute tick. */
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** @return true when no events are pending. */
    bool empty() const { return queue_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return queue_.size(); }

    /**
     * Execute events in order until the queue empties or the next event
     * is at or beyond `until`.  Time stops at the last executed event
     * (or `until` if it is later).
     *
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick until);

    /** Execute exactly one event if any is pending. @return true if one
     *  ran. */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        EventPriority prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_SIM_EVENT_QUEUE_HH
