#include "sim/machine.hh"

#include <algorithm>

#include "sim/trace.hh"
#include "util/logging.hh"

namespace cchunter
{

Machine::Machine(MachineParams params)
    : params_(params), mem_(params.mem), sched_(*this, params.scheduler)
{
    for (unsigned core = 0; core < mem_.numCores(); ++core) {
        const auto first = static_cast<ContextId>(
            core * params_.mem.threadsPerCore);
        dividers_.push_back(
            std::make_unique<DividerUnit>(first, params_.divider));
        multipliers_.push_back(std::make_unique<MultiplierUnit>(
            first, params_.multiplier));
    }
    contexts_.assign(mem_.numContexts(), ContextState{});
}

DividerUnit&
Machine::divider(unsigned core)
{
    if (core >= dividers_.size())
        panic("Machine::divider: core out of range");
    return *dividers_[core];
}

MultiplierUnit&
Machine::multiplier(unsigned core)
{
    if (core >= multipliers_.size())
        panic("Machine::multiplier: core out of range");
    return *multipliers_[core];
}

Process&
Machine::addProcess(std::unique_ptr<Workload> workload, ContextId pinned)
{
    static ProcessId next_pid = 1;
    auto process = std::make_unique<Process>(next_pid++,
                                             std::move(workload), pinned);
    return sched_.addProcess(std::move(process));
}

Process*
Machine::runningOn(ContextId ctx) const
{
    if (ctx >= contexts_.size())
        panic("Machine::runningOn: context out of range");
    return contexts_[ctx].running;
}

void
Machine::run(Tick duration)
{
    sched_.start();
    eq_.runUntil(eq_.now() + duration);
}

void
Machine::runQuanta(std::uint64_t quanta)
{
    sched_.start();
    // Step until the target quantum boundary has been processed (a
    // plain run() would stop just short of the final boundary event,
    // leaving its observers unfired).
    const std::uint64_t target = sched_.quantaElapsed() + quanta;
    while (sched_.quantaElapsed() < target && !eq_.empty())
        eq_.step();
}

void
Machine::assignContext(ContextId ctx, Process* process, Tick now)
{
    ContextState& cs = contexts_[ctx];
    if (cs.running == process)
        return; // continues undisturbed
    if (cs.running)
        cs.running->workload().onDeschedule(now);
    cs.running = process;
    ++cs.generation;
    if (!process) {
        trace(TraceCategory::Sched, now, "ctx ", int{ctx}, " idles");
        return;
    }
    trace(TraceCategory::Sched, now, "ctx ", int{ctx}, " runs pid ",
          process->pid(), " (", process->name(), ")");
    process->workload().onSchedule(ctx, now);
    cs.view = ExecView{};
    cs.view.context = ctx;
    const Tick begin =
        std::max(now, cs.busyUntil) + params_.switchPenalty;
    scheduleStep(ctx, begin);
}

void
Machine::scheduleStep(ContextId ctx, Tick when)
{
    const std::uint64_t gen = contexts_[ctx].generation;
    eq_.schedule(when, [this, ctx, gen] { step(ctx, gen); });
}

void
Machine::step(ContextId ctx, std::uint64_t generation)
{
    ContextState& cs = contexts_[ctx];
    if (cs.generation != generation)
        return; // context was re-assigned; this step is stale
    Process* p = cs.running;
    if (!p || p->halted())
        return;

    const Tick now = eq_.now();
    cs.view.now = now;
    cs.view.context = ctx;
    const Action action = p->workload().nextAction(cs.view);

    if (action.kind == ActionKind::Halt) {
        p->setHalted();
        p->workload().onDeschedule(now);
        cs.running = nullptr;
        ++cs.generation;
        return;
    }

    const Tick done = executeAction(ctx, *p, action);
    ++p->stats().actions;
    p->stats().busyCycles += done - now;
    cs.view.lastLatency = static_cast<Cycles>(done - now);
    cs.busyUntil = done;
    scheduleStep(ctx, done);
}

Tick
Machine::executeAction(ContextId ctx, Process& process,
                       const Action& action)
{
    const Tick now = eq_.now();
    switch (action.kind) {
      case ActionKind::Compute:
        return now + std::max<Cycles>(1, action.cycles);

      case ActionKind::MemRead:
      case ActionKind::MemWrite: {
        const bool write = action.kind == ActionKind::MemWrite;
        const MemAccessOutcome out =
            mem_.access(ctx, action.addr, write, now);
        ++process.stats().memAccesses;
        if (out.missedAll())
            ++process.stats().cacheMisses;
        contexts_[ctx].view.lastWasHit = !out.missedAll();
        return now + std::max<Cycles>(1, out.latency);
      }

      case ActionKind::LockedAccess: {
        const MemAccessOutcome out =
            mem_.lockedAccess(ctx, action.addr, now);
        ++process.stats().memAccesses;
        ++process.stats().busLocks;
        return now + std::max<Cycles>(1, out.latency);
      }

      case ActionKind::DivideBatch: {
        const Tick done =
            divider(mem_.coreOf(ctx)).executeBatch(ctx, action.count,
                                                   now);
        process.stats().divides += action.count;
        return std::max(done, now + 1);
      }

      case ActionKind::MultiplyBatch: {
        const Tick done = multiplier(mem_.coreOf(ctx))
                              .executeBatch(ctx, action.count, now);
        process.stats().multiplies += action.count;
        return std::max(done, now + 1);
      }

      case ActionKind::SleepUntil:
        return std::max(action.until, now + 1);

      case ActionKind::Halt:
        panic("Halt must be handled before executeAction");
    }
    panic("unknown action kind");
}

} // namespace cchunter
