#include "util/thread_pool.hh"

#include "util/logging.hh"

namespace cchunter
{

std::size_t
ThreadPool::hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0)
        num_threads = hardwareConcurrency();
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::run(std::function<void()> job)
{
    if (!job)
        fatal("ThreadPool::run: empty job");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            fatal("ThreadPool::run: pool is shutting down");
        queue_.push_back(std::move(job));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

namespace
{

/**
 * Shared progress of one parallelFor call.  Owns a copy of the body so
 * helper tasks that start after the caller has already drained the
 * counter never touch a dead frame.
 *
 * Claims happen under the mutex (work items here are coarse — slot
 * analyses, k-means restarts, fleet shards — so claim cost is noise)
 * which makes the termination invariant simple: once `error` is set or
 * `next` reaches `count`, no new item can ever start, and the caller
 * only needs `inFlight` to drain to zero before returning.  Both
 * conditions are monotone, so a helper task scheduled long after the
 * caller has returned observes them and exits without touching the
 * body.
 */
struct ForState
{
    ForState(std::size_t n, std::function<void(std::size_t)> b)
        : count(n), body(std::move(b))
    {
    }

    const std::size_t count;
    const std::function<void(std::size_t)> body;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t next = 0;     //!< first unclaimed index
    std::size_t inFlight = 0; //!< items currently executing
    std::exception_ptr error;
};

/** Claim and run indices until the range is exhausted or poisoned. */
void
drainIndices(ForState& state)
{
    for (;;) {
        std::size_t i;
        {
            std::lock_guard<std::mutex> lock(state.mutex);
            // A recorded failure poisons the range: indices never
            // claimed are abandoned rather than executed for a result
            // the caller will discard on rethrow.
            if (state.error || state.next >= state.count)
                return;
            i = state.next++;
            ++state.inFlight;
        }
        bool failed = false;
        try {
            state.body(i);
        } catch (...) {
            failed = true;
            std::lock_guard<std::mutex> lock(state.mutex);
            if (!state.error)
                state.error = std::current_exception();
            --state.inFlight;
        }
        if (!failed) {
            std::lock_guard<std::mutex> lock(state.mutex);
            --state.inFlight;
        }
        state.done.notify_all();
    }
}

} // namespace

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)>& body)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    auto state = std::make_shared<ForState>(count, body);
    // One helper task per worker (bounded by the item count); each
    // claims items from the shared counter until none remain.
    const std::size_t helpers = std::min(workers_.size(), count - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        run([state]() { drainIndices(*state); });

    // The caller participates too, which guarantees progress even when
    // all workers are blocked inside nested parallelFor calls.
    drainIndices(*state);

    // The caller's own drain only returns once the range is exhausted
    // or poisoned (both monotone), so waiting for the in-flight count
    // to reach zero is sufficient: helper tasks that have not yet run
    // will find the same condition and claim nothing.
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&]() {
        return state->inFlight == 0 &&
               (state->error || state->next >= state->count);
    });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace cchunter
