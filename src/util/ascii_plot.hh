/**
 * @file
 * Terminal line/bar plots so each benchmark binary can render the *shape*
 * of the paper's figures directly in its stdout.
 */

#ifndef CCHUNTER_UTIL_ASCII_PLOT_HH
#define CCHUNTER_UTIL_ASCII_PLOT_HH

#include <ostream>
#include <string>
#include <vector>

namespace cchunter
{

/** Options controlling an ASCII plot rendering. */
struct PlotOptions
{
    std::size_t width = 78;   //!< plot columns
    std::size_t height = 16;  //!< plot rows
    std::string title;        //!< optional title line
    std::string xLabel;       //!< x-axis caption
    std::string yLabel;       //!< y-axis caption
    bool yFromZero = false;   //!< force the y range to include zero
};

/**
 * Render a series of (implicit-x) samples as a scatter/line plot.
 * Values are downsampled column-wise by averaging.
 */
void asciiPlot(std::ostream& os, const std::vector<double>& ys,
               const PlotOptions& opts = {});

/**
 * Render x/y pairs; x must be non-decreasing.
 */
void asciiPlotXY(std::ostream& os, const std::vector<double>& xs,
                 const std::vector<double>& ys,
                 const PlotOptions& opts = {});

/**
 * Render a vertical bar chart of bin counts (histogram shape).
 */
void asciiBars(std::ostream& os, const std::vector<double>& bins,
               const PlotOptions& opts = {});

} // namespace cchunter

#endif // CCHUNTER_UTIL_ASCII_PLOT_HH
