/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload interleaving, noise
 * injection, payload generation) draws from Rng so that experiments are
 * reproducible from a single seed.
 */

#ifndef CCHUNTER_UTIL_RNG_HH
#define CCHUNTER_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace cchunter
{

/**
 * A small, fast, seedable PRNG (xoshiro256**).
 *
 * We implement the generator ourselves rather than using std::mt19937 so
 * that streams are cheap to fork (one per simulated process) and stable
 * across standard library implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5);

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

    /** Normally distributed double (Box-Muller). */
    double nextGaussian(double mean, double stddev);

    /** Poisson-distributed count with the given mean (Knuth / PTRS). */
    std::uint64_t nextPoisson(double mean);

    /** Geometrically distributed count >= 1 with success probability p. */
    std::uint64_t nextGeometric(double p);

    /** Fork an independent stream (hash of this stream's next outputs). */
    Rng fork();

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace cchunter

#endif // CCHUNTER_UTIL_RNG_HH
