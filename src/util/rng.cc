#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
    // Avoid the all-zero state, which is a fixed point of xoshiro.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound 0");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t all_ones = ~std::uint64_t{0};
    const std::uint64_t limit = all_ones - (all_ones % bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange: lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean)
{
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return mean + stddev * spareGaussian_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * mul;
    haveSpareGaussian_ = true;
    return mean + stddev * u * mul;
}

std::uint64_t
Rng::nextPoisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplicative method for small means.
        const double limit = std::exp(-mean);
        double prod = nextDouble();
        std::uint64_t n = 0;
        while (prod > limit) {
            ++n;
            prod *= nextDouble();
        }
        return n;
    }
    // Gaussian approximation for large means; adequate for workload noise.
    const double v = nextGaussian(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::uint64_t
Rng::nextGeometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        panic("Rng::nextGeometric: p out of (0,1]");
    if (p == 1.0)
        return 1;
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return 1 + static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace cchunter
