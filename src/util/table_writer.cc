#include "util/table_writer.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace cchunter
{

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TableWriter requires at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("TableWriter row width mismatch: expected ",
              headers_.size(), ", got ", cells.size());
    rows_.push_back(std::move(cells));
}

void
TableWriter::render(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << std::left << std::setw(
                static_cast<int>(widths[c])) << row[c] << ' ';
        }
        os << "|\n";
    };

    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << "|" << std::string(widths[c] + 2, '-');
    os << "|\n";
    for (const auto& row : rows_)
        emit_row(row);
}

void
TableWriter::renderCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
fmtInt(long long v)
{
    return std::to_string(v);
}

} // namespace cchunter
