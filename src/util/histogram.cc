#include "util/histogram.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace cchunter
{

Histogram::Histogram(std::size_t num_bins)
{
    if (num_bins == 0)
        fatal("Histogram requires at least one bin");
    bins_.assign(num_bins, 0);
}

void
Histogram::addSample(std::uint64_t value, std::uint64_t weight)
{
    const std::size_t idx =
        std::min<std::uint64_t>(value, bins_.size() - 1);
    bins_[idx] += weight;
    total_ += weight;
}

std::uint64_t
Histogram::bin(std::size_t i) const
{
    if (i >= bins_.size())
        panic("Histogram::bin index out of range");
    return bins_[i];
}

std::uint64_t
Histogram::countInRange(std::size_t first, std::size_t last) const
{
    last = std::min(last, bins_.size() - 1);
    std::uint64_t n = 0;
    for (std::size_t i = first; i <= last && i < bins_.size(); ++i)
        n += bins_[i];
    return n;
}

std::size_t
Histogram::maxNonZeroBin() const
{
    for (std::size_t i = bins_.size(); i-- > 0;)
        if (bins_[i] != 0)
            return i;
    return 0;
}

std::size_t
Histogram::peakBin(std::size_t first, std::size_t last) const
{
    last = std::min(last, bins_.size() - 1);
    std::size_t best = first;
    std::uint64_t best_count = 0;
    for (std::size_t i = first; i <= last && i < bins_.size(); ++i) {
        if (bins_[i] > best_count) {
            best_count = bins_[i];
            best = i;
        }
    }
    return best;
}

double
Histogram::mean() const
{
    return meanInRange(0, bins_.size() - 1);
}

double
Histogram::meanInRange(std::size_t first, std::size_t last) const
{
    last = std::min(last, bins_.size() - 1);
    double weighted = 0.0;
    double count = 0.0;
    for (std::size_t i = first; i <= last && i < bins_.size(); ++i) {
        weighted += static_cast<double>(i) * static_cast<double>(bins_[i]);
        count += static_cast<double>(bins_[i]);
    }
    return count == 0.0 ? 0.0 : weighted / count;
}

void
Histogram::merge(const Histogram& other)
{
    if (other.bins_.size() != bins_.size())
        fatal("Histogram::merge: bin-count mismatch");
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    total_ += other.total_;
    if (!other.saturated_.empty()) {
        if (saturated_.empty())
            saturated_.assign(bins_.size(), false);
        for (std::size_t i = 0; i < bins_.size(); ++i)
            if (other.saturated_[i])
                saturated_[i] = true;
    }
}

void
Histogram::unmerge(const Histogram& other)
{
    if (other.bins_.size() != bins_.size())
        fatal("Histogram::unmerge: bin-count mismatch");
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (other.bins_[i] > bins_[i]) {
            // Inconsistent history (e.g. a saturated snapshot merged
            // under a different clamp than the one being retired):
            // clamp at zero and count it rather than wrapping the
            // whole window.
            ++unmergeUnderflows_;
            total_ -= bins_[i];
            bins_[i] = 0;
        } else {
            total_ -= other.bins_[i];
            bins_[i] -= other.bins_[i];
        }
    }
}

void
Histogram::markSaturated(std::size_t i)
{
    if (i >= bins_.size())
        panic("Histogram::markSaturated index out of range");
    if (saturated_.empty())
        saturated_.assign(bins_.size(), false);
    saturated_[i] = true;
}

bool
Histogram::binSaturated(std::size_t i) const
{
    if (i >= bins_.size())
        panic("Histogram::binSaturated index out of range");
    return !saturated_.empty() && saturated_[i];
}

std::size_t
Histogram::saturatedBins() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < saturated_.size(); ++i)
        if (saturated_[i])
            ++n;
    return n;
}

void
Histogram::clearSaturation()
{
    saturated_.clear();
}

void
Histogram::clear()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    total_ = 0;
    saturated_.clear();
}

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> out(bins_.size(), 0.0);
    if (total_ == 0)
        return out;
    for (std::size_t i = 0; i < bins_.size(); ++i)
        out[i] = static_cast<double>(bins_[i]) /
                 static_cast<double>(total_);
    return out;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        if (!first)
            os << ' ';
        os << i << ':' << bins_[i];
        first = false;
    }
    return os.str();
}

} // namespace cchunter
