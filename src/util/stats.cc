#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace cchunter
{

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::clear()
{
    *this = RunningStats();
}

double
meanOf(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
varianceOf(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    const double m = meanOf(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return s / static_cast<double>(v.size());
}

double
pearson(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.size() != b.size())
        fatal("pearson: length mismatch");
    if (a.empty())
        return 0.0;
    const double ma = meanOf(a);
    const double mb = meanOf(b);
    double num = 0.0, da = 0.0, db = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += (a[i] - ma) * (b[i] - mb);
        da += (a[i] - ma) * (a[i] - ma);
        db += (b[i] - mb) * (b[i] - mb);
    }
    const double den = std::sqrt(da * db);
    return den == 0.0 ? 0.0 : num / den;
}

double
quantileOf(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    std::sort(v.begin(), v.end());
    const double pos = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

} // namespace cchunter
