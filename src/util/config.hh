/**
 * @file
 * A minimal typed key/value configuration store.
 *
 * Experiment harnesses and examples parse "key=value" command-line
 * arguments into a Config so that sweeps (bandwidth, #sets, window size)
 * can be driven without recompiling.
 */

#ifndef CCHUNTER_UTIL_CONFIG_HH
#define CCHUNTER_UTIL_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cchunter
{

/**
 * String-keyed configuration with typed accessors and defaults.
 */
class Config
{
  public:
    Config() = default;

    /** Parse argv-style "key=value" tokens (non-matching tokens and
     *  duplicate keys are fatal). */
    static Config fromArgs(int argc, const char* const* argv);

    /** Set a value (stringified). */
    void set(const std::string& key, const std::string& value);
    void set(const std::string& key, std::int64_t value);
    void set(const std::string& key, double value);
    void set(const std::string& key, bool value);

    /** @return true if the key is present. */
    bool has(const std::string& key) const;

    /** Typed getters with defaults; malformed values are fatal. */
    std::string getString(const std::string& key,
                          const std::string& def = "") const;
    std::int64_t getInt(const std::string& key, std::int64_t def = 0) const;
    std::uint64_t getUint(const std::string& key,
                          std::uint64_t def = 0) const;
    double getDouble(const std::string& key, double def = 0.0) const;
    bool getBool(const std::string& key, bool def = false) const;

    /** All keys in sorted order. */
    std::vector<std::string> keys() const;

    /** Render every entry as one "key=value" line (sorted by key);
     *  experiment harnesses echo this so runs are reproducible from
     *  their logs. */
    std::string dump() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace cchunter

#endif // CCHUNTER_UTIL_CONFIG_HH
