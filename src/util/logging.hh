/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user-level errors (bad configuration); panic() is for
 * internal invariant violations.  inform()/warn() report status without
 * stopping the run.
 */

#ifndef CCHUNTER_UTIL_LOGGING_HH
#define CCHUNTER_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace cchunter
{

/** Verbosity levels for runtime logging. */
enum class LogLevel
{
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Set the global log verbosity. */
void setLogLevel(LogLevel level);

/** Get the current global log verbosity. */
LogLevel logLevel();

namespace detail
{

[[noreturn]] void fatalImpl(const std::string& where,
                            const std::string& msg);
[[noreturn]] void panicImpl(const std::string& where,
                            const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);
void debugImpl(const std::string& msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Terminate due to a user-level (configuration) error. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalImpl("fatal", detail::concat(std::forward<Args>(args)...));
}

/** Terminate due to an internal invariant violation. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicImpl("panic", detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Verbose diagnostic output, off by default. */
template <typename... Args>
void
debugLog(Args&&... args)
{
    detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace cchunter

#endif // CCHUNTER_UTIL_LOGGING_HH
