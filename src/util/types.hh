/**
 * @file
 * Fundamental types shared across the CC-Hunter code base.
 */

#ifndef CCHUNTER_UTIL_TYPES_HH
#define CCHUNTER_UTIL_TYPES_HH

#include <cstdint>
#include <limits>

namespace cchunter
{

/** Simulation time expressed in CPU clock cycles. */
using Tick = std::uint64_t;

/** A span of CPU clock cycles. */
using Cycles = std::uint64_t;

/** Maximum representable tick; used as "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/**
 * Identifier of a hardware context (one SMT thread slot on one core).
 * The paper assumes a quad-core with two SMT threads per core, so context
 * IDs fit in three bits (0..7); the cache block metadata stores exactly
 * three owner-context bits.
 */
using ContextId = std::uint8_t;

/** Sentinel meaning "no context" (e.g. an unowned cache block). */
constexpr ContextId invalidContext = 0xff;

/** Identifier of a software process (schedulable entity). */
using ProcessId = std::uint32_t;

/** Sentinel meaning "no process". */
constexpr ProcessId invalidProcess = 0xffffffffu;

/** Physical / simulated memory address. */
using Addr = std::uint64_t;

/** Default simulated core frequency used throughout the paper: 2.5 GHz. */
constexpr double defaultCoreGHz = 2.5;

/** Convert seconds to ticks at a given core frequency. */
constexpr Tick
secondsToTicks(double seconds, double ghz = defaultCoreGHz)
{
    return static_cast<Tick>(seconds * ghz * 1e9);
}

/** Convert ticks to seconds at a given core frequency. */
constexpr double
ticksToSeconds(Tick ticks, double ghz = defaultCoreGHz)
{
    return static_cast<double>(ticks) / (ghz * 1e9);
}

/**
 * Length of one OS scheduler time quantum in ticks.  The paper assumes a
 * 0.1 s quantum (250 M cycles at 2.5 GHz).
 */
constexpr Tick defaultQuantumTicks = secondsToTicks(0.1);

} // namespace cchunter

#endif // CCHUNTER_UTIL_TYPES_HH
