/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harnesses to
 * print the rows/series the paper's tables and figures report.
 */

#ifndef CCHUNTER_UTIL_TABLE_WRITER_HH
#define CCHUNTER_UTIL_TABLE_WRITER_HH

#include <ostream>
#include <string>
#include <vector>

namespace cchunter
{

/**
 * Accumulates rows of string cells and renders an aligned ASCII table.
 */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> headers);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    void render(std::ostream& os) const;

    /** Render as comma-separated values. */
    void renderCsv(std::ostream& os) const;

    /** Number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format an integer with thousands separators removed (plain). */
std::string fmtInt(long long v);

} // namespace cchunter

#endif // CCHUNTER_UTIL_TABLE_WRITER_HH
