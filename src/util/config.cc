#include "util/config.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace cchunter
{

Config
Config::fromArgs(int argc, const char* const* argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string tok = argv[i];
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("expected key=value argument, got '", tok, "'");
        const std::string key = tok.substr(0, eq);
        if (cfg.has(key))
            fatal("duplicate config key '", key,
                  "': given as '", key, "=", cfg.getString(key),
                  "' and again as '", tok, "'");
        cfg.set(key, tok.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string& key, const std::string& value)
{
    values_[key] = value;
}

void
Config::set(const std::string& key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string& key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string& key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string& key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string& key, const std::string& def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string& key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "' is not an integer: '",
              it->second, "'");
    return v;
}

std::uint64_t
Config::getUint(const std::string& key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "' is not an unsigned integer: '",
              it->second, "'");
    return v;
}

double
Config::getDouble(const std::string& key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "' is not a number: '",
              it->second, "'");
    return v;
}

bool
Config::getBool(const std::string& key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string& s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config key '", key, "' is not a boolean: '", s, "'");
}

std::string
Config::dump() const
{
    std::string out;
    for (const auto& [k, v] : values_) {
        out += k;
        out += '=';
        out += v;
        out += '\n';
    }
    return out;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto& [k, v] : values_)
        out.push_back(k);
    return out;
}

} // namespace cchunter
