/**
 * @file
 * Fixed-bin counting histogram.
 *
 * The event density histogram at the heart of CC-Hunter's burst-pattern
 * detection (paper section IV-B) counts, for each Δt observation window,
 * how many windows contained a given number of indicator events.  The
 * hardware realisation is a 128-entry buffer of 16-bit counters; the
 * software-side analysis uses the same structure with saturating adds.
 */

#ifndef CCHUNTER_UTIL_HISTOGRAM_HH
#define CCHUNTER_UTIL_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cchunter
{

/**
 * A histogram with a fixed number of integer bins.  Samples at or above
 * the bin count land in the last (overflow) bin.
 */
class Histogram
{
  public:
    /** @param num_bins Number of bins (the CC-Auditor uses 128). */
    explicit Histogram(std::size_t num_bins = 128);

    /** Record one sample with the given bin value. */
    void addSample(std::uint64_t value, std::uint64_t weight = 1);

    /** Count in a bin. */
    std::uint64_t bin(std::size_t i) const;

    /** Number of bins. */
    std::size_t numBins() const { return bins_.size(); }

    /** Sum of all bin counts. */
    std::uint64_t totalSamples() const { return total_; }

    /** Sum of bin counts for bins [first, last]. */
    std::uint64_t countInRange(std::size_t first, std::size_t last) const;

    /** Index of the highest non-zero bin, or 0 when empty. */
    std::size_t maxNonZeroBin() const;

    /** Index of the bin with the largest count in [first, last]. */
    std::size_t peakBin(std::size_t first = 0,
                        std::size_t last = SIZE_MAX) const;

    /** Mean bin value weighted by count. */
    double mean() const;

    /** Mean bin value over bins in [first, last]. */
    double meanInRange(std::size_t first, std::size_t last) const;

    /** Merge another histogram (bin-wise add; sizes must match). */
    void merge(const Histogram& other);

    /**
     * Inverse of merge(): bin-wise subtract a previously merged
     * histogram.  Sizes must match; the streaming pipeline relies on
     * merge()/unmerge() round-tripping bit-exactly as quanta slide
     * out of the retention window.  A subtraction that would drive a
     * bin negative (inconsistent merge history — a degraded-sensor
     * condition, not a programming error) clamps the bin at zero and
     * counts the underflow instead of wrapping.
     */
    void unmerge(const Histogram& other);

    /** Clamped-at-zero unmerge subtractions so far. */
    std::uint64_t unmergeUnderflows() const
    {
        return unmergeUnderflows_;
    }

    /**
     * Flag a bin as saturated: its hardware counter hit the 16-bit
     * ceiling, so the recorded count is a floor of the truth.  The
     * mask is lazily allocated (clean histograms carry no overhead),
     * survives merge() (bit-wise OR) and is dropped by clear().
     */
    void markSaturated(std::size_t i);

    /** True when bin i carries the saturation flag. */
    bool binSaturated(std::size_t i) const;

    /** Number of saturated bins. */
    std::size_t saturatedBins() const;

    /** Drop every saturation flag (counts are untouched). */
    void clearSaturation();

    /** Reset all bins to zero. */
    void clear();

    /** Raw bin vector (for plotting / serialisation). */
    const std::vector<std::uint64_t>& bins() const { return bins_; }

    /** Normalised bin frequencies (sum to 1; empty histogram -> zeros). */
    std::vector<double> normalized() const;

    /** One-line textual rendering "b0:c0 b1:c1 ..." of non-zero bins. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
    std::uint64_t unmergeUnderflows_ = 0;
    /** Empty unless some bin saturated (lazily sized to bins_). */
    std::vector<bool> saturated_;
};

} // namespace cchunter

#endif // CCHUNTER_UTIL_HISTOGRAM_HH
