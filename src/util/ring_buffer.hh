/**
 * @file
 * A fixed-capacity ring buffer with explicit eviction accounting.
 *
 * The streaming observation pipeline keeps per-slot sliding windows of
 * quantum histograms and conflict records instead of unbounded logs:
 * once a window is full, pushing a new element evicts the oldest one
 * and the eviction is counted rather than silently lost.  Evicted
 * elements are returned to the caller so incremental analysis state
 * (e.g. the merged contention histogram) can be updated by
 * subtraction.
 */

#ifndef CCHUNTER_UTIL_RING_BUFFER_HH
#define CCHUNTER_UTIL_RING_BUFFER_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace cchunter
{

/**
 * Fixed-capacity FIFO window over the most recent elements.  Index 0
 * is the oldest retained element, size()-1 the newest.
 */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity = 1) : cap_(capacity)
    {
        if (cap_ == 0)
            fatal("RingBuffer requires capacity >= 1");
        // Storage grows with use (up to the capacity) rather than
        // being reserved eagerly: windows are often sized for the
        // worst case but filled far below it.
    }

    /** Maximum number of retained elements. */
    std::size_t capacity() const { return cap_; }

    /** Number of currently retained elements. */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == cap_; }

    /** Total elements evicted (overwritten or dropped) so far. */
    std::uint64_t evictions() const { return evictions_; }

    /**
     * Append a value.  When full, the oldest element is evicted,
     * counted, and returned so the caller can unwind incremental
     * state; otherwise returns nullopt.
     */
    std::optional<T>
    push(T value)
    {
        if (size_ < cap_) {
            if (buf_.size() < cap_) {
                buf_.push_back(std::move(value));
            } else {
                buf_[(head_ + size_) % cap_] = std::move(value);
            }
            ++size_;
            return std::nullopt;
        }
        T evicted = std::exchange(buf_[head_], std::move(value));
        head_ = (head_ + 1) % cap_;
        ++evictions_;
        return evicted;
    }

    /** Remove and return the oldest element (counts as an eviction). */
    std::optional<T>
    popFront()
    {
        if (size_ == 0)
            return std::nullopt;
        T out = std::move(buf_[head_]);
        head_ = (head_ + 1) % cap_;
        --size_;
        ++evictions_;
        return out;
    }

    /** Element at logical index i (0 = oldest). */
    const T&
    operator[](std::size_t i) const
    {
        if (i >= size_)
            panic("RingBuffer index out of range");
        return buf_[(head_ + i) % cap_];
    }

    const T&
    front() const
    {
        return (*this)[0];
    }

    const T&
    back() const
    {
        return (*this)[size_ - 1];
    }

    /** Drop all retained elements (retained count goes to evictions). */
    void
    clear()
    {
        evictions_ += size_;
        buf_.clear();
        head_ = 0;
        size_ = 0;
    }

    /**
     * Change the capacity, keeping the newest min(size, capacity)
     * elements; anything older is evicted and counted.
     */
    void
    setCapacity(std::size_t capacity)
    {
        if (capacity == 0)
            fatal("RingBuffer requires capacity >= 1");
        if (capacity == cap_)
            return;
        std::vector<T> kept;
        const std::size_t keep = std::min(size_, capacity);
        evictions_ += size_ - keep;
        kept.reserve(keep);
        for (std::size_t i = size_ - keep; i < size_; ++i)
            kept.push_back(std::move(buf_[(head_ + i) % cap_]));
        buf_ = std::move(kept);
        cap_ = capacity;
        head_ = 0;
        size_ = keep;
    }

    /** Materialise the window, oldest first. */
    std::vector<T>
    toVector() const
    {
        std::vector<T> out;
        out.reserve(size_);
        for (std::size_t i = 0; i < size_; ++i)
            out.push_back((*this)[i]);
        return out;
    }

    /** Read-only forward iteration, oldest to newest. */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T*;
        using reference = const T&;

        const_iterator(const RingBuffer* ring, std::size_t index)
            : ring_(ring), index_(index)
        {
        }

        reference operator*() const { return (*ring_)[index_]; }
        pointer operator->() const { return &(*ring_)[index_]; }

        const_iterator&
        operator++()
        {
            ++index_;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator old = *this;
            ++index_;
            return old;
        }

        bool
        operator==(const const_iterator& other) const
        {
            return ring_ == other.ring_ && index_ == other.index_;
        }

        bool
        operator!=(const const_iterator& other) const
        {
            return !(*this == other);
        }

      private:
        const RingBuffer* ring_;
        std::size_t index_;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t cap_;
    std::uint64_t evictions_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_UTIL_RING_BUFFER_HH
