#include "util/fft.hh"

#include <cmath>

#include "util/logging.hh"

namespace cchunter
{

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

namespace
{

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace

void
fftInPlace(std::vector<std::complex<double>>& a, bool inverse)
{
    const std::size_t n = a.size();
    if (!isPowerOfTwo(n))
        fatal("fftInPlace: size must be a power of two");
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }

    // Butterflies, doubling the transform length each stage.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = (inverse ? 2.0 : -2.0) * M_PI /
                             static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle),
                                        std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t j = 0; j < len / 2; ++j) {
                const std::complex<double> u = a[i + j];
                const std::complex<double> v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (auto& v : a)
            v *= scale;
    }
}

std::vector<std::complex<double>>
realFft(const std::vector<double>& x)
{
    const std::size_t n = x.size();
    if (n < 2 || !isPowerOfTwo(n))
        fatal("realFft: size must be a power of two >= 2");
    const std::size_t m = n / 2;

    // Pack even samples into the real lane, odd into the imaginary.
    std::vector<std::complex<double>> z(m);
    for (std::size_t j = 0; j < m; ++j)
        z[j] = std::complex<double>(x[2 * j], x[2 * j + 1]);
    fftInPlace(z);

    // Untangle the two interleaved half-length spectra:
    //   X[k] = E[k] + e^{-2πik/N} O[k],  k = 0..N/2
    // with E/O recovered from Z[k] and conj(Z[M-k]).
    std::vector<std::complex<double>> out(m + 1);
    const std::complex<double> half(0.5, 0.0);
    const std::complex<double> minusHalfI(0.0, -0.5);
    for (std::size_t k = 0; k <= m; ++k) {
        const std::complex<double> zk = z[k % m];
        const std::complex<double> zmk = std::conj(z[(m - k) % m]);
        const std::complex<double> even = (zk + zmk) * half;
        const std::complex<double> odd = (zk - zmk) * minusHalfI;
        const double angle =
            -2.0 * M_PI * static_cast<double>(k) /
            static_cast<double>(n);
        const std::complex<double> w(std::cos(angle),
                                     std::sin(angle));
        out[k] = even + w * odd;
    }
    return out;
}

std::vector<double>
autocorrelationSumsFft(const std::vector<double>& x, std::size_t max_lag)
{
    std::vector<double> out(max_lag + 1, 0.0);
    const std::size_t n = x.size();
    if (n == 0)
        return out;
    // Lags >= n contribute nothing; only these need the transform.
    const std::size_t top = std::min(max_lag, n - 1);

    std::size_t padded = nextPowerOfTwo(n + top);
    if (padded < 2)
        padded = 2;
    std::vector<double> buf(padded, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = x[i];

    const auto spectrum = realFft(buf);

    // Power spectrum, expanded to full length by conjugate symmetry.
    // It is real and even, so its inverse DFT is Re(forward DFT)/N.
    std::vector<double> power(padded, 0.0);
    for (std::size_t k = 0; k < spectrum.size(); ++k) {
        const double p = std::norm(spectrum[k]);
        power[k] = p;
        if (k != 0 && k != padded - k)
            power[padded - k] = p;
    }
    const auto corr = realFft(power);
    const double scale = 1.0 / static_cast<double>(padded);
    for (std::size_t lag = 0; lag <= top; ++lag)
        out[lag] = corr[lag].real() * scale;
    return out;
}

} // namespace cchunter
