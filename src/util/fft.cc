#include "util/fft.hh"

#include <cmath>
#include <map>
#include <memory>

#include "util/logging.hh"
#include "util/simd.hh"

namespace cchunter
{

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

namespace
{

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace

FftPlan::FftPlan(std::size_t n) : n_(n)
{
    if (!isPowerOfTwo(n))
        fatal("FftPlan: size must be a power of two");
    // Per-stage butterfly twiddles, built with the same incremental
    // recurrence (w *= wlen) the unplanned kernel used so planned
    // transforms are bit-identical to the historical output.  Stage
    // `len` owns len/2 values at offset len/2 - 1; the offsets sum to
    // n-1 across all stages.
    twiddles_.resize(n_ > 1 ? n_ - 1 : 0);
    for (std::size_t len = 2; len <= n_; len <<= 1) {
        const double angle = -2.0 * M_PI / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle),
                                        std::sin(angle));
        std::complex<double> w(1.0, 0.0);
        std::complex<double>* dst = twiddles_.data() + (len / 2 - 1);
        for (std::size_t j = 0; j < len / 2; ++j) {
            dst[j] = w;
            w *= wlen;
        }
    }
    // Untangle factors for a real transform of length 2n, evaluated
    // exactly as the unplanned realFft evaluated them.
    untangle_.resize(n_ + 1);
    for (std::size_t k = 0; k <= n_; ++k) {
        const double angle = -2.0 * M_PI * static_cast<double>(k) /
                             static_cast<double>(2 * n_);
        untangle_[k] = std::complex<double>(std::cos(angle),
                                            std::sin(angle));
    }
}

const FftPlan&
fftPlanFor(std::size_t n)
{
    // Per-thread cache: analysis threads never contend, and the plans
    // a thread builds live as long as the thread does.  unique_ptr
    // keeps references stable across map rehashing.
    thread_local std::map<std::size_t, std::unique_ptr<FftPlan>> cache;
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, std::make_unique<FftPlan>(n)).first;
    return *it->second;
}

void
fftInPlace(std::complex<double>* a, std::size_t n, const FftPlan& plan,
           bool inverse)
{
    if (!isPowerOfTwo(n))
        fatal("fftInPlace: size must be a power of two");
    if (plan.size() != n)
        fatal("fftInPlace: plan size mismatch");
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }

    // Butterflies, doubling the transform length each stage.  The
    // planned forward twiddles serve the inverse too (conjugated
    // inside the kernel).
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::complex<double>* tw = plan.stageTwiddles(len);
        for (std::size_t i = 0; i < n; i += len)
            simd::butterflyBlock(a + i, tw, len / 2, inverse);
    }

    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        simd::scaleInPlace(reinterpret_cast<double*>(a), 2 * n,
                           scale);
    }
}

void
fftInPlace(std::vector<std::complex<double>>& a, bool inverse)
{
    if (!isPowerOfTwo(a.size()))
        fatal("fftInPlace: size must be a power of two");
    fftInPlace(a.data(), a.size(), fftPlanFor(a.size()), inverse);
}

void
realFft(const double* x, std::size_t n, const FftPlan& plan,
        std::vector<std::complex<double>>& packed,
        std::vector<std::complex<double>>& out)
{
    if (n < 2 || !isPowerOfTwo(n))
        fatal("realFft: size must be a power of two >= 2");
    const std::size_t m = n / 2;
    if (plan.size() != m)
        fatal("realFft: plan must cover the half size");

    // Pack even samples into the real lane, odd into the imaginary.
    packed.resize(m);
    for (std::size_t j = 0; j < m; ++j)
        packed[j] = std::complex<double>(x[2 * j], x[2 * j + 1]);
    fftInPlace(packed.data(), m, plan);

    // Untangle the two interleaved half-length spectra:
    //   X[k] = E[k] + e^{-2πik/N} O[k],  k = 0..N/2
    // with E/O recovered from Z[k] and conj(Z[M-k]).
    out.resize(m + 1);
    const std::complex<double> half(0.5, 0.0);
    const std::complex<double> minusHalfI(0.0, -0.5);
    const std::complex<double>* w = plan.untangleTwiddles();
    for (std::size_t k = 0; k <= m; ++k) {
        const std::complex<double> zk = packed[k % m];
        const std::complex<double> zmk =
            std::conj(packed[(m - k) % m]);
        const std::complex<double> even = (zk + zmk) * half;
        const std::complex<double> odd = (zk - zmk) * minusHalfI;
        out[k] = even + w[k] * odd;
    }
}

std::vector<std::complex<double>>
realFft(const std::vector<double>& x)
{
    const std::size_t n = x.size();
    if (n < 2 || !isPowerOfTwo(n))
        fatal("realFft: size must be a power of two >= 2");
    std::vector<std::complex<double>> packed;
    std::vector<std::complex<double>> out;
    realFft(x.data(), n, fftPlanFor(n / 2), packed, out);
    return out;
}

std::size_t
autocorrPaddedSize(std::size_t n, std::size_t max_lag)
{
    if (n == 0)
        return 0;
    const std::size_t top = std::min(max_lag, n - 1);
    std::size_t padded = nextPowerOfTwo(n + top);
    if (padded < 2)
        padded = 2;
    return padded;
}

void
autocorrelationSumsFft(const double* x, std::size_t n,
                       std::size_t max_lag, FftScratch& scratch,
                       std::vector<double>& out)
{
    out.assign(max_lag + 1, 0.0);
    if (n == 0)
        return;
    // Lags >= n contribute nothing; only these need the transform.
    const std::size_t top = std::min(max_lag, n - 1);
    const std::size_t padded = autocorrPaddedSize(n, max_lag);
    const FftPlan& plan = fftPlanFor(padded / 2);

    scratch.real.assign(padded, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        scratch.real[i] = x[i];

    realFft(scratch.real.data(), padded, plan, scratch.packed,
            scratch.spectrum);

    // Power spectrum, expanded to full length by conjugate symmetry,
    // overwriting the no-longer-needed padded input.  It is real and
    // even, so its inverse DFT is Re(forward DFT)/N.
    simd::powerSpectrumExpand(scratch.spectrum.data(),
                              scratch.spectrum.size(),
                              scratch.real.data(), padded);
    realFft(scratch.real.data(), padded, plan, scratch.packed,
            scratch.corr);
    const double scale = 1.0 / static_cast<double>(padded);
    for (std::size_t lag = 0; lag <= top; ++lag)
        out[lag] = scratch.corr[lag].real() * scale;
}

std::vector<double>
autocorrelationSumsFft(const std::vector<double>& x, std::size_t max_lag)
{
    thread_local FftScratch scratch;
    std::vector<double> out;
    autocorrelationSumsFft(x.data(), x.size(), max_lag, scratch, out);
    return out;
}

} // namespace cchunter
