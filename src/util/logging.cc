#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cchunter
{

namespace
{

LogLevel globalLevel = LogLevel::Warn;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail
{

void
fatalImpl(const std::string& where, const std::string& msg)
{
    std::fprintf(stderr, "%s: %s\n", where.c_str(), msg.c_str());
    // Throw instead of exit(1) so tests can assert on fatal conditions.
    throw std::runtime_error(where + ": " + msg);
}

void
panicImpl(const std::string& where, const std::string& msg)
{
    std::fprintf(stderr, "%s: %s\n", where.c_str(), msg.c_str());
    throw std::logic_error(where + ": " + msg);
}

void
warnImpl(const std::string& msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (globalLevel >= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string& msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace cchunter
