#include "util/simd.hh"

#include <atomic>

#if defined(__x86_64__) && defined(__GNUC__)
#define CCHUNTER_SIMD_X86 1
#include <immintrin.h>
#endif

namespace cchunter
{

namespace
{

std::atomic<bool> g_simdEnabled{true};

#ifdef CCHUNTER_SIMD_X86
bool
detectAvx2()
{
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
}

const bool g_haveAvx2 = detectAvx2();
#else
const bool g_haveAvx2 = false;
#endif

inline bool
useVector()
{
    return g_haveAvx2 &&
           g_simdEnabled.load(std::memory_order_relaxed);
}

} // namespace

void
setSimdEnabled(bool enabled)
{
    g_simdEnabled.store(enabled, std::memory_order_relaxed);
}

bool
simdEnabled()
{
    return g_simdEnabled.load(std::memory_order_relaxed);
}

const char*
simdBackendName()
{
    return useVector() ? "avx2" : "scalar";
}

namespace simd
{

namespace
{

// ---- scalar backends -------------------------------------------------
//
// These mirror the vector kernels operation for operation; the 4-lane
// tree in squaredDistanceScalar is deliberate, not an optimisation.

double
squaredDistanceScalar(const double* a, const double* b, std::size_t n)
{
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        const double d0 = a[i] - b[i];
        const double d1 = a[i + 1] - b[i + 1];
        const double d2 = a[i + 2] - b[i + 2];
        const double d3 = a[i + 3] - b[i + 3];
        l0 += d0 * d0;
        l1 += d1 * d1;
        l2 += d2 * d2;
        l3 += d3 * d3;
    }
    double total = (l0 + l2) + (l1 + l3);
    for (std::size_t i = n4; i < n; ++i) {
        const double d = a[i] - b[i];
        total += d * d;
    }
    return total;
}

void
divideInPlaceScalar(double* v, std::size_t n, double denom)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] /= denom;
}

void
scaleInPlaceScalar(double* v, std::size_t n, double s)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] *= s;
}

void
subtractScalarScalar(const double* x, std::size_t n, double c,
                     double* out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = x[i] - c;
}

void
powerSpectrumScalar(const std::complex<double>* spectrum,
                    std::size_t m1, double* power)
{
    for (std::size_t k = 0; k < m1; ++k) {
        const double re = spectrum[k].real();
        const double im = spectrum[k].imag();
        power[k] = re * re + im * im;
    }
}

void
butterflyBlockScalar(std::complex<double>* a,
                     const std::complex<double>* tw, std::size_t half,
                     bool inverse)
{
    for (std::size_t j = 0; j < half; ++j) {
        const double wr = tw[j].real();
        const double wi = inverse ? -tw[j].imag() : tw[j].imag();
        const double br = a[j + half].real();
        const double bi = a[j + half].imag();
        const double vr = br * wr - bi * wi;
        const double vi = br * wi + bi * wr;
        const double ur = a[j].real();
        const double ui = a[j].imag();
        a[j] = std::complex<double>(ur + vr, ui + vi);
        a[j + half] = std::complex<double>(ur - vr, ui - vi);
    }
}

// ---- AVX2 backends ---------------------------------------------------

#ifdef CCHUNTER_SIMD_X86

__attribute__((target("avx2"))) double
squaredDistanceAvx2(const double* a, const double* b, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4) {
        const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                        _mm256_loadu_pd(b + i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    // (l0+l2, l1+l3) then l0+l2 + (l1+l3): the tree the scalar
    // fallback replicates.
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    double total = _mm_cvtsd_f64(pair) +
                   _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
    for (std::size_t i = n4; i < n; ++i) {
        const double d = a[i] - b[i];
        total += d * d;
    }
    return total;
}

__attribute__((target("avx2"))) void
divideInPlaceAvx2(double* v, std::size_t n, double denom)
{
    const __m256d d = _mm256_set1_pd(denom);
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4)
        _mm256_storeu_pd(v + i,
                         _mm256_div_pd(_mm256_loadu_pd(v + i), d));
    for (std::size_t i = n4; i < n; ++i)
        v[i] /= denom;
}

__attribute__((target("avx2"))) void
scaleInPlaceAvx2(double* v, std::size_t n, double s)
{
    const __m256d f = _mm256_set1_pd(s);
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4)
        _mm256_storeu_pd(v + i,
                         _mm256_mul_pd(_mm256_loadu_pd(v + i), f));
    for (std::size_t i = n4; i < n; ++i)
        v[i] *= s;
}

__attribute__((target("avx2"))) void
subtractScalarAvx2(const double* x, std::size_t n, double c,
                   double* out)
{
    const __m256d cc = _mm256_set1_pd(c);
    const std::size_t n4 = n & ~std::size_t{3};
    for (std::size_t i = 0; i < n4; i += 4)
        _mm256_storeu_pd(out + i,
                         _mm256_sub_pd(_mm256_loadu_pd(x + i), cc));
    for (std::size_t i = n4; i < n; ++i)
        out[i] = x[i] - c;
}

__attribute__((target("avx2"))) void
powerSpectrumAvx2(const std::complex<double>* spectrum,
                  std::size_t m1, double* power)
{
    // Two complex values -> two |.|^2 per iteration.
    const double* s = reinterpret_cast<const double*>(spectrum);
    const std::size_t m2 = m1 & ~std::size_t{1};
    for (std::size_t k = 0; k < m2; k += 2) {
        const __m256d z = _mm256_loadu_pd(s + 2 * k); // r0 i0 r1 i1
        const __m256d sq = _mm256_mul_pd(z, z);
        const __m128d lo = _mm256_castpd256_pd128(sq);   // r0^2 i0^2
        const __m128d hi = _mm256_extractf128_pd(sq, 1); // r1^2 i1^2
        // (r0^2+i0^2, r1^2+i1^2)
        const __m128d p = _mm_add_pd(_mm_unpacklo_pd(lo, hi),
                                     _mm_unpackhi_pd(lo, hi));
        _mm_storeu_pd(power + k, p);
    }
    for (std::size_t k = m2; k < m1; ++k) {
        const double re = spectrum[k].real();
        const double im = spectrum[k].imag();
        power[k] = re * re + im * im;
    }
}

__attribute__((target("avx2"))) void
butterflyBlockAvx2(std::complex<double>* a,
                   const std::complex<double>* tw, std::size_t half,
                   bool inverse)
{
    double* ap = reinterpret_cast<double*>(a);
    double* bp = reinterpret_cast<double*>(a + half);
    const double* wp = reinterpret_cast<const double*>(tw);
    const __m256d negIm =
        inverse ? _mm256_set_pd(-0.0, 0.0, -0.0, 0.0)
                : _mm256_setzero_pd();
    const std::size_t half2 = half & ~std::size_t{1};
    for (std::size_t j = 0; j < half2; j += 2) {
        const __m256d w = _mm256_xor_pd(
            _mm256_loadu_pd(wp + 2 * j), negIm); // wr0 wi0 wr1 wi1
        const __m256d b = _mm256_loadu_pd(bp + 2 * j);
        const __m256d wr = _mm256_movedup_pd(w);        // wr wr
        const __m256d wi = _mm256_permute_pd(w, 0xF);   // wi wi
        const __m256d bswap = _mm256_permute_pd(b, 0x5); // bi br
        // (br*wr - bi*wi, bi*wr + br*wi)
        const __m256d v = _mm256_addsub_pd(
            _mm256_mul_pd(b, wr), _mm256_mul_pd(bswap, wi));
        const __m256d u = _mm256_loadu_pd(ap + 2 * j);
        _mm256_storeu_pd(ap + 2 * j, _mm256_add_pd(u, v));
        _mm256_storeu_pd(bp + 2 * j, _mm256_sub_pd(u, v));
    }
    if (half2 != half)
        butterflyBlockScalar(a + half2, tw + half2, half - half2,
                             inverse);
}

#endif // CCHUNTER_SIMD_X86

} // namespace

double
squaredDistance(const double* a, const double* b, std::size_t n)
{
#ifdef CCHUNTER_SIMD_X86
    if (useVector())
        return squaredDistanceAvx2(a, b, n);
#endif
    return squaredDistanceScalar(a, b, n);
}

void
divideInPlace(double* v, std::size_t n, double denom)
{
#ifdef CCHUNTER_SIMD_X86
    if (useVector()) {
        divideInPlaceAvx2(v, n, denom);
        return;
    }
#endif
    divideInPlaceScalar(v, n, denom);
}

void
scaleInPlace(double* v, std::size_t n, double s)
{
#ifdef CCHUNTER_SIMD_X86
    if (useVector()) {
        scaleInPlaceAvx2(v, n, s);
        return;
    }
#endif
    scaleInPlaceScalar(v, n, s);
}

void
subtractScalar(const double* x, std::size_t n, double c, double* out)
{
#ifdef CCHUNTER_SIMD_X86
    if (useVector()) {
        subtractScalarAvx2(x, n, c, out);
        return;
    }
#endif
    subtractScalarScalar(x, n, c, out);
}

void
powerSpectrumExpand(const std::complex<double>* spectrum,
                    std::size_t m1, double* power, std::size_t padded)
{
#ifdef CCHUNTER_SIMD_X86
    if (useVector())
        powerSpectrumAvx2(spectrum, m1, power);
    else
        powerSpectrumScalar(spectrum, m1, power);
#else
    powerSpectrumScalar(spectrum, m1, power);
#endif
    for (std::size_t k = 1; k < m1; ++k) {
        if (k != padded - k)
            power[padded - k] = power[k];
    }
}

void
butterflyBlock(std::complex<double>* a, const std::complex<double>* tw,
               std::size_t half, bool inverse)
{
#ifdef CCHUNTER_SIMD_X86
    if (useVector()) {
        butterflyBlockAvx2(a, tw, half, inverse);
        return;
    }
#endif
    butterflyBlockScalar(a, tw, half, inverse);
}

} // namespace simd

} // namespace cchunter
