/**
 * @file
 * A compact k-hash Bloom filter.
 *
 * The CC-Auditor's practical conflict-miss tracker records replaced cache
 * tags in one three-hash Bloom filter per generation (paper section V-A).
 */

#ifndef CCHUNTER_UTIL_BLOOM_FILTER_HH
#define CCHUNTER_UTIL_BLOOM_FILTER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cchunter
{

/**
 * Bloom filter over 64-bit keys with a configurable number of hash
 * functions (the paper uses three).
 */
class BloomFilter
{
  public:
    /**
     * @param num_bits Size of the bit array (rounded up to a power of two).
     * @param num_hashes Number of hash probes per key.
     */
    explicit BloomFilter(std::size_t num_bits, unsigned num_hashes = 3);

    /** Insert a key. */
    void insert(std::uint64_t key);

    /** @return true if the key may have been inserted (false = definitely
     *  not). */
    bool mayContain(std::uint64_t key) const;

    /** Flash-clear every bit (models discarding a generation). */
    void clear();

    /** Number of bits in the underlying array. */
    std::size_t sizeBits() const { return words_.size() * 64; }

    /** Number of hash functions. */
    unsigned numHashes() const { return numHashes_; }

    /** Number of set bits (occupancy diagnostic). */
    std::size_t popCount() const;

    /** Expected false-positive rate for n inserted keys. */
    double estimatedFalsePositiveRate(std::size_t n) const;

  private:
    std::uint64_t hash(std::uint64_t key, unsigned i) const;

    std::vector<std::uint64_t> words_;
    std::uint64_t mask_;
    unsigned numHashes_;
};

} // namespace cchunter

#endif // CCHUNTER_UTIL_BLOOM_FILTER_HH
