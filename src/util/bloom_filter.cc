#include "util/bloom_filter.hh"

#include <bit>
#include <cmath>

#include "util/logging.hh"

namespace cchunter
{

namespace
{

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 64;
    while (p < v)
        p <<= 1;
    return p;
}

std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdull;
    z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ull;
    return z ^ (z >> 33);
}

} // namespace

BloomFilter::BloomFilter(std::size_t num_bits, unsigned num_hashes)
    : numHashes_(num_hashes)
{
    if (num_bits == 0)
        fatal("BloomFilter requires a non-zero size");
    if (num_hashes == 0)
        fatal("BloomFilter requires at least one hash function");
    const std::size_t bits = roundUpPow2(num_bits);
    words_.assign(bits / 64, 0);
    mask_ = bits - 1;
}

std::uint64_t
BloomFilter::hash(std::uint64_t key, unsigned i) const
{
    // Kirsch-Mitzenmacher double hashing: h_i = h1 + i*h2.
    const std::uint64_t h1 = mix64(key);
    const std::uint64_t h2 = mix64(key ^ 0x9e3779b97f4a7c15ull) | 1;
    return (h1 + i * h2) & mask_;
}

void
BloomFilter::insert(std::uint64_t key)
{
    for (unsigned i = 0; i < numHashes_; ++i) {
        const std::uint64_t bit = hash(key, i);
        words_[bit >> 6] |= (std::uint64_t{1} << (bit & 63));
    }
}

bool
BloomFilter::mayContain(std::uint64_t key) const
{
    for (unsigned i = 0; i < numHashes_; ++i) {
        const std::uint64_t bit = hash(key, i);
        if (!(words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    for (auto& w : words_)
        w = 0;
}

std::size_t
BloomFilter::popCount() const
{
    std::size_t n = 0;
    for (auto w : words_)
        n += std::popcount(w);
    return n;
}

double
BloomFilter::estimatedFalsePositiveRate(std::size_t n) const
{
    const double m = static_cast<double>(sizeBits());
    const double k = static_cast<double>(numHashes_);
    const double p = 1.0 - std::exp(-k * static_cast<double>(n) / m);
    return std::pow(p, k);
}

} // namespace cchunter
