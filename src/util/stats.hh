/**
 * @file
 * Streaming summary statistics (count / mean / variance / extrema).
 */

#ifndef CCHUNTER_UTIL_STATS_HH
#define CCHUNTER_UTIL_STATS_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace cchunter
{

/**
 * Welford-style running statistics accumulator.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations. */
    std::uint64_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Sample variance (0 when fewer than two observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum observation (+inf when empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf when empty). */
    double max() const { return max_; }

    /** Sum of observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

    /** Reset to empty. */
    void clear();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Mean of a vector (0 when empty). */
double meanOf(const std::vector<double>& v);

/** Population variance of a vector (0 when empty). */
double varianceOf(const std::vector<double>& v);

/** Pearson correlation of two equal-length vectors. */
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/** p-quantile (0..1) of a vector using linear interpolation. */
double quantileOf(std::vector<double> v, double p);

} // namespace cchunter

#endif // CCHUNTER_UTIL_STATS_HH
