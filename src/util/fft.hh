/**
 * @file
 * Dependency-free radix-2 FFT kernels.
 *
 * The detection analyses need full autocorrelograms of event trains
 * that can reach 2^18+ samples per analysis window; the direct O(N·L)
 * evaluation collapses at that scale.  These kernels provide the
 * O(N log N) building blocks: an iterative in-place complex FFT, a
 * real-input transform that packs the series into a half-length
 * complex FFT, and a Wiener-Khinchin raw-autocorrelation helper that
 * zero-pads to avoid circular wrap-around.
 */

#ifndef CCHUNTER_UTIL_FFT_HH
#define CCHUNTER_UTIL_FFT_HH

#include <complex>
#include <cstddef>
#include <vector>

namespace cchunter
{

/** Smallest power of two >= n (returns 1 for n <= 1). */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * In-place iterative radix-2 FFT.  The size must be a power of two
 * (1 is allowed).  The inverse transform applies the 1/N scale, so
 * fftInPlace(a); fftInPlace(a, true); is the identity up to roundoff.
 */
void fftInPlace(std::vector<std::complex<double>>& a,
                bool inverse = false);

/**
 * Forward DFT of a real series of power-of-two length N >= 2, computed
 * with one complex FFT of length N/2 (even samples packed into the
 * real lane, odd samples into the imaginary lane).  Returns the
 * non-redundant bins 0..N/2 inclusive; the remaining bins follow from
 * conjugate symmetry X[N-k] = conj(X[k]).
 */
std::vector<std::complex<double>> realFft(const std::vector<double>& x);

/**
 * Raw (unnormalised) autocorrelation sums via Wiener-Khinchin:
 *
 *   out[lag] = sum_{i=0}^{n-1-lag} x[i] * x[i+lag],  lag = 0..max_lag
 *
 * The series is zero-padded to the next power of two >= n + max_lag
 * so the circular correlation of the padded series equals the linear
 * correlation of the original.  Lags >= n are exactly zero.  Cost is
 * O(N log N) in the padded length, independent of max_lag.
 */
std::vector<double> autocorrelationSumsFft(const std::vector<double>& x,
                                           std::size_t max_lag);

} // namespace cchunter

#endif // CCHUNTER_UTIL_FFT_HH
