/**
 * @file
 * Dependency-free radix-2 FFT kernels.
 *
 * The detection analyses need full autocorrelograms of event trains
 * that can reach 2^18+ samples per analysis window; the direct O(N·L)
 * evaluation collapses at that scale.  These kernels provide the
 * O(N log N) building blocks: an iterative in-place complex FFT, a
 * real-input transform that packs the series into a half-length
 * complex FFT, and a Wiener-Khinchin raw-autocorrelation helper that
 * zero-pads to avoid circular wrap-around.
 *
 * Twiddle factors live in an FftPlan that is cached per thread and
 * per transform size (or passed explicitly by batching callers), and
 * every kernel has a scratch-buffer overload so steady-state analysis
 * allocates nothing.  The planned tables are built with the same
 * incremental recurrence the unplanned kernels used, so transform
 * output is bit-identical whether a plan is cached, fresh, or shared
 * across a batch.
 */

#ifndef CCHUNTER_UTIL_FFT_HH
#define CCHUNTER_UTIL_FFT_HH

#include <complex>
#include <cstddef>
#include <vector>

namespace cchunter
{

/** Smallest power of two >= n (returns 1 for n <= 1). */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * Precomputed twiddle tables for one complex transform size n (a
 * power of two).  Holds the per-stage butterfly twiddles (n-1 values;
 * stage of length `len` owns len/2 of them) and the half-bin factors
 * e^{-2πik/(2n)}, k = 0..n, that a real transform of length 2n needs
 * to untangle its packed half-spectra.  Building a plan is the only
 * place sin/cos is evaluated; reusing one across same-size transforms
 * is what the thread-local cache (and the fleet's batched pass) buys.
 */
class FftPlan
{
  public:
    FftPlan() = default;

    /** Build tables for complex size n (power of two, >= 1). */
    explicit FftPlan(std::size_t n);

    std::size_t size() const { return n_; }

    /** Twiddles w^0..w^{len/2-1}, w = e^{-2πi/len}, for the butterfly
     *  stage of length `len` (2 <= len <= size(), power of two). */
    const std::complex<double>* stageTwiddles(std::size_t len) const
    {
        return twiddles_.data() + (len / 2 - 1);
    }

    /** e^{-2πik/(2n)} for k = 0..n: the real-transform untangle
     *  factors (n+1 values). */
    const std::complex<double>* untangleTwiddles() const
    {
        return untangle_.data();
    }

  private:
    std::size_t n_ = 0;
    std::vector<std::complex<double>> twiddles_;
    std::vector<std::complex<double>> untangle_;
};

/** The thread-local plan cache: builds (once per thread and size) and
 *  returns the plan for complex size n.  The reference stays valid
 *  for the lifetime of the thread. */
const FftPlan& fftPlanFor(std::size_t n);

/**
 * In-place iterative radix-2 FFT.  The size must be a power of two
 * (1 is allowed).  The inverse transform applies the 1/N scale, so
 * fftInPlace(a); fftInPlace(a, true); is the identity up to roundoff.
 * The vector overload uses the thread-local plan cache; the pointer
 * overload takes an explicit plan (plan.size() == n).
 */
void fftInPlace(std::vector<std::complex<double>>& a,
                bool inverse = false);
void fftInPlace(std::complex<double>* a, std::size_t n,
                const FftPlan& plan, bool inverse = false);

/**
 * Forward DFT of a real series of power-of-two length N >= 2, computed
 * with one complex FFT of length N/2 (even samples packed into the
 * real lane, odd samples into the imaginary lane).  Returns the
 * non-redundant bins 0..N/2 inclusive; the remaining bins follow from
 * conjugate symmetry X[N-k] = conj(X[k]).
 *
 * The pointer overload takes the plan for the *half* size N/2 plus a
 * reusable packing buffer, and resizes `out` to N/2+1 (no allocation
 * once the buffers have reached capacity).
 */
std::vector<std::complex<double>> realFft(const std::vector<double>& x);
void realFft(const double* x, std::size_t n, const FftPlan& plan,
             std::vector<std::complex<double>>& packed,
             std::vector<std::complex<double>>& out);

/** Reusable buffers for autocorrelationSumsFft / autocorrelogramFft.
 *  One instance per analysis thread (or per batch) keeps the hot
 *  path's steady state allocation-free. */
struct FftScratch
{
    std::vector<double> real;     //!< padded input, then power spectrum
    std::vector<double> centered; //!< mean-removed series (correlogram)
    std::vector<std::complex<double>> packed;   //!< half-length packing
    std::vector<std::complex<double>> spectrum; //!< first transform
    std::vector<std::complex<double>> corr;     //!< second transform
};

/** Padded transform length autocorrelationSumsFft uses for a series
 *  of length n at max_lag (what batching groups by). */
std::size_t autocorrPaddedSize(std::size_t n, std::size_t max_lag);

/**
 * Raw (unnormalised) autocorrelation sums via Wiener-Khinchin:
 *
 *   out[lag] = sum_{i=0}^{n-1-lag} x[i] * x[i+lag],  lag = 0..max_lag
 *
 * The series is zero-padded to the next power of two >= n + max_lag
 * so the circular correlation of the padded series equals the linear
 * correlation of the original.  Lags >= n are exactly zero.  Cost is
 * O(N log N) in the padded length, independent of max_lag.
 *
 * The scratch overload writes into `out` (resized to max_lag+1) and
 * reuses the caller's buffers; the vector overload delegates to a
 * thread-local scratch.
 */
std::vector<double> autocorrelationSumsFft(const std::vector<double>& x,
                                           std::size_t max_lag);
void autocorrelationSumsFft(const double* x, std::size_t n,
                            std::size_t max_lag, FftScratch& scratch,
                            std::vector<double>& out);

} // namespace cchunter

#endif // CCHUNTER_UTIL_FFT_HH
