/**
 * @file
 * Portable vectorization shim for the analysis hot loops.
 *
 * Every kernel here has exactly two implementations: a widest
 * compiled-in vector path (AVX2 on x86-64, selected at runtime with
 * __builtin_cpu_supports) and a scalar fallback.  The fallbacks are
 * not naive reference loops — they are pinned to the *same* operation
 * structure as the vector path (no FMA contraction, identical
 * reduction tree), so both backends produce bit-identical results and
 * the detection pipeline's golden streams do not depend on the host
 * CPU.  Elementwise kernels (butterflies, divides, subtracts) are
 * bit-identical by construction; the one reduction kernel
 * (squaredDistance) fixes a 4-lane accumulator tree in both backends.
 *
 * The runtime toggle (setSimdEnabled, config key `analysis.simd`)
 * forces the scalar fallback everywhere — used by the equivalence
 * tests and as an escape hatch on hosts with poor vector units.
 */

#ifndef CCHUNTER_UTIL_SIMD_HH
#define CCHUNTER_UTIL_SIMD_HH

#include <complex>
#include <cstddef>

namespace cchunter
{

/** Globally enable/disable the vector backends (default: enabled).
 *  Takes effect on the next kernel call; thread-safe. */
void setSimdEnabled(bool enabled);

/** Current state of the runtime toggle. */
bool simdEnabled();

/** Name of the backend kernels dispatch to right now: "avx2" or
 *  "scalar" (the latter either because the host lacks the extension,
 *  the build does, or the toggle is off). */
const char* simdBackendName();

namespace simd
{

/**
 * Sum of squared differences between two length-n arrays with a fixed
 * 4-lane accumulator tree: lane l accumulates indices congruent to l
 * mod 4 over the aligned body, the total is (l0+l2)+(l1+l3), and the
 * tail (n mod 4 elements) is added sequentially afterwards.  Both
 * backends implement exactly this tree, so results are bit-identical
 * — but note the tree differs from a plain sequential sum.
 */
double squaredDistance(const double* a, const double* b,
                       std::size_t n);

/** v[i] /= denom for i in [0, n).  Elementwise, bit-identical. */
void divideInPlace(double* v, std::size_t n, double denom);

/** v[i] *= s for i in [0, n).  Elementwise, bit-identical. */
void scaleInPlace(double* v, std::size_t n, double s);

/** out[i] = x[i] - c for i in [0, n).  Elementwise, bit-identical. */
void subtractScalar(const double* x, std::size_t n, double c,
                    double* out);

/**
 * Power spectrum of a half-spectrum, expanded to full length by
 * conjugate symmetry: power[k] = re^2 + im^2 for k in [0, m1), then
 * power[padded-k] = power[k] for k in [1, m1) with k != padded-k.
 * Requires m1 == padded/2 + 1; every entry of power[0..padded) is
 * written.  Elementwise, bit-identical.
 */
void powerSpectrumExpand(const std::complex<double>* spectrum,
                         std::size_t m1, double* power,
                         std::size_t padded);

/**
 * One radix-2 butterfly block over a span of 2*half complex values:
 *
 *   v = a[j+half] * tw[j]   (tw conjugated when inverse)
 *   a[j]      = a[j] + v
 *   a[j+half] = a[j] - v        for j in [0, half)
 *
 * The complex product is (br*wr - bi*wi, br*wi + bi*wr) with no FMA
 * contraction in either backend, matching std::complex::operator*=
 * exactly, so the transform output is bit-identical to the scalar
 * (and to the pre-shim) FFT.
 */
void butterflyBlock(std::complex<double>* a,
                    const std::complex<double>* tw, std::size_t half,
                    bool inverse);

} // namespace simd

} // namespace cchunter

#endif // CCHUNTER_UTIL_SIMD_HH
