/**
 * @file
 * A fixed-size worker-thread pool.
 *
 * The audit daemon fans per-unit quantum analyses across cores, and
 * k-means fans independent restarts; both need a reusable pool rather
 * than per-call thread spawning.  parallelFor() lets the calling
 * thread participate in its own work items, so nested parallel
 * sections (e.g. parallel k-means restarts inside a parallel slot
 * analysis) make progress even when every worker is busy.
 */

#ifndef CCHUNTER_UTIL_THREAD_POOL_HH
#define CCHUNTER_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cchunter
{

/**
 * Fixed-size thread pool.  Jobs run in submission order (FIFO) but
 * complete in any order; destruction drains the queue and joins all
 * workers.
 */
class ThreadPool
{
  public:
    /** Spawn num_threads workers; 0 means hardwareConcurrency(). */
    explicit ThreadPool(std::size_t num_threads = 0);

    /** Runs any queued jobs to completion, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static std::size_t hardwareConcurrency();

    /** Enqueue a fire-and-forget job. */
    void run(std::function<void()> job);

    /** Enqueue a job and return a future for its result. */
    template <typename F>
    auto
    submit(F f) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(f));
        std::future<R> result = task->get_future();
        run([task]() { (*task)(); });
        return result;
    }

    /**
     * Invoke body(i) for every i in [0, count), spread across the
     * workers *and* the calling thread, returning once all calls have
     * completed.  Work items are claimed from a shared counter, so the
     * partition is dynamic but writing results by index keeps output
     * deterministic.
     *
     * A body call that throws poisons the range: indices not yet
     * claimed are abandoned, already-running calls are allowed to
     * finish, and the first exception is rethrown on the caller — it
     * never deadlocks the caller's participation, and no body call can
     * still be executing (or start executing) once parallelFor has
     * returned.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)>& body);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace cchunter

#endif // CCHUNTER_UTIL_THREAD_POOL_HH
