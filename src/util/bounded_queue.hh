/**
 * @file
 * A bounded multi-producer/consumer hand-off queue.
 *
 * Decouples the simulation loop from the analysis engine: the daemon
 * enqueues per-quantum analysis batches and a consumer thread drains
 * them.  When the queue is full the producer either blocks
 * (backpressure: the simulation waits for the analyses to catch up) or
 * drops the *oldest* queued item, counting the loss, so the freshest
 * observations always get through.
 */

#ifndef CCHUNTER_UTIL_BOUNDED_QUEUE_HH
#define CCHUNTER_UTIL_BOUNDED_QUEUE_HH

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/logging.hh"

namespace cchunter
{

/** What a full queue does to a new push. */
enum class OverflowPolicy
{
    Block,     //!< producer waits for space (backpressure)
    DropOldest //!< evict the oldest queued item, count the drop
};

/**
 * Result of one push.  The rejected/accepted distinction is explicit
 * so a producer racing close() gets a definite answer — a rejected
 * item was NOT enqueued and its side-effects (completion accounting,
 * retries) are the producer's to handle.
 */
template <typename T>
struct PushOutcome
{
    /** False when the queue was closed and the item discarded. */
    bool accepted = false;

    /** The oldest item evicted to make room (DropOldest only). */
    std::optional<T> displaced;
};

/**
 * Fixed-capacity FIFO queue with blocking pop and configurable
 * overflow behaviour.  close() wakes all waiters; pushes after (or
 * racing) close() return a definite rejection and never block, and
 * pops drain the remaining items before returning nullopt.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity,
                          OverflowPolicy policy = OverflowPolicy::Block)
        : cap_(capacity), policy_(policy)
    {
        if (cap_ == 0)
            fatal("BoundedQueue requires capacity >= 1");
    }

    /**
     * Enqueue an item.  Under Block, waits for space — but a close()
     * arriving while the producer waits (or before it) wakes the wait
     * and yields a definite rejection (`accepted == false`) rather
     * than blocking forever or silently dropping.  Under DropOldest,
     * a full queue evicts its oldest item and returns it in
     * `displaced` so the caller can account for the loss.
     */
    PushOutcome<T>
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        PushOutcome<T> outcome;
        if (closed_)
            return outcome;
        if (policy_ == OverflowPolicy::Block) {
            notFull_.wait(lock, [this] {
                return queue_.size() < cap_ || closed_;
            });
            if (closed_)
                return outcome;
        } else if (queue_.size() >= cap_) {
            outcome.displaced = std::move(queue_.front());
            queue_.pop_front();
            ++dropped_;
        }
        queue_.push_back(std::move(item));
        ++pushed_;
        outcome.accepted = true;
        highWater_ = std::max(highWater_, queue_.size());
        notEmpty_.notify_one();
        return outcome;
    }

    /**
     * Dequeue the oldest item, waiting until one is available.
     * Returns nullopt once the queue is closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock,
                       [this] { return !queue_.empty() || closed_; });
        if (queue_.empty())
            return std::nullopt;
        T out = std::move(queue_.front());
        queue_.pop_front();
        notFull_.notify_one();
        return out;
    }

    /**
     * Dequeue the oldest item, waiting at most `timeout`.  Returns
     * nullopt on timeout or once the queue is closed and drained —
     * callers that must tell the cases apart check closed().  A
     * close() arriving mid-wait wakes the waiter immediately, so a
     * watchdog polling on popFor() shuts down without serving out its
     * full interval.
     */
    template <typename Rep, typename Period>
    std::optional<T>
    popFor(std::chrono::duration<Rep, Period> timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait_for(lock, timeout, [this] {
            return !queue_.empty() || closed_;
        });
        if (queue_.empty())
            return std::nullopt;
        T out = std::move(queue_.front());
        queue_.pop_front();
        notFull_.notify_one();
        return out;
    }

    /** Non-blocking dequeue. */
    bool
    tryPop(T& out)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        out = std::move(queue_.front());
        queue_.pop_front();
        notFull_.notify_one();
        return true;
    }

    /** Reject further pushes and wake all waiters. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Items currently queued. */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

    std::size_t capacity() const { return cap_; }

    /** Deepest the queue has ever been. */
    std::size_t
    highWaterMark() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return highWater_;
    }

    /** Successful pushes so far. */
    std::uint64_t
    pushed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pushed_;
    }

    /** Items displaced by DropOldest overflow. */
    std::uint64_t
    dropped() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return dropped_;
    }

  private:
    const std::size_t cap_;
    const OverflowPolicy policy_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> queue_;
    bool closed_ = false;
    std::size_t highWater_ = 0;
    std::uint64_t pushed_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace cchunter

#endif // CCHUNTER_UTIL_BOUNDED_QUEUE_HH
