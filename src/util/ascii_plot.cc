#include "util/ascii_plot.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace cchunter
{

namespace
{

struct Range
{
    double lo;
    double hi;
};

Range
findRange(const std::vector<double>& v, bool from_zero)
{
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double y : v) {
        if (!std::isfinite(y))
            continue;
        lo = std::min(lo, y);
        hi = std::max(hi, y);
    }
    if (!std::isfinite(lo)) {
        lo = 0.0;
        hi = 1.0;
    }
    if (from_zero) {
        lo = std::min(lo, 0.0);
        hi = std::max(hi, 0.0);
    }
    if (hi == lo)
        hi = lo + 1.0;
    return {lo, hi};
}

std::string
axisLabel(double v)
{
    std::ostringstream os;
    if (std::abs(v) >= 10000 || (std::abs(v) < 0.01 && v != 0.0))
        os << std::scientific << std::setprecision(1) << v;
    else
        os << std::fixed << std::setprecision(2) << v;
    return os.str();
}

void
renderGrid(std::ostream& os, const std::vector<std::string>& grid,
           const Range& r, const PlotOptions& opts)
{
    if (!opts.title.empty())
        os << "  " << opts.title << "\n";
    const std::size_t h = grid.size();
    for (std::size_t row = 0; row < h; ++row) {
        const double frac =
            1.0 - static_cast<double>(row) / static_cast<double>(h - 1);
        const double yval = r.lo + frac * (r.hi - r.lo);
        std::string label = axisLabel(yval);
        if (row == 0 || row + 1 == h || row == h / 2)
            os << std::setw(10) << label << " |";
        else
            os << std::setw(10) << "" << " |";
        os << grid[row] << "\n";
    }
    os << std::setw(10) << "" << " +"
       << std::string(grid.empty() ? 0 : grid[0].size(), '-') << "\n";
    if (!opts.xLabel.empty())
        os << std::setw(12) << "" << opts.xLabel << "\n";
}

} // namespace

void
asciiPlot(std::ostream& os, const std::vector<double>& ys,
          const PlotOptions& opts)
{
    std::vector<double> xs(ys.size());
    for (std::size_t i = 0; i < ys.size(); ++i)
        xs[i] = static_cast<double>(i);
    asciiPlotXY(os, xs, ys, opts);
}

void
asciiPlotXY(std::ostream& os, const std::vector<double>& xs,
            const std::vector<double>& ys, const PlotOptions& opts)
{
    const std::size_t w = std::max<std::size_t>(opts.width, 8);
    const std::size_t h = std::max<std::size_t>(opts.height, 4);
    std::vector<std::string> grid(h, std::string(w, ' '));
    if (xs.empty() || xs.size() != ys.size()) {
        renderGrid(os, grid, {0.0, 1.0}, opts);
        return;
    }

    const Range yr = findRange(ys, opts.yFromZero);
    const double xlo = xs.front();
    const double xhi = std::max(xs.back(), xlo + 1e-12);

    // Column-wise mean of samples mapping to that column.
    std::vector<double> col_sum(w, 0.0);
    std::vector<std::size_t> col_n(w, 0);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (!std::isfinite(ys[i]))
            continue;
        double fx = (xs[i] - xlo) / (xhi - xlo);
        auto c = static_cast<std::size_t>(
            fx * static_cast<double>(w - 1) + 0.5);
        c = std::min(c, w - 1);
        col_sum[c] += ys[i];
        ++col_n[c];
    }
    for (std::size_t c = 0; c < w; ++c) {
        if (!col_n[c])
            continue;
        const double y = col_sum[c] / static_cast<double>(col_n[c]);
        double fy = (y - yr.lo) / (yr.hi - yr.lo);
        fy = std::clamp(fy, 0.0, 1.0);
        auto row = static_cast<std::size_t>(
            (1.0 - fy) * static_cast<double>(h - 1) + 0.5);
        grid[row][c] = '*';
    }
    renderGrid(os, grid, yr, opts);
}

void
asciiBars(std::ostream& os, const std::vector<double>& bins,
          const PlotOptions& opts)
{
    const std::size_t w = std::min(std::max<std::size_t>(opts.width, 8),
                                   std::max<std::size_t>(bins.size(), 8));
    const std::size_t h = std::max<std::size_t>(opts.height, 4);
    std::vector<std::string> grid(h, std::string(w, ' '));
    if (bins.empty()) {
        renderGrid(os, grid, {0.0, 1.0}, opts);
        return;
    }

    // Downsample bins to columns by max (preserve peaks).
    std::vector<double> cols(w, 0.0);
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const std::size_t c = i * w / bins.size();
        cols[c] = std::max(cols[c], bins[i]);
    }
    Range yr = findRange(cols, true);
    for (std::size_t c = 0; c < w; ++c) {
        double fy = (cols[c] - yr.lo) / (yr.hi - yr.lo);
        fy = std::clamp(fy, 0.0, 1.0);
        const auto top = static_cast<std::size_t>(
            (1.0 - fy) * static_cast<double>(h - 1) + 0.5);
        for (std::size_t row = top; row < h; ++row)
            grid[row][c] = (row == top) ? '#' : '|';
    }
    renderGrid(os, grid, yr, opts);
}

} // namespace cchunter
