#!/usr/bin/env python3
"""Compare a fresh bench JSON against the checked-in baseline.

Two modes:

Timing mode (default) — google-benchmark JSON in, pass/fail out.
Every gated kernel bench may regress at most --threshold (default 10%)
relative to the baseline.  Raw wall times are useless across machines,
so both runs are normalised by a reference bench first:
BM_AutocorrelogramNaiveFull/16384 is a plain scalar O(n·k) loop that
none of the optimised kernels touch, making its ratio between the two
files a clean estimate of the machine-speed difference.  A gated bench
fails only if it got slower by more than the threshold *after* that
correction.

Metrics mode (--metrics) — simulated-clock quality metrics
(BENCH_mitigation.json and friends): both files carry a flat
"metrics" object whose key prefix encodes the good direction.
`reduction.*` entries are higher-better (fail when the current value
falls more than --tolerance below the baseline), `tax.*` entries are
lower-better (fail when it rises more than --tolerance above).  The
underlying runs are deterministic, so any drift at all means the
closed loop changed behaviour.

Usage:
    check_bench_regression.py CURRENT BASELINE [--threshold 0.10]
    check_bench_regression.py --metrics CURRENT BASELINE \\
        [--tolerance 0.01]
"""

import argparse
import json
import sys

# Machine-speed reference: untouched by the SIMD / plan-cache /
# incremental work, so its drift measures the runner, not the code.
REFERENCE = "BM_AutocorrelogramNaiveFull/16384"

# Kernels under the regression gate.  These cover every optimisation
# the analysis-perf work introduced: planned SIMD FFT, the
# FFT-autocorrelation full path, the k-means distance kernel, the
# incremental sliding-window maintainer and the batched fleet pass.
GATED = [
    "BM_AutocorrelogramFftFull/16384",
    "BM_AutocorrelogramFftFull/65536",
    "BM_AutocorrelogramFftFull/262144",
    "BM_KMeans512",
    "BM_PlannedFft/4096/1",
    "BM_PlannedFft/65536/1",
    "BM_SlidingWindowIncremental",
    "BM_BatchedCorrelograms/8",
    "BM_BatchedCorrelograms/64",
    "BM_BatchedCorrelograms/512",
]

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def normalize(name):
    """Drop run-modifier components like `/iterations:1` so names
    compare cleanly across invocations."""
    return "/".join(p for p in name.split("/") if ":" not in p)


class BenchFileError(Exception):
    """A bench file that cannot be compared (missing, unparseable,
    or structurally not google-benchmark output)."""


def load_times(path):
    """Return {bench name: cpu time in ns} for a benchmark JSON file.

    Raises BenchFileError (not a traceback) for a missing file,
    malformed JSON, or entries without the expected fields, so CI logs
    show a one-line diagnosis instead of a stack dump.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as e:
        raise BenchFileError(f"cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        raise BenchFileError(f"{path} is not valid JSON: {e}")
    if not isinstance(doc, dict):
        raise BenchFileError(
            f"{path}: top level is {type(doc).__name__}, expected a "
            "google-benchmark JSON object")
    times = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        try:
            unit = _UNIT_NS[bench.get("time_unit", "ns")]
            times[normalize(bench["name"])] = \
                float(bench["cpu_time"]) * unit
        except (KeyError, TypeError, ValueError) as e:
            raise BenchFileError(
                f"{path}: malformed benchmark entry "
                f"{bench.get('name', '<unnamed>')!r}: {e!r}")
    return times


def load_metrics(path):
    """Return the flat {metric name: float} map of a metrics-mode
    bench file (the "metrics" object BENCH_mitigation.json emits)."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as e:
        raise BenchFileError(f"cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        raise BenchFileError(f"{path} is not valid JSON: {e}")
    metrics = doc.get("metrics") if isinstance(doc, dict) else None
    if not isinstance(metrics, dict) or not metrics:
        raise BenchFileError(
            f"{path}: no \"metrics\" object — not a metrics-mode "
            "bench file")
    out = {}
    for name, value in metrics.items():
        if not isinstance(value, (int, float)):
            raise BenchFileError(
                f"{path}: metric {name!r} is not numeric")
        out[name] = float(value)
    return out


def metric_direction(name):
    """The good direction for a gated metric, by prefix; None for
    informational entries."""
    if name.startswith("reduction."):
        return "higher"
    if name.startswith("tax."):
        return "lower"
    return None


def compare_metrics(current, baseline, tolerance):
    """Metrics-mode comparison: deterministic quality numbers with a
    direction per prefix.  Returns the process exit code."""
    print(f"metrics tolerance: {tolerance:.3f}\n")
    header = f"{'metric':<44} {'baseline':>9} {'current':>9}  verdict"
    print(header)
    print("-" * len(header))

    failures = []
    for name in sorted(baseline):
        direction = metric_direction(name)
        if direction is None:
            continue
        if name not in current:
            failures.append(name)
            print(f"{name:<44} {baseline[name]:>9.4f} {'missing':>9}  "
                  "FAIL (metric disappeared)")
            continue
        drift = current[name] - baseline[name]
        bad = (drift < -tolerance if direction == "higher"
               else drift > tolerance)
        if bad:
            failures.append(name)
        print(f"{name:<44} {baseline[name]:>9.4f} "
              f"{current[name]:>9.4f}  "
              f"{'FAIL' if bad else 'ok'}")

    for name in sorted(set(current) - set(baseline)):
        if metric_direction(name) is not None:
            print(f"{name:<44} {'absent':>9} {current[name]:>9.4f}  "
                  "new (add to baseline)")

    if failures:
        print(f"\n{len(failures)} metric(s) regressed beyond "
              f"{tolerance:.3f}: {', '.join(failures)}")
        return 1
    print("\nall gated metrics within tolerance")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench JSON")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed slowdown (fraction)")
    parser.add_argument("--metrics", action="store_true",
                        help="compare flat quality metrics instead of "
                             "google-benchmark timings")
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="max allowed metric drift in the bad "
                             "direction (metrics mode)")
    args = parser.parse_args()

    if args.metrics:
        try:
            current = load_metrics(args.current)
            baseline = load_metrics(args.baseline)
        except BenchFileError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        return compare_metrics(current, baseline, args.tolerance)

    try:
        current = load_times(args.current)
        baseline = load_times(args.baseline)
    except BenchFileError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    for name, times in (("current", current), ("baseline", baseline)):
        if REFERENCE not in times:
            print(f"error: reference bench {REFERENCE} missing from "
                  f"{name} run", file=sys.stderr)
            return 2

    # >1 means this machine is slower than the baseline machine.
    machine = current[REFERENCE] / baseline[REFERENCE]
    print(f"machine-speed factor ({REFERENCE}): {machine:.3f}")
    print(f"regression threshold: {args.threshold:.0%}\n")

    header = f"{'benchmark':<40} {'baseline':>12} {'current':>12} " \
             f"{'norm ratio':>10}  verdict"
    print(header)
    print("-" * len(header))

    failures = []
    for name in GATED:
        if name not in baseline:
            print(f"{name:<40} {'absent':>12} {'-':>12} {'-':>10}  "
                  "skipped (not in baseline)")
            continue
        if name not in current:
            failures.append(name)
            print(f"{name:<40} {baseline[name]:>10.0f}ns {'missing':>12} "
                  f"{'-':>10}  FAIL (bench disappeared)")
            continue
        ratio = current[name] / baseline[name] / machine
        bad = ratio > 1.0 + args.threshold
        if bad:
            failures.append(name)
        print(f"{name:<40} {baseline[name]:>10.0f}ns "
              f"{current[name]:>10.0f}ns {ratio:>10.3f}  "
              f"{'FAIL' if bad else 'ok'}")

    if failures:
        print(f"\n{len(failures)} gated bench(es) regressed more than "
              f"{args.threshold:.0%}: {', '.join(failures)}")
        return 1
    print("\nall gated benches within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
