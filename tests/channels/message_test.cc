#include <gtest/gtest.h>

#include "channels/message.hh"

namespace cchunter
{
namespace
{

TEST(MessageTest, FromUint64MsbFirst)
{
    Message m = Message::fromUint64(0x8000000000000001ull);
    EXPECT_EQ(m.size(), 64u);
    EXPECT_TRUE(m.bit(0));
    EXPECT_FALSE(m.bit(1));
    EXPECT_TRUE(m.bit(63));
}

TEST(MessageTest, FromBitsRoundTrip)
{
    Message m = Message::fromBits({true, false, true});
    EXPECT_EQ(m.toString(), "101");
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.popCount(), 2u);
}

TEST(MessageTest, Random64HasSixtyFourBits)
{
    Rng rng(1);
    Message m = Message::random64(rng);
    EXPECT_EQ(m.size(), 64u);
    // A random credit-card proxy should not be degenerate.
    EXPECT_GT(m.popCount(), 10u);
    EXPECT_LT(m.popCount(), 54u);
}

TEST(MessageTest, RandomMessagesDiffer)
{
    Rng rng(2);
    Message a = Message::random64(rng);
    Message b = Message::random64(rng);
    EXPECT_NE(a, b);
}

TEST(MessageTest, CyclicBitWraps)
{
    Message m = Message::fromBits({true, false});
    EXPECT_TRUE(m.bitCyclic(0));
    EXPECT_FALSE(m.bitCyclic(1));
    EXPECT_TRUE(m.bitCyclic(2));
    EXPECT_FALSE(m.bitCyclic(101));
}

TEST(MessageTest, BitErrorRate)
{
    Message a = Message::fromBits({true, true, false, false});
    Message b = Message::fromBits({true, false, false, true});
    EXPECT_DOUBLE_EQ(a.bitErrorRate(b), 0.5);
    EXPECT_DOUBLE_EQ(a.bitErrorRate(a), 0.0);
    EXPECT_DOUBLE_EQ(a.bitErrorRate(Message()), 1.0);
}

TEST(MessageTest, OutOfRangeBitPanics)
{
    Message m = Message::fromBits({true});
    EXPECT_ANY_THROW(m.bit(1));
    EXPECT_ANY_THROW(Message().bitCyclic(0));
}

} // namespace
} // namespace cchunter
