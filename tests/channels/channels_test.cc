#include <gtest/gtest.h>

#include <memory>

#include "channels/bus_channel.hh"
#include "channels/cache_channel.hh"
#include "channels/divider_channel.hh"
#include "sim/machine.hh"

namespace cchunter
{
namespace
{

ChannelTiming
fastTiming(double bps = 10000.0)
{
    ChannelTiming t;
    t.start = 1000;
    t.bandwidthBps = bps;
    return t;
}

TEST(BusChannelTest, TrojanLocksOnlyForOnes)
{
    Machine m;
    ChannelTiming t = fastTiming();
    BusTrojanParams tp;
    tp.timing = t;
    tp.message = Message::fromBits({true, false, true, false});
    tp.repeat = false;
    auto trojan = std::make_unique<BusTrojan>(tp);
    auto* raw = trojan.get();
    m.addProcess(std::move(trojan), 0);
    m.run(4 * t.bitTicks() + 10000);
    // Two '1' bits, locks every 5000 cycles over 250k-cycle slots.
    EXPECT_GT(raw->locksIssued(), 60u);
    EXPECT_LT(raw->locksIssued(), 140u);
    EXPECT_EQ(m.mem().bus().locks(), raw->locksIssued());
}

TEST(BusChannelTest, SpyDecodesCleanChannel)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    const Message msg = Message::fromBits(
        {true, false, false, true, true, false, true, false});
    BusTrojanParams tp;
    tp.timing = t;
    tp.message = msg;
    m.addProcess(std::make_unique<BusTrojan>(tp), 0);
    BusSpyParams sp;
    sp.timing = t;
    auto spy = std::make_unique<BusSpy>(sp);
    auto* raw = spy.get();
    m.addProcess(std::move(spy), 2);
    m.run(9 * t.bitTicks());
    ASSERT_GE(raw->decodedSlots().size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(raw->decodedSlots()[i].second, msg.bit(i))
            << "bit " << i;
    }
}

TEST(BusChannelTest, SpyCollectsSamples)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    BusSpyParams sp;
    sp.timing = t;
    auto spy = std::make_unique<BusSpy>(sp);
    auto* raw = spy.get();
    m.addProcess(std::move(spy), 0);
    m.run(3 * t.bitTicks());
    EXPECT_GT(raw->samples().size(), 50u);
    for (double s : raw->samples())
        EXPECT_GT(s, 0.0);
}

TEST(BusChannelTest, EmptyMessageThrows)
{
    BusTrojanParams tp;
    tp.timing = fastTiming();
    EXPECT_ANY_THROW(BusTrojan{tp});
}

TEST(DividerChannelTest, TrojanIdleForZeroBits)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    DividerTrojanParams tp;
    tp.timing = t;
    tp.message = Message::fromBits({false, false, false});
    tp.repeat = false;
    auto trojan = std::make_unique<DividerTrojan>(tp);
    auto* raw = trojan.get();
    m.addProcess(std::move(trojan), 0);
    m.run(4 * t.bitTicks());
    EXPECT_EQ(raw->opsIssued(), 0u);
    EXPECT_EQ(m.divider(0).totalOps(), 0u);
}

TEST(DividerChannelTest, SpyDecodesAlternatingBits)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    const Message msg = Message::fromBits(
        {true, false, true, false, true, true, false, false});
    DividerTrojanParams tp;
    tp.timing = t;
    tp.message = msg;
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = t;
    auto spy = std::make_unique<DividerSpy>(sp);
    auto* raw = spy.get();
    m.addProcess(std::move(spy), 1); // same core hyperthread
    m.run(9 * t.bitTicks());
    ASSERT_GE(raw->decodedSlots().size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(raw->decodedSlots()[i].second, msg.bit(i))
            << "bit " << i;
}

TEST(DividerChannelTest, ContentionDoublesSpyLatency)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    DividerTrojanParams tp;
    tp.timing = t;
    tp.message = Message::fromBits({true});
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = t;
    sp.gapMax = 0;
    auto spy = std::make_unique<DividerSpy>(sp);
    auto* raw = spy.get();
    m.addProcess(std::move(spy), 1);
    m.run(t.bitTicks());
    ASSERT_FALSE(raw->samples().empty());
    // 20 ops x 5 cycles doubled by contention = ~200.
    EXPECT_NEAR(raw->samples().back(), 200.0, 20.0);
}

TEST(MultiplierChannelTest, SpyDecodesViaMultiplierContention)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    const Message msg = Message::fromBits(
        {true, false, true, true, false, false, true, false});
    DividerTrojanParams tp;
    tp.timing = t;
    tp.message = msg;
    tp.useMultiplier = true;
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = t;
    sp.useMultiplier = true;
    sp.decodeThreshold = 90; // 3-cycle ops: 60 vs 120
    auto spy = std::make_unique<DividerSpy>(sp);
    auto* raw = spy.get();
    m.addProcess(std::move(spy), 1);
    m.run(9 * t.bitTicks());
    ASSERT_GE(raw->decodedSlots().size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(raw->decodedSlots()[i].second, msg.bit(i))
            << "bit " << i;
    // The divider stayed idle; only the multiplier contended.
    EXPECT_EQ(m.divider(0).totalConflicts(), 0u);
    EXPECT_GT(m.multiplier(0).totalConflicts(), 1000u);
}

TEST(BusChannelTest, EvasionDecoysLockDuringDormancy)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    BusTrojanParams tp;
    tp.timing = t;
    tp.message = Message::fromBits({false, false, false, false});
    tp.repeat = false;
    tp.evasionLockPeriod = 50000;
    auto trojan = std::make_unique<BusTrojan>(tp);
    auto* raw = trojan.get();
    m.addProcess(std::move(trojan), 0);
    m.run(4 * t.bitTicks());
    // All-zero message, yet decoy locks flow: roughly one per ~75k
    // cycles (period/2 + uniform jitter) across 10M cycles.
    EXPECT_GT(raw->locksIssued(), 80u);
    EXPECT_LT(raw->locksIssued(), 250u);
}

TEST(BusChannelTest, NoEvasionMeansSilenceOnZeros)
{
    Machine m;
    ChannelTiming t = fastTiming(1000.0);
    BusTrojanParams tp;
    tp.timing = t;
    tp.message = Message::fromBits({false, false, false, false});
    tp.repeat = false;
    auto trojan = std::make_unique<BusTrojan>(tp);
    auto* raw = trojan.get();
    m.addProcess(std::move(trojan), 0);
    m.run(4 * t.bitTicks());
    EXPECT_EQ(raw->locksIssued(), 0u);
}

TEST(CacheChannelTest, RoundsMultiplyOscillationPeriods)
{
    MachineParams mp;
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    Machine m(mp);
    ChannelTiming t = fastTiming(100.0); // 25 M per bit

    CacheChannelLayout layout;
    layout.l2NumSets = 4096;
    layout.channelSets = 128;

    CacheTrojanParams tp;
    tp.timing = t;
    tp.message = Message::fromBits({true});
    tp.layout = layout;
    tp.roundsPerBit = 8;
    auto trojan = std::make_unique<CacheTrojan>(tp);
    auto* traw = trojan.get();
    m.addProcess(std::move(trojan), 0);

    CacheSpyParams sp;
    sp.timing = t;
    sp.layout = layout;
    sp.roundsPerBit = 8;
    sp.noiseEvery = 0;
    m.addProcess(std::make_unique<CacheSpy>(sp), 1);

    m.run(t.bitTicks());
    // 8 rounds x 64 sets primed per round.
    EXPECT_NEAR(static_cast<double>(traw->primesIssued()), 8.0 * 64.0,
                64.0);
}

TEST(CacheChannelTest, LayoutAddressing)
{
    CacheChannelLayout layout;
    layout.l2NumSets = 4096;
    layout.channelSets = 512;
    EXPECT_EQ(layout.setsPerGroup(), 256u);
    // G1 set 0 and G0 set 0 are channelSets/2 sets apart.
    const Addr g1 = layout.addrFor(0, true, 0, 0);
    const Addr g0 = layout.addrFor(0, false, 0, 0);
    EXPECT_EQ(g0 - g1, 256u * 64u);
    // Lines with the same idx share the set: stride = sets * lineSize.
    layout.linesPerSet = 2;
    const Addr l1 = layout.addrFor(0, true, 3, 1);
    EXPECT_EQ(l1, 3 * 64 + 4096 * 64u);
    EXPECT_ANY_THROW(layout.addrFor(0, true, 300, 0));
}

TEST(CacheChannelTest, SpyDecodesBitsViaLatencyRatio)
{
    MachineParams mp;
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64}; // direct-mapped
    Machine m(mp);
    ChannelTiming t = fastTiming(100.0); // 25 M ticks per bit
    const Message msg = Message::fromBits(
        {true, false, true, true, false, false, true, false});

    CacheChannelLayout layout;
    layout.l2NumSets = 4096;
    layout.channelSets = 128;

    CacheTrojanParams tp;
    tp.timing = t;
    tp.message = msg;
    tp.layout = layout;
    m.addProcess(std::make_unique<CacheTrojan>(tp), 0);

    CacheSpyParams sp;
    sp.timing = t;
    sp.layout = layout;
    sp.noiseEvery = 0;
    auto spy = std::make_unique<CacheSpy>(sp);
    auto* raw = spy.get();
    m.addProcess(std::move(spy), 1);

    m.run(10 * t.bitTicks());
    ASSERT_GE(raw->decodedSlots().size(), 8u);
    // Skip the cold-start bit 0; bits 1..7 must decode exactly.
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_EQ(raw->decodedSlots()[i].second, msg.bit(i))
            << "bit " << i;
    // Ratios reflect the bit: > 1 for '1', < 1 for '0' (paper fig. 7).
    const auto& ratios = raw->ratios();
    ASSERT_GE(ratios.size(), 8u);
    for (std::size_t i = 1; i < 8; ++i) {
        if (msg.bit(i))
            EXPECT_GT(ratios[i], 1.0) << "bit " << i;
        else
            EXPECT_LT(ratios[i], 1.0) << "bit " << i;
    }
}

TEST(CacheChannelTest, OddChannelSetsThrow)
{
    CacheTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::fromBits({true});
    tp.layout.channelSets = 511;
    EXPECT_ANY_THROW(CacheTrojan{tp});
}

TEST(CacheChannelTest, ChannelBeyondL2Throws)
{
    CacheTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::fromBits({true});
    tp.layout.l2NumSets = 64;
    tp.layout.channelSets = 128;
    EXPECT_ANY_THROW(CacheTrojan{tp});
}

} // namespace
} // namespace cchunter
