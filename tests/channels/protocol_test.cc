#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "channels/protocol.hh"

using namespace cchunter;

namespace
{

Message
flipBit(const Message& m, std::size_t pos)
{
    std::vector<bool> bits;
    bits.reserve(m.size());
    for (std::size_t i = 0; i < m.size(); ++i)
        bits.push_back(i == pos ? !m.bit(i) : m.bit(i));
    return Message::fromBits(std::move(bits));
}

} // namespace

// --- Hamming(7,4) property tests: the full input space is only 16
// nibbles x 7 bit positions, so test it exhaustively. ---

TEST(HammingTest, AllNibblesRoundTripCleanly)
{
    for (unsigned n = 0; n < 16; ++n) {
        const std::uint8_t cw =
            hammingEncodeNibble(static_cast<std::uint8_t>(n));
        EXPECT_LT(cw, 0x80) << "codeword must be 7 bits";
        const HammingDecodeResult r = hammingDecodeNibble(cw);
        EXPECT_EQ(r.nibble, n);
        EXPECT_FALSE(r.corrected);
    }
}

TEST(HammingTest, EverySingleBitErrorIsCorrected)
{
    for (unsigned n = 0; n < 16; ++n) {
        const std::uint8_t cw =
            hammingEncodeNibble(static_cast<std::uint8_t>(n));
        for (unsigned bit = 0; bit < 7; ++bit) {
            const auto corrupted =
                static_cast<std::uint8_t>(cw ^ (1u << bit));
            const HammingDecodeResult r =
                hammingDecodeNibble(corrupted);
            EXPECT_EQ(r.nibble, n)
                << "nibble " << n << " flip bit " << bit;
            EXPECT_TRUE(r.corrected);
        }
    }
}

TEST(HammingTest, EveryDoubleBitErrorDecodesWithoutCrashing)
{
    // Distance 3: two-bit errors alias to a wrong single-bit syndrome
    // and may miscorrect, but decoding must stay total — a nibble in
    // range and corrected == true, never a crash or hang.
    for (unsigned n = 0; n < 16; ++n) {
        const std::uint8_t cw =
            hammingEncodeNibble(static_cast<std::uint8_t>(n));
        for (unsigned a = 0; a < 7; ++a) {
            for (unsigned b = a + 1; b < 7; ++b) {
                const auto corrupted = static_cast<std::uint8_t>(
                    cw ^ (1u << a) ^ (1u << b));
                const HammingDecodeResult r =
                    hammingDecodeNibble(corrupted);
                EXPECT_LT(r.nibble, 16u);
                EXPECT_TRUE(r.corrected);
                // Distance-3 geometry: the miscorrection lands on a
                // different codeword, never back on the original.
                EXPECT_NE(r.nibble, n)
                    << "nibble " << n << " flips " << a << "," << b;
            }
        }
    }
}

TEST(HammingTest, DistinctNibblesGetDistinctCodewords)
{
    for (unsigned a = 0; a < 16; ++a)
        for (unsigned b = a + 1; b < 16; ++b)
            EXPECT_NE(hammingEncodeNibble(static_cast<std::uint8_t>(a)),
                      hammingEncodeNibble(static_cast<std::uint8_t>(b)));
}

// --- Wire-format tests. ---

TEST(ProtocolTest, DisabledIsAPassThrough)
{
    const Message payload = Message::fromUint64(0xdeadbeefull);
    ProtocolParams params; // enabled = false
    EXPECT_EQ(encodeProtocol(payload, params).toString(),
              payload.toString());
    EXPECT_EQ(decodeProtocol(payload, params).toString(),
              payload.toString());
}

TEST(ProtocolTest, BurstShapeMatchesParams)
{
    ProtocolParams params;
    params.enabled = true; // frameNibbles 4, repeats 3, ackGap 4
    EXPECT_EQ(params.burstBits(), 8u + 3u * 4u * 7u + 4u);

    // 16 payload bits = 4 nibbles = exactly one frame burst.
    const Message payload = Message::fromBits(
        std::vector<bool>(16, true));
    const Message wire = encodeProtocol(payload, params);
    ASSERT_EQ(wire.size(), params.burstBits());
    // The preamble leads, MSB first: 10101011.
    const bool expected[8] = {1, 0, 1, 0, 1, 0, 1, 1};
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(wire.bit(i), expected[i]) << "preamble bit " << i;
}

TEST(ProtocolTest, CleanWireRoundTrips)
{
    ProtocolParams params;
    params.enabled = true;
    const Message payload = Message::fromUint64(0x0123456789abcdefull);
    const Message wire = encodeProtocol(payload, params);
    ProtocolDecodeStats stats;
    const Message decoded =
        decodeProtocol(wire, params, payload.size(), &stats);
    EXPECT_EQ(decoded.toString(), payload.toString());
    EXPECT_EQ(stats.frames, 4u); // 64 bits = 16 nibbles / 4 per frame
    EXPECT_EQ(stats.resyncShifts, 0u);
    EXPECT_EQ(stats.correctedCodewords, 0u);
    EXPECT_EQ(stats.votedBits, 0u);
}

TEST(ProtocolTest, RetransmissionVotesOutASingleWireError)
{
    ProtocolParams params;
    params.enabled = true; // repeats = 3
    const Message payload = Message::fromUint64(0xa5a5ull);
    const Message wire = encodeProtocol(payload, params);
    // Corrupt one bit of the first repeated body copy: the two clean
    // copies outvote it before the ECC layer even runs.
    const Message corrupted =
        flipBit(wire, ProtocolParams::preambleBits + 3);
    ProtocolDecodeStats stats;
    const Message decoded =
        decodeProtocol(corrupted, params, payload.size(), &stats);
    EXPECT_EQ(decoded.toString(), payload.toString());
    EXPECT_EQ(stats.votedBits, 1u);
    EXPECT_EQ(stats.correctedCodewords, 0u);
}

TEST(ProtocolTest, EccCorrectsASingleBodyErrorWithoutRetransmission)
{
    ProtocolParams params;
    params.enabled = true;
    params.repeats = 1; // no voting layer: the error reaches the ECC
    const Message payload = Message::fromUint64(0xa5a5ull);
    const Message wire = encodeProtocol(payload, params);
    const Message corrupted =
        flipBit(wire, ProtocolParams::preambleBits + 3);
    ProtocolDecodeStats stats;
    const Message decoded =
        decodeProtocol(corrupted, params, payload.size(), &stats);
    EXPECT_EQ(decoded.toString(), payload.toString());
    EXPECT_EQ(stats.correctedCodewords, 1u);
}

TEST(ProtocolTest, ResynchronizesAfterLeadingGarbage)
{
    ProtocolParams params;
    params.enabled = true;
    const Message payload = Message::fromUint64(0x5aa5ull);
    const Message wire = encodeProtocol(payload, params);
    // Two junk bits before the first preamble: the decoder must slip
    // bit by bit until the preamble matches again.
    std::vector<bool> shifted{false, false};
    for (std::size_t i = 0; i < wire.size(); ++i)
        shifted.push_back(wire.bit(i));
    ProtocolDecodeStats stats;
    const Message decoded =
        decodeProtocol(Message::fromBits(std::move(shifted)), params,
                       payload.size(), &stats);
    EXPECT_EQ(decoded.toString(), payload.toString());
    EXPECT_EQ(stats.resyncShifts, 2u);
}

TEST(ProtocolTest, PreambleToleratesOneBitError)
{
    ProtocolParams params;
    params.enabled = true;
    const Message payload = Message::fromUint64(0x1234ull);
    const Message corrupted =
        flipBit(encodeProtocol(payload, params), 0);
    ProtocolDecodeStats stats;
    const Message decoded =
        decodeProtocol(corrupted, params, payload.size(), &stats);
    EXPECT_EQ(decoded.toString(), payload.toString());
    EXPECT_EQ(stats.resyncShifts, 0u);
}

TEST(ProtocolTest, PayloadIsZeroPaddedToWholeFrames)
{
    ProtocolParams params;
    params.enabled = true; // 4 nibbles = 16 payload bits per frame
    const Message payload =
        Message::fromBits({true, false, true}); // 3 bits
    const Message wire = encodeProtocol(payload, params);
    EXPECT_EQ(wire.size(), params.burstBits());
    // Decoding without a payload-bit cap keeps the padding...
    EXPECT_EQ(decodeProtocol(wire, params).size(), 16u);
    // ...and the cap trims it back to the original bits.
    const Message decoded = decodeProtocol(wire, params, 3);
    EXPECT_EQ(decoded.toString(), payload.toString());
}

TEST(ProtocolTest, ValidateRejectsDegenerateFraming)
{
    ProtocolParams params;
    params.enabled = true;
    params.frameNibbles = 0;
    EXPECT_THROW(params.validate(), std::runtime_error);
    params.frameNibbles = 4;
    params.repeats = 0;
    EXPECT_THROW(params.validate(), std::runtime_error);
    // Disabled params never validate (pass-through contract).
    params.enabled = false;
    EXPECT_NO_THROW(params.validate());
}
