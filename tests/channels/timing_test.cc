#include <gtest/gtest.h>

#include "channels/timing.hh"

namespace cchunter
{
namespace
{

TEST(ChannelTimingTest, BitTicksFromBandwidth)
{
    ChannelTiming t;
    t.bandwidthBps = 10.0;
    // 2.5 GHz / 10 bps = 250 M ticks per bit.
    EXPECT_EQ(t.bitTicks(), 250000000u);
    t.bandwidthBps = 1000.0;
    EXPECT_EQ(t.bitTicks(), 2500000u);
}

TEST(ChannelTimingTest, SignalWindowCapped)
{
    ChannelTiming t;
    t.bandwidthBps = 0.1; // 25 G ticks per bit
    t.maxSignalTicks = 25000000;
    EXPECT_EQ(t.signalTicks(), 25000000u);
    t.maxSignalTicks = 0;
    EXPECT_EQ(t.signalTicks(), t.bitTicks());
}

TEST(ChannelTimingTest, SignalCapAboveBitClamps)
{
    ChannelTiming t;
    t.bandwidthBps = 1000.0; // 2.5 M per bit
    t.maxSignalTicks = 25000000;
    EXPECT_EQ(t.signalTicks(), t.bitTicks());
}

TEST(ChannelTimingTest, BitIndexing)
{
    ChannelTiming t;
    t.start = 1000;
    t.bandwidthBps = 1000.0; // bit = 2.5M
    EXPECT_EQ(t.bitIndexAt(0), 0u);
    EXPECT_EQ(t.bitIndexAt(1000), 0u);
    EXPECT_EQ(t.bitIndexAt(1000 + 2500000 - 1), 0u);
    EXPECT_EQ(t.bitIndexAt(1000 + 2500000), 1u);
    EXPECT_EQ(t.bitStart(3), 1000u + 3 * 2500000u);
}

TEST(ChannelTimingTest, InSignalWindow)
{
    ChannelTiming t;
    t.start = 0;
    t.bandwidthBps = 10.0;     // bit = 250M
    t.maxSignalTicks = 1000000; // 1M signal window
    EXPECT_TRUE(t.inSignalWindow(0));
    EXPECT_TRUE(t.inSignalWindow(999999));
    EXPECT_FALSE(t.inSignalWindow(1000000));
    EXPECT_TRUE(t.inSignalWindow(250000000));
}

TEST(ChannelTimingTest, InvalidBandwidthThrows)
{
    ChannelTiming t;
    t.bandwidthBps = 0.0;
    EXPECT_ANY_THROW(t.bitTicks());
}

TEST(ChannelTimingTest, VeryHighBandwidthClampsToOneTick)
{
    ChannelTiming t;
    t.bandwidthBps = 1e12;
    EXPECT_GE(t.bitTicks(), 1u);
}

TEST(ChannelTimingTest, NonePlanIsScheduleIdentity)
{
    // A default plan must leave every query bit-identical to the
    // classic arithmetic -- the whole non-evasive stack rides on it.
    ChannelTiming t;
    t.start = 500;
    t.bandwidthBps = 1000.0;
    t.maxSignalTicks = 100000;
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(t.signalStart(i), t.bitStart(i));
        EXPECT_EQ(t.activeTicks(i), t.signalTicks());
        EXPECT_EQ(t.signalEnd(i), t.bitStart(i) + t.signalTicks());
    }
}

TEST(ChannelTimingTest, RandomGapsJitterWithinTheSlot)
{
    ChannelTiming t;
    t.bandwidthBps = 1000.0;    // bit = 2.5M
    t.maxSignalTicks = 100000;  // plenty of idle slack to jitter in
    t.evasion.strategy = EvasionStrategy::RandomGaps;
    t.evasion.seed = 7;
    bool moved = false;
    for (std::size_t i = 0; i < 64; ++i) {
        // The jittered window stays inside its own bit slot, keeps
        // the classic length, and actually moves for some bits.
        EXPECT_GE(t.signalStart(i), t.bitStart(i)) << i;
        EXPECT_LE(t.signalEnd(i), t.bitStart(i + 1)) << i;
        EXPECT_EQ(t.activeTicks(i), t.signalTicks()) << i;
        moved = moved || t.signalStart(i) != t.bitStart(i);
    }
    EXPECT_TRUE(moved);
}

TEST(ChannelTimingTest, DutyCycleDrawsWithinTheConfiguredRange)
{
    ChannelTiming t;
    t.bandwidthBps = 1000.0;
    t.evasion.strategy = EvasionStrategy::DutyCycle;
    t.evasion.seed = 11;
    t.evasion.dutyMin = 0.25;
    t.evasion.dutyMax = 0.75;
    const double window = static_cast<double>(t.signalTicks());
    bool varied = false;
    for (std::size_t i = 0; i < 64; ++i) {
        const Tick active = t.activeTicks(i);
        EXPECT_GE(static_cast<double>(active),
                  t.evasion.dutyMin * window - 1.0)
            << i;
        EXPECT_LE(static_cast<double>(active),
                  t.evasion.dutyMax * window + 1.0)
            << i;
        varied = varied || active != t.activeTicks(0);
    }
    EXPECT_TRUE(varied);
}

TEST(ChannelTimingTest, LowAndSlowStretchesSlotsNotBursts)
{
    ChannelTiming classic;
    classic.bandwidthBps = 1000.0;
    classic.maxSignalTicks = 100000;
    ChannelTiming slow = classic;
    slow.evasion.strategy = EvasionStrategy::LowAndSlow;
    slow.evasion.stretch = 16;
    slow.evasion.gapJitter = 0.0; // isolate the stretch
    // The slot grows by the stretch factor; the burst length does not
    // (the rate drops, the footprint per burst stays the same).
    EXPECT_EQ(slow.bitTicks(), 16 * classic.bitTicks());
    EXPECT_EQ(slow.signalTicks(), classic.signalTicks());
    EXPECT_EQ(slow.bitStart(1), slow.start + slow.bitTicks());
    EXPECT_EQ(slow.activeTicks(0), classic.signalTicks());
}

TEST(ChannelTimingTest, EvasionScheduleIsSeedDeterministic)
{
    // Both ends of the colluding pair derive the schedule from the
    // shared plan alone; same seed => same schedule, different seed
    // => (almost surely) a different one.
    ChannelTiming a;
    a.bandwidthBps = 1000.0;
    a.maxSignalTicks = 100000;
    a.evasion.strategy = EvasionStrategy::RandomGaps;
    a.evasion.seed = 3;
    ChannelTiming b = a;
    bool diverged = false;
    ChannelTiming c = a;
    c.evasion.seed = 4;
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(a.signalStart(i), b.signalStart(i)) << i;
        EXPECT_EQ(a.activeTicks(i), b.activeTicks(i)) << i;
        diverged = diverged || a.signalStart(i) != c.signalStart(i);
    }
    EXPECT_TRUE(diverged);
}

} // namespace
} // namespace cchunter
