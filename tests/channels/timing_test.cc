#include <gtest/gtest.h>

#include "channels/timing.hh"

namespace cchunter
{
namespace
{

TEST(ChannelTimingTest, BitTicksFromBandwidth)
{
    ChannelTiming t;
    t.bandwidthBps = 10.0;
    // 2.5 GHz / 10 bps = 250 M ticks per bit.
    EXPECT_EQ(t.bitTicks(), 250000000u);
    t.bandwidthBps = 1000.0;
    EXPECT_EQ(t.bitTicks(), 2500000u);
}

TEST(ChannelTimingTest, SignalWindowCapped)
{
    ChannelTiming t;
    t.bandwidthBps = 0.1; // 25 G ticks per bit
    t.maxSignalTicks = 25000000;
    EXPECT_EQ(t.signalTicks(), 25000000u);
    t.maxSignalTicks = 0;
    EXPECT_EQ(t.signalTicks(), t.bitTicks());
}

TEST(ChannelTimingTest, SignalCapAboveBitClamps)
{
    ChannelTiming t;
    t.bandwidthBps = 1000.0; // 2.5 M per bit
    t.maxSignalTicks = 25000000;
    EXPECT_EQ(t.signalTicks(), t.bitTicks());
}

TEST(ChannelTimingTest, BitIndexing)
{
    ChannelTiming t;
    t.start = 1000;
    t.bandwidthBps = 1000.0; // bit = 2.5M
    EXPECT_EQ(t.bitIndexAt(0), 0u);
    EXPECT_EQ(t.bitIndexAt(1000), 0u);
    EXPECT_EQ(t.bitIndexAt(1000 + 2500000 - 1), 0u);
    EXPECT_EQ(t.bitIndexAt(1000 + 2500000), 1u);
    EXPECT_EQ(t.bitStart(3), 1000u + 3 * 2500000u);
}

TEST(ChannelTimingTest, InSignalWindow)
{
    ChannelTiming t;
    t.start = 0;
    t.bandwidthBps = 10.0;     // bit = 250M
    t.maxSignalTicks = 1000000; // 1M signal window
    EXPECT_TRUE(t.inSignalWindow(0));
    EXPECT_TRUE(t.inSignalWindow(999999));
    EXPECT_FALSE(t.inSignalWindow(1000000));
    EXPECT_TRUE(t.inSignalWindow(250000000));
}

TEST(ChannelTimingTest, InvalidBandwidthThrows)
{
    ChannelTiming t;
    t.bandwidthBps = 0.0;
    EXPECT_ANY_THROW(t.bitTicks());
}

TEST(ChannelTimingTest, VeryHighBandwidthClampsToOneTick)
{
    ChannelTiming t;
    t.bandwidthBps = 1e12;
    EXPECT_GE(t.bitTicks(), 1u);
}

} // namespace
} // namespace cchunter
