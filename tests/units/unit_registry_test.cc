#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "units/unit_registry.hh"

using namespace cchunter;

namespace
{

/** Minimal valid descriptor for invariant tests. */
UnitDescriptor
stubUnit(MonitorTarget id, AuditedWorkload workload, const char* name)
{
    UnitDescriptor d;
    d.id = id;
    d.workload = workload;
    d.name = name;
    d.buildWorkload = [](Machine&, const UnitRunContext&) {};
    d.program = [](CCAuditor&, const AuditKey&, unsigned,
                   const UnitRunContext&) {};
    return d;
}

std::string
fatalMessage(const std::function<void()>& f)
{
    try {
        f();
    } catch (const std::runtime_error& e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(UnitRegistryTest, BuiltinsIterateInDeterministicOrder)
{
    const std::vector<std::string> expected{"bus", "divider",
                                            "multiplier", "cache",
                                            "tlb"};
    std::vector<std::string> names;
    for (const UnitDescriptor& d :
         UnitRegistry::instance().descriptors())
        names.push_back(d.name);
    EXPECT_EQ(names, expected);
}

TEST(UnitRegistryTest, NameAndIdRoundTrip)
{
    const UnitRegistry& registry = UnitRegistry::instance();
    for (const UnitDescriptor& d : registry.descriptors()) {
        // name -> id -> name closes, through every lookup route.
        const UnitDescriptor* byName = registry.byName(d.name);
        ASSERT_NE(byName, nullptr) << d.name;
        EXPECT_EQ(byName->id, d.id);
        const UnitDescriptor* byId = registry.byId(d.id);
        ASSERT_NE(byId, nullptr) << d.name;
        EXPECT_STREQ(byId->name, d.name);
        EXPECT_EQ(registry.byWorkload(d.workload), byId);
        EXPECT_EQ(&registry.require(d.id), byId);
        // The registry name is the auditor's name for the unit and
        // the scenario layer's workload name.
        EXPECT_STREQ(monitorTargetName(d.id), d.name);
        EXPECT_STREQ(auditedWorkloadName(d.workload), d.name);
        EXPECT_EQ(auditedWorkloadFromName(d.name), d.workload);
    }
}

TEST(UnitRegistryTest, DescriptorsCarryCompletePolicies)
{
    for (const UnitDescriptor& d :
         UnitRegistry::instance().descriptors()) {
        EXPECT_NE(d.id, MonitorTarget::None) << d.name;
        EXPECT_NE(std::string(d.conflictSemantics), "") << d.name;
        EXPECT_TRUE(d.buildWorkload) << d.name;
        EXPECT_TRUE(d.program) << d.name;
        // Contention units observe through a count-down histogram and
        // need a delta-t; oscillation units have no such register.
        if (d.policy == AlarmKind::Contention)
            EXPECT_GT(d.deltaT, 0u) << d.name;
        else
            EXPECT_EQ(d.deltaT, 0u) << d.name;
        EXPECT_NE(d.mitigation, MitigationKind::None) << d.name;
    }
}

TEST(UnitRegistryTest, TlbUnitIsRegisteredAsOscillation)
{
    const UnitDescriptor& tlb =
        UnitRegistry::instance().require(MonitorTarget::Tlb);
    EXPECT_STREQ(tlb.name, "tlb");
    EXPECT_EQ(tlb.workload, AuditedWorkload::Tlb);
    EXPECT_EQ(tlb.policy, AlarmKind::Oscillation);
    EXPECT_TRUE(tlb.configureMachine);
    // Benign TLB audits need the (default-off) TLB hardware enabled.
    EXPECT_TRUE(tlb.configureBenignMachine);
}

TEST(UnitRegistryTest, DuplicateIdIsRejected)
{
    UnitRegistry registry;
    registry.registerUnit(stubUnit(MonitorTarget::MemoryBus,
                                   AuditedWorkload::Bus, "bus"));
    EXPECT_THROW(
        registry.registerUnit(stubUnit(MonitorTarget::MemoryBus,
                                       AuditedWorkload::Divider,
                                       "other")),
        std::runtime_error);
}

TEST(UnitRegistryTest, DuplicateNameIsRejected)
{
    UnitRegistry registry;
    registry.registerUnit(stubUnit(MonitorTarget::MemoryBus,
                                   AuditedWorkload::Bus, "bus"));
    EXPECT_THROW(
        registry.registerUnit(stubUnit(MonitorTarget::IntegerDivider,
                                       AuditedWorkload::Divider,
                                       "bus")),
        std::runtime_error);
}

TEST(UnitRegistryTest, DuplicateWorkloadIsRejected)
{
    UnitRegistry registry;
    registry.registerUnit(stubUnit(MonitorTarget::MemoryBus,
                                   AuditedWorkload::Bus, "bus"));
    EXPECT_THROW(
        registry.registerUnit(stubUnit(MonitorTarget::IntegerDivider,
                                       AuditedWorkload::Bus, "other")),
        std::runtime_error);
}

TEST(UnitRegistryTest, IncompleteDescriptorsAreRejected)
{
    UnitRegistry registry;

    UnitDescriptor noId = stubUnit(MonitorTarget::None,
                                   AuditedWorkload::Bus, "bus");
    EXPECT_THROW(registry.registerUnit(noId), std::runtime_error);

    UnitDescriptor benign = stubUnit(MonitorTarget::MemoryBus,
                                     AuditedWorkload::BenignPair,
                                     "bus");
    EXPECT_THROW(registry.registerUnit(benign), std::runtime_error);

    UnitDescriptor unnamed =
        stubUnit(MonitorTarget::MemoryBus, AuditedWorkload::Bus, "");
    EXPECT_THROW(registry.registerUnit(unnamed), std::runtime_error);

    UnitDescriptor noFactory = stubUnit(MonitorTarget::MemoryBus,
                                        AuditedWorkload::Bus, "bus");
    noFactory.buildWorkload = nullptr;
    EXPECT_THROW(registry.registerUnit(noFactory), std::runtime_error);

    UnitDescriptor noProgram = stubUnit(MonitorTarget::MemoryBus,
                                        AuditedWorkload::Bus, "bus");
    noProgram.program = nullptr;
    EXPECT_THROW(registry.registerUnit(noProgram), std::runtime_error);
}

TEST(UnitRegistryTest, UnknownLookupsReturnNullOrThrow)
{
    const UnitRegistry registry; // empty
    EXPECT_EQ(registry.byId(MonitorTarget::MemoryBus), nullptr);
    EXPECT_EQ(registry.byName("bus"), nullptr);
    EXPECT_EQ(registry.byWorkload(AuditedWorkload::Bus), nullptr);
    EXPECT_THROW(registry.require(MonitorTarget::MemoryBus),
                 std::runtime_error);
    // BenignPair is deliberately not a unit, even in the singleton.
    EXPECT_EQ(UnitRegistry::instance().byWorkload(
                  AuditedWorkload::BenignPair),
              nullptr);
}

TEST(UnitRegistryTest, UnknownWorkloadNameListsRegistryNames)
{
    const std::string message = fatalMessage(
        [] { auditedWorkloadFromName("gpu"); });
    ASSERT_NE(message, "");
    EXPECT_NE(message.find("'gpu'"), std::string::npos) << message;
    // The valid-name list is derived from the registry, so a sixth
    // unit's name would appear here without touching this error path.
    for (const UnitDescriptor& d :
         UnitRegistry::instance().descriptors())
        EXPECT_NE(message.find(d.name), std::string::npos)
            << message << " should mention " << d.name;
    EXPECT_NE(message.find("benign"), std::string::npos) << message;
}

TEST(UnitRegistryTest, BenignPairingsCoverEveryOscillationUnit)
{
    // Each pairing names two registered units; between them, every
    // registered unit appears somewhere so benign runs can accumulate
    // negatives for all of them.
    std::vector<MonitorTarget> seen;
    for (const BenignPairing& p : benignPairings()) {
        EXPECT_NE(std::string(p.name), "");
        for (const MonitorTarget t : p.slots) {
            EXPECT_NE(UnitRegistry::instance().byId(t), nullptr)
                << p.name;
            seen.push_back(t);
        }
    }
    for (const UnitDescriptor& d :
         UnitRegistry::instance().descriptors())
        EXPECT_NE(std::count(seen.begin(), seen.end(), d.id), 0)
            << d.name << " never audited by any benign pairing";
    // TLB negatives feed the oscillation path via the TlbBus pairing.
    const BenignPairing& tlbBus =
        benignPairing(BenignAuditUnits::TlbBus);
    EXPECT_EQ(tlbBus.slots[0], MonitorTarget::Tlb);
    EXPECT_EQ(tlbBus.slots[1], MonitorTarget::MemoryBus);
    EXPECT_THROW(benignPairing(static_cast<BenignAuditUnits>(200)),
                 std::runtime_error);
}

TEST(UnitRegistryTest, MitigationRecommendationsComeFromDescriptors)
{
    const UnitRegistry& registry = UnitRegistry::instance();
    EXPECT_EQ(registry.require(MonitorTarget::MemoryBus).mitigation,
              MitigationKind::RateLimitBusLocks);
    EXPECT_EQ(registry.require(MonitorTarget::Tlb).mitigation,
              MitigationKind::UnshareCore);
}
