#include <gtest/gtest.h>

#include "cost/auditor_cost.hh"
#include "cost/cost_model.hh"

namespace cchunter
{
namespace
{

TEST(CostModelTest, AreaAndPowerScaleLinearly)
{
    CostModel m;
    auto small = m.estimateArray(ArrayStyle::DenseSram, 1024);
    auto big = m.estimateArray(ArrayStyle::DenseSram, 2048);
    EXPECT_NEAR(big.areaMm2 / small.areaMm2, 2.0, 1e-9);
    EXPECT_NEAR(big.powerMw / small.powerMw, 2.0, 1e-9);
    EXPECT_GT(big.latencyNs, small.latencyNs);
}

TEST(CostModelTest, DenserStylesAreSmaller)
{
    CostModel m;
    const std::size_t bits = 4096;
    auto rf = m.estimateArray(ArrayStyle::RegisterFile, bits);
    auto dense = m.estimateArray(ArrayStyle::DenseSram, bits);
    EXPECT_GT(rf.areaMm2, dense.areaMm2);
}

TEST(CostModelTest, ZeroBitsThrows)
{
    CostModel m;
    EXPECT_ANY_THROW(m.estimateArray(ArrayStyle::DenseSram, 0));
}

TEST(CostModelTest, StyleNames)
{
    EXPECT_EQ(CostModel::styleName(ArrayStyle::RegisterFile),
              "register-file");
    EXPECT_EQ(CostModel::styleName(ArrayStyle::SramBuffer),
              "sram-buffer");
    EXPECT_EQ(CostModel::styleName(ArrayStyle::DenseSram),
              "dense-sram");
}

TEST(CostEstimateTest, AccumulationTakesMaxLatency)
{
    CostEstimate a{1.0, 2.0, 0.1};
    CostEstimate b{0.5, 1.0, 0.3};
    a += b;
    EXPECT_DOUBLE_EQ(a.areaMm2, 1.5);
    EXPECT_DOUBLE_EQ(a.powerMw, 3.0);
    EXPECT_DOUBLE_EQ(a.latencyNs, 0.3);
}

TEST(AuditorCostTest, ReproducesTableOne)
{
    // Paper Table I:
    //            histogram  registers  conflict-miss detector
    //  area mm^2   0.0028     0.0011     0.004
    //  power mW    2.8        0.8        5.4
    //  latency ns  0.17       0.17       0.12
    auto report = estimateAuditorCost();
    EXPECT_NEAR(report.histogramBuffers.areaMm2, 0.0028, 0.0002);
    EXPECT_NEAR(report.histogramBuffers.powerMw, 2.8, 0.2);
    EXPECT_NEAR(report.histogramBuffers.latencyNs, 0.17, 0.01);

    EXPECT_NEAR(report.registers.areaMm2, 0.0011, 0.0001);
    EXPECT_NEAR(report.registers.powerMw, 0.8, 0.1);
    EXPECT_NEAR(report.registers.latencyNs, 0.17, 0.01);

    EXPECT_NEAR(report.conflictMissDetector.areaMm2, 0.004, 0.0003);
    EXPECT_NEAR(report.conflictMissDetector.powerMw, 5.4, 0.3);
    EXPECT_NEAR(report.conflictMissDetector.latencyNs, 0.12, 0.01);
}

TEST(AuditorCostTest, PaperContextClaimsHold)
{
    auto report = estimateAuditorCost();
    // Insignificant area vs. a 263 mm^2 i7 die.
    EXPECT_LT(report.areaFractionOfI7(), 0.0001);
    // A few milliwatts vs. a 130 W budget.
    EXPECT_LT(report.powerFractionOfI7(), 0.001);
    // Latencies below the 3 GHz clock period.
    EXPECT_LT(report.latencyOverClockPeriod(), 1.0);
    // Cache metadata overhead about 1.5%.
    EXPECT_NEAR(report.cacheMetadataLatencyOverhead(), 0.015, 0.005);
}

TEST(AuditorCostTest, BiggerCacheCostsMore)
{
    AuditorCostConfig small;
    AuditorCostConfig big;
    big.cacheBlocks = 4 * small.cacheBlocks;
    auto rs = estimateAuditorCost(small);
    auto rb = estimateAuditorCost(big);
    EXPECT_GT(rb.conflictMissDetector.areaMm2,
              3.0 * rs.conflictMissDetector.areaMm2);
    EXPECT_DOUBLE_EQ(rb.histogramBuffers.areaMm2,
                     rs.histogramBuffers.areaMm2);
}

TEST(AuditorCostTest, TotalSumsComponents)
{
    auto r = estimateAuditorCost();
    EXPECT_NEAR(r.total().areaMm2,
                r.histogramBuffers.areaMm2 + r.registers.areaMm2 +
                    r.conflictMissDetector.areaMm2,
                1e-12);
}

TEST(AuditorCostTest, InvalidConfigThrows)
{
    AuditorCostConfig cfg;
    cfg.cacheBlocks = 0;
    EXPECT_ANY_THROW(estimateAuditorCost(cfg));
}

} // namespace
} // namespace cchunter
