#include <gtest/gtest.h>

#include "scenario/experiment.hh"

namespace cchunter
{
namespace
{

/** Small quanta keep integration tests fast while still giving the
 *  correlogram a few hundred oscillation periods per bit. */
ScenarioOptions
tlbOptions()
{
    ScenarioOptions opts;
    opts.quantum = 2500000; // 1 ms
    opts.quanta = 12;
    opts.bandwidthBps = 1000.0; // one bit per quantum
    opts.noiseProcesses = 3;
    return opts;
}

TEST(TlbScenarioTest, DetectsOscillationAndDecodes)
{
    const auto r = runTlbScenario(tlbOptions());
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_FALSE(r.records.empty());
    EXPECT_FALSE(r.spyRatios.empty());
    EXPECT_GT(r.tlbConflicts, 0u);
    EXPECT_LT(r.bitErrorRate, 0.2);
    // No protocol: the wire is the payload and both error rates agree.
    EXPECT_EQ(r.wire.toString(), r.sent.toString());
    EXPECT_DOUBLE_EQ(r.payloadBitErrorRate, r.bitErrorRate);
    EXPECT_EQ(r.protocolStats.frames, 0u);
}

TEST(TlbScenarioTest, ProtocolCodingRecoversThePayload)
{
    ScenarioOptions opts = tlbOptions();
    opts.protocol.enabled = true;
    // One byte of payload codes to a single 96-bit wire burst; at ten
    // bits per quantum the run covers the whole burst with room to
    // spare, so the receiver's link layer can resynchronize and vote.
    opts.message = Message::fromBits(
        {true, false, true, true, false, false, true, false});
    opts.bandwidthBps = 10000.0;
    const auto r = runTlbScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
    // The wire burst is longer than the payload (preamble + repeats +
    // parity + gap) and the spy decodes it back through the protocol.
    EXPECT_EQ(r.wire.size(), opts.protocol.burstBits());
    EXPECT_GT(r.wire.size(), r.sent.size());
    EXPECT_GT(r.protocolStats.frames, 0u);
    EXPECT_LE(r.payloadBitErrorRate, r.bitErrorRate);
    EXPECT_LT(r.payloadBitErrorRate, 0.05);
}

TEST(TlbScenarioTest, DeterministicForSeed)
{
    ScenarioOptions opts = tlbOptions();
    opts.quanta = 6;
    const auto a = runTlbScenario(opts);
    const auto b = runTlbScenario(opts);
    EXPECT_EQ(a.decoded.toString(), b.decoded.toString());
    EXPECT_EQ(a.labelSeries, b.labelSeries);
    EXPECT_EQ(a.tlbConflicts, b.tlbConflicts);
}

TEST(TlbOnlineAuditTest, TlbWorkloadJudgedByOscillationPath)
{
    OnlineAuditOptions options;
    options.workload = AuditedWorkload::Tlb;
    options.scenario = tlbOptions();
    const OnlineAuditResult r = runOnlineAudit(options);
    ASSERT_EQ(r.finalVerdicts.size(), 1u);
    const UnitOutcome& outcome = r.finalVerdicts[0];
    EXPECT_EQ(outcome.unit, MonitorTarget::Tlb);
    EXPECT_EQ(outcome.kind, AlarmKind::Oscillation);
    EXPECT_TRUE(outcome.detected);
    EXPECT_GT(r.quantaRecorded, 0u);
}

TEST(TlbOnlineAuditTest, BenignPairUnderTlbAuditStaysQuiet)
{
    OnlineAuditOptions options;
    options.workload = AuditedWorkload::BenignPair;
    options.benignUnits = BenignAuditUnits::TlbBus;
    options.scenario = tlbOptions();
    options.scenario.quanta = 8;
    const OnlineAuditResult r = runOnlineAudit(options);
    ASSERT_EQ(r.finalVerdicts.size(), 2u);
    EXPECT_EQ(r.finalVerdicts[0].unit, MonitorTarget::Tlb);
    EXPECT_EQ(r.finalVerdicts[1].unit, MonitorTarget::MemoryBus);
    for (const UnitOutcome& outcome : r.finalVerdicts)
        EXPECT_FALSE(outcome.detected)
            << monitorTargetName(outcome.unit);
    EXPECT_TRUE(r.alarms.empty());
}

TEST(TlbScenarioConfigTest, EchoesTlbAndProtocolKeys)
{
    ScenarioOptions opts = tlbOptions();
    const Config plain = scenarioConfig(opts);
    // The TLB-geometry key is part of every run's reproducibility
    // record; the protocol keys appear only when the adversary is on,
    // keeping older runs' config dumps byte-identical.
    EXPECT_EQ(plain.getUint("tlb_sets"), opts.tlbChannelSets);
    EXPECT_FALSE(plain.has("protocol.enabled"));

    opts.protocol.enabled = true;
    const Config coded = scenarioConfig(opts);
    EXPECT_TRUE(coded.getBool("protocol.enabled"));
    EXPECT_EQ(coded.getUint("protocol.frame_nibbles"),
              opts.protocol.frameNibbles);
    EXPECT_EQ(coded.getUint("protocol.repeats"),
              opts.protocol.repeats);
    EXPECT_EQ(coded.getUint("protocol.ack_gap_bits"),
              opts.protocol.ackGapBits);
}

} // namespace
} // namespace cchunter
