#include <gtest/gtest.h>

#include "scenario/experiment.hh"

namespace cchunter
{
namespace
{

/** Small quanta keep integration tests fast while preserving the
 *  delta-t window structure. */
ScenarioOptions
fastOptions()
{
    ScenarioOptions opts;
    opts.quantum = 2500000; // 1 ms
    opts.quanta = 8;
    opts.bandwidthBps = 10000.0;
    opts.noiseProcesses = 3;
    return opts;
}

TEST(ExpectedBitsTest, CyclicExpansion)
{
    Message m = Message::fromBits({true, false});
    Message e = expectedBits(m, 5);
    EXPECT_EQ(e.toString(), "10101");
}

TEST(SlotBitErrorRateTest, CountsMismatchedSlots)
{
    Message m = Message::fromBits({true, false});
    std::vector<std::pair<std::size_t, bool>> decoded{
        {0, true}, {1, false}, {2, false}, {3, false}};
    // Slot 2 should be '1' (cyclic): one error in four.
    EXPECT_DOUBLE_EQ(slotBitErrorRate(m, decoded), 0.25);
    EXPECT_DOUBLE_EQ(slotBitErrorRate(m, {}), 1.0);
}

TEST(ScenarioOptionsTest, SignalCapDefaults)
{
    ScenarioOptions opts;
    EXPECT_EQ(opts.effectiveSignalTicks(), 25000000u);
    opts.maxSignalTicks = 123;
    EXPECT_EQ(opts.effectiveSignalTicks(), 123u);
}

TEST(BusScenarioTest, DetectsAndDecodes)
{
    auto r = runBusScenario(fastOptions());
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GT(r.verdict.recurrence.maxLikelihoodRatio, 0.9);
    EXPECT_LT(r.bitErrorRate, 0.05);
    EXPECT_GT(r.lockEvents, 100u);
    EXPECT_EQ(r.quantaHistograms.size(), 8u);
    EXPECT_FALSE(r.spySamples.empty());
}

TEST(BusScenarioTest, BurstPeakNearTwentyLocksPerWindow)
{
    auto r = runBusScenario(fastOptions());
    // Locks are paced every 5000 cycles; delta-t = 100k -> bursts of
    // ~20 (paper figure 6a).
    EXPECT_NEAR(static_cast<double>(r.verdict.combined.burstPeakBin),
                20.0, 3.0);
}

TEST(DividerScenarioTest, DetectsAndDecodes)
{
    auto r = runDividerScenario(fastOptions());
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GT(r.verdict.recurrence.maxLikelihoodRatio, 0.9);
    EXPECT_LT(r.bitErrorRate, 0.05);
    EXPECT_GT(r.conflictEvents, 1000u);
    // Burst cluster near 96 wait-conflicts per 500-cycle window
    // (paper figure 6b: bins 84-105).
    EXPECT_GE(r.verdict.combined.burstPeakBin, 84u);
    EXPECT_LE(r.verdict.combined.burstPeakBin, 105u);
}

TEST(CacheScenarioTest, DetectsOscillationNearSetCount)
{
    ScenarioOptions opts = fastOptions();
    opts.bandwidthBps = 1000.0; // one bit per ms quantum
    opts.quanta = 16;
    opts.channelSets = 512;
    auto r = runCacheScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
    // Dominant lag tracks the set count, slightly inflated by noise
    // (paper: 533 for 512 sets).
    EXPECT_GE(r.verdict.analysis.dominantLag, 500u);
    EXPECT_LE(r.verdict.analysis.dominantLag, 600u);
    EXPECT_LT(r.bitErrorRate, 0.2);
    EXPECT_FALSE(r.records.empty());
}

TEST(CacheScenarioTest, FewerSetsShorterPeriod)
{
    ScenarioOptions opts = fastOptions();
    opts.bandwidthBps = 1000.0;
    opts.quanta = 12;
    opts.channelSets = 128;
    auto r = runCacheScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GE(r.verdict.analysis.dominantLag, 120u);
    EXPECT_LE(r.verdict.analysis.dominantLag, 180u);
}

TEST(MultiplierScenarioTest, DetectsAndDecodes)
{
    auto r = runMultiplierScenario(fastOptions());
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GT(r.verdict.recurrence.maxLikelihoodRatio, 0.9);
    EXPECT_LT(r.bitErrorRate, 0.05);
    EXPECT_GT(r.conflictEvents, 1000u);
}

TEST(BusScenarioTest, EvasionKeepsDetectionKillsChannel)
{
    ScenarioOptions opts = fastOptions();
    opts.bandwidthBps = 1000.0;
    opts.quanta = 6;
    // Decoys at the signalling rate: every window looks contended.
    opts.busEvasionPeriod = 5000;
    auto r = runBusScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
    // The spy can no longer tell '1' slots from decoyed '0' slots.
    EXPECT_GT(r.bitErrorRate, 0.2);
}

TEST(BenignScenarioTest, NoFalseAlarms)
{
    ScenarioOptions opts = fastOptions();
    opts.quanta = 4;
    for (const char* name : {"gobmk", "mailserver"}) {
        auto r = runBenignPair(name, name, opts);
        EXPECT_FALSE(r.busVerdict.detected) << name;
        EXPECT_FALSE(r.dividerVerdict.detected) << name;
        EXPECT_FALSE(r.cacheVerdict.detected) << name;
    }
}

TEST(CacheScenarioTest, IdealTrackerAlsoDetects)
{
    ScenarioOptions opts = fastOptions();
    opts.bandwidthBps = 1000.0;
    opts.quanta = 12;
    opts.channelSets = 128;
    opts.idealTracker = true;
    auto r = runCacheScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GT(r.trackedConflicts, 0u);
}

TEST(CacheScenarioTest, StarvedBloomStillDetects)
{
    ScenarioOptions opts = fastOptions();
    opts.bandwidthBps = 1000.0;
    opts.quanta = 12;
    opts.channelSets = 128;
    opts.trackerParams.bloomBitsPerGeneration = 256; // N/16
    auto r = runCacheScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
}

TEST(ScenarioTest, DeterministicForSeed)
{
    ScenarioOptions opts = fastOptions();
    opts.quanta = 3;
    auto a = runBusScenario(opts);
    auto b = runBusScenario(opts);
    EXPECT_EQ(a.lockEvents, b.lockEvents);
    EXPECT_EQ(a.decoded.toString(), b.decoded.toString());
    EXPECT_DOUBLE_EQ(a.verdict.combined.likelihoodRatio,
                     b.verdict.combined.likelihoodRatio);
}

TEST(ScenarioTest, MessagePropagates)
{
    ScenarioOptions opts = fastOptions();
    opts.quanta = 3;
    opts.message = Message::fromBits({true, true, false, true});
    auto r = runBusScenario(opts);
    EXPECT_EQ(r.sent.toString(), "1101");
}

TEST(ScenarioTest, PipelineStatsPopulated)
{
    ScenarioOptions opts = fastOptions();
    opts.quanta = 3;
    auto r = runBusScenario(opts);
    // One monitored slot, three quanta drained, nothing evicted (the
    // run is far below the 512-quantum retention default).
    EXPECT_EQ(r.pipeline.drainedHistograms, 3u);
    EXPECT_EQ(r.pipeline.evictedQuanta, 0u);
    EXPECT_FALSE(r.pipeline.summary().empty());
}

TEST(ScenarioTest, ScenarioConfigEchoesEffectiveOptions)
{
    ScenarioOptions opts = fastOptions();
    const Config cfg = scenarioConfig(opts);
    EXPECT_EQ(cfg.getUint("quanta"), opts.quanta);
    EXPECT_EQ(cfg.getUint("quantum"), opts.quantum);
    EXPECT_DOUBLE_EQ(cfg.getDouble("bandwidth"), opts.bandwidthBps);
    EXPECT_EQ(cfg.getUint("sets"), opts.channelSets);
    EXPECT_FALSE(cfg.getBool("ideal_tracker"));
    // The dump is the reproducibility record: every key must appear.
    const std::string dumped = cfg.dump();
    for (const auto& key : cfg.keys())
        EXPECT_NE(dumped.find(key + "="), std::string::npos);
}

} // namespace
} // namespace cchunter
