/**
 * @file
 * Fault-matrix scenario tests: the canned trojan/spy scenarios driven
 * through seeded fault plans.  Detection must survive moderate fault
 * rates with honestly degraded confidence, fault-free plans must leave
 * scenario results bit-identical to pre-fault-injection runs, and any
 * seeded plan must reproduce exactly.
 */

#include <gtest/gtest.h>

#include "scenario/experiment.hh"

namespace cchunter
{
namespace
{

ScenarioOptions
fastOptions()
{
    ScenarioOptions opts;
    opts.bandwidthBps = 10000.0;
    opts.quanta = 8;
    opts.quantum = 2500000;
    opts.seed = 1;
    opts.noiseProcesses = 0;
    return opts;
}

TEST(FaultMatrixTest, CleanPlanLeavesDividerRunUntouched)
{
    const ScenarioOptions clean = fastOptions();
    ScenarioOptions with_plan = fastOptions();
    with_plan.faults = FaultPlan{}; // explicit all-zero plan

    const DividerScenarioResult a = runDividerScenario(clean);
    const DividerScenarioResult b = runDividerScenario(with_plan);

    EXPECT_EQ(a.verdict.summary(), b.verdict.summary());
    EXPECT_EQ(a.decoded.toString(), b.decoded.toString());
    EXPECT_DOUBLE_EQ(a.bitErrorRate, b.bitErrorRate);
    EXPECT_EQ(a.conflictEvents, b.conflictEvents);
    EXPECT_EQ(a.degraded.totalFaults(), 0u);
    EXPECT_EQ(b.degraded.totalFaults(), 0u);
    EXPECT_DOUBLE_EQ(a.confidence, 1.0);
    EXPECT_DOUBLE_EQ(b.confidence, 1.0);
    // Clean config dumps carry no faults.* keys.
    EXPECT_EQ(scenarioConfig(clean).dump(),
              scenarioConfig(with_plan).dump());
}

TEST(FaultMatrixTest, DividerDetectsAtTenPercentLoss)
{
    // The acceptance bar: <= 10% injected quantum loss keeps the
    // likelihood-ratio decision (>= 0.9) while confidence degrades.
    ScenarioOptions opts = fastOptions();
    opts.quanta = 16;
    opts.faults.seed = 4;
    opts.faults.dropQuantumRate = 0.10;

    const DividerScenarioResult r = runDividerScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GE(r.verdict.combined.likelihoodRatio, 0.9);
    if (r.degraded.missedQuanta > 0) {
        EXPECT_LT(r.degraded.windowCoverage, 1.0);
        EXPECT_LT(r.confidence, 1.0);
    }
    EXPECT_GT(r.confidence, 0.0);
}

TEST(FaultMatrixTest, SeededScenarioRunsAreDeterministic)
{
    ScenarioOptions opts = fastOptions();
    opts.faults.seed = 23;
    opts.faults.dropQuantumRate = 0.15;
    opts.faults.duplicateQuantumRate = 0.05;
    opts.faults.saturatePaperWidths = true;

    const DividerScenarioResult a = runDividerScenario(opts);
    const DividerScenarioResult b = runDividerScenario(opts);

    EXPECT_EQ(a.verdict.summary(), b.verdict.summary());
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.degraded.missedQuanta, b.degraded.missedQuanta);
    EXPECT_EQ(a.degraded.duplicatedQuanta, b.degraded.duplicatedQuanta);
    EXPECT_EQ(a.degraded.saturatedBinEvents,
              b.degraded.saturatedBinEvents);
    EXPECT_EQ(a.degraded.accumulatorSaturations,
              b.degraded.accumulatorSaturations);
    // The faults echo into the reproducibility config dump.
    const std::string dump = scenarioConfig(opts).dump();
    EXPECT_NE(dump.find("faults.drop_quantum"), std::string::npos);
    EXPECT_NE(dump.find("faults.saturate"), std::string::npos);
}

TEST(FaultMatrixTest, CacheScenarioDegradesGracefully)
{
    ScenarioOptions opts = fastOptions();
    opts.bandwidthBps = 1000.0;
    opts.quanta = 6;
    opts.channelSets = 256;
    opts.faults.seed = 6;
    opts.faults.truncateBatchRate = 0.1;
    opts.faults.bloomAliasRate = 0.001;

    const CacheScenarioResult r = runCacheScenario(opts);
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GT(r.degraded.totalFaults(), 0u);
    EXPECT_LT(r.confidence, 1.0);
    EXPECT_GT(r.confidence, 0.0);
}

TEST(FaultMatrixTest, BenignPairStaysQuietUnderFaults)
{
    // Fault injection must not conjure channels out of benign noise:
    // dropped quanta and saturated entries degrade confidence, not
    // discrimination.
    ScenarioOptions opts;
    opts.quanta = 4;
    opts.quantum = 2500000;
    opts.seed = 2;
    opts.faults.seed = 12;
    opts.faults.dropQuantumRate = 0.1;
    opts.faults.saturatePaperWidths = true;

    const BenignScenarioResult r =
        runBenignPair("gobmk", "sjeng", opts);
    EXPECT_FALSE(r.busVerdict.detected);
    EXPECT_FALSE(r.dividerVerdict.detected);
    EXPECT_FALSE(r.cacheVerdict.detected);
    EXPECT_LE(r.confidence, 1.0);
    EXPECT_GT(r.confidence, 0.0);
}

} // namespace
} // namespace cchunter
