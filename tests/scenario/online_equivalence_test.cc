/**
 * @file
 * Equivalence tests for the analysis fast paths of a live-audited run.
 *
 * Two independent optimisations must never change what a run reports:
 *
 *  - the incremental sliding-window autocorrelation maintainer (config
 *    key `analysis.incrementalAutocorr`, with the full-recompute
 *    debug flag as the reference), and
 *  - deferred end-of-run oscillation verdicts resolved through the
 *    batched FFT pass (finalizeDeferredOscillations), versus the
 *    inline per-run transforms.
 *
 * The alarm stream is compared field by field and the final verdicts
 * by decision and analysis content.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "scenario/experiment.hh"

namespace cchunter
{
namespace
{

OnlineAuditOptions
cacheAudit(std::uint64_t seed)
{
    OnlineAuditOptions options;
    options.workload = AuditedWorkload::Cache;
    options.scenario.bandwidthBps = 1000.0;
    options.scenario.quanta = 8;
    options.scenario.quantum = 2500000;
    options.scenario.seed = seed;
    options.scenario.noiseProcesses = 0;
    options.online.clusteringIntervalQuanta = 4;
    return options;
}

void
expectSameAlarms(const OnlineAuditResult& a, const OnlineAuditResult& b)
{
    ASSERT_EQ(a.alarms.size(), b.alarms.size());
    for (std::size_t i = 0; i < a.alarms.size(); ++i) {
        EXPECT_EQ(a.alarms[i].quantum, b.alarms[i].quantum) << i;
        EXPECT_EQ(a.alarms[i].slot, b.alarms[i].slot) << i;
        EXPECT_EQ(a.alarms[i].unit, b.alarms[i].unit) << i;
        EXPECT_EQ(a.alarms[i].kind, b.alarms[i].kind) << i;
        EXPECT_EQ(a.alarms[i].dominantFeature,
                  b.alarms[i].dominantFeature)
            << i;
        EXPECT_EQ(a.alarms[i].confidence, b.alarms[i].confidence) << i;
    }
}

TEST(IncrementalOnlineTest, AlarmsIdenticalToFullRecompute)
{
    for (const std::uint64_t seed : {2ull, 5ull, 9ull}) {
        OnlineAuditOptions incremental = cacheAudit(seed);
        incremental.online.incrementalAutocorr = true;

        OnlineAuditOptions recompute = cacheAudit(seed);
        recompute.online.incrementalAutocorr = true;
        recompute.online.debugRecomputeAutocorr = true;

        OnlineAuditOptions disabled = cacheAudit(seed);
        disabled.online.incrementalAutocorr = false;

        const OnlineAuditResult fast = runOnlineAudit(incremental);
        const OnlineAuditResult reference = runOnlineAudit(recompute);
        const OnlineAuditResult off = runOnlineAudit(disabled);

        expectSameAlarms(fast, reference);
        expectSameAlarms(fast, off);
        EXPECT_EQ(fast.quantaRecorded, reference.quantaRecorded);

        ASSERT_EQ(fast.finalVerdicts.size(),
                  reference.finalVerdicts.size());
        for (std::size_t i = 0; i < fast.finalVerdicts.size(); ++i) {
            const UnitOutcome& f = fast.finalVerdicts[i];
            const UnitOutcome& r = reference.finalVerdicts[i];
            EXPECT_EQ(f.detected, r.detected) << "unit " << i;
            EXPECT_EQ(f.kind, r.kind) << "unit " << i;
            EXPECT_EQ(f.confidence, r.confidence) << "unit " << i;
        }
    }
}

TEST(IncrementalOnlineTest, CorrelogramAgreesWithinTolerance)
{
    // The per-quantum verdicts behind the alarms must carry the same
    // oscillation analysis: incremental sums drift from the direct
    // evaluation by no more than 1e-9 per coefficient.
    OnlineAuditOptions incremental = cacheAudit(3);
    OnlineAuditOptions recompute = cacheAudit(3);
    recompute.online.debugRecomputeAutocorr = true;

    const OnlineAuditResult fast = runOnlineAudit(incremental);
    const OnlineAuditResult reference = runOnlineAudit(recompute);

    ASSERT_EQ(fast.finalVerdicts.size(),
              reference.finalVerdicts.size());
    for (std::size_t i = 0; i < fast.finalVerdicts.size(); ++i) {
        const auto& f = fast.finalVerdicts[i].oscillation.analysis;
        const auto& r =
            reference.finalVerdicts[i].oscillation.analysis;
        ASSERT_EQ(f.correlogram.size(), r.correlogram.size());
        for (std::size_t lag = 0; lag < f.correlogram.size(); ++lag)
            EXPECT_NEAR(f.correlogram[lag], r.correlogram[lag], 1e-9)
                << "unit " << i << " lag " << lag;
    }
}

TEST(DeferredOscillationTest, BatchedFinalizeMatchesInlineVerdicts)
{
    for (const std::uint64_t seed : {2ull, 7ull}) {
        // The inline reference disables the incremental maintainer so
        // its end-of-run verdicts come from the same full transform
        // the deferred pass performs — those must then be
        // bit-identical.  (Incremental-vs-full agreement is pinned
        // separately, with a tolerance, by IncrementalOnlineTest.)
        OnlineAuditOptions inlineOptions = cacheAudit(seed);
        inlineOptions.online.incrementalAutocorr = false;
        const OnlineAuditResult inlineRun =
            runOnlineAudit(inlineOptions);

        OnlineAuditOptions deferredOptions = cacheAudit(seed);
        deferredOptions.deferOscillationVerdicts = true;
        OnlineAuditResult deferredRun = runOnlineAudit(deferredOptions);

        expectSameAlarms(inlineRun, deferredRun);

        std::vector<UnitOutcome*> pending;
        for (UnitOutcome& unit : deferredRun.finalVerdicts)
            if (unit.deferredOscillation)
                pending.push_back(&unit);
        finalizeDeferredOscillations(pending);

        ASSERT_EQ(deferredRun.finalVerdicts.size(),
                  inlineRun.finalVerdicts.size());
        for (std::size_t i = 0; i < inlineRun.finalVerdicts.size();
             ++i) {
            const UnitOutcome& d = deferredRun.finalVerdicts[i];
            const UnitOutcome& r = inlineRun.finalVerdicts[i];
            EXPECT_FALSE(d.deferredOscillation) << "unit " << i;
            EXPECT_TRUE(d.pendingSeries.empty()) << "unit " << i;
            EXPECT_EQ(d.detected, r.detected) << "unit " << i;
            EXPECT_EQ(d.kind, r.kind) << "unit " << i;
            if (d.kind != AlarmKind::Oscillation)
                continue;
            // Same dispatch, shared plan: bit-identical analysis.
            EXPECT_EQ(d.oscillation.detected, r.oscillation.detected);
            EXPECT_EQ(d.oscillation.analysis.correlogram,
                      r.oscillation.analysis.correlogram)
                << "unit " << i;
            EXPECT_EQ(d.oscillation.analysis.dominantLag,
                      r.oscillation.analysis.dominantLag);
            EXPECT_EQ(d.oscillation.analysis.dominantValue,
                      r.oscillation.analysis.dominantValue);
        }
    }
}

TEST(DeferredOscillationTest, FinalizeOnEmptyPendingIsANoop)
{
    std::vector<UnitOutcome*> none;
    EXPECT_EQ(finalizeDeferredOscillations(none), 0u);
}

} // namespace
} // namespace cchunter
