/**
 * @file
 * Unit tests for the deterministic fault-injection layer: plan
 * validation and config round-trips, per-fault stream independence,
 * mutation bookkeeping, and exact run-to-run reproducibility.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "faults/fault_injector.hh"
#include "faults/fault_plan.hh"
#include "util/config.hh"

namespace cchunter
{
namespace
{

TEST(FaultPlanTest, DefaultPlanIsDisabled)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    plan.validate(); // all-zero plan is valid
}

TEST(FaultPlanTest, AnyNonZeroRateEnables)
{
    FaultPlan plan;
    plan.dropQuantumRate = 0.1;
    EXPECT_TRUE(plan.enabled());

    FaultPlan sat;
    sat.saturatePaperWidths = true;
    EXPECT_TRUE(sat.enabled());
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeRates)
{
    FaultPlan plan;
    plan.dropQuantumRate = 1.5;
    EXPECT_ANY_THROW(plan.validate());
    plan.dropQuantumRate = -0.1;
    EXPECT_ANY_THROW(plan.validate());
}

TEST(FaultPlanTest, ConfigRoundTrip)
{
    FaultPlan plan;
    plan.seed = 99;
    plan.dropQuantumRate = 0.125;
    plan.duplicateQuantumRate = 0.25;
    plan.truncateBatchRate = 0.0625;
    plan.reorderBatchRate = 0.5;
    plan.corruptContextRate = 0.03125;
    plan.bloomAliasRate = 0.015625;
    plan.corruptBatchRate = 0.75;
    plan.saturatePaperWidths = true;

    Config cfg;
    plan.toConfig(cfg);
    const FaultPlan back = FaultPlan::fromConfig(cfg);
    EXPECT_EQ(back.seed, plan.seed);
    EXPECT_DOUBLE_EQ(back.dropQuantumRate, plan.dropQuantumRate);
    EXPECT_DOUBLE_EQ(back.duplicateQuantumRate,
                     plan.duplicateQuantumRate);
    EXPECT_DOUBLE_EQ(back.truncateBatchRate, plan.truncateBatchRate);
    EXPECT_DOUBLE_EQ(back.reorderBatchRate, plan.reorderBatchRate);
    EXPECT_DOUBLE_EQ(back.corruptContextRate, plan.corruptContextRate);
    EXPECT_DOUBLE_EQ(back.bloomAliasRate, plan.bloomAliasRate);
    EXPECT_DOUBLE_EQ(back.corruptBatchRate, plan.corruptBatchRate);
    EXPECT_EQ(back.saturatePaperWidths, plan.saturatePaperWidths);
    EXPECT_FALSE(plan.summary().empty());
}

TEST(FaultInjectorTest, ZeroRatesNeverFire)
{
    FaultInjector inj{FaultPlan{}};
    std::vector<ConflictMissEvent> events(16);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(inj.dropQuantum());
        EXPECT_FALSE(inj.duplicateQuantum());
        EXPECT_FALSE(inj.aliasBloom());
        EXPECT_EQ(inj.nextBatchCorruption(),
                  FaultInjector::BatchCorruption::None);
        EXPECT_FALSE(inj.mutateConflictBatch(events).any());
    }
    EXPECT_EQ(inj.stats().total(), 0u);
}

TEST(FaultInjectorTest, DropRateConvergesAndCounts)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.dropQuantumRate = 0.3;
    FaultInjector inj(plan);
    std::uint64_t fired = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        fired += inj.dropQuantum();
    const double rate = static_cast<double>(fired) / kDraws;
    EXPECT_NEAR(rate, 0.3, 0.02);
    EXPECT_EQ(inj.stats().droppedQuanta, fired);
}

TEST(FaultInjectorTest, SameSeedSameSchedule)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.dropQuantumRate = 0.2;
    plan.duplicateQuantumRate = 0.1;
    plan.bloomAliasRate = 0.05;
    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(a.dropQuantum(), b.dropQuantum());
        EXPECT_EQ(a.duplicateQuantum(), b.duplicateQuantum());
        EXPECT_EQ(a.aliasBloom(), b.aliasBloom());
    }
}

TEST(FaultInjectorTest, FaultStreamsAreIndependent)
{
    // Turning one fault on must not shift another fault's schedule:
    // the drop decisions with and without duplication enabled are
    // identical draw-for-draw.
    FaultPlan only_drop;
    only_drop.seed = 11;
    only_drop.dropQuantumRate = 0.25;

    FaultPlan both = only_drop;
    both.duplicateQuantumRate = 0.4;

    FaultInjector a(only_drop), b(both);
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(a.dropQuantum(), b.dropQuantum());
        b.duplicateQuantum(); // extra draws on b's dup stream
    }
}

TEST(FaultInjectorTest, TruncationShortensAndCounts)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.truncateBatchRate = 1.0;
    FaultInjector inj(plan);

    std::vector<ConflictMissEvent> events(10);
    for (std::size_t i = 0; i < events.size(); ++i)
        events[i].time = i;
    const ConflictBatchMutation m = inj.mutateConflictBatch(events);
    EXPECT_TRUE(m.truncated);
    EXPECT_LT(events.size(), 10u);
    EXPECT_EQ(m.truncatedEvents, 10u - events.size());
    // Truncation keeps a prefix: surviving events stay in time order.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].time, i);
    EXPECT_EQ(inj.stats().truncatedBatches, 1u);
    EXPECT_EQ(inj.stats().truncatedEvents, m.truncatedEvents);
}

TEST(FaultInjectorTest, ContextCorruptionStaysInHardwareIdSpace)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.corruptContextRate = 1.0;
    FaultInjector inj(plan);

    std::vector<ConflictMissEvent> events(64);
    for (auto& e : events) {
        e.replacer = 0;
        e.victim = 1;
    }
    const ConflictBatchMutation m = inj.mutateConflictBatch(events);
    EXPECT_GT(m.corruptedContexts, 0u);
    // Corrupted IDs are drawn from the 3-bit hardware context space.
    for (const auto& e : events) {
        EXPECT_LT(e.replacer, ContextId{8});
        EXPECT_LT(e.victim, ContextId{8});
    }
    EXPECT_EQ(inj.stats().corruptedContexts, m.corruptedContexts);
}

TEST(FaultInjectorTest, ReorderShufflesInPlace)
{
    FaultPlan plan;
    plan.seed = 9;
    plan.reorderBatchRate = 1.0;
    FaultInjector inj(plan);

    std::vector<ConflictMissEvent> events(32);
    for (std::size_t i = 0; i < events.size(); ++i)
        events[i].time = i;
    const ConflictBatchMutation m = inj.mutateConflictBatch(events);
    EXPECT_TRUE(m.reordered);
    EXPECT_EQ(events.size(), 32u); // nothing lost, only shuffled
    bool out_of_order = false;
    for (std::size_t i = 1; i < events.size(); ++i)
        out_of_order |= events[i].time < events[i - 1].time;
    EXPECT_TRUE(out_of_order);
    EXPECT_EQ(inj.stats().reorderedBatches, 1u);
}

TEST(FaultInjectorTest, BatchCorruptionDrawVsRecordSplit)
{
    // nextBatchCorruption only draws; the applied count must track
    // recordBatchCorruption so injector stats reconcile with the
    // daemon's quarantine ledger.
    FaultPlan plan;
    plan.seed = 13;
    plan.corruptBatchRate = 1.0;
    FaultInjector inj(plan);
    EXPECT_NE(inj.nextBatchCorruption(),
              FaultInjector::BatchCorruption::None);
    EXPECT_EQ(inj.stats().corruptedBatches, 0u);
    inj.recordBatchCorruption();
    EXPECT_EQ(inj.stats().corruptedBatches, 1u);
    EXPECT_FALSE(inj.stats().summary().empty());
}

TEST(FaultInjectorTest, SnapshotMutationIsDeterministicPerSeed)
{
    FaultPlan plan;
    plan.seed = 77;
    plan.snapshotBitFlipRate = 1.0;
    plan.snapshotTruncateRate = 1.0;
    plan.snapshotMagicClobberRate = 1.0;

    std::vector<std::uint8_t> a(256, 0xAA);
    std::vector<std::uint8_t> b(256, 0xAA);
    FaultInjector first(plan);
    FaultInjector second(plan);
    const SnapshotMutation ma = first.mutateSnapshotBytes(a);
    const SnapshotMutation mb = second.mutateSnapshotBytes(b);
    EXPECT_TRUE(ma.any());
    EXPECT_EQ(ma.bitsFlipped, mb.bitsFlipped);
    EXPECT_EQ(ma.bytesTorn, mb.bytesTorn);
    EXPECT_EQ(a, b); // byte-identical damage for identical plans
    EXPECT_EQ(first.stats().snapshotBitFlips, 1u);
    EXPECT_EQ(first.stats().snapshotTruncations, 1u);
    EXPECT_EQ(first.stats().snapshotBytesTorn, ma.bytesTorn);
}

TEST(FaultInjectorTest, SnapshotStreamsAreIndependent)
{
    // Disabling the truncate fault must not move the bit-flip
    // schedule: each snapshot fault draws from its own salted stream.
    FaultPlan flipOnly;
    flipOnly.seed = 99;
    flipOnly.snapshotBitFlipRate = 1.0;
    FaultPlan flipAndTear = flipOnly;
    flipAndTear.snapshotTruncateRate = 1.0;

    std::vector<std::uint8_t> a(128, 0x55);
    std::vector<std::uint8_t> b(128, 0x55);
    FaultInjector injA(flipOnly);
    FaultInjector injB(flipAndTear);
    injA.mutateSnapshotBytes(a);
    const SnapshotMutation mb = injB.mutateSnapshotBytes(b);
    ASSERT_TRUE(mb.truncated);
    // The flip landed at the same offset in both runs: the torn copy
    // is a strict prefix of the flip-only copy.
    ASSERT_LT(b.size(), a.size());
    EXPECT_TRUE(std::equal(b.begin(), b.end(), a.begin()));
}

TEST(FaultInjectorTest, SnapshotMutationLeavesEmptyImagesAlone)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.snapshotBitFlipRate = 1.0;
    plan.snapshotTruncateRate = 1.0;
    plan.snapshotMagicClobberRate = 1.0;
    FaultInjector inj(plan);
    EXPECT_TRUE(inj.snapshotPathActive());
    std::vector<std::uint8_t> empty;
    const SnapshotMutation m = inj.mutateSnapshotBytes(empty);
    EXPECT_FALSE(m.any());
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(inj.stats().snapshotBitFlips, 0u);
}

} // namespace
} // namespace cchunter
