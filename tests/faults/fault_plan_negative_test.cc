/**
 * @file
 * Negative tests for `faults.*` configuration: every malformed or
 * out-of-range value must land in the documented error taxonomy — the
 * fatal() message names the offending key and value — rather than a
 * generic throw or a silently clamped plan.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "faults/fault_plan.hh"
#include "util/config.hh"

using namespace cchunter;

namespace
{

template <typename Fn>
std::string
fatalMessageOf(Fn&& fn)
{
    try {
        fn();
    } catch (const std::runtime_error& e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(FaultPlanNegativeTest, EveryRateKeyRejectsOutOfRangeValues)
{
    const char* keys[] = {
        "faults.drop_quantum",  "faults.dup_quantum",
        "faults.truncate_batch", "faults.reorder_batch",
        "faults.corrupt_context", "faults.bloom_alias",
        "faults.corrupt_batch",  "faults.snap_bit_flip",
        "faults.snap_truncate",  "faults.snap_clobber_magic",
    };
    for (const char* key : keys) {
        for (const double bad : {-0.01, 1.01, 7.0}) {
            Config cfg;
            cfg.set(key, bad);
            const std::string msg = fatalMessageOf(
                [&] { FaultPlan::fromConfig(cfg); });
            EXPECT_NE(msg.find("outside [0, 1]"), std::string::npos)
                << key << " = " << bad << " got: " << msg;
            // The message names the short key so the operator can
            // find the bad entry (the "faults." prefix is implied).
            const std::string shortName =
                std::string(key).substr(std::string("faults.").size());
            EXPECT_NE(msg.find(shortName), std::string::npos)
                << key << " got: " << msg;
        }
    }
}

TEST(FaultPlanNegativeTest, NonNumericRateIsATypeError)
{
    Config cfg;
    cfg.set("faults.drop_quantum", std::string("lots"));
    const std::string msg =
        fatalMessageOf([&] { FaultPlan::fromConfig(cfg); });
    EXPECT_NE(msg.find("is not a number"), std::string::npos) << msg;
    EXPECT_NE(msg.find("faults.drop_quantum"), std::string::npos)
        << msg;
}

TEST(FaultPlanNegativeTest, NonBooleanSaturateIsATypeError)
{
    Config cfg;
    cfg.set("faults.saturate", std::string("kinda"));
    const std::string msg =
        fatalMessageOf([&] { FaultPlan::fromConfig(cfg); });
    EXPECT_NE(msg.find("is not a boolean"), std::string::npos) << msg;
    EXPECT_NE(msg.find("faults.saturate"), std::string::npos) << msg;
}

TEST(FaultPlanNegativeTest, BoundaryRatesAreAccepted)
{
    // 0 and 1 are valid probabilities; the taxonomy must not
    // over-reject the closed interval's endpoints.
    Config cfg;
    cfg.set("faults.drop_quantum", 0.0);
    cfg.set("faults.corrupt_batch", 1.0);
    const FaultPlan plan = FaultPlan::fromConfig(cfg);
    EXPECT_EQ(plan.dropQuantumRate, 0.0);
    EXPECT_EQ(plan.corruptBatchRate, 1.0);
    EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanNegativeTest, RoundTripThroughConfigIsLossless)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.dropQuantumRate = 0.25;
    plan.bloomAliasRate = 0.125;
    plan.saturatePaperWidths = true;
    plan.snapshotBitFlipRate = 0.5;
    plan.snapshotTruncateRate = 0.0625;
    plan.snapshotMagicClobberRate = 0.03125;
    Config cfg;
    plan.toConfig(cfg);
    const FaultPlan back = FaultPlan::fromConfig(cfg);
    EXPECT_EQ(back.seed, 42u);
    EXPECT_EQ(back.dropQuantumRate, 0.25);
    EXPECT_EQ(back.bloomAliasRate, 0.125);
    EXPECT_TRUE(back.saturatePaperWidths);
    EXPECT_EQ(back.snapshotBitFlipRate, 0.5);
    EXPECT_EQ(back.snapshotTruncateRate, 0.0625);
    EXPECT_EQ(back.snapshotMagicClobberRate, 0.03125);
}

TEST(FaultPlanNegativeTest, SnapshotRatesAloneEnableThePlan)
{
    // A plan scheduling only persisted-bytes faults is still an
    // enabled plan — enabled() must see the snapshot knobs.
    FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    plan.snapshotBitFlipRate = 0.5;
    EXPECT_TRUE(plan.enabled());
    plan.snapshotBitFlipRate = 0.0;
    plan.snapshotMagicClobberRate = 1.0;
    EXPECT_TRUE(plan.enabled());
    EXPECT_NE(plan.summary().find("snap_clobber_magic"),
              std::string::npos);
}
