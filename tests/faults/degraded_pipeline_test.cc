/**
 * @file
 * Graceful-degradation tests: the audit daemon running under an
 * attached fault injector must quarantine every malformed batch,
 * account for every injected fault, keep detecting the channel at
 * moderate fault rates, and stay bit-identical to a clean run when the
 * injector is absent.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "channels/cache_channel.hh"
#include "channels/divider_channel.hh"
#include "faults/fault_injector.hh"
#include "sim/machine.hh"
#include "workloads/suites.hh"

namespace cchunter
{
namespace
{

MachineParams
smallMachine()
{
    MachineParams p;
    p.scheduler.quantum = 2500000;
    return p;
}

ChannelTiming
fastTiming()
{
    ChannelTiming t;
    t.start = 1000;
    t.bandwidthBps = 10000.0;
    return t;
}

/** Everything observable from one divider-channel audit run. */
struct RunOutcome
{
    std::vector<Alarm> alarms;
    PipelineStats pipeline;
    DegradedStats degraded;
    ContentionVerdict verdict;
    double confidence = 1.0;
};

RunOutcome
runDividerAudit(const std::optional<FaultPlan>& plan,
                std::size_t quanta = 8, bool async = false)
{
    Machine m(smallMachine());
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::random64(rng);
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = fastTiming();
    m.addProcess(std::make_unique<DividerSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    AuditDaemon daemon(m, auditor);

    std::optional<FaultInjector> injector;
    if (plan) {
        injector.emplace(*plan);
        daemon.attachFaultInjector(&*injector);
    }

    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    if (async) {
        params.asyncAnalysis = true;
        params.queueCapacity = 2;
        params.queueOverflow = OverflowPolicy::Block;
    }
    daemon.enableOnlineAnalysis(params);

    m.runQuanta(quanta);

    RunOutcome out;
    out.alarms = daemon.alarms();
    out.pipeline = daemon.pipelineStats();
    out.degraded = daemon.degradedStats();
    out.verdict = daemon.analyzeContention(0);
    out.confidence = daemon.contentionConfidence(0, out.verdict);
    return out;
}

void
expectIdenticalOutcomes(const RunOutcome& a, const RunOutcome& b)
{
    ASSERT_EQ(a.alarms.size(), b.alarms.size());
    for (std::size_t i = 0; i < a.alarms.size(); ++i) {
        EXPECT_EQ(a.alarms[i].slot, b.alarms[i].slot);
        EXPECT_EQ(a.alarms[i].when, b.alarms[i].when);
        EXPECT_EQ(a.alarms[i].quantum, b.alarms[i].quantum);
        EXPECT_EQ(a.alarms[i].summary, b.alarms[i].summary);
        EXPECT_DOUBLE_EQ(a.alarms[i].confidence,
                         b.alarms[i].confidence);
    }
    EXPECT_EQ(a.verdict.summary(), b.verdict.summary());
    EXPECT_DOUBLE_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.degraded.totalFaults(), b.degraded.totalFaults());
    EXPECT_EQ(a.degraded.quarantinedBatches,
              b.degraded.quarantinedBatches);
}

TEST(DegradedPipelineTest, NoInjectorMeansNoDegradation)
{
    const RunOutcome clean = runDividerAudit(std::nullopt);
    ASSERT_FALSE(clean.alarms.empty());
    EXPECT_EQ(clean.degraded.totalFaults(), 0u);
    EXPECT_EQ(clean.degraded.quarantinedBatches, 0u);
    EXPECT_DOUBLE_EQ(clean.degraded.windowCoverage, 1.0);
    EXPECT_DOUBLE_EQ(clean.confidence, 1.0);
    for (const Alarm& a : clean.alarms)
        EXPECT_DOUBLE_EQ(a.confidence, 1.0);
}

TEST(DegradedPipelineTest, DisabledPlanMatchesNoInjectorExactly)
{
    // Attaching an injector whose plan is all-zero must leave the run
    // bit-identical to one with no injector at all.
    const RunOutcome without = runDividerAudit(std::nullopt);
    const RunOutcome with_disabled = runDividerAudit(FaultPlan{});
    expectIdenticalOutcomes(without, with_disabled);
}

TEST(DegradedPipelineTest, SeededPlanIsDeterministic)
{
    FaultPlan plan;
    plan.seed = 21;
    plan.dropQuantumRate = 0.2;
    plan.duplicateQuantumRate = 0.1;
    plan.corruptBatchRate = 0.5;
    const RunOutcome a = runDividerAudit(plan);
    const RunOutcome b = runDividerAudit(plan);
    expectIdenticalOutcomes(a, b);
    EXPECT_EQ(a.degraded.missedQuanta, b.degraded.missedQuanta);
    EXPECT_EQ(a.degraded.duplicatedQuanta,
              b.degraded.duplicatedQuanta);
}

TEST(DegradedPipelineTest, DetectsThroughTenPercentQuantumLoss)
{
    // The ISSUE acceptance bar: at <= 10% injected quantum loss the
    // divider channel must still be detected with the paper's
    // likelihood-ratio decision (>= 0.9 observed for real channels)
    // while the alarms report degraded confidence.
    FaultPlan plan;
    plan.seed = 4;
    plan.dropQuantumRate = 0.10;
    const RunOutcome r = runDividerAudit(plan, /*quanta=*/16);

    ASSERT_FALSE(r.alarms.empty());
    EXPECT_TRUE(r.verdict.detected);
    EXPECT_GE(r.verdict.combined.likelihoodRatio, 0.9);
    if (r.degraded.missedQuanta > 0) {
        EXPECT_LT(r.degraded.windowCoverage, 1.0);
        EXPECT_LT(r.confidence, 1.0);
        EXPECT_GE(r.degraded.degradedAlarms, 1u);
        EXPECT_LT(r.degraded.minAlarmConfidence, 1.0);
    }
}

TEST(DegradedPipelineTest, QuarantineAccountsForEveryCorruptedBatch)
{
    // Every batch the injector corrupts must be caught by validation,
    // never reach an analyzer, and be accounted under exactly one
    // quarantine reason.
    FaultPlan plan;
    plan.seed = 17;
    plan.corruptBatchRate = 1.0;
    const RunOutcome r = runDividerAudit(plan);

    EXPECT_GT(r.degraded.quarantinedBatches, 0u);
    EXPECT_EQ(r.degraded.quarantinedBatches,
              r.degraded.quarantineBadLabel +
                  r.degraded.quarantineBinMismatch +
                  r.degraded.quarantineSlotRange);
    // Quarantined batches produce no alarms (all analyses refused).
    EXPECT_TRUE(r.alarms.empty());
}

TEST(DegradedPipelineTest, AsyncQuarantineMatchesInline)
{
    FaultPlan plan;
    plan.seed = 17;
    plan.corruptBatchRate = 1.0;
    const RunOutcome inline_run = runDividerAudit(plan);
    const RunOutcome async_run =
        runDividerAudit(plan, /*quanta=*/8, /*async=*/true);
    EXPECT_EQ(async_run.degraded.quarantinedBatches,
              inline_run.degraded.quarantinedBatches);
    EXPECT_EQ(async_run.degraded.quarantineBadLabel,
              inline_run.degraded.quarantineBadLabel);
    EXPECT_EQ(async_run.degraded.quarantineBinMismatch,
              inline_run.degraded.quarantineBinMismatch);
    EXPECT_TRUE(async_run.alarms.empty());
}

TEST(DegradedPipelineTest, DroppedQuantaReduceCoverage)
{
    FaultPlan plan;
    plan.seed = 8;
    plan.dropQuantumRate = 0.5;
    const RunOutcome r = runDividerAudit(plan, /*quanta=*/16);

    ASSERT_GT(r.degraded.missedQuanta, 0u);
    const double expected =
        1.0 - static_cast<double>(r.degraded.missedQuanta) / 16.0;
    EXPECT_NEAR(r.degraded.windowCoverage, expected, 1e-9);
    // Contention confidence for this slot is coverage scaled by the
    // (zero) saturated-bin fraction.
    EXPECT_NEAR(r.confidence, expected, 1e-9);
}

TEST(DegradedPipelineTest, SaturationFlagsAndStillDetects)
{
    // Paper-width 16-bit histogram entries saturate under the divider
    // channel's dense conflict train; the degraded fit must flag the
    // clamped bins yet keep the verdict.  Saturation needs more than
    // 0xffff delta-T windows falling into one density bin per quantum.
    // At 10 kbps roughly 43% of 500-tick windows are idle (bin 0), so
    // a 100M-tick quantum (200k windows, ~86k idle) clamps bin 0.
    MachineParams mp = smallMachine();
    mp.scheduler.quantum = 100000000;
    Machine m(mp);
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::random64(rng);
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = fastTiming();
    m.addProcess(std::make_unique<DividerSpy>(sp), 1);

    CCAuditor auditor(m);
    HistogramBufferParams hp = auditor.histogramParams();
    hp.saturate16 = true;
    auditor.setHistogramParams(hp);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    AuditDaemon daemon(m, auditor);

    m.runQuanta(2);
    const ContentionVerdict verdict = daemon.analyzeContention(0);
    EXPECT_TRUE(verdict.detected);
    const DegradedStats degraded = daemon.degradedStats();
    // The 10k bps divider train overflows 16-bit accumulators.
    EXPECT_GT(degraded.accumulatorSaturations +
                  degraded.saturatedBinEvents,
              0u);
    const double confidence =
        daemon.contentionConfidence(0, verdict);
    EXPECT_GE(confidence, 0.0);
    EXPECT_LE(confidence, 1.0);
}

TEST(DegradedPipelineTest, CacheChannelSurvivesConflictFaults)
{
    // Truncated/reordered/corrupted conflict batches plus forced Bloom
    // aliases: the oscillation detector still fires on the prime/probe
    // channel while confidence reports the reduced integrity.
    MachineParams mp = smallMachine();
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    Machine m(mp);
    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 1000.0;
    Rng rng(2);

    CacheChannelLayout layout;
    layout.l2NumSets = 4096;
    layout.channelSets = 256;

    CacheTrojanParams tp;
    tp.timing = timing;
    tp.message = Message::random64(rng);
    tp.layout = layout;
    tp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheTrojan>(tp), 0);
    CacheSpyParams sp;
    sp.timing = timing;
    sp.layout = layout;
    sp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorCache(key, 0, 0);
    AuditDaemon daemon(m, auditor);

    FaultPlan plan;
    plan.seed = 6;
    plan.truncateBatchRate = 0.1;
    plan.corruptContextRate = 0.02;
    plan.bloomAliasRate = 0.001;
    FaultInjector injector(plan);
    daemon.attachFaultInjector(&injector);

    m.runQuanta(6);

    const OscillationVerdict verdict = daemon.analyzeOscillation(0);
    EXPECT_TRUE(verdict.detected);
    const DegradedStats degraded = daemon.degradedStats();
    EXPECT_GT(degraded.totalFaults(), 0u);
    // Injector ledger and daemon ledger must reconcile.
    const FaultInjectionStats& is = injector.stats();
    EXPECT_EQ(degraded.truncatedBatches, is.truncatedBatches);
    EXPECT_EQ(degraded.truncatedEvents, is.truncatedEvents);
    EXPECT_EQ(degraded.reorderedBatches, is.reorderedBatches);
    EXPECT_EQ(degraded.corruptedContexts, is.corruptedContexts);
    EXPECT_EQ(degraded.bloomAliases, is.bloomAliases);
    const double confidence = daemon.oscillationConfidence(0);
    EXPECT_LT(confidence, 1.0);
    EXPECT_GT(confidence, 0.0);
}

} // namespace
} // namespace cchunter
