/**
 * @file
 * Property tests: the Cache model fuzz-checked against an independent
 * reference implementation (per-set recency lists), and the
 * HistogramBuffer fuzz-checked against the offline event-density
 * computation over random event streams.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "auditor/histogram_buffer.hh"
#include "detect/event_density.hh"
#include "mem/cache.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

/** Straightforward per-set LRU cache model built on std::list. */
class ReferenceCache
{
  public:
    ReferenceCache(std::size_t sets, std::size_t ways,
                   std::size_t line)
        : sets_(sets), ways_(ways), line_(line), lru_(sets)
    {
    }

    /** @return true on hit. */
    bool
    access(Addr addr)
    {
        const Addr la = addr & ~static_cast<Addr>(line_ - 1);
        const std::size_t set = (la / line_) % sets_;
        auto& list = lru_[set];
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (*it == la) {
                list.erase(it);
                list.push_front(la);
                return true;
            }
        }
        list.push_front(la);
        if (list.size() > ways_)
            list.pop_back();
        return false;
    }

  private:
    std::size_t sets_, ways_, line_;
    std::vector<std::list<Addr>> lru_;
};

class CacheFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheFuzzTest, MatchesReferenceOnRandomStreams)
{
    const CacheGeometry geom{8192, 4, 64}; // 32 sets x 4 ways
    Cache cache("fuzz", geom);
    ReferenceCache ref(geom.numSets(), geom.associativity,
                       geom.lineSize);
    Rng rng(GetParam());
    for (int i = 0; i < 50000; ++i) {
        // 256 lines over 32 sets: plenty of conflicts.
        const Addr addr = rng.nextBelow(256) * 64 + rng.nextBelow(64);
        const bool model_hit = cache.access(addr, 0, i).hit;
        const bool ref_hit = ref.access(addr);
        ASSERT_EQ(model_hit, ref_hit)
            << "divergence at access " << i << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

class HistogramBufferFuzzTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HistogramBufferFuzzTest, MatchesOfflineDensityComputation)
{
    Rng rng(GetParam());
    const Tick dt = 1 + rng.nextBelow(5000);
    const Tick span = 200000 + rng.nextBelow(300000);

    HistogramBuffer hw(dt, 0);
    EventTrain train(0, span);
    Tick now = 0;
    while (true) {
        now += 1 + static_cast<Tick>(rng.nextExponential(
                   static_cast<double>(1 + rng.nextBelow(2000))));
        if (now >= span)
            break;
        hw.recordEvent(now);
        train.addEvent(now);
    }
    // Snapshot at a multiple of dt so both sides see the same windows.
    const Tick snap = (span / dt) * dt;
    train.setWindow(0, snap);
    const Histogram hardware = hw.snapshotAndReset(snap);
    const Histogram offline =
        buildEventDensityHistogram(train, dt, 128);
    ASSERT_EQ(hardware.totalSamples(), offline.totalSamples());
    for (std::size_t b = 0; b < 128; ++b)
        ASSERT_EQ(hardware.bin(b), offline.bin(b)) << "bin " << b;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramBufferFuzzTest,
                         ::testing::Values(3, 5, 8, 13, 21, 34));

} // namespace
} // namespace cchunter
