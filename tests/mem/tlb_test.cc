#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mem/mem_system.hh"
#include "mem/tlb.hh"

using namespace cchunter;

namespace
{

TlbParams
tinyTlb()
{
    TlbParams params;
    params.enabled = true;
    params.entries = 8;
    params.associativity = 2; // 4 sets
    params.pageBytes = 4096;
    params.missCycles = 30;
    return params;
}

Addr
pageAddr(const TlbParams& params, std::uint64_t page)
{
    return static_cast<Addr>(page * params.pageBytes);
}

} // namespace

TEST(TlbTest, MissWalksThenHits)
{
    const TlbParams params = tinyTlb();
    Tlb tlb("tlb", params);
    const TlbOutcome miss = tlb.translate(pageAddr(params, 5), 0, 10);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.latency, params.missCycles);
    const TlbOutcome hit = tlb.translate(pageAddr(params, 5) + 64, 0, 20);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latency, 0u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.conflicts(), 0u);
}

TEST(TlbTest, LruVictimWithinTheSet)
{
    const TlbParams params = tinyTlb(); // 4 sets x 2 ways
    Tlb tlb("tlb", params);
    // Pages 0, 4, 8 all map to set 0; the third fill evicts the LRU
    // (page 0), not the most recently used.
    tlb.translate(pageAddr(params, 0), 0, 1);
    tlb.translate(pageAddr(params, 4), 0, 2);
    EXPECT_TRUE(tlb.probe(pageAddr(params, 0)));
    tlb.translate(pageAddr(params, 8), 0, 3);
    EXPECT_FALSE(tlb.probe(pageAddr(params, 0)));
    EXPECT_TRUE(tlb.probe(pageAddr(params, 4)));
    EXPECT_TRUE(tlb.probe(pageAddr(params, 8)));
}

TEST(TlbTest, CrossContextDisplacementFiresConflict)
{
    const TlbParams params = tinyTlb();
    Tlb tlb("tlb", params);
    std::vector<TlbConflict> conflicts;
    tlb.addConflictListener([&conflicts](const TlbConflict& c) {
        conflicts.push_back(c);
    });
    // Context 0 owns both ways of set 1; context 1's fill displaces
    // its LRU entry.
    tlb.translate(pageAddr(params, 1), 0, 1);
    tlb.translate(pageAddr(params, 5), 0, 2);
    tlb.translate(pageAddr(params, 9), 1, 3);
    ASSERT_EQ(conflicts.size(), 1u);
    EXPECT_EQ(conflicts[0].time, 3u);
    EXPECT_EQ(conflicts[0].replacer, 1);
    EXPECT_EQ(conflicts[0].victim, 0);
    EXPECT_EQ(tlb.conflicts(), 1u);
}

TEST(TlbTest, SameContextDisplacementIsNotAConflict)
{
    const TlbParams params = tinyTlb();
    Tlb tlb("tlb", params);
    std::uint64_t fired = 0;
    tlb.addConflictListener([&fired](const TlbConflict&) { ++fired; });
    tlb.translate(pageAddr(params, 0), 0, 1);
    tlb.translate(pageAddr(params, 4), 0, 2);
    tlb.translate(pageAddr(params, 8), 0, 3); // evicts own entry
    EXPECT_EQ(fired, 0u);
    EXPECT_EQ(tlb.conflicts(), 0u);
}

TEST(TlbTest, HitReassignsOwnership)
{
    // A hit by another context adopts the entry (the translation is
    // now hot for that context), so a later displacement blames the
    // current owner, not the original filler.
    const TlbParams params = tinyTlb();
    Tlb tlb("tlb", params);
    std::vector<TlbConflict> conflicts;
    tlb.addConflictListener([&conflicts](const TlbConflict& c) {
        conflicts.push_back(c);
    });
    tlb.translate(pageAddr(params, 1), 0, 1); // ctx 0 fills
    tlb.translate(pageAddr(params, 1), 1, 2); // ctx 1 hits, adopts
    tlb.translate(pageAddr(params, 5), 1, 3);
    tlb.translate(pageAddr(params, 9), 1, 4); // displaces page 1
    ASSERT_EQ(conflicts.size(), 0u); // owner was ctx 1: no conflict
}

TEST(TlbTest, FlushInvalidatesEverything)
{
    const TlbParams params = tinyTlb();
    Tlb tlb("tlb", params);
    tlb.translate(pageAddr(params, 3), 0, 1);
    EXPECT_TRUE(tlb.probe(pageAddr(params, 3)));
    tlb.flush();
    EXPECT_FALSE(tlb.probe(pageAddr(params, 3)));
    // Refill after the shootdown does not blame anyone.
    std::uint64_t fired = 0;
    tlb.addConflictListener([&fired](const TlbConflict&) { ++fired; });
    tlb.translate(pageAddr(params, 3), 1, 2);
    EXPECT_EQ(fired, 0u);
}

TEST(TlbTest, DegenerateGeometryIsFatal)
{
    TlbParams params = tinyTlb();
    params.entries = 0;
    EXPECT_THROW(Tlb("tlb", params), std::runtime_error);
    params = tinyTlb();
    params.associativity = 3; // does not divide entries
    EXPECT_THROW(Tlb("tlb", params), std::runtime_error);
    params = tinyTlb();
    params.pageBytes = 0;
    EXPECT_THROW(Tlb("tlb", params), std::runtime_error);
}

TEST(TlbMemSystemTest, DisabledByDefaultAndLatencyNeutral)
{
    MemSystemParams params;
    EXPECT_FALSE(params.tlb.enabled);
    MemSystem mem(params);
    EXPECT_FALSE(mem.tlbEnabled());
    EXPECT_THROW(mem.tlb(0), std::logic_error);
    // No TLB means no walk cycles folded into the latency.
    const MemAccessOutcome out =
        mem.access(/*ctx=*/0, 0x40000000, /*write=*/false, /*now=*/100);
    EXPECT_EQ(out.tlbWalkCycles, 0u);
}

TEST(TlbMemSystemTest, EnabledTlbChargesWalkOnce)
{
    MemSystemParams params;
    params.tlb.enabled = true;
    MemSystem mem(params);
    ASSERT_TRUE(mem.tlbEnabled());

    const Addr addr = 0x40000000;
    const MemAccessOutcome first =
        mem.access(/*ctx=*/0, addr, /*write=*/false, /*now=*/100);
    EXPECT_EQ(first.tlbWalkCycles, params.tlb.missCycles);
    EXPECT_GE(first.latency, first.tlbWalkCycles);

    // Same page, different line: the translation is resident, so no
    // walk latency the second time around.
    const MemAccessOutcome second =
        mem.access(/*ctx=*/0, addr + 64, /*write=*/false, /*now=*/200);
    EXPECT_EQ(second.tlbWalkCycles, 0u);
    EXPECT_EQ(mem.tlb(0).misses(), 1u);
    EXPECT_EQ(mem.tlb(0).hits(), 1u);
}

TEST(TlbMemSystemTest, PerCoreTlbsAreIndependent)
{
    MemSystemParams params; // threadsPerCore = 2: ctx 2 lives on core 1
    params.tlb.enabled = true;
    MemSystem mem(params);
    const Addr addr = 0x40000000;
    mem.access(/*ctx=*/0, addr, /*write=*/false, /*now=*/100);
    // Core 1 has its own TLB: the same page misses there.
    EXPECT_EQ(mem.tlb(0).misses(), 1u);
    EXPECT_EQ(mem.tlb(1).misses(), 0u);
    EXPECT_FALSE(mem.tlb(1).probe(addr));
    mem.access(/*ctx=*/2, addr, /*write=*/false, /*now=*/200);
    EXPECT_EQ(mem.tlb(1).misses(), 1u);
}
