#include <gtest/gtest.h>

#include "mem/mem_system.hh"

namespace cchunter
{
namespace
{

MemSystemParams
testParams()
{
    MemSystemParams p;
    p.l1 = CacheGeometry{1024, 2, 64};  // 8 sets
    p.l2 = CacheGeometry{4096, 2, 64};  // 32 sets
    return p;
}

TEST(MemSystemTest, TopologyCounts)
{
    MemSystem m(testParams());
    EXPECT_EQ(m.numCores(), 4u);
    EXPECT_EQ(m.numContexts(), 8u);
    EXPECT_EQ(m.coreOf(0), 0u);
    EXPECT_EQ(m.coreOf(1), 0u);
    EXPECT_EQ(m.coreOf(2), 1u);
    EXPECT_EQ(m.coreOf(7), 3u);
}

TEST(MemSystemTest, L1HitLatency)
{
    MemSystem m(testParams());
    m.access(0, 0x1000, false, 0);
    auto out = m.access(0, 0x1000, false, 10);
    EXPECT_TRUE(out.l1Hit);
    EXPECT_EQ(out.latency, m.params().l1HitCycles);
}

TEST(MemSystemTest, L2HitAfterL1Eviction)
{
    MemSystem m(testParams());
    // Fill line A, then push it out of L1 (2-way, 8 sets -> stride 512)
    // while keeping it in L2 (2-way, 32 sets -> stride 2048).
    m.access(0, 0x0000, false, 0);
    m.access(0, 0x0200, false, 1);  // same L1 set, different L2 set
    m.access(0, 0x0400, false, 2);  // evicts A from L1
    auto out = m.access(0, 0x0000, false, 3);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.l2Hit);
    EXPECT_EQ(out.latency,
              m.params().l1HitCycles + m.params().l2HitCycles);
}

TEST(MemSystemTest, MissGoesOverBusToDram)
{
    MemSystem m(testParams());
    auto out = m.access(0, 0x1000, false, 0);
    EXPECT_TRUE(out.missedAll());
    EXPECT_GE(out.latency, m.params().bus.transferCycles +
                               m.params().dram.rowHitCycles);
    EXPECT_EQ(m.bus().transfers(), 1u);
}

TEST(MemSystemTest, HyperthreadsShareL2)
{
    MemSystem m(testParams());
    m.access(0, 0x1000, false, 0);   // ctx 0 fills L2 of core 0
    auto out = m.access(1, 0x1000, false, 10); // ctx 1, same core
    EXPECT_FALSE(out.l1Hit);  // own L1 is cold
    EXPECT_TRUE(out.l2Hit);   // shared L2 has it
}

TEST(MemSystemTest, DifferentCoresDoNotShareL2)
{
    MemSystem m(testParams());
    m.access(0, 0x1000, false, 0);
    auto out = m.access(2, 0x1000, false, 10); // core 1
    EXPECT_TRUE(out.missedAll());
}

TEST(MemSystemTest, InclusionBackInvalidatesL1)
{
    MemSystem m(testParams());
    // ctx 0 loads line A (L1 + L2).
    m.access(0, 0x0000, false, 0);
    // ctx 1 (same core) streams lines mapping to A's L2 set until A is
    // evicted from L2; inclusion must purge A from ctx 0's L1.
    // L2: 32 sets x 64B -> stride 2048.
    m.access(1, 0x0800, false, 1);
    m.access(1, 0x1000, false, 2); // L2 set 0 now holds 0x800,0x1000
    EXPECT_FALSE(m.l2(0).probe(0x0000));
    EXPECT_FALSE(m.l1(0).probe(0x0000));
    auto out = m.access(0, 0x0000, false, 10);
    EXPECT_TRUE(out.missedAll());
}

TEST(MemSystemTest, LockedAccessAssertsLockAndTouchesTwoLines)
{
    MemSystem m(testParams());
    int locks = 0;
    m.bus().addLockListener([&](Tick, ContextId) { ++locks; });
    auto out = m.lockedAccess(0, 0x0fc0, 0);
    EXPECT_EQ(locks, 1);
    EXPECT_GE(out.latency, m.params().bus.lockHoldCycles);
    // Both spanned lines are now cached.
    EXPECT_TRUE(m.l1(0).probe(0x0fc0));
    EXPECT_TRUE(m.l1(0).probe(0x1000));
}

TEST(MemSystemTest, LockDelaysOtherContextsMisses)
{
    MemSystem m(testParams());
    m.lockedAccess(0, 0x0fc0, 0); // bus locked for lockHoldCycles
    auto out = m.access(2, 0x8000, false, 100);
    EXPECT_TRUE(out.missedAll());
    // The miss had to wait out the lock.
    EXPECT_GE(out.latency, m.params().bus.lockHoldCycles - 100);
}

TEST(MemSystemTest, ContextRangeChecked)
{
    MemSystem m(testParams());
    EXPECT_ANY_THROW(m.l1(200));
    EXPECT_ANY_THROW(m.l2(100));
}

TEST(MemSystemTest, InvalidTopologyThrows)
{
    MemSystemParams p = testParams();
    p.numCores = 0;
    EXPECT_ANY_THROW(MemSystem{p});
}

} // namespace
} // namespace cchunter
