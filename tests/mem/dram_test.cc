#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace cchunter
{
namespace
{

TEST(DramTest, FirstAccessIsRowMiss)
{
    Dram d;
    EXPECT_EQ(d.access(0x0), d.params().rowMissCycles);
    EXPECT_EQ(d.rowMisses(), 1u);
}

TEST(DramTest, SameRowHits)
{
    Dram d;
    d.access(0x0);
    EXPECT_EQ(d.access(0x40), d.params().rowHitCycles);
    EXPECT_EQ(d.access(0x1000), d.params().rowHitCycles);
    EXPECT_EQ(d.rowHits(), 2u);
}

TEST(DramTest, DifferentRowSameBankMisses)
{
    DramParams p;
    Dram d(p);
    d.access(0x0);
    // Row 0 and row numBanks map to bank 0 but different rows.
    const Addr other_row = static_cast<Addr>(p.rowBytes) * p.numBanks;
    EXPECT_EQ(d.access(other_row), p.rowMissCycles);
}

TEST(DramTest, BanksAreIndependent)
{
    DramParams p;
    Dram d(p);
    d.access(0x0);                                   // bank 0
    d.access(static_cast<Addr>(p.rowBytes));         // bank 1
    // Returning to bank 0's open row still hits.
    EXPECT_EQ(d.access(0x80), p.rowHitCycles);
}

TEST(DramTest, InvalidParamsThrow)
{
    DramParams p;
    p.numBanks = 0;
    EXPECT_ANY_THROW(Dram{p});
}

} // namespace
} // namespace cchunter
