#include <gtest/gtest.h>

#include <vector>

#include "mem/memory_bus.hh"

namespace cchunter
{
namespace
{

TEST(MemoryBusTest, UncontendedTransferTakesTransferCycles)
{
    MemoryBus bus(BusParams{30, 1000});
    EXPECT_EQ(bus.transfer(0, 100), 130u);
    EXPECT_EQ(bus.transfers(), 1u);
}

TEST(MemoryBusTest, BackToBackTransfersSerialize)
{
    MemoryBus bus(BusParams{30, 1000});
    EXPECT_EQ(bus.transfer(0, 0), 30u);
    // Second request at t=10 waits for the bus.
    EXPECT_EQ(bus.transfer(1, 10), 60u);
    EXPECT_EQ(bus.totalWaitCycles(), 20u);
}

TEST(MemoryBusTest, LockHoldsBusExclusively)
{
    MemoryBus bus(BusParams{30, 1000});
    EXPECT_EQ(bus.lockedTransfer(0, 0), 1000u);
    // A transfer issued during the lock waits until the lock releases.
    EXPECT_EQ(bus.transfer(1, 500), 1030u);
}

TEST(MemoryBusTest, LockEventFiresAtAcquisition)
{
    MemoryBus bus(BusParams{30, 1000});
    std::vector<std::pair<Tick, ContextId>> events;
    bus.addLockListener([&](Tick when, ContextId ctx) {
        events.emplace_back(when, ctx);
    });
    bus.transfer(0, 0);               // busy until 30
    bus.lockedTransfer(3, 10);        // waits; acquires at 30
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].first, 30u);
    EXPECT_EQ(events[0].second, 3);
    EXPECT_EQ(bus.locks(), 1u);
}

TEST(MemoryBusTest, MultipleListenersAllFire)
{
    MemoryBus bus;
    int count = 0;
    bus.addLockListener([&](Tick, ContextId) { ++count; });
    bus.addLockListener([&](Tick, ContextId) { ++count; });
    bus.lockedTransfer(0, 0);
    EXPECT_EQ(count, 2);
}

TEST(MemoryBusTest, IdleBusResetsWait)
{
    MemoryBus bus(BusParams{30, 1000});
    bus.transfer(0, 0);
    // Request long after the bus went idle: no wait.
    EXPECT_EQ(bus.transfer(0, 500), 530u);
    EXPECT_EQ(bus.totalWaitCycles(), 0u);
}

TEST(MemoryBusTest, TransferSlotsIntoGapBeforeDeferredLock)
{
    // A rate-limited lock is scheduled into the future; ordinary
    // transfers must keep flowing through the idle gap before it.
    MemoryBus bus(BusParams{30, 1000});
    bus.setLockRateLimit(50000);
    bus.lockedTransfer(0, 0);          // lock 1: [0, 1000)
    bus.lockedTransfer(0, 1000);       // lock 2 deferred to 50000
    // Gap [1000, 50000) serves transfers immediately.
    EXPECT_EQ(bus.transfer(1, 2000), 2030u);
    EXPECT_EQ(bus.transfer(1, 2030), 2060u);
    // A transfer that cannot finish before the lock window waits it
    // out.
    EXPECT_EQ(bus.transfer(1, 49990), 51030u);
}

TEST(MemoryBusTest, BusyUntilCoversPendingLock)
{
    MemoryBus bus(BusParams{30, 1000});
    bus.setLockRateLimit(50000);
    bus.lockedTransfer(0, 0);
    bus.lockedTransfer(0, 1000); // deferred to [50000, 51000)
    EXPECT_EQ(bus.busyUntil(), 51000u);
}

TEST(MemoryBusTest, LockStormDelaysEveryone)
{
    // Repeated locks (the trojan's '1' signalling) inflate transfer
    // latency for an innocent requester — the spy's observable.
    MemoryBus bus(BusParams{30, 2500});
    Tick t = 0;
    for (int i = 0; i < 4; ++i)
        bus.lockedTransfer(0, t);
    // Bus busy until 10000; a transfer at t=100 waits ~9.9k cycles.
    const Tick done = bus.transfer(1, 100);
    EXPECT_EQ(done, 10030u);
}

} // namespace
} // namespace cchunter
