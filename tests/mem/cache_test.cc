#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"

namespace cchunter
{
namespace
{

CacheGeometry
smallGeom()
{
    // 4 sets x 2 ways x 64B lines = 512 B.
    return CacheGeometry{512, 2, 64};
}

TEST(CacheGeometryTest, DerivedQuantities)
{
    CacheGeometry g{256 * 1024, 8, 64};
    EXPECT_EQ(g.numBlocks(), 4096u);
    EXPECT_EQ(g.numSets(), 512u);
}

TEST(CacheTest, ColdMissThenHit)
{
    Cache c("t", smallGeom());
    auto r = c.access(0x1000, 0, 0);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted);
    r = c.access(0x1000, 0, 1);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, SameLineDifferentOffsetsHit)
{
    Cache c("t", smallGeom());
    c.access(0x1000, 0, 0);
    EXPECT_TRUE(c.access(0x103f, 0, 1).hit);
}

TEST(CacheTest, LruEvictionOrder)
{
    Cache c("t", smallGeom());
    // Set stride: 4 sets * 64 B = 256 B. Three lines to set 0.
    c.access(0x0000, 0, 0);  // A
    c.access(0x0100, 0, 1);  // B
    c.access(0x0000, 0, 2);  // touch A -> B becomes LRU
    auto r = c.access(0x0200, 0, 3); // C evicts B
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLineAddr, 0x0100u);
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0100));
    EXPECT_TRUE(c.probe(0x0200));
}

TEST(CacheTest, InvalidWaysPreferredOverEviction)
{
    Cache c("t", smallGeom());
    c.access(0x0000, 0, 0);
    auto r = c.access(0x0100, 0, 1); // second way free
    EXPECT_FALSE(r.evicted);
}

TEST(CacheTest, OwnerTracksLastAccessor)
{
    Cache c("t", smallGeom());
    c.access(0x0000, 3, 0);
    EXPECT_EQ(c.ownerOf(0x0000), 3);
    c.access(0x0000, 5, 1);
    EXPECT_EQ(c.ownerOf(0x0000), 5);
    EXPECT_EQ(c.ownerOf(0x4000), invalidContext);
}

TEST(CacheTest, EvictionReportsOwner)
{
    Cache c("t", smallGeom());
    c.access(0x0000, 1, 0);
    c.access(0x0100, 2, 1);
    auto r = c.access(0x0200, 3, 2); // evicts ctx 1's line
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedOwner, 1);
}

TEST(CacheTest, InvalidateRemovesLine)
{
    Cache c("t", smallGeom());
    c.access(0x0000, 0, 0);
    EXPECT_TRUE(c.invalidate(0x0000));
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_FALSE(c.invalidate(0x0000));
}

TEST(CacheTest, FlushEmptiesEverything)
{
    Cache c("t", smallGeom());
    c.access(0x0000, 0, 0);
    c.access(0x0100, 0, 1);
    c.flush();
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0100));
}

TEST(CacheTest, SetIndexMapping)
{
    Cache c("t", smallGeom());
    EXPECT_EQ(c.setIndex(0x0000), 0u);
    EXPECT_EQ(c.setIndex(0x0040), 1u);
    EXPECT_EQ(c.setIndex(0x00c0), 3u);
    EXPECT_EQ(c.setIndex(0x0100), 0u);
    EXPECT_EQ(c.lineAddr(0x1234), 0x1200u);
}

TEST(CacheTest, BadGeometryThrows)
{
    EXPECT_ANY_THROW(Cache("t", CacheGeometry{512, 2, 48}));
    EXPECT_ANY_THROW(Cache("t", CacheGeometry{512, 0, 64}));
    EXPECT_ANY_THROW(Cache("t", CacheGeometry{500, 2, 64}));
}

/** Monitor recording callbacks for verification. */
struct RecordingMonitor : CacheMonitor
{
    struct MissInfo
    {
        Addr line;
        ContextId requester;
        ContextId victimOwner;
        bool hadVictim;
    };

    std::vector<std::size_t> accesses;
    std::vector<Addr> evictions;
    std::vector<MissInfo> missList;

    void
    onAccess(std::size_t block_idx, Addr, ContextId, Tick) override
    {
        accesses.push_back(block_idx);
    }

    void
    onEvict(std::size_t, Addr line, ContextId, Tick) override
    {
        evictions.push_back(line);
    }

    void
    onMiss(Addr line, ContextId requester, ContextId victim_owner,
           bool had_victim, Tick) override
    {
        missList.push_back({line, requester, victim_owner, had_victim});
    }
};

TEST(CacheMonitorTest, CallbacksFireInOrder)
{
    Cache c("t", smallGeom());
    RecordingMonitor mon;
    c.setMonitor(&mon);

    c.access(0x0000, 1, 0); // cold miss, no victim
    ASSERT_EQ(mon.missList.size(), 1u);
    EXPECT_FALSE(mon.missList[0].hadVictim);
    EXPECT_EQ(mon.accesses.size(), 1u);

    c.access(0x0000, 1, 1); // hit
    EXPECT_EQ(mon.missList.size(), 1u);
    EXPECT_EQ(mon.accesses.size(), 2u);

    c.access(0x0100, 2, 2); // fills way 1
    c.access(0x0200, 3, 3); // evicts 0x0000 (LRU)
    ASSERT_EQ(mon.evictions.size(), 1u);
    EXPECT_EQ(mon.evictions[0], 0x0000u);
    ASSERT_EQ(mon.missList.size(), 3u);
    EXPECT_TRUE(mon.missList[2].hadVictim);
    EXPECT_EQ(mon.missList[2].requester, 3);
    EXPECT_EQ(mon.missList[2].victimOwner, 1);
}

TEST(CacheTest, DirectMappedConflicts)
{
    // Direct-mapped: any two lines mapping to the same set replace each
    // other (the cache-channel configuration).
    Cache c("dm", CacheGeometry{256, 1, 64});
    c.access(0x0000, 0, 0);
    auto r = c.access(0x0100, 1, 1);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLineAddr, 0x0000u);
    EXPECT_EQ(r.evictedOwner, 0);
}

} // namespace
} // namespace cchunter
