#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace cchunter
{
namespace
{

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueTest, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueTest, SameTickOrderedByPriorityThenSequence)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); },
                EventPriority::Default);
    eq.schedule(10, [&] { order.push_back(3); }, EventPriority::Late);
    eq.schedule(10, [&] { order.push_back(1); },
                EventPriority::Scheduler);
    eq.schedule(10, [&] { order.push_back(4); }, EventPriority::Late);
    eq.runUntil(11);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilIsExclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 0);
    eq.runUntil(11);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        ++count;
        if (count < 5)
            eq.schedule(eq.now() + 10, tick);
    };
    eq.schedule(0, tick);
    const auto executed = eq.runUntil(1000);
    EXPECT_EQ(executed, 5u);
    EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, SchedulingIntoPastPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.runUntil(100);
    EXPECT_ANY_THROW(eq.schedule(10, [] {}));
}

TEST(EventQueueTest, StepExecutesOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(6, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 5u);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueueTest, ReturnsExecutedCount)
{
    EventQueue eq;
    for (Tick t = 0; t < 10; ++t)
        eq.schedule(t, [] {});
    EXPECT_EQ(eq.runUntil(5), 5u);
    EXPECT_EQ(eq.runUntil(100), 5u);
}

} // namespace
} // namespace cchunter
