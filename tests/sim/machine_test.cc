#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hh"

namespace cchunter
{
namespace
{

/** Workload executing a fixed script of actions, then halting. */
class ScriptedWorkload : public Workload
{
  public:
    explicit ScriptedWorkload(std::vector<Action> script)
        : script_(std::move(script))
    {
    }

    Action
    nextAction(const ExecView& view) override
    {
        views.push_back(view);
        if (next_ >= script_.size())
            return Action::halt();
        return script_[next_++];
    }

    std::string name() const override { return "scripted"; }

    std::vector<ExecView> views;

  private:
    std::vector<Action> script_;
    std::size_t next_ = 0;
};

/** Workload spinning on compute forever. */
class SpinWorkload : public Workload
{
  public:
    explicit SpinWorkload(Cycles per_action = 100)
        : perAction_(per_action)
    {
    }

    Action
    nextAction(const ExecView&) override
    {
        ++actions;
        return Action::compute(perAction_);
    }

    std::string name() const override { return "spin"; }

    void
    onSchedule(ContextId ctx, Tick) override
    {
        scheduleEvents.push_back(ctx);
    }

    void
    onDeschedule(Tick) override
    {
        ++descheduleEvents;
    }

    std::uint64_t actions = 0;
    std::vector<ContextId> scheduleEvents;
    int descheduleEvents = 0;

  private:
    Cycles perAction_;
};

MachineParams
smallMachine()
{
    MachineParams p;
    p.mem.l1 = CacheGeometry{1024, 2, 64};
    p.mem.l2 = CacheGeometry{4096, 2, 64};
    p.scheduler.quantum = 100000;
    p.switchPenalty = 100;
    return p;
}

TEST(MachineTest, RunsAScriptToCompletion)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<ScriptedWorkload>(std::vector<Action>{
        Action::compute(50), Action::read(0x1000),
        Action::compute(10)});
    auto* raw = wl.get();
    Process& p = m.addProcess(std::move(wl), 0);
    m.run(50000);
    EXPECT_TRUE(p.halted());
    EXPECT_EQ(p.stats().actions, 3u);
    EXPECT_EQ(p.stats().memAccesses, 1u);
    // Views: one per nextAction call (3 actions + halt).
    EXPECT_EQ(raw->views.size(), 4u);
}

TEST(MachineTest, LatencyVisibleToWorkload)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<ScriptedWorkload>(std::vector<Action>{
        Action::compute(77), Action::compute(1)});
    auto* raw = wl.get();
    m.addProcess(std::move(wl), 0);
    m.run(50000);
    ASSERT_GE(raw->views.size(), 2u);
    EXPECT_EQ(raw->views[1].lastLatency, 77u);
}

TEST(MachineTest, MemoryActionsReportHits)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<ScriptedWorkload>(std::vector<Action>{
        Action::read(0x1000), Action::read(0x1000)});
    auto* raw = wl.get();
    m.addProcess(std::move(wl), 0);
    m.run(100000);
    // After the second (hit) access the view says hit.
    EXPECT_TRUE(raw->views[2].lastWasHit);
    // After the first (cold miss) it says miss.
    EXPECT_FALSE(raw->views[1].lastWasHit);
}

TEST(MachineTest, SleepUntilAdvancesToTarget)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<ScriptedWorkload>(std::vector<Action>{
        Action::sleepUntil(7000), Action::compute(1)});
    auto* raw = wl.get();
    m.addProcess(std::move(wl), 0);
    m.run(50000);
    ASSERT_GE(raw->views.size(), 2u);
    EXPECT_GE(raw->views[1].now, 7000u);
}

TEST(MachineTest, PinnedProcessStaysOnContext)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<SpinWorkload>();
    auto* raw = wl.get();
    m.addProcess(std::move(wl), 3);
    m.run(500000); // 5 quanta
    for (ContextId c : raw->scheduleEvents)
        EXPECT_EQ(c, 3);
    EXPECT_EQ(m.runningOn(3)->name(), "spin");
}

TEST(MachineTest, TwoPinnedToSameContextTimeShare)
{
    Machine m(smallMachine());
    auto a = std::make_unique<SpinWorkload>();
    auto b = std::make_unique<SpinWorkload>();
    auto* ra = a.get();
    auto* rb = b.get();
    m.addProcess(std::move(a), 0);
    m.addProcess(std::move(b), 0);
    m.run(1000000); // 10 quanta
    EXPECT_GT(ra->actions, 0u);
    EXPECT_GT(rb->actions, 0u);
    // Neither starves: roughly half the quanta each.
    EXPECT_GT(ra->descheduleEvents, 2);
    EXPECT_GT(rb->descheduleEvents, 2);
}

TEST(MachineTest, FloatingProcessesShareFreeContexts)
{
    MachineParams params = smallMachine();
    Machine m(params);
    std::vector<SpinWorkload*> raw;
    // 10 floating processes on 8 contexts: all must make progress.
    for (int i = 0; i < 10; ++i) {
        auto wl = std::make_unique<SpinWorkload>();
        raw.push_back(wl.get());
        m.addProcess(std::move(wl));
    }
    m.run(params.scheduler.quantum * 20);
    for (auto* wl : raw)
        EXPECT_GT(wl->actions, 0u);
}

TEST(MachineTest, HaltedProcessFreesContext)
{
    Machine m(smallMachine());
    auto done = std::make_unique<ScriptedWorkload>(
        std::vector<Action>{Action::compute(10)});
    m.addProcess(std::move(done), 0);
    auto spin = std::make_unique<SpinWorkload>();
    auto* raw = spin.get();
    m.addProcess(std::move(spin)); // floating
    m.run(m.params().scheduler.quantum * 3);
    // After the scripted process halts, the floating one can use ctx 0
    // (among others); at minimum it must be running somewhere.
    EXPECT_GT(raw->actions, 0u);
}

TEST(MachineTest, QuantumObserverFiresEachQuantum)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<SpinWorkload>(), 0);
    std::vector<std::uint64_t> indices;
    m.scheduler().addQuantumObserver(
        [&](std::uint64_t q, Tick) { indices.push_back(q); });
    m.run(m.params().scheduler.quantum * 5 + 10);
    ASSERT_EQ(indices.size(), 5u);
    EXPECT_EQ(indices.front(), 0u);
    EXPECT_EQ(indices.back(), 4u);
}

TEST(MachineTest, DividerActionUsesCoreUnit)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<ScriptedWorkload>(std::vector<Action>{
        Action::divideBatch(10)});
    m.addProcess(std::move(wl), 2); // core 1
    m.run(100000);
    EXPECT_EQ(m.divider(1).totalOps(), 10u);
    EXPECT_EQ(m.divider(0).totalOps(), 0u);
}

TEST(MachineTest, LockedAccessCountsBusLock)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<ScriptedWorkload>(std::vector<Action>{
        Action::lockedAccess(0x3fc0)});
    Process& p = m.addProcess(std::move(wl), 0);
    m.run(100000);
    EXPECT_EQ(p.stats().busLocks, 1u);
    EXPECT_EQ(m.mem().bus().locks(), 1u);
}

TEST(MachineTest, StatsAccumulate)
{
    Machine m(smallMachine());
    auto wl = std::make_unique<SpinWorkload>(1000);
    m.addProcess(std::move(wl), 0);
    Process* p = nullptr;
    p = m.runningOn(0) ? m.runningOn(0) : nullptr;
    m.run(100000);
    p = m.scheduler().processes().front().get();
    EXPECT_GT(p->stats().actions, 50u);
    EXPECT_GT(p->stats().busyCycles, 50000u);
}

TEST(MachineTest, MigrationMovesFloatingProcesses)
{
    MachineParams params = smallMachine();
    params.scheduler.migrate = true;
    params.scheduler.seed = 7;
    Machine m(params);
    auto wl = std::make_unique<SpinWorkload>();
    auto* raw = wl.get();
    m.addProcess(std::move(wl));
    // A second floating process so reassignment happens.
    m.addProcess(std::make_unique<SpinWorkload>());
    m.run(params.scheduler.quantum * 40);
    // Across 40 quanta with random placement, at least two distinct
    // contexts must have been used.
    bool moved = false;
    for (ContextId c : raw->scheduleEvents)
        if (c != raw->scheduleEvents.front())
            moved = true;
    EXPECT_TRUE(moved);
}

TEST(MachineTest, PinnedToInvalidContextThrows)
{
    Machine m(smallMachine());
    EXPECT_ANY_THROW(
        m.addProcess(std::make_unique<SpinWorkload>(), 100));
}

} // namespace
} // namespace cchunter
