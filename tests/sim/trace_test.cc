#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "sim/machine.hh"
#include "sim/trace.hh"

namespace cchunter
{
namespace
{

/** RAII guard restoring trace state after each test. */
struct TraceGuard
{
    TraceGuard() { Trace::reset(); }

    ~TraceGuard()
    {
        Trace::reset();
        Trace::setSink(nullptr);
    }
};

TEST(TraceTest, DisabledByDefault)
{
    TraceGuard guard;
    EXPECT_FALSE(Trace::enabled(TraceCategory::Sched));
    EXPECT_FALSE(Trace::enabled(TraceCategory::Auditor));
}

TEST(TraceTest, EnableDisableRoundTrip)
{
    TraceGuard guard;
    Trace::enable(TraceCategory::Bus);
    EXPECT_TRUE(Trace::enabled(TraceCategory::Bus));
    EXPECT_FALSE(Trace::enabled(TraceCategory::Cache));
    Trace::disable(TraceCategory::Bus);
    EXPECT_FALSE(Trace::enabled(TraceCategory::Bus));
}

TEST(TraceTest, EnableFromStringParsesList)
{
    TraceGuard guard;
    Trace::enableFromString("sched,auditor");
    EXPECT_TRUE(Trace::enabled(TraceCategory::Sched));
    EXPECT_TRUE(Trace::enabled(TraceCategory::Auditor));
    EXPECT_FALSE(Trace::enabled(TraceCategory::Channel));
}

TEST(TraceTest, EnableAll)
{
    TraceGuard guard;
    Trace::enableFromString("all");
    EXPECT_TRUE(Trace::enabled(TraceCategory::Detect));
    EXPECT_TRUE(Trace::enabled(TraceCategory::Exec));
}

TEST(TraceTest, UnknownCategoryIgnored)
{
    TraceGuard guard;
    EXPECT_NO_THROW(Trace::enableFromString("sched,bogus"));
    EXPECT_TRUE(Trace::enabled(TraceCategory::Sched));
}

TEST(TraceTest, EmitFormatsTickCategoryMessage)
{
    TraceGuard guard;
    std::ostringstream os;
    Trace::setSink(&os);
    Trace::enable(TraceCategory::Bus);
    trace(TraceCategory::Bus, 1234, "lock by ctx ", 3);
    EXPECT_EQ(os.str(), "1234: [bus] lock by ctx 3\n");
}

TEST(TraceTest, DisabledCategoryEmitsNothing)
{
    TraceGuard guard;
    std::ostringstream os;
    Trace::setSink(&os);
    trace(TraceCategory::Cache, 1, "should not appear");
    EXPECT_TRUE(os.str().empty());
}

TEST(TraceTest, SchedulerEmitsQuantumRecords)
{
    TraceGuard guard;
    std::ostringstream os;
    Trace::setSink(&os);
    Trace::enable(TraceCategory::Sched);

    MachineParams mp;
    mp.scheduler.quantum = 100000;
    Machine m(mp);
    m.runQuanta(2);
    const std::string s = os.str();
    EXPECT_NE(s.find("[sched] quantum 0 ends"), std::string::npos);
    EXPECT_NE(s.find("[sched] quantum 1 ends"), std::string::npos);
}

TEST(TraceTest, CategoryNames)
{
    EXPECT_EQ(Trace::categoryName(TraceCategory::Sched), "sched");
    EXPECT_EQ(Trace::categoryName(TraceCategory::Detect), "detect");
    EXPECT_EQ(Trace::categoryName(TraceCategory::All), "all");
}

} // namespace
} // namespace cchunter
