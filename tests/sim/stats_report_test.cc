#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "sim/machine.hh"
#include "sim/stats_report.hh"

namespace cchunter
{
namespace
{

class MixWorkload : public Workload
{
  public:
    Action
    nextAction(const ExecView&) override
    {
        switch (i_++ % 4) {
          case 0:
            return Action::read(0x1000 + (i_ % 64) * 64);
          case 1:
            return Action::divideBatch(4);
          case 2:
            return Action::multiplyBatch(4);
          default:
            return Action::compute(100);
        }
    }

    std::string name() const override { return "mix"; }

  private:
    std::uint64_t i_ = 0;
};

MachineParams
smallMachine()
{
    MachineParams p;
    p.mem.l1 = CacheGeometry{1024, 2, 64};
    p.mem.l2 = CacheGeometry{4096, 2, 64};
    p.scheduler.quantum = 100000;
    return p;
}

TEST(StatsReportTest, CollectsAllComponentCounters)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<MixWorkload>(), 0);
    m.runQuanta(2);

    const auto stats = collectMachineStats(m);
    auto find = [&](const std::string& name) -> double {
        for (const auto& e : stats)
            if (e.name == name)
                return e.value;
        ADD_FAILURE() << "missing stat " << name;
        return -1.0;
    };
    EXPECT_GT(find("sim.ticks"), 0.0);
    EXPECT_DOUBLE_EQ(find("sched.quanta"), 2.0);
    EXPECT_GT(find("core0.divider.ops"), 0.0);
    EXPECT_GT(find("core0.multiplier.ops"), 0.0);
    EXPECT_GT(find("ctx0.l1.hits") + find("ctx0.l1.misses"), 0.0);
    EXPECT_GE(find("bus.transfers"), 1.0);
    EXPECT_DOUBLE_EQ(find("bus.throttled_locks"), 0.0);
}

TEST(StatsReportTest, DumpRendersEveryEntry)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<MixWorkload>(), 0);
    m.runQuanta(1);
    std::ostringstream os;
    dumpMachineStats(m, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("sim.ticks"), std::string::npos);
    EXPECT_NE(s.find("core3.l2.misses"), std::string::npos);
    EXPECT_NE(s.find("# L2 misses"), std::string::npos);
}

TEST(StatsReportTest, ProcessTableListsProcesses)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<MixWorkload>(), 0);
    m.addProcess(std::make_unique<MixWorkload>(), 1);
    m.runQuanta(1);
    std::ostringstream os;
    dumpProcessStats(m, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("mix"), std::string::npos);
    EXPECT_NE(s.find("busy cycles"), std::string::npos);
}

TEST(StatsReportTest, EmptyMachineStillReports)
{
    Machine m(smallMachine());
    std::ostringstream os;
    EXPECT_NO_THROW(dumpMachineStats(m, os));
    EXPECT_NO_THROW(dumpProcessStats(m, os));
}

TEST(StatsReportTest, DumpStatEntriesRendersTitleAndValues)
{
    std::ostringstream os;
    dumpStatEntries({{"pipe.count", 42.0, "an integral counter"},
                     {"pipe.mean", 1.5, "a fractional value"}},
                    os, "pipeline");
    const std::string s = os.str();
    EXPECT_NE(s.find("---------- pipeline ----------"),
              std::string::npos);
    EXPECT_NE(s.find("pipe.count"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("1.500"), std::string::npos);
    EXPECT_NE(s.find("# an integral counter"), std::string::npos);
}

TEST(StatsReportTest, DumpStatEntriesOmitsEmptyTitle)
{
    std::ostringstream os;
    dumpStatEntries({{"x", 1.0, "d"}}, os);
    EXPECT_EQ(os.str().find("----------"), std::string::npos);
}

TEST(StatsReportTest, ParseRoundTripsNestedPrefixHierarchy)
{
    // Two-level prefix groups (fleet.shardN.*) alongside flat names,
    // an integral counter, a fractional value, and a name wider than
    // the 28-character name column.
    const std::vector<StatEntry> entries = {
        {"fleet.tenants", 16.0, "tenant machines in the plan"},
        {"fleet.shard0.tenants", 8.0, "tenants on shard 0"},
        {"fleet.shard0.queueHighWater", 3.0, "deepest backlog"},
        {"fleet.shard1.tenants", 8.0, "tenants on shard 1"},
        {"fleet.shard1.latencyMeanUs.analysis", 12.625,
         "mean analysis latency"},
        {"fleet.incidents.critical", 2.0, "critical incidents"},
    };
    std::ostringstream os;
    dumpStatEntries(entries, os, "fleet audit");

    std::istringstream is(os.str());
    const auto parsed = parseStatEntries(is);
    ASSERT_EQ(parsed.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(parsed[i].name, entries[i].name);
        EXPECT_DOUBLE_EQ(parsed[i].value, entries[i].value);
        EXPECT_EQ(parsed[i].description, entries[i].description);
    }
}

TEST(StatsReportTest, ParseSkipsTitlesAndBlankLines)
{
    std::istringstream is(
        "---------- section one ----------\n"
        "a.b                                         1  # first\n"
        "\n"
        "---------- section two ----------\n"
        "a.c                                     2.500  # second\n");
    const auto parsed = parseStatEntries(is);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].name, "a.b");
    EXPECT_DOUBLE_EQ(parsed[0].value, 1.0);
    EXPECT_EQ(parsed[0].description, "first");
    EXPECT_EQ(parsed[1].name, "a.c");
    EXPECT_DOUBLE_EQ(parsed[1].value, 2.5);
    EXPECT_EQ(parsed[1].description, "second");
}

TEST(StatsReportTest, ParseOfMachineDumpMatchesCollected)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<MixWorkload>(), 0);
    m.runQuanta(1);

    const auto collected = collectMachineStats(m);
    std::ostringstream os;
    dumpStatEntries(collected, os, "machine statistics");
    std::istringstream is(os.str());
    const auto parsed = parseStatEntries(is);

    ASSERT_EQ(parsed.size(), collected.size());
    for (std::size_t i = 0; i < collected.size(); ++i) {
        EXPECT_EQ(parsed[i].name, collected[i].name);
        // The dump renders fractional values at three decimals, so
        // the round trip is exact for counters and 1e-3-close
        // otherwise.
        EXPECT_NEAR(parsed[i].value, collected[i].value, 5e-4);
    }
}

} // namespace
} // namespace cchunter
