#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "sim/machine.hh"
#include "sim/stats_report.hh"

namespace cchunter
{
namespace
{

class MixWorkload : public Workload
{
  public:
    Action
    nextAction(const ExecView&) override
    {
        switch (i_++ % 4) {
          case 0:
            return Action::read(0x1000 + (i_ % 64) * 64);
          case 1:
            return Action::divideBatch(4);
          case 2:
            return Action::multiplyBatch(4);
          default:
            return Action::compute(100);
        }
    }

    std::string name() const override { return "mix"; }

  private:
    std::uint64_t i_ = 0;
};

MachineParams
smallMachine()
{
    MachineParams p;
    p.mem.l1 = CacheGeometry{1024, 2, 64};
    p.mem.l2 = CacheGeometry{4096, 2, 64};
    p.scheduler.quantum = 100000;
    return p;
}

TEST(StatsReportTest, CollectsAllComponentCounters)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<MixWorkload>(), 0);
    m.runQuanta(2);

    const auto stats = collectMachineStats(m);
    auto find = [&](const std::string& name) -> double {
        for (const auto& e : stats)
            if (e.name == name)
                return e.value;
        ADD_FAILURE() << "missing stat " << name;
        return -1.0;
    };
    EXPECT_GT(find("sim.ticks"), 0.0);
    EXPECT_DOUBLE_EQ(find("sched.quanta"), 2.0);
    EXPECT_GT(find("core0.divider.ops"), 0.0);
    EXPECT_GT(find("core0.multiplier.ops"), 0.0);
    EXPECT_GT(find("ctx0.l1.hits") + find("ctx0.l1.misses"), 0.0);
    EXPECT_GE(find("bus.transfers"), 1.0);
    EXPECT_DOUBLE_EQ(find("bus.throttled_locks"), 0.0);
}

TEST(StatsReportTest, DumpRendersEveryEntry)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<MixWorkload>(), 0);
    m.runQuanta(1);
    std::ostringstream os;
    dumpMachineStats(m, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("sim.ticks"), std::string::npos);
    EXPECT_NE(s.find("core3.l2.misses"), std::string::npos);
    EXPECT_NE(s.find("# L2 misses"), std::string::npos);
}

TEST(StatsReportTest, ProcessTableListsProcesses)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<MixWorkload>(), 0);
    m.addProcess(std::make_unique<MixWorkload>(), 1);
    m.runQuanta(1);
    std::ostringstream os;
    dumpProcessStats(m, os);
    const std::string s = os.str();
    EXPECT_NE(s.find("mix"), std::string::npos);
    EXPECT_NE(s.find("busy cycles"), std::string::npos);
}

TEST(StatsReportTest, EmptyMachineStillReports)
{
    Machine m(smallMachine());
    std::ostringstream os;
    EXPECT_NO_THROW(dumpMachineStats(m, os));
    EXPECT_NO_THROW(dumpProcessStats(m, os));
}

TEST(StatsReportTest, DumpStatEntriesRendersTitleAndValues)
{
    std::ostringstream os;
    dumpStatEntries({{"pipe.count", 42.0, "an integral counter"},
                     {"pipe.mean", 1.5, "a fractional value"}},
                    os, "pipeline");
    const std::string s = os.str();
    EXPECT_NE(s.find("---------- pipeline ----------"),
              std::string::npos);
    EXPECT_NE(s.find("pipe.count"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("1.500"), std::string::npos);
    EXPECT_NE(s.find("# an integral counter"), std::string::npos);
}

TEST(StatsReportTest, DumpStatEntriesOmitsEmptyTitle)
{
    std::ostringstream os;
    dumpStatEntries({{"x", 1.0, "d"}}, os);
    EXPECT_EQ(os.str().find("----------"), std::string::npos);
}

} // namespace
} // namespace cchunter
